"""Unit tests for diversity helpers (Benefit 3, §2)."""

import pytest

from repro.apps.diversity import (
    coverage_over_time,
    min_pairwise_distance,
    representatives,
)
from repro.core.dependent import DependentRangeSampler
from repro.core.range_sampler import ChunkedRangeSampler


class TestRepresentatives:
    def test_distinct_outputs(self):
        keys = [float(i) for i in range(100)]
        sampler = ChunkedRangeSampler(keys, rng=1)
        out = representatives(lambda: sampler.sample(0.0, 99.0, 1)[0], 10, 100)
        assert len(set(out)) == 10


class TestMinPairwiseDistance:
    def test_basic(self):
        points = [(0.0, 0.0), (3.0, 4.0), (0.0, 1.0)]
        assert min_pairwise_distance(points) == pytest.approx(1.0)

    def test_degenerate_inputs(self):
        assert min_pairwise_distance([]) == float("inf")
        assert min_pairwise_distance([(1.0, 1.0)]) == float("inf")

    def test_duplicates_give_zero(self):
        assert min_pairwise_distance([(1.0, 1.0), (1.0, 1.0)]) == 0.0


class TestCoverageOverTime:
    def test_iqs_coverage_keeps_growing(self):
        keys = [float(i) for i in range(200)]
        sampler = ChunkedRangeSampler(keys, rng=2)
        curve = coverage_over_time(lambda s: sampler.sample(0.0, 199.0, s), 10, 20)
        assert curve[-1] > curve[0]
        assert curve == sorted(curve)  # monotone
        assert curve[-1] > 100  # 200 draws over 200 keys cover well past half

    def test_dependent_coverage_flatlines(self):
        keys = [float(i) for i in range(200)]
        sampler = DependentRangeSampler(keys, rng=3)
        curve = coverage_over_time(
            lambda s: sampler.sample_without_replacement(0.0, 199.0, s), 10, 20
        )
        assert curve[-1] == curve[0] == 10  # same 10 elements forever

    def test_validates_arguments(self):
        with pytest.raises(ValueError):
            coverage_over_time(lambda s: [], 0, 5)
        with pytest.raises(ValueError):
            coverage_over_time(lambda s: [], 5, 0)
