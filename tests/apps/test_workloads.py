"""Unit tests for the synthetic workload generators."""

import pytest

from repro.apps.workloads import (
    clustered_points,
    distinct_uniform_reals,
    interval_with_selectivity,
    overlapping_sets,
    skewed_set_family,
    uniform_points,
    zipf_weights,
)
from repro.errors import BuildError


class TestValueGenerators:
    def test_distinct_uniform_reals(self):
        values = distinct_uniform_reals(500, rng=1)
        assert len(values) == 500
        assert len(set(values)) == 500
        assert values == sorted(values)
        assert all(0.0 <= value < 1.0 for value in values)

    def test_custom_interval(self):
        values = distinct_uniform_reals(100, lo=-5.0, hi=5.0, rng=2)
        assert all(-5.0 <= value < 5.0 for value in values)

    def test_zero_rejected(self):
        with pytest.raises(BuildError):
            distinct_uniform_reals(0)

    def test_zipf_weights_positive_and_skewed(self):
        weights = zipf_weights(1000, alpha=1.0, rng=3)
        assert all(weight > 0 for weight in weights)
        assert max(weights) / min(weights) == pytest.approx(1000.0)

    def test_zipf_alpha_zero_is_uniform(self):
        weights = zipf_weights(10, alpha=0.0, rng=4)
        assert all(weight == 1.0 for weight in weights)


class TestPointGenerators:
    def test_uniform_points_shape(self):
        points = uniform_points(50, 3, rng=5)
        assert len(points) == 50
        assert all(len(point) == 3 for point in points)

    def test_clustered_points_cluster_tightness(self):
        points = clustered_points(200, 2, clusters=1, spread=0.01, rng=6)
        xs = [point[0] for point in points]
        assert max(xs) - min(xs) < 0.2  # all near one center

    def test_clustered_validation(self):
        with pytest.raises(BuildError):
            clustered_points(10, clusters=0)


class TestQueryGenerators:
    def test_interval_selectivity(self):
        keys = [float(i) for i in range(1000)]
        x, y = interval_with_selectivity(keys, 0.1, rng=7)
        covered = sum(1 for key in keys if x <= key <= y)
        assert covered == 100

    def test_full_selectivity(self):
        keys = [float(i) for i in range(10)]
        x, y = interval_with_selectivity(keys, 1.0, rng=8)
        assert (x, y) == (0.0, 9.0)

    def test_bad_selectivity_rejected(self):
        with pytest.raises(BuildError):
            interval_with_selectivity([1.0], 0.0)


class TestSetFamilies:
    def test_overlapping_sets_shape(self):
        family = overlapping_sets(5, 40, 100, rng=9)
        assert len(family) == 5
        assert all(len(subset) == 40 for subset in family)
        assert all(
            all(0 <= element < 100 for element in subset) for subset in family
        )

    def test_sets_have_distinct_members(self):
        family = overlapping_sets(3, 30, 50, rng=10)
        assert all(len(set(subset)) == 30 for subset in family)

    def test_oversized_set_rejected(self):
        with pytest.raises(BuildError):
            overlapping_sets(2, 200, 100)

    def test_skewed_family_sizes_decrease(self):
        family = skewed_set_family(10, 500, rng=11)
        sizes = [len(subset) for subset in family]
        assert sizes[0] > sizes[-1]
        assert sizes[-1] >= 1
