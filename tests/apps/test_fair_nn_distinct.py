"""Tests for the WoR (distinct) fair near-neighbor API."""

import pytest

from repro.apps.fair_nn import FairNearNeighbor, euclidean
from repro.apps.workloads import uniform_points
from repro.errors import EmptyQueryError


class TestDistinctNeighbors:
    def test_outputs_distinct_and_near(self):
        points = uniform_points(300, 2, rng=1)
        fair = FairNearNeighbor(points, radius=0.2, rng=2)
        query = (0.5, 0.5)
        out = fair.sample_distinct(query, 8)
        assert len(set(out)) == 8
        assert all(euclidean(point, query) <= 0.2 for point in out)

    def test_request_exceeding_ball_raises(self):
        points = [(0.0, 0.0), (0.01, 0.0)]
        fair = FairNearNeighbor(points, radius=0.1, rng=3)
        with pytest.raises(EmptyQueryError):
            fair.sample_distinct((0.0, 0.0), 3)

    def test_exact_ball_draw(self):
        points = [(0.0, 0.0), (0.01, 0.0), (0.0, 0.02), (5.0, 5.0)]
        fair = FairNearNeighbor(points, radius=0.1, rng=4)
        out = fair.sample_distinct((0.0, 0.0), 3)
        assert sorted(out) == [(0.0, 0.0), (0.0, 0.02), (0.01, 0.0)]

    def test_fresh_sets_across_queries(self):
        points = uniform_points(200, 2, rng=5)
        fair = FairNearNeighbor(points, radius=0.3, rng=6)
        sets = {tuple(sorted(fair.sample_distinct((0.5, 0.5), 3))) for _ in range(10)}
        assert len(sets) > 5
