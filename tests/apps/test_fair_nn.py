"""Unit tests for fair near-neighbor search (Benefit 2, §7)."""

import pytest

from repro.apps.fair_nn import FairNearNeighbor, euclidean
from repro.apps.workloads import clustered_points, uniform_points
from repro.errors import BuildError, EmptyQueryError
from repro.stats.tests import chi_square_weighted_pvalue

ALPHA = 1e-6


class TestConstruction:
    def test_bad_radius_rejected(self):
        with pytest.raises(BuildError):
            FairNearNeighbor([(0.0, 0.0)], radius=0.0)

    def test_euclidean(self):
        assert euclidean((0.0, 0.0), (3.0, 4.0)) == pytest.approx(5.0)


class TestQueries:
    def test_samples_are_within_radius(self):
        points = uniform_points(300, 2, rng=1)
        fair = FairNearNeighbor(points, radius=0.15, rng=2)
        query = (0.5, 0.5)
        for point in fair.sample_many(query, 30):
            assert euclidean(point, query) <= 0.15

    def test_empty_ball_raises(self):
        points = [(0.0, 0.0)]
        fair = FairNearNeighbor(points, radius=0.1, rng=3)
        with pytest.raises(EmptyQueryError):
            fair.sample((10.0, 10.0))

    def test_near_points_baseline(self):
        points = [(0.0, 0.0), (0.05, 0.0), (1.0, 1.0)]
        fair = FairNearNeighbor(points, radius=0.1, rng=4)
        assert sorted(fair.near_points((0.0, 0.0))) == [(0.0, 0.0), (0.05, 0.0)]

    def test_uniform_over_ball(self):
        points = uniform_points(120, 2, rng=5)
        fair = FairNearNeighbor(points, radius=0.25, num_grids=3, rng=6)
        query = (0.5, 0.5)
        ball = fair.near_points(query)
        assert len(ball) >= 5
        samples = fair.sample_many(query, 20_000)
        target = {point: 1.0 for point in ball}
        assert chi_square_weighted_pvalue(samples, target) > ALPHA

    def test_repeated_queries_independent(self):
        points = uniform_points(200, 2, rng=7)
        fair = FairNearNeighbor(points, radius=0.2, rng=8)
        query = (0.4, 0.6)
        ball_size = len(fair.near_points(query))
        assert ball_size >= 5
        outputs = {fair.sample(query) for _ in range(60)}
        # An IQS sampler keeps producing fresh elements; a dependent one
        # would return a single point forever.
        assert len(outputs) > 3

    def test_clustered_data(self):
        points = clustered_points(400, 2, clusters=4, spread=0.03, rng=9)
        fair = FairNearNeighbor(points, radius=0.1, num_grids=2, rng=10)
        query = points[0]
        sample = fair.sample(query)
        assert euclidean(sample, query) <= 0.1

    def test_rejection_rate_reasonable(self):
        points = uniform_points(500, 2, rng=11)
        fair = FairNearNeighbor(points, radius=0.2, rng=12)
        draws = 200
        fair.sample_many((0.5, 0.5), draws)
        # Ball area / candidate-cells area keeps acceptance constant-ish.
        assert fair.total_rejections < 20 * draws
