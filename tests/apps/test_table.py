"""Unit tests for the SampledTable facade (duplicates, predicates, weights)."""

import random

import pytest

from repro.apps.table import SampledTable
from repro.errors import BuildError, EmptyQueryError, SampleBudgetExceededError
from repro.stats.tests import chi_square_weighted_pvalue

ALPHA = 1e-6


def make_rows(n=200, seed=1):
    rng = random.Random(seed)
    return [
        {
            "id": i,
            "price": rng.randint(1, 20),  # heavy duplication
            "stars": rng.choice([1, 2, 3, 4, 5]),
            "popularity": 1.0 + rng.random() * 9.0,
        }
        for i in range(n)
    ]


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(BuildError):
            SampledTable([])

    def test_unknown_column_rejected(self):
        table = SampledTable(make_rows())
        with pytest.raises(BuildError):
            table.create_index("nope")

    def test_unknown_weight_column_rejected(self):
        table = SampledTable(make_rows())
        with pytest.raises(BuildError):
            table.create_index("price", weight_column="nope")

    def test_query_without_index_rejected(self):
        table = SampledTable(make_rows())
        with pytest.raises(BuildError):
            table.sample_where("price", 1, 10, 5)


class TestSampling:
    def test_samples_satisfy_range(self):
        table = SampledTable(make_rows(), rng=2)
        table.create_index("price")
        for row in table.sample_where("price", 5, 12, 50):
            assert 5 <= row["price"] <= 12

    def test_empty_range_raises(self):
        table = SampledTable(make_rows(), rng=3)
        table.create_index("price")
        with pytest.raises(EmptyQueryError):
            table.sample_where("price", 100, 200, 1)

    def test_duplicate_values_rows_all_reachable(self):
        rows = [{"k": 7, "id": i} for i in range(10)]
        table = SampledTable(rows, rng=4)
        table.create_index("k")
        seen = {row["id"] for row in table.sample_where("k", 7, 7, 300)}
        assert seen == set(range(10))

    def test_uniform_over_duplicated_rows(self):
        rows = [{"k": i % 3, "id": i} for i in range(12)]
        table = SampledTable(rows, rng=5)
        table.create_index("k")
        samples = [row["id"] for row in table.sample_where("k", 0, 0, 20_000)]
        target = {identifier: 1.0 for identifier in (0, 3, 6, 9)}
        assert chi_square_weighted_pvalue(samples, target) > ALPHA

    def test_count_where(self):
        rows = make_rows()
        table = SampledTable(rows, rng=6)
        table.create_index("price")
        expected = sum(1 for row in rows if 5 <= row["price"] <= 12)
        assert table.count_where("price", 5, 12) == expected

    def test_weighted_sampling(self):
        rows = [
            {"k": 1, "id": "light", "w": 1.0},
            {"k": 2, "id": "heavy", "w": 9.0},
        ]
        table = SampledTable(rows, rng=7)
        table.create_index("k", weight_column="w")
        samples = [
            row["id"] for row in table.sample_where("k", 1, 2, 20_000, weight_column="w")
        ]
        assert chi_square_weighted_pvalue(samples, {"light": 1.0, "heavy": 9.0}) > ALPHA


class TestPredicates:
    def test_where_filter_honoured(self):
        table = SampledTable(make_rows(), rng=8)
        table.create_index("price")
        rows = table.sample_where(
            "price", 1, 20, 40, where=lambda row: row["stars"] >= 4
        )
        assert all(row["stars"] >= 4 for row in rows)

    def test_impossible_predicate_hits_budget(self):
        table = SampledTable(make_rows(), rng=9)
        table.create_index("price")
        with pytest.raises(SampleBudgetExceededError):
            table.sample_where(
                "price", 1, 20, 2, where=lambda row: False, max_rejects_per_sample=10
            )

    def test_predicate_distribution_is_conditional(self):
        rows = [{"k": 1, "id": i, "keep": i % 2 == 0} for i in range(10)]
        table = SampledTable(rows, rng=10)
        table.create_index("k")
        samples = [
            row["id"]
            for row in table.sample_where("k", 1, 1, 10_000, where=lambda r: r["keep"])
        ]
        target = {identifier: 1.0 for identifier in range(0, 10, 2)}
        assert chi_square_weighted_pvalue(samples, target) > ALPHA


class TestEstimation:
    def test_estimate_fraction(self):
        rows = make_rows(2000, seed=11)
        table = SampledTable(rows, rng=12)
        table.create_index("price")
        in_range = [row for row in rows if 5 <= row["price"] <= 15]
        truth = sum(1 for row in in_range if row["stars"] >= 4) / len(in_range)
        estimate = table.estimate_fraction_where(
            "price", 5, 15, lambda row: row["stars"] >= 4, epsilon=0.05, delta=0.01
        )
        assert abs(estimate - truth) <= 0.08  # ε plus slack

    def test_repeated_estimates_vary(self):
        # Cross-query independence: two estimates differ (fresh samples).
        table = SampledTable(make_rows(500, seed=13), rng=14)
        table.create_index("price")
        values = {
            table.estimate_fraction_where(
                "price", 1, 20, lambda row: row["stars"] >= 3, epsilon=0.1, delta=0.2
            )
            for _ in range(5)
        }
        assert len(values) > 1
