"""Unit tests for query estimation (Benefit 1, §2)."""

import math

import pytest

from repro.apps.estimation import (
    estimate_fraction,
    failure_indicators,
    required_sample_size,
)
from repro.core.dependent import DependentRangeSampler
from repro.core.range_sampler import ChunkedRangeSampler


class TestSampleSize:
    def test_hoeffding_formula(self):
        assert required_sample_size(0.1, 0.05) == math.ceil(
            math.log(2 / 0.05) / (2 * 0.01)
        )

    def test_tighter_epsilon_needs_more(self):
        assert required_sample_size(0.01, 0.1) > required_sample_size(0.1, 0.1)

    def test_smaller_delta_needs_more(self):
        assert required_sample_size(0.1, 0.001) > required_sample_size(0.1, 0.1)

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.5, 2.0])
    def test_bad_epsilon_rejected(self, bad):
        with pytest.raises(ValueError):
            required_sample_size(bad, 0.1)

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.5])
    def test_bad_delta_rejected(self, bad):
        with pytest.raises(ValueError):
            required_sample_size(0.1, bad)


class TestEstimateFraction:
    def test_estimate_close_to_truth(self):
        keys = [float(i) for i in range(10_000)]
        sampler = ChunkedRangeSampler(keys, rng=1)
        # Within [0, 9999], 30% of keys are below 3000.
        result = estimate_fraction(
            lambda t: sampler.sample(0.0, 9999.0, t),
            lambda value: value < 3000.0,
            epsilon=0.05,
            delta=0.01,
        )
        assert abs(result.value - 0.3) <= 0.05
        assert result.samples_used == required_sample_size(0.05, 0.01)

    def test_extreme_fractions(self):
        keys = [float(i) for i in range(100)]
        sampler = ChunkedRangeSampler(keys, rng=2)
        all_true = estimate_fraction(
            lambda t: sampler.sample(0.0, 99.0, t), lambda v: True, 0.1, 0.1
        )
        assert all_true.value == 1.0
        none_true = estimate_fraction(
            lambda t: sampler.sample(0.0, 99.0, t), lambda v: False, 0.1, 0.1
        )
        assert none_true.value == 0.0


class TestFailureConcentration:
    """The Benefit-1 contrast: IQS failures concentrate, dependent don't."""

    def test_iqs_failures_near_expectation(self):
        keys = [float(i) for i in range(2000)]
        sampler = ChunkedRangeSampler(keys, rng=3)
        true_fraction = 0.5  # keys < 1000 within [0, 1999]
        t = 100  # per-estimate samples; failure prob δ_eff from binomial tail
        failures = failure_indicators(
            lambda count: sampler.sample(0.0, 1999.0, count),
            lambda value: value < 1000.0,
            true_fraction,
            epsilon=0.1,
            repetitions=300,
            samples_per_estimate=t,
        )
        # δ_eff = P[|Bin(100, .5)/100 - .5| > .1] ≈ 0.035; with m = 300
        # estimates the count concentrates around ~10.
        count = sum(failures)
        assert count < 40

    def test_dependent_failures_all_or_nothing(self):
        keys = [float(i) for i in range(2000)]
        sampler = DependentRangeSampler(keys, rng=4)
        failures = failure_indicators(
            lambda count: sampler.sample_without_replacement(0.0, 1999.0, count),
            lambda value: value < 1000.0,
            0.5,
            epsilon=0.01,  # tight bound most WoR draws of size 100 violate
            repetitions=50,
            samples_per_estimate=100,
        )
        # Identical query → identical estimate → identical outcome.
        assert sum(failures) in (0, 50)

    def test_rejects_zero_repetitions(self):
        with pytest.raises(ValueError):
            failure_indicators(lambda t: [], lambda v: True, 0.5, 0.1, 0, 10)
