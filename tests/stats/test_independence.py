"""Unit tests for the cross-query independence diagnostics (eq. 1)."""

import random

from repro.core.dependent import DependentRangeSampler
from repro.core.range_sampler import ChunkedRangeSampler
from repro.stats.independence import (
    lag_independence_pvalue,
    repeat_query_distinct_fraction,
    repeat_query_outputs,
)


class TestRepeatQueryOutputs:
    def test_collects_outputs(self):
        counter = iter(range(5))
        assert repeat_query_outputs(lambda: next(counter), 5) == [0, 1, 2, 3, 4]


class TestDistinctFraction:
    def test_iqs_sampler_high_fraction(self):
        keys = [float(i) for i in range(1000)]
        sampler = ChunkedRangeSampler(keys, rng=1)
        fraction = repeat_query_distinct_fraction(
            lambda: sampler.sample(0.0, 999.0, 1)[0], 100
        )
        assert fraction >= 0.8  # 100 draws from 1000 keys rarely collide

    def test_dependent_sampler_minimal_fraction(self):
        keys = [float(i) for i in range(1000)]
        sampler = DependentRangeSampler(keys, rng=2)
        fraction = repeat_query_distinct_fraction(
            lambda: sampler.sample_without_replacement(0.0, 999.0, 1)[0], 100
        )
        assert fraction == 1 / 100  # the same element every time


class TestLagIndependence:
    def test_independent_stream_passes(self):
        rng = random.Random(3)
        outputs = [rng.randrange(4) for _ in range(20_000)]
        assert lag_independence_pvalue(outputs) > 1e-6

    def test_correlated_stream_fails(self):
        # A sticky chain: repeats the previous output 90 % of the time.
        rng = random.Random(4)
        outputs = [0]
        for _ in range(5000):
            if rng.random() < 0.9:
                outputs.append(outputs[-1])
            else:
                outputs.append(rng.randrange(4))
        assert lag_independence_pvalue(outputs) < 1e-6

    def test_constant_stream_returns_one(self):
        assert lag_independence_pvalue([7] * 100) == 1.0

    def test_short_stream_returns_one(self):
        assert lag_independence_pvalue([1, 2]) == 1.0

    def test_iqs_sampler_passes(self):
        keys = [float(i) for i in range(8)]
        sampler = ChunkedRangeSampler(keys, rng=5)
        outputs = [sampler.sample(0.0, 7.0, 1)[0] for _ in range(20_000)]
        assert lag_independence_pvalue(outputs) > 1e-6
