"""Unit tests for the chi-square machinery, cross-checked against scipy."""

import random

import pytest

scipy_stats = pytest.importorskip("scipy.stats")

from repro.stats.tests import (
    _chi_square_sf,
    chi_square_pvalue,
    chi_square_uniform_pvalue,
    chi_square_weighted_pvalue,
    empirical_counts,
    merge_small_bins,
)


class TestChiSquareSF:
    @pytest.mark.parametrize("statistic", [0.5, 1.0, 5.0, 20.0, 100.0])
    @pytest.mark.parametrize("dof", [1, 3, 10, 50])
    def test_matches_scipy(self, statistic, dof):
        ours = _chi_square_sf(statistic, dof)
        reference = scipy_stats.chi2.sf(statistic, dof)
        assert ours == pytest.approx(reference, rel=1e-8, abs=1e-12)

    def test_zero_statistic(self):
        assert _chi_square_sf(0.0, 5) == 1.0

    def test_bad_dof_rejected(self):
        with pytest.raises(ValueError):
            _chi_square_sf(1.0, 0)


class TestPValueHelpers:
    def test_matches_scipy_chisquare(self):
        observed = [90, 110, 95, 105]
        expected = [100.0, 100.0, 100.0, 100.0]
        ours = chi_square_pvalue(observed, expected)
        reference = scipy_stats.chisquare(observed, expected).pvalue
        assert ours == pytest.approx(reference, rel=1e-8)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            chi_square_pvalue([1, 2], [1.0])

    def test_nonpositive_expected_rejected(self):
        with pytest.raises(ValueError):
            chi_square_pvalue([1, 2], [1.0, 0.0])

    def test_uniform_pvalue_accepts_uniform_data(self):
        rng = random.Random(1)
        samples = [rng.randrange(6) for _ in range(60_000)]
        assert chi_square_uniform_pvalue(samples, list(range(6))) > 1e-6

    def test_uniform_pvalue_rejects_skewed_data(self):
        samples = [0] * 900 + [1] * 100
        assert chi_square_uniform_pvalue(samples, [0, 1]) < 1e-6

    def test_weighted_pvalue_accepts_matching_data(self):
        rng = random.Random(2)
        weights = {"a": 1.0, "b": 3.0}
        samples = [("b" if rng.random() < 0.75 else "a") for _ in range(40_000)]
        assert chi_square_weighted_pvalue(samples, weights) > 1e-6

    def test_weighted_pvalue_rejects_wrong_weights(self):
        samples = ["a"] * 500 + ["b"] * 500
        assert chi_square_weighted_pvalue(samples, {"a": 1.0, "b": 9.0}) < 1e-6


class TestUtilities:
    def test_empirical_counts(self):
        assert empirical_counts(["x", "y", "x"]) == {"x": 2, "y": 1}

    def test_merge_small_bins(self):
        observed = [1, 1, 1, 100]
        expected = [2.0, 2.0, 2.0, 100.0]
        pooled_obs, pooled_exp = merge_small_bins(observed, expected, minimum=5.0)
        assert sum(pooled_obs) == sum(observed)
        assert sum(pooled_exp) == pytest.approx(sum(expected))
        assert all(exp >= 5.0 for exp in pooled_exp)

    def test_merge_small_bins_all_small(self):
        pooled_obs, pooled_exp = merge_small_bins([1, 1], [1.0, 1.0], minimum=5.0)
        assert pooled_obs == [2]
        assert pooled_exp == [2.0]
