"""The public API surface: every exported name resolves and is documented."""

import inspect

import repro


class TestPublicAPI:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing name {name!r}"

    def test_no_duplicate_exports(self):
        assert len(repro.__all__) == len(set(repro.__all__))

    def test_public_classes_have_docstrings(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert obj.__doc__, f"{name} lacks a docstring"

    def test_version_present(self):
        assert repro.__version__

    def test_errors_form_one_hierarchy(self):
        from repro.errors import (
            BuildError,
            EmptyQueryError,
            ExternalMemoryError,
            IQSError,
            InvalidWeightError,
            SampleBudgetExceededError,
        )

        for error in (
            BuildError,
            EmptyQueryError,
            ExternalMemoryError,
            InvalidWeightError,
            SampleBudgetExceededError,
        ):
            assert issubclass(error, IQSError)
        assert issubclass(InvalidWeightError, BuildError)


class TestValidationHelpers:
    def test_validate_weights_casts_to_float(self):
        from repro.validation import validate_weights

        assert validate_weights([1, 2]) == [1.0, 2.0]

    def test_validate_sample_size_accepts_ints_only(self):
        import pytest

        from repro.validation import validate_sample_size

        assert validate_sample_size(3) == 3
        with pytest.raises(TypeError):
            validate_sample_size(True)
        with pytest.raises(TypeError):
            validate_sample_size("3")
        with pytest.raises(ValueError):
            validate_sample_size(-1)
