"""Unit tests for the static B-tree substrate (§8)."""

import math

import pytest

from repro.em.btree import StaticBTree
from repro.em.model import EMMachine
from repro.errors import BuildError


def build(n, block_size=8, memory_blocks=4):
    machine = EMMachine(block_size=block_size, memory_blocks=memory_blocks)
    tree = StaticBTree(machine, [float(i) for i in range(n)])
    return machine, tree


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(BuildError):
            StaticBTree(EMMachine(), [])

    def test_unsorted_rejected(self):
        with pytest.raises(BuildError):
            StaticBTree(EMMachine(), [2.0, 1.0])

    def test_height_logarithmic(self):
        _, tree = build(4096, block_size=16)
        leaves = 4096 / 16
        assert tree.height <= math.ceil(math.log(leaves, tree.fanout)) + 2

    def test_single_leaf(self):
        _, tree = build(5, block_size=8)
        assert tree.height == 1
        assert len(tree) == 5


class TestCanonicalUnits:
    def test_units_partition_range(self):
        _, tree = build(500, block_size=16)
        units = tree.canonical_units(37.0, 441.0)
        covered = []
        for _, lo, hi in units:
            covered.extend(range(lo, hi))
        assert covered == list(range(37, 442))

    def test_empty_range(self):
        _, tree = build(100)
        assert tree.canonical_units(200.0, 300.0) == []
        assert tree.canonical_units(5.0, 4.0) == []

    def test_full_range_is_root(self):
        _, tree = build(256, block_size=16)
        units = tree.canonical_units(-1.0, 1000.0)
        assert len(units) == 1
        assert units[0][1:] == (0, 256)

    def test_partial_leaves_marked(self):
        _, tree = build(100, block_size=10)
        units = tree.canonical_units(3.0, 97.0)
        kinds = [ref[0] for ref, _, _ in units]
        assert kinds[0] == "partial"
        assert kinds[-1] == "partial"

    def test_decomposition_io_logarithmic(self):
        machine, tree = build(4096, block_size=16)
        machine.drop_cache()
        start = machine.stats.total
        tree.canonical_units(100.0, 4000.0)
        ios = machine.stats.total - start
        # Only boundary paths are read: O(log_B n) + 2 partial leaves.
        assert ios <= 4 * tree.height + 4

    def test_span_of(self):
        _, tree = build(200, block_size=8)
        assert tree.span_of(10.0, 20.0) == (10, 21)
        assert tree.span_of(500.0, 600.0) == (0, 0)


class TestNodeAccess:
    def test_read_leaf_values(self):
        _, tree = build(20, block_size=8)
        assert tree.read_leaf_values(0) == [float(i) for i in range(8)]
        assert tree.read_leaf_values(2) == [16.0, 17.0, 18.0, 19.0]

    def test_children_of_internal(self):
        _, tree = build(512, block_size=16)
        ref = tree.root_entry[2]
        if ref[0] == "node":
            children = tree.children_of(ref)
            assert children[0][3] == 0
            assert children[-1][4] == 512

    def test_children_of_leaf_rejected(self):
        _, tree = build(4, block_size=8)
        with pytest.raises(BuildError):
            tree.children_of(("leaf", 0))
