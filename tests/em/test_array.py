"""Unit tests for external arrays and the streaming writer (§8)."""

import pytest

from repro.em.array import ExternalArray, ExternalWriter
from repro.em.model import EMMachine


class TestExternalArray:
    def test_from_list_roundtrip(self):
        machine = EMMachine(block_size=4, memory_blocks=2)
        array = ExternalArray.from_list(machine, list(range(11)))
        assert array.to_list() == list(range(11))

    def test_block_count(self):
        machine = EMMachine(block_size=4, memory_blocks=2)
        array = ExternalArray.from_list(machine, list(range(11)))
        assert array.num_blocks == 3

    def test_materialise_io_cost(self):
        machine = EMMachine(block_size=8, memory_blocks=2)
        ExternalArray.from_list(machine, list(range(64)))
        machine.flush()
        assert machine.stats.writes == 8  # ⌈64/8⌉ block writes

    def test_scan_io_cost(self):
        machine = EMMachine(block_size=8, memory_blocks=2)
        array = ExternalArray.from_list(machine, list(range(64)))
        machine.drop_cache()
        start = machine.stats.reads
        assert array.to_list() == list(range(64))
        assert machine.stats.reads - start == 8

    def test_get_set(self):
        machine = EMMachine(block_size=4, memory_blocks=2)
        array = ExternalArray.from_list(machine, [0] * 10)
        array.set(7, "x")
        assert array.get(7) == "x"

    def test_out_of_range(self):
        machine = EMMachine(block_size=4, memory_blocks=2)
        array = ExternalArray.from_list(machine, [1, 2, 3])
        with pytest.raises(IndexError):
            array.get(3)
        with pytest.raises(IndexError):
            array.set(-1, 0)

    def test_read_range_cross_block(self):
        machine = EMMachine(block_size=4, memory_blocks=2)
        array = ExternalArray.from_list(machine, list(range(20)))
        assert array.read_range(2, 11) == list(range(2, 11))

    def test_read_range_validation(self):
        machine = EMMachine(block_size=4, memory_blocks=2)
        array = ExternalArray.from_list(machine, list(range(8)))
        with pytest.raises(IndexError):
            array.read_range(5, 3)
        with pytest.raises(IndexError):
            array.read_range(0, 9)

    def test_free_releases_blocks(self):
        machine = EMMachine(block_size=4, memory_blocks=2)
        array = ExternalArray.from_list(machine, list(range(8)))
        array.free()
        assert len(array) == 0

    def test_empty_array(self):
        machine = EMMachine(block_size=4, memory_blocks=2)
        array = ExternalArray(machine, 0)
        assert array.to_list() == []


class TestExternalWriter:
    def test_streaming_build(self):
        machine = EMMachine(block_size=4, memory_blocks=2)
        writer = ExternalWriter(machine)
        writer.extend(range(10))
        array = writer.finish()
        assert array.to_list() == list(range(10))
        assert len(array) == 10

    def test_exact_block_multiple(self):
        machine = EMMachine(block_size=4, memory_blocks=2)
        writer = ExternalWriter(machine)
        writer.extend(range(8))
        assert writer.finish().num_blocks == 2

    def test_empty_stream(self):
        machine = EMMachine(block_size=4, memory_blocks=2)
        assert ExternalWriter(machine).finish().to_list() == []
