"""Tests for weighted EM range sampling (the Direction-2 practical side)."""

import pytest

from repro.em.btree import StaticBTree
from repro.em.em_range_sampler import EMRangeSampler
from repro.em.model import EMMachine
from repro.errors import BuildError
from repro.stats.tests import chi_square_weighted_pvalue

ALPHA = 1e-6


def build(n, weights, block_size=8, memory_blocks=8, rng=1):
    machine = EMMachine(block_size=block_size, memory_blocks=memory_blocks)
    sampler = EMRangeSampler(
        machine, [float(i) for i in range(n)], rng=rng, weights=weights
    )
    return machine, sampler


class TestWeightedBTree:
    def test_weight_length_mismatch_rejected(self):
        with pytest.raises(BuildError):
            StaticBTree(EMMachine(), [1.0, 2.0], weights=[1.0])

    def test_root_weight_is_total(self):
        machine = EMMachine(block_size=8, memory_blocks=4)
        weights = [float(i + 1) for i in range(30)]
        tree = StaticBTree(machine, [float(i) for i in range(30)], weights=weights)
        assert tree.root_entry[5] == pytest.approx(sum(weights))

    def test_unweighted_weight_is_count(self):
        machine = EMMachine(block_size=8, memory_blocks=4)
        tree = StaticBTree(machine, [float(i) for i in range(30)])
        assert tree.root_entry[5] == pytest.approx(30.0)

    def test_weighted_units_aggregate_correctly(self):
        machine = EMMachine(block_size=8, memory_blocks=4)
        weights = [float(i % 3 + 1) for i in range(64)]
        tree = StaticBTree(machine, [float(i) for i in range(64)], weights=weights)
        units = tree.canonical_units_weighted(5.0, 58.0)
        total = sum(weight for _, _, _, weight in units)
        expected = sum(weights[5:59])
        assert total == pytest.approx(expected)

    def test_read_leaf_weights_unweighted_defaults(self):
        machine = EMMachine(block_size=8, memory_blocks=4)
        tree = StaticBTree(machine, [float(i) for i in range(10)])
        assert tree.read_leaf_weights(0) == [1.0] * 8


class TestWeightedSampling:
    def test_samples_in_range(self):
        weights = [float(i % 5 + 1) for i in range(200)]
        _, sampler = build(200, weights)
        assert sampler.is_weighted
        out = sampler.query(30.0, 170.0, 100)
        assert all(30.0 <= value <= 170.0 for value in out)

    def test_weighted_distribution(self):
        weights = [float(i + 1) for i in range(16)]
        _, sampler = build(16, weights, rng=2)
        samples = []
        for _ in range(30):
            samples.extend(sampler.query(2.0, 13.0, 1000))
        target = {float(i): weights[i] for i in range(2, 14)}
        assert chi_square_weighted_pvalue(samples, target) > ALPHA

    def test_distribution_across_pool_refills(self):
        weights = [1.0 if i % 2 == 0 else 4.0 for i in range(32)]
        machine, sampler = build(32, weights, rng=3)
        initial = sampler.refill_count
        samples = []
        for _ in range(40):
            samples.extend(sampler.query(0.0, 31.0, 200))
        assert sampler.refill_count > initial
        target = {float(i): weights[i] for i in range(32)}
        assert chi_square_weighted_pvalue(samples, target) > ALPHA

    def test_naive_weighted_query_agrees(self):
        weights = [float(i % 4 + 1) for i in range(64)]
        _, sampler = build(64, weights, rng=4)
        samples = []
        for _ in range(30):
            samples.extend(sampler.naive_query(8.0, 55.0, 1000))
        target = {float(i): weights[i] for i in range(8, 56)}
        assert chi_square_weighted_pvalue(samples, target) > ALPHA

    def test_partial_leaf_weighted(self):
        # A narrow query entirely inside one leaf exercises the weighted
        # partial-piece path.
        weights = [float(i + 1) for i in range(8)]
        _, sampler = build(8, weights, block_size=8, rng=5)
        samples = sampler.query(2.0, 5.0, 20_000)
        target = {float(i): weights[i] for i in range(2, 6)}
        assert chi_square_weighted_pvalue(samples, target) > ALPHA
