"""Unit tests for the de-amortized EM sample pool (§8 remark)."""

import pytest

from repro.em.deamortized import DeamortizedSamplePoolSetSampler
from repro.em.model import EMMachine
from repro.em.sample_pool import SamplePoolSetSampler
from repro.errors import BuildError
from repro.stats.tests import chi_square_weighted_pvalue

ALPHA = 1e-6


def build(n, block_size=16, memory_blocks=8, rng=1, **kwargs):
    machine = EMMachine(block_size=block_size, memory_blocks=memory_blocks)
    sampler = DeamortizedSamplePoolSetSampler(machine, list(range(n)), rng=rng, **kwargs)
    return machine, sampler


class TestContracts:
    def test_empty_rejected(self):
        with pytest.raises(BuildError):
            DeamortizedSamplePoolSetSampler(EMMachine(), [])

    def test_bad_pace_rejected(self):
        with pytest.raises(BuildError):
            DeamortizedSamplePoolSetSampler(EMMachine(), [1], pace_factor=1.0)

    def test_samples_from_set(self):
        _, sampler = build(100)
        assert all(0 <= value < 100 for value in sampler.query(64))

    def test_spans_rebuild_boundaries(self):
        _, sampler = build(64)
        out = sampler.query(500)  # forces several swaps mid-query
        assert len(out) == 500
        assert all(0 <= value < 64 for value in out)
        assert sampler.rebuild_count >= 8


class TestDeamortization:
    def test_no_io_spikes(self):
        """The defining property: every query's I/O stays bounded, even the
        ones that cross a pool swap."""
        n, s = 512, 32
        machine, sampler = build(n, block_size=16, memory_blocks=8, rng=2)
        amortized_machine = EMMachine(block_size=16, memory_blocks=8)
        amortized = SamplePoolSetSampler(amortized_machine, list(range(n)), rng=3)

        worst_plain = 0
        for _ in range(80):
            before = amortized_machine.stats.total
            amortized.query(s)
            worst_plain = max(worst_plain, amortized_machine.stats.total - before)

        worst_deamortized = 0
        for _ in range(80):
            before = machine.stats.total
            sampler.query(s)
            worst_deamortized = max(worst_deamortized, machine.stats.total - before)

        assert sampler.rebuild_count >= 4  # swaps definitely happened
        # The plain pool spikes to a full rebuild; the de-amortized one
        # must stay well below that spike.
        assert worst_deamortized < worst_plain / 2

    def test_spare_finishes_before_active_drains(self):
        _, sampler = build(256, rng=4)
        for _ in range(64):
            sampler.query(16)
        # Each swap succeeded without error — pacing kept up; additionally
        # the live pool cursor is always valid.
        assert sampler.rebuild_count >= 4


class TestDistribution:
    def test_uniform_across_rebuilds(self):
        _, sampler = build(16, rng=5)
        samples = []
        for _ in range(60):
            samples.extend(sampler.query(100))
        target = {value: 1.0 for value in range(16)}
        assert chi_square_weighted_pvalue(samples, target) > ALPHA

    def test_streams_differ_across_pools(self):
        _, sampler = build(1000, rng=6, pool_size=64)
        first = sampler.query(64)
        second = sampler.query(64)
        assert first != second
