"""Unit tests for external merge sort and its I/O bound (§8)."""

import random

import pytest

from repro.em.array import ExternalArray
from repro.em.lower_bound import sort_bound_ios
from repro.em.model import EMMachine
from repro.em.sorting import external_merge_sort


def sort_on_machine(values, block_size=8, memory_blocks=4, key=None):
    machine = EMMachine(block_size=block_size, memory_blocks=memory_blocks)
    array = ExternalArray.from_list(machine, values)
    machine.drop_cache()
    start = machine.stats.total
    result = external_merge_sort(machine, array, key=key)
    return result.to_list(), machine.stats.total - start


class TestCorrectness:
    def test_sorts_random_data(self):
        values = random.Random(1).sample(range(10_000), 500)
        output, _ = sort_on_machine(values)
        assert output == sorted(values)

    def test_sorts_with_key(self):
        values = [(i % 7, i) for i in range(100)]
        output, _ = sort_on_machine(values, key=lambda pair: pair[0])
        assert [v[0] for v in output] == sorted(v[0] for v in values)

    def test_already_sorted(self):
        output, _ = sort_on_machine(list(range(200)))
        assert output == list(range(200))

    def test_reverse_sorted(self):
        output, _ = sort_on_machine(list(range(200, 0, -1)))
        assert output == list(range(1, 201))

    def test_duplicates(self):
        values = [5] * 40 + [3] * 40
        output, _ = sort_on_machine(values)
        assert output == sorted(values)

    def test_empty_input(self):
        machine = EMMachine(block_size=4, memory_blocks=2)
        array = ExternalArray(machine, 0)
        assert external_merge_sort(machine, array).to_list() == []

    def test_fits_in_memory_single_run(self):
        # n ≤ M: one run, no merge passes.
        values = random.Random(2).sample(range(1000), 30)
        output, _ = sort_on_machine(values, block_size=8, memory_blocks=4)
        assert output == sorted(values)

    def test_stability_not_required_but_totals_preserved(self):
        values = [random.Random(3).randint(0, 5) for _ in range(300)]
        output, _ = sort_on_machine(values)
        assert sorted(values) == output


class TestIOBound:
    @pytest.mark.parametrize("n", [256, 1024, 4096])
    def test_within_constant_of_sorting_bound(self, n):
        values = random.Random(n).sample(range(10 * n), n)
        _, ios = sort_on_machine(values, block_size=16, memory_blocks=4)
        bound = sort_bound_ios(n, B=16, M=64)
        # Each pass reads + writes: allow a small constant factor.
        assert ios <= 8 * bound + 16

    def test_io_grows_with_fewer_memory_blocks(self):
        values = random.Random(9).sample(range(100_000), 4096)
        _, ios_small_memory = sort_on_machine(values, block_size=8, memory_blocks=3)
        _, ios_big_memory = sort_on_machine(values, block_size=8, memory_blocks=32)
        assert ios_big_memory < ios_small_memory
