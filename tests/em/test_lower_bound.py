"""Unit tests for the §8 closed-form bounds."""

import pytest

from repro.em.lower_bound import (
    sample_pool_amortized_ios,
    set_sampling_lower_bound,
    sort_bound_ios,
)


class TestSortBound:
    def test_zero_input(self):
        assert sort_bound_ios(0, 16, 64) == 0.0

    def test_scales_with_n(self):
        assert sort_bound_ios(1 << 16, 16, 64) > sort_bound_ios(1 << 12, 16, 64)

    def test_log_capped_at_one(self):
        # n ≤ B: the log term must clamp at 1, not go to 0 or negative.
        assert sort_bound_ios(8, 16, 64) == pytest.approx(0.5)


class TestLowerBound:
    def test_zero_samples(self):
        assert set_sampling_lower_bound(0, 1000, 16, 64) == 0.0

    def test_small_s_linear_branch(self):
        # With s tiny, s itself is the min.
        bound = set_sampling_lower_bound(2, 1 << 20, 4, 16)
        assert bound <= 2.0

    def test_large_s_pool_branch(self):
        n, B, M = 1 << 20, 64, 1 << 12
        s = 1 << 15
        bound = set_sampling_lower_bound(s, n, B, M)
        assert bound < s  # the (s/B)·log term wins
        assert bound == pytest.approx((s / B) * max(1.0, __import__("math").log(n / B, M / B)))

    def test_monotone_in_s(self):
        bounds = [set_sampling_lower_bound(s, 1 << 16, 16, 256) for s in (64, 256, 1024)]
        assert bounds == sorted(bounds)


class TestPoolModel:
    def test_amortized_cost_below_linear(self):
        n, B, M = 1 << 16, 64, 1 << 12
        s = 4096
        assert sample_pool_amortized_ios(s, n, B, M) < s

    def test_zero_samples(self):
        assert sample_pool_amortized_ios(0, 100, 8, 32) == 0.0

    def test_dominated_by_read_cost_for_small_s(self):
        cost = sample_pool_amortized_ios(8, 1 << 20, 64, 1 << 12)
        assert cost >= 1.0  # at least one block read
