"""Unit tests for the EM range sampler with per-subtree pools (§8)."""

import pytest

from repro.em.em_range_sampler import EMRangeSampler
from repro.em.model import EMMachine
from repro.errors import BuildError, EmptyQueryError
from repro.stats.tests import chi_square_weighted_pvalue

ALPHA = 1e-6


def build(n, block_size=16, memory_blocks=4, rng=1):
    machine = EMMachine(block_size=block_size, memory_blocks=memory_blocks)
    sampler = EMRangeSampler(machine, [float(i) for i in range(n)], rng=rng)
    return machine, sampler


class TestContracts:
    def test_tiny_block_rejected(self):
        with pytest.raises(BuildError):
            EMRangeSampler(EMMachine(block_size=1, memory_blocks=2), [1.0])

    def test_empty_range_raises(self):
        _, sampler = build(100)
        with pytest.raises(EmptyQueryError):
            sampler.query(500.0, 600.0, 1)

    def test_samples_in_range(self):
        _, sampler = build(500)
        out = sampler.query(50.0, 450.0, 100)
        assert len(out) == 100
        assert all(50.0 <= value <= 450.0 for value in out)

    def test_single_block_dataset(self):
        _, sampler = build(8, block_size=16)
        out = sampler.query(0.0, 7.0, 20)
        assert all(0.0 <= value <= 7.0 for value in out)

    def test_boundary_only_query(self):
        _, sampler = build(100, block_size=16)
        out = sampler.query(3.0, 5.0, 30)
        assert set(out) <= {3.0, 4.0, 5.0}


class TestDistribution:
    def test_uniform_over_range(self):
        _, sampler = build(32, block_size=8, rng=2)
        samples = []
        for _ in range(30):
            samples.extend(sampler.query(4.0, 27.0, 1000))
        target = {float(i): 1.0 for i in range(4, 28)}
        assert chi_square_weighted_pvalue(samples, target) > ALPHA

    def test_pool_refills_preserve_distribution(self):
        machine, sampler = build(64, block_size=8, rng=3)
        initial = sampler.refill_count
        samples = []
        for _ in range(40):
            samples.extend(sampler.query(0.0, 63.0, 200))
        assert sampler.refill_count > initial  # pools cycled many times
        target = {float(i): 1.0 for i in range(64)}
        assert chi_square_weighted_pvalue(samples, target) > ALPHA


class TestIOEfficiency:
    def test_amortized_beats_naive_on_wide_ranges(self):
        n, s, B = 8192, 64, 64
        machine, sampler = build(n, block_size=B, memory_blocks=8, rng=4)
        # Warm-up to populate pools, then measure steady state.
        for _ in range(3):
            sampler.query(0.0, float(n - 1), s)
        machine.drop_cache()
        start = machine.stats.total
        rounds = 10
        for _ in range(rounds):
            sampler.query(0.0, float(n - 1), s)
        pool_ios = machine.stats.total - start

        machine.drop_cache()
        start = machine.stats.total
        for _ in range(rounds):
            sampler.naive_query(0.0, float(n - 1), s)
        naive_ios = machine.stats.total - start
        # Naive reads all n/B = 256 blocks per query; the pool structure
        # touches O(log_B n + s/B) blocks amortised.
        assert pool_ios < naive_ios / 4

    def test_naive_io_scales_with_result_size(self):
        machine, sampler = build(2048, block_size=16, memory_blocks=4, rng=5)
        machine.drop_cache()
        start = machine.stats.total
        sampler.naive_query(0.0, 2047.0, 4)
        wide_ios = machine.stats.total - start
        machine.drop_cache()
        start = machine.stats.total
        sampler.naive_query(0.0, 63.0, 4)
        narrow_ios = machine.stats.total - start
        assert wide_ios > 10 * narrow_ios
