"""Unit tests for the simulated Aggarwal–Vitter machine (§8)."""

import pytest

from repro.em.model import EMMachine
from repro.errors import ExternalMemoryError


class TestParameters:
    def test_model_constants(self):
        machine = EMMachine(block_size=32, memory_blocks=4)
        assert machine.B == 32
        assert machine.M == 128

    def test_memory_must_hold_two_blocks(self):
        with pytest.raises(ExternalMemoryError):
            EMMachine(block_size=8, memory_blocks=1)

    def test_bad_block_size_rejected(self):
        with pytest.raises(ExternalMemoryError):
            EMMachine(block_size=0)


class TestAllocation:
    def test_allocate_returns_fresh_ids(self):
        machine = EMMachine()
        first = machine.allocate_blocks(3)
        second = machine.allocate_blocks(2)
        assert len(set(first) | set(second)) == 5

    def test_allocation_is_free(self):
        machine = EMMachine()
        machine.allocate_blocks(100)
        assert machine.stats.total == 0

    def test_negative_count_rejected(self):
        with pytest.raises(ExternalMemoryError):
            EMMachine().allocate_blocks(-1)

    def test_unallocated_read_rejected(self):
        with pytest.raises(ExternalMemoryError):
            EMMachine().read_block(0)

    def test_free_blocks(self):
        machine = EMMachine()
        ids = machine.allocate_blocks(2)
        machine.free_blocks(ids)
        assert machine.allocated_blocks == 0


class TestIOAccounting:
    def test_cold_read_costs_one_io(self):
        machine = EMMachine(block_size=4, memory_blocks=2)
        (block,) = machine.allocate_blocks(1)
        machine.read_block(block)
        assert machine.stats.reads == 1

    def test_cached_read_is_free(self):
        machine = EMMachine(block_size=4, memory_blocks=2)
        (block,) = machine.allocate_blocks(1)
        machine.read_block(block)
        machine.read_block(block)
        machine.read_block(block)
        assert machine.stats.reads == 1

    def test_write_charged_on_eviction(self):
        machine = EMMachine(block_size=4, memory_blocks=2)
        blocks = machine.allocate_blocks(3)
        machine.write_block(blocks[0], [1])
        assert machine.stats.writes == 0  # still cached
        machine.read_block(blocks[1])
        machine.read_block(blocks[2])  # evicts the dirty frame
        assert machine.stats.writes == 1

    def test_flush_writes_dirty_frames(self):
        machine = EMMachine(block_size=4, memory_blocks=4)
        blocks = machine.allocate_blocks(2)
        machine.write_block(blocks[0], [1])
        machine.write_block(blocks[1], [2])
        machine.flush()
        assert machine.stats.writes == 2

    def test_lru_eviction_order(self):
        machine = EMMachine(block_size=4, memory_blocks=2)
        blocks = machine.allocate_blocks(3)
        machine.read_block(blocks[0])
        machine.read_block(blocks[1])
        machine.read_block(blocks[0])  # refresh block 0 (hit)
        machine.read_block(blocks[2])  # must evict block 1, not block 0
        machine.read_block(blocks[0])  # still resident → free
        assert machine.stats.reads == 3
        machine.read_block(blocks[1])  # was evicted → miss
        assert machine.stats.reads == 4

    def test_oversized_write_rejected(self):
        machine = EMMachine(block_size=2, memory_blocks=2)
        (block,) = machine.allocate_blocks(1)
        with pytest.raises(ExternalMemoryError):
            machine.write_block(block, [1, 2, 3])

    def test_drop_cache_forces_cold_reads(self):
        machine = EMMachine(block_size=4, memory_blocks=4)
        (block,) = machine.allocate_blocks(1)
        machine.write_block(block, [7])
        machine.drop_cache()
        reads_before = machine.stats.reads
        assert machine.read_block(block) == [7]
        assert machine.stats.reads == reads_before + 1

    def test_checkpoint_accounting(self):
        machine = EMMachine(block_size=4, memory_blocks=2)
        (block,) = machine.allocate_blocks(1)
        mark = machine.stats.checkpoint()
        machine.read_block(block)
        assert machine.stats.since(mark) == 1


class TestDurability:
    def test_data_survives_eviction(self):
        machine = EMMachine(block_size=4, memory_blocks=2)
        blocks = machine.allocate_blocks(4)
        machine.write_block(blocks[0], ["payload"])
        for other in blocks[1:]:
            machine.read_block(other)  # push block 0 out of memory
        assert machine.read_block(blocks[0]) == ["payload"]

    def test_peek_does_not_charge(self):
        machine = EMMachine(block_size=4, memory_blocks=2)
        (block,) = machine.allocate_blocks(1)
        machine.write_block(block, [5])
        io_before = machine.stats.total
        assert machine.peek_block(block) == [5]
        assert machine.stats.total == io_before
