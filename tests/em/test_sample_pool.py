"""Unit tests for EM set sampling: sample pool vs naive (§8)."""

import pytest

from repro.em.model import EMMachine
from repro.em.sample_pool import NaiveEMSetSampler, SamplePoolSetSampler
from repro.errors import BuildError
from repro.stats.tests import chi_square_weighted_pvalue

ALPHA = 1e-6


class TestNaive:
    def test_empty_rejected(self):
        with pytest.raises(BuildError):
            NaiveEMSetSampler(EMMachine(), [])

    def test_samples_from_set(self):
        machine = EMMachine(block_size=8, memory_blocks=2)
        sampler = NaiveEMSetSampler(machine, list(range(100)), rng=1)
        assert all(0 <= value < 100 for value in sampler.query(50))

    def test_io_cost_linear_in_s(self):
        machine = EMMachine(block_size=8, memory_blocks=2)
        sampler = NaiveEMSetSampler(machine, list(range(2048)), rng=2)
        machine.drop_cache()
        start = machine.stats.total
        sampler.query(128)
        ios = machine.stats.total - start
        # With 256 data blocks and 2 memory frames nearly every access misses.
        assert ios > 0.7 * 128


class TestSamplePool:
    def test_empty_rejected(self):
        with pytest.raises(BuildError):
            SamplePoolSetSampler(EMMachine(), [])

    def test_bad_pool_size_rejected(self):
        with pytest.raises(BuildError):
            SamplePoolSetSampler(EMMachine(), [1], pool_size=0)

    def test_samples_from_set(self):
        machine = EMMachine(block_size=8, memory_blocks=4)
        sampler = SamplePoolSetSampler(machine, list(range(100)), rng=3)
        assert all(0 <= value < 100 for value in sampler.query(60))

    def test_query_io_sublinear_in_s(self):
        machine = EMMachine(block_size=16, memory_blocks=4)
        sampler = SamplePoolSetSampler(machine, list(range(4096)), rng=4)
        machine.drop_cache()
        start = machine.stats.total
        sampler.query(256)  # no rebuild needed: pool holds 4096
        ios = machine.stats.total - start
        assert ios <= 256 / 16 + 4  # ≈ s/B sequential reads

    def test_pool_consumed_monotonically(self):
        machine = EMMachine(block_size=8, memory_blocks=4)
        sampler = SamplePoolSetSampler(machine, list(range(64)), rng=5)
        left_before = sampler.clean_samples_left
        sampler.query(10)
        assert sampler.clean_samples_left == left_before - 10

    def test_rebuild_on_exhaustion(self):
        machine = EMMachine(block_size=8, memory_blocks=4)
        sampler = SamplePoolSetSampler(machine, list(range(32)), rng=6)
        initial_rebuilds = sampler.rebuild_count
        for _ in range(5):
            sampler.query(20)  # 100 > 32 forces rebuilds
        assert sampler.rebuild_count > initial_rebuilds

    def test_query_larger_than_pool(self):
        machine = EMMachine(block_size=8, memory_blocks=4)
        sampler = SamplePoolSetSampler(machine, list(range(16)), rng=7)
        out = sampler.query(100)
        assert len(out) == 100
        assert all(0 <= value < 16 for value in out)

    def test_distribution_uniform(self):
        machine = EMMachine(block_size=16, memory_blocks=8)
        sampler = SamplePoolSetSampler(machine, list(range(8)), rng=8)
        samples = []
        for _ in range(30):
            samples.extend(sampler.query(1000))
        target = {value: 1.0 for value in range(8)}
        assert chi_square_weighted_pvalue(samples, target) > ALPHA

    def test_pool_entries_are_fresh_after_rebuild(self):
        # Two exhaust-and-rebuild cycles must not repeat the same stream.
        machine = EMMachine(block_size=8, memory_blocks=4)
        sampler = SamplePoolSetSampler(machine, list(range(1000)), rng=9, pool_size=64)
        first = sampler.query(64)
        second = sampler.query(64)
        assert first != second

    def test_amortized_beats_naive(self):
        n, s, B = 2048, 256, 16
        pool_machine = EMMachine(block_size=B, memory_blocks=4)
        pool = SamplePoolSetSampler(pool_machine, list(range(n)), rng=10)
        naive_machine = EMMachine(block_size=B, memory_blocks=4)
        naive = NaiveEMSetSampler(naive_machine, list(range(n)), rng=11)

        pool_machine.drop_cache()
        naive_machine.drop_cache()
        pool_start = pool_machine.stats.total
        naive_start = naive_machine.stats.total
        for _ in range(8):
            pool.query(s)
            naive.query(s)
        pool_ios = pool_machine.stats.total - pool_start
        naive_ios = naive_machine.stats.total - naive_start
        assert pool_ios < naive_ios / 3
