"""Unit tests for integer-domain range sampling (§4.3, Afshani–Wei)."""

import random

import pytest

from repro.core.integer_range import IntegerRangeSampler
from repro.errors import BuildError, EmptyQueryError
from repro.stats.tests import chi_square_weighted_pvalue

ALPHA = 1e-6


class TestContracts:
    def test_non_integer_keys_rejected(self):
        with pytest.raises(BuildError):
            IntegerRangeSampler([1.5, 2.5])

    def test_bool_keys_rejected(self):
        with pytest.raises(BuildError):
            IntegerRangeSampler([True, False])

    def test_empty_query_raises(self):
        sampler = IntegerRangeSampler([1, 5, 9], rng=1)
        with pytest.raises(EmptyQueryError):
            sampler.sample(6, 8, 1)

    def test_samples_in_range(self):
        keys = sorted(random.Random(1).sample(range(100_000), 500))
        sampler = IntegerRangeSampler(keys, rng=2)
        x, y = keys[100], keys[400]
        out = sampler.sample(x, y, 100)
        assert all(x <= value <= y for value in out)
        assert all(isinstance(value, int) for value in out)

    def test_span_uses_predecessor_structure(self):
        keys = [10, 20, 30, 40]
        sampler = IntegerRangeSampler(keys, rng=3)
        assert sampler.span_of(15, 35) == (1, 3)
        assert sampler.span_of(10, 40) == (0, 4)
        assert sampler.span_of(41, 99) == (0, 0)


class TestDistribution:
    def test_uniform(self):
        keys = list(range(0, 160, 2))
        sampler = IntegerRangeSampler(keys, rng=4)
        samples = sampler.sample(10, 100, 30_000)
        target = {key: 1.0 for key in keys if 10 <= key <= 100}
        assert chi_square_weighted_pvalue(samples, target) > ALPHA

    def test_weighted(self):
        keys = list(range(8))
        weights = [float(i + 1) for i in range(8)]
        sampler = IntegerRangeSampler(keys, weights, rng=5)
        samples = sampler.sample(2, 6, 30_000)
        target = {key: weights[key] for key in range(2, 7)}
        assert chi_square_weighted_pvalue(samples, target) > ALPHA

    def test_matches_float_sampler(self):
        from repro.core.range_sampler import ChunkedRangeSampler

        keys = sorted(random.Random(6).sample(range(10_000), 200))
        integer = IntegerRangeSampler(keys, rng=7)
        floating = ChunkedRangeSampler([float(k) for k in keys], rng=7)
        x, y = keys[30], keys[170]
        assert integer.span_of(x, y) == floating.span_of(float(x), float(y))


class TestSpace:
    def test_space_linear(self):
        small = IntegerRangeSampler(list(range(0, 2_000, 2)), rng=8)
        large = IntegerRangeSampler(list(range(0, 32_000, 2)), rng=9)
        per_small = small.space_words() / len(small)
        per_large = large.space_words() / len(large)
        assert per_large < 2 * per_small  # O(n) total, flat per element
