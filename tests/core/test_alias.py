"""Unit tests for the alias structure (paper §3.1, Theorem 1)."""

import math
import random

import pytest

from repro.core.alias import AliasSampler, alias_draw, build_alias_tables
from repro.errors import BuildError, InvalidWeightError
from repro.stats.tests import chi_square_weighted_pvalue

ALPHA = 1e-6


class TestConstruction:
    def test_empty_items_rejected(self):
        with pytest.raises(BuildError):
            AliasSampler([], [])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(BuildError):
            AliasSampler(["a", "b"], [1.0])

    def test_zero_weight_rejected(self):
        with pytest.raises(InvalidWeightError):
            AliasSampler(["a", "b"], [1.0, 0.0])

    def test_negative_weight_rejected(self):
        with pytest.raises(InvalidWeightError):
            AliasSampler(["a"], [-2.0])

    def test_nan_weight_rejected(self):
        with pytest.raises(InvalidWeightError):
            AliasSampler(["a"], [float("nan")])

    def test_infinite_weight_rejected(self):
        with pytest.raises(InvalidWeightError):
            AliasSampler(["a"], [float("inf")])

    def test_uniform_default_weights(self):
        sampler = AliasSampler(["a", "b", "c"])
        assert sampler.total_weight == pytest.approx(3.0)

    def test_len_and_items(self):
        sampler = AliasSampler(["x", "y"], [1.0, 2.0])
        assert len(sampler) == 2
        assert sampler.items == ("x", "y")

    def test_singleton(self):
        sampler = AliasSampler(["only"], [7.0])
        assert all(sampler.sample() == "only" for _ in range(10))


class TestUrnConditions:
    """The two §3.1 urn conditions, checked via the recovered table."""

    def test_probabilities_sum_to_one(self):
        weights = [0.1, 0.4, 2.0, 3.5, 0.01]
        sampler = AliasSampler(list(range(5)), weights)
        total = sum(sampler.probability(i) for i in range(5))
        assert total == pytest.approx(1.0)

    def test_per_element_mass_matches_weight(self):
        # Condition (2): each element's urn masses sum to w(e)/W.
        weights = [3.0, 1.0, 1.0, 1.0, 10.0, 0.5]
        sampler = AliasSampler(list(range(6)), weights)
        for index in range(6):
            assert sampler.probability(index) == pytest.approx(
                sampler.expected_probability(index), abs=1e-12
            )

    def test_tables_valid_urn_shape(self):
        # Every urn keeps its primary with prob in [0, 1] and aliases to a
        # valid element.
        prob, alias = build_alias_tables([5.0, 1.0, 1.0, 1.0])
        assert len(prob) == len(alias) == 4
        assert all(0.0 <= p <= 1.0 + 1e-12 for p in prob)
        assert all(0 <= a < 4 for a in alias)

    def test_equal_weights_give_full_urns(self):
        prob, _ = build_alias_tables([2.0] * 8)
        assert all(p == pytest.approx(1.0) for p in prob)


class TestSampling:
    def test_sample_in_items(self):
        sampler = AliasSampler(["a", "b", "c"], [1, 2, 3], rng=7)
        for _ in range(100):
            assert sampler.sample() in {"a", "b", "c"}

    def test_sample_many_length(self):
        sampler = AliasSampler(list(range(10)), rng=7)
        assert len(sampler.sample_many(37)) == 37

    def test_sample_many_rejects_zero(self):
        sampler = AliasSampler([1, 2])
        with pytest.raises(ValueError):
            sampler.sample_many(0)

    def test_sample_many_rejects_non_int(self):
        sampler = AliasSampler([1, 2])
        with pytest.raises(TypeError):
            sampler.sample_many(2.5)

    def test_deterministic_under_seed(self):
        a = AliasSampler(list(range(20)), rng=99).sample_many(50)
        b = AliasSampler(list(range(20)), rng=99).sample_many(50)
        assert a == b

    def test_distribution_matches_weights(self):
        weights = {0: 1.0, 1: 2.0, 2: 4.0, 3: 8.0}
        sampler = AliasSampler(list(weights), list(weights.values()), rng=5)
        samples = sampler.sample_many(40_000)
        assert chi_square_weighted_pvalue(samples, weights) > ALPHA

    def test_distribution_extreme_skew(self):
        weights = {0: 1.0, 1: 1000.0}
        sampler = AliasSampler(list(weights), list(weights.values()), rng=5)
        samples = sampler.sample_many(60_000)
        rare = samples.count(0)
        expected = 60_000 / 1001
        assert abs(rare - expected) < 6 * math.sqrt(expected) + 5

    def test_alias_draw_respects_rng(self):
        prob, alias = build_alias_tables([1.0, 1.0])
        draws = {alias_draw(prob, alias, random.Random(3)) for _ in range(1)}
        assert draws <= {0, 1}

    def test_independent_streams_differ(self):
        # Different seeds should (overwhelmingly) give different streams.
        a = AliasSampler(list(range(100)), rng=1).sample_many(20)
        b = AliasSampler(list(range(100)), rng=2).sample_many(20)
        assert a != b
