"""Unit tests for the §2 dependent baseline — correct marginals, no
cross-query independence."""

import pytest

from repro.core.dependent import DependentRangeSampler
from repro.errors import BuildError, EmptyQueryError
from repro.stats.tests import chi_square_weighted_pvalue

ALPHA = 1e-6


def keys_n(n):
    return [float(i) for i in range(n)]


class TestContracts:
    def test_empty_keys_rejected(self):
        with pytest.raises(BuildError):
            DependentRangeSampler([])

    def test_duplicate_keys_rejected(self):
        with pytest.raises(BuildError):
            DependentRangeSampler([1.0, 1.0])

    def test_unsorted_input_accepted(self):
        sampler = DependentRangeSampler([3.0, 1.0, 2.0], rng=1)
        assert sorted(sampler.keys) == [1.0, 2.0, 3.0]

    def test_empty_range_raises(self):
        sampler = DependentRangeSampler(keys_n(10), rng=1)
        with pytest.raises(EmptyQueryError):
            sampler.sample_without_replacement(100.0, 200.0, 1)

    def test_wor_larger_than_range_raises(self):
        sampler = DependentRangeSampler(keys_n(10), rng=1)
        with pytest.raises(EmptyQueryError):
            sampler.sample_without_replacement(0.0, 2.0, 5)


class TestMarginals:
    def test_wor_outputs_distinct_and_in_range(self):
        sampler = DependentRangeSampler(keys_n(100), rng=2)
        out = sampler.sample_without_replacement(10.0, 60.0, 20)
        assert len(set(out)) == 20
        assert all(10.0 <= value <= 60.0 for value in out)

    def test_wor_is_uniform_across_fresh_structures(self):
        # A single structure is deterministic per query; across fresh random
        # permutations the marginal is uniform — the §2 argument.
        counts = {}
        for seed in range(4000):
            sampler = DependentRangeSampler(keys_n(10), rng=seed)
            (value,) = sampler.sample_without_replacement(0.0, 9.0, 1)
            counts[value] = counts.get(value, 0) + 1
        samples = [value for value, count in counts.items() for _ in range(count)]
        target = {float(i): 1.0 for i in range(10)}
        assert chi_square_weighted_pvalue(samples, target) > ALPHA

    def test_wr_sample_size_and_range(self):
        sampler = DependentRangeSampler(keys_n(50), rng=3)
        out = sampler.sample_with_replacement(5.0, 45.0, 30)
        assert len(out) == 30
        assert all(5.0 <= value <= 45.0 for value in out)

    def test_wr_on_tiny_range_repeats(self):
        sampler = DependentRangeSampler(keys_n(50), rng=3)
        out = sampler.sample_with_replacement(7.0, 7.0, 5)
        assert out == [7.0] * 5


class TestDependence:
    """The structure's defining *failure*: repeated queries correlate."""

    def test_repeated_wor_query_is_identical(self):
        sampler = DependentRangeSampler(keys_n(100), rng=4)
        first = sampler.sample_without_replacement(10.0, 90.0, 10)
        second = sampler.sample_without_replacement(10.0, 90.0, 10)
        assert first == second

    def test_nested_queries_share_low_rank_elements(self):
        sampler = DependentRangeSampler(keys_n(100), rng=5)
        wide = set(sampler.sample_without_replacement(0.0, 99.0, 5))
        narrow = set(sampler.sample_without_replacement(0.0, 99.0, 10))
        assert wide <= narrow  # prefixes of the same rank order

    def test_wr_draws_come_from_same_wor_core(self):
        sampler = DependentRangeSampler(keys_n(1000), rng=6)
        outputs = set()
        for _ in range(50):
            outputs.update(sampler.sample_with_replacement(0.0, 999.0, 3))
        # 150 draws but confined to the 3 lowest-rank elements.
        assert len(outputs) <= 3
