"""Unit tests for sampling-scheme conversions (paper §1–§2, §4.1)."""

import random
from collections import Counter

import pytest

from repro.core.schemes import (
    multinomial_split,
    sample_without_replacement,
    uniform_indices_without_replacement,
    wr_from_wor,
)
from repro.errors import EmptyQueryError, SampleBudgetExceededError
from repro.stats.tests import chi_square_weighted_pvalue

ALPHA = 1e-6


class TestMultinomialSplit:
    def test_counts_sum_to_s(self):
        counts = multinomial_split([1.0, 2.0, 3.0], 100, rng=1)
        assert sum(counts) == 100
        assert len(counts) == 3

    def test_single_part_gets_everything(self):
        assert multinomial_split([5.0], 17, rng=1) == [17]

    def test_rejects_zero_samples(self):
        with pytest.raises(ValueError):
            multinomial_split([1.0, 1.0], 0)

    def test_proportions_follow_weights(self):
        totals = [0, 0, 0]
        for seed in range(30):
            counts = multinomial_split([1.0, 1.0, 8.0], 1000, rng=seed)
            for index, count in enumerate(counts):
                totals[index] += count
        grand = sum(totals)
        assert totals[2] / grand == pytest.approx(0.8, abs=0.02)

    def test_deterministic_under_seed(self):
        assert multinomial_split([1, 2, 3], 50, rng=4) == multinomial_split(
            [1, 2, 3], 50, rng=4
        )


class TestFloydWoR:
    def test_distinct_and_in_range(self):
        indices = uniform_indices_without_replacement(10, 30, 15, rng=2)
        assert len(indices) == 15
        assert len(set(indices)) == 15
        assert all(10 <= index < 30 for index in indices)

    def test_full_population(self):
        indices = uniform_indices_without_replacement(0, 8, 8, rng=2)
        assert sorted(indices) == list(range(8))

    def test_oversized_request_rejected(self):
        with pytest.raises(EmptyQueryError):
            uniform_indices_without_replacement(0, 4, 5)

    def test_marginal_uniformity(self):
        # Each index should appear in a size-2 WoR sample of [0, 5) with
        # probability 2/5.
        counts = Counter()
        trials = 20_000
        rng = random.Random(11)
        for _ in range(trials):
            counts.update(uniform_indices_without_replacement(0, 5, 2, rng=rng))
        weights = {index: 1.0 for index in range(5)}
        samples = [index for index, count in counts.items() for _ in range(count)]
        assert chi_square_weighted_pvalue(samples, weights) > ALPHA


class TestRejectionWoR:
    def test_distinct_outputs(self):
        rng = random.Random(3)
        population = list(range(20))
        result = sample_without_replacement(
            lambda: population[rng.randrange(20)], 10, 20
        )
        assert len(set(result)) == 10

    def test_impossible_request_rejected(self):
        with pytest.raises(EmptyQueryError):
            sample_without_replacement(lambda: 1, 3, 2)

    def test_broken_drawer_hits_budget(self):
        with pytest.raises(SampleBudgetExceededError):
            sample_without_replacement(lambda: 42, 2, 10, max_attempts_factor=1)


class TestWRFromWoR:
    def test_output_size_matches(self):
        result = wr_from_wor(["a", "b", "c"], population_size=100, rng=1)
        assert len(result) == 3

    def test_output_subset_of_wor(self):
        wor = ["a", "b", "c", "d"]
        result = wr_from_wor(wor, population_size=10, rng=2)
        assert set(result) <= set(wor)

    def test_empty_input(self):
        assert wr_from_wor([], population_size=5) == []

    def test_population_too_small_rejected(self):
        with pytest.raises(ValueError):
            wr_from_wor(["a", "b"], population_size=1)

    def test_collision_rate_matches_birthday(self):
        # For s=2 draws from N=2, a WR pair collides with probability 1/2.
        rng = random.Random(9)
        collisions = 0
        trials = 20_000
        for _ in range(trials):
            pair = wr_from_wor(["x", "y"], population_size=2, rng=rng)
            collisions += pair[0] == pair[1]
        assert abs(collisions / trials - 0.5) < 0.02

    def test_uniform_marginal(self):
        # Each WR slot should be uniform over the population. The
        # conversion requires its input to be a *uniformly ordered* WoR
        # sample (which real WoR samples are), so shuffle per trial.
        rng = random.Random(10)
        counts = Counter()
        for _ in range(30_000):
            wor = ["x", "y", "z"]
            rng.shuffle(wor)
            counts.update(wr_from_wor(wor, population_size=3, rng=rng))
        values = list(counts.values())
        assert max(values) - min(values) < 0.05 * sum(values)
