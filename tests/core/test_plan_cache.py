"""QueryPlanCache semantics and its integration into the range samplers.

Three concerns, in order of subtlety:

1. **Cache mechanics** — bounded LRU behaviour, hit/miss/eviction
   counters, the ``REPRO_PLAN_CACHE_SIZE`` environment knob, and the
   capacity-0 kill switch.
2. **Determinism** — a plan is a pure function of the structure and the
   span, so a warm-cache run must be *byte-identical* to a cold-cache
   run under the same seed. This is the property that makes caching safe
   for IQS: it cannot change any query's output, only its latency.
3. **Independence** — repeated hot-range queries served from the cache
   must still produce mutually independent outputs (eq. 1 of the paper),
   checked with the repo's lag-independence diagnostic.
"""

import random

import pytest

from repro.core import kernels
from repro.core.plan_cache import (
    DEFAULT_CAPACITY,
    ENV_CAPACITY,
    QueryPlanCache,
    resolve_capacity,
)
from repro.core.range_sampler import (
    AliasAugmentedRangeSampler,
    ChunkedRangeSampler,
    TreeWalkRangeSampler,
)
from repro.stats.independence import (
    lag_independence_pvalue,
    repeat_query_outputs,
)

SAMPLERS = [TreeWalkRangeSampler, AliasAugmentedRangeSampler, ChunkedRangeSampler]


class TestCacheMechanics:
    def test_lru_eviction_order(self):
        cache = QueryPlanCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes "a"; "b" is now LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.evictions == 1

    def test_put_refreshes_existing_key(self):
        cache = QueryPlanCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh, not insert: no eviction
        cache.put("c", 3)  # evicts "b", the true LRU
        assert cache.evictions == 1
        assert cache.get("a") == 10
        assert cache.get("b") is None

    def test_counters(self):
        cache = QueryPlanCache(4)
        assert cache.get("x") is None
        cache.put("x", 42)
        assert cache.get("x") == 42
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["evictions"] == 0
        assert stats["size"] == 1
        assert stats["capacity"] == 4

    def test_clear_keeps_counters(self):
        cache = QueryPlanCache(4)
        cache.put("x", 1)
        cache.get("x")
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1

    def test_capacity_zero_disables(self):
        cache = QueryPlanCache(0)
        assert not cache.enabled
        cache.put("x", 1)
        assert cache.get("x") is None
        assert len(cache) == 0
        # A disabled cache is a bypass, not a 100%-miss cache.
        assert cache.misses == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            QueryPlanCache(-1)

    def test_registry_counters_mirror_instance_counters(self):
        from repro import obs

        saved = obs.ENABLED
        obs.enable()
        obs.reset()
        try:
            cache = QueryPlanCache(2)
            cache.get("x")  # miss
            cache.put("x", 1)
            cache.get("x")  # hit
            cache.put("y", 2)
            cache.put("z", 3)  # evicts "x"
            assert obs.value("plan_cache.hits") == cache.hits == 1
            assert obs.value("plan_cache.misses") == cache.misses == 1
            assert obs.value("plan_cache.evictions") == cache.evictions == 1
        finally:
            obs.reset()
            (obs.enable if saved else obs.disable)()

    def test_stats_shim_records_without_metrics(self):
        from repro import obs

        saved = obs.ENABLED
        obs.disable()
        try:
            cache = QueryPlanCache(2)
            cache.get("x")
            cache.put("x", 1)
            cache.get("x")
            # The per-instance shim still tallies with the registry off...
            assert cache.stats()["hits"] == 1
            assert cache.stats()["misses"] == 1
            # ...while the registry stays untouched.
            assert obs.value("plan_cache.hits") == 0
        finally:
            (obs.enable if saved else obs.disable)()


class TestCapacityResolution:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(ENV_CAPACITY, raising=False)
        assert resolve_capacity() == DEFAULT_CAPACITY

    def test_argument_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(ENV_CAPACITY, "7")
        assert resolve_capacity(3) == 3

    def test_env_knob(self, monkeypatch):
        monkeypatch.setenv(ENV_CAPACITY, "7")
        assert resolve_capacity() == 7
        assert QueryPlanCache().capacity == 7

    def test_env_zero_disables(self, monkeypatch):
        monkeypatch.setenv(ENV_CAPACITY, "0")
        sampler = TreeWalkRangeSampler([1.0, 2.0, 3.0], rng=1)
        sampler.sample_span(0, 3, 2)
        assert not sampler.plan_cache.enabled
        assert sampler.plan_cache.stats()["size"] == 0

    def test_blank_env_ignored(self, monkeypatch):
        monkeypatch.setenv(ENV_CAPACITY, "  ")
        assert resolve_capacity() == DEFAULT_CAPACITY

    def test_invalid_env_rejected(self, monkeypatch):
        monkeypatch.setenv(ENV_CAPACITY, "many")
        with pytest.raises(ValueError):
            resolve_capacity()

    def test_negative_env_rejected_not_silent_zero(self, monkeypatch):
        monkeypatch.setenv(ENV_CAPACITY, "-5")
        with pytest.raises(ValueError):
            resolve_capacity()
        with pytest.raises(ValueError):
            QueryPlanCache()


@pytest.mark.parametrize("sampler_cls", SAMPLERS)
class TestSamplerIntegration:
    N = 96

    def build(self, sampler_cls, **kwargs):
        rnd = random.Random(23)
        keys = [float(i) for i in range(self.N)]
        weights = [rnd.random() + 0.05 for _ in range(self.N)]
        return sampler_cls(keys, weights, **kwargs)

    def test_counters_advance_on_repeated_spans(self, sampler_cls):
        sampler = self.build(sampler_cls, rng=3)
        for _ in range(5):
            sampler.sample_span(7, 61, 4)
        stats = sampler.plan_cache.stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 4
        assert stats["size"] == 1

    def test_distinct_spans_fill_and_evict(self, sampler_cls):
        sampler = self.build(sampler_cls, rng=4, plan_cache_size=3)
        for lo in range(6):
            sampler.sample_span(lo, lo + 30, 2)
        stats = sampler.plan_cache.stats()
        assert stats["misses"] == 6
        assert stats["size"] == 3
        assert stats["evictions"] == 3

    def test_warm_run_byte_identical_to_cold_run(self, sampler_cls):
        spans = [(3, 77), (10, 40), (3, 77), (50, 96), (3, 77), (10, 40)]
        outputs = {}
        for label, cache_size in (("cold", 0), ("warm", None)):
            sampler = self.build(sampler_cls, rng=99, plan_cache_size=cache_size)
            outputs[label] = [
                sampler.sample_span(lo, hi, 5) for lo, hi in spans for _ in range(3)
            ]
        assert outputs["cold"] == outputs["warm"]
        # and the warm run really was served from the cache:
        sampler = self.build(sampler_cls, rng=99)
        for lo, hi in spans:
            sampler.sample_span(lo, hi, 5)
        assert sampler.plan_cache.hits == len(spans) - 3  # 3 distinct spans

    def test_warm_run_byte_identical_under_scalar_fallback(
        self, sampler_cls, monkeypatch
    ):
        monkeypatch.setattr(kernels, "HAVE_NUMPY", False)
        self.test_warm_run_byte_identical_to_cold_run(sampler_cls)

    def test_warm_cache_outputs_stay_independent(self, sampler_cls):
        sampler = self.build(sampler_cls, rng=31)
        sampler.sample_span(5, 69, 1)  # prime the plan
        outputs = repeat_query_outputs(
            lambda: sampler.sample_span(5, 69, 1)[0], 4000
        )
        assert sampler.plan_cache.hits >= 4000
        assert len(set(outputs)) > 32  # many distinct elements, no sticking
        assert lag_independence_pvalue(outputs) > 1e-6
