"""Tier-equivalence harness for the compiled (jit) kernel tier.

The dispatch ladder is scalar → numpy → jit, and the contract per kernel
(docs/ARCHITECTURE.md) is:

* ``alias_draw`` / ``bst_topdown`` — counter-based randomness, so the
  jit stream differs from the numpy tier's ``Generator`` stream;
  equivalence across tiers is **distributional** (chi-square against the
  exact target), while same-seed runs are byte-reproducible.
* ``rejection_accept`` — uniforms always come from the caller's
  ``Generator``; **byte-identical** across tiers.
* ``vose_finish`` — no randomness; the builders using it are
  **byte-identical** across tiers.
* ``segmented_cumsum`` — same sums up to cumsum rounding (allclose).

The numpy *reference twins* in :mod:`repro.core.kernels_jit` compute the
compiled kernels' exact streams, so the jit algorithms are testable
without numba; the compiled-vs-reference byte checks themselves run only
under the ``[jit]`` extra (``importorskip("numba")``).
"""

import os
import subprocess
import sys

import pytest

np = pytest.importorskip("numpy")

from repro import obs
from repro.core import kernels, kernels_jit
from repro.stats.tests import chi_square_weighted_pvalue

ALPHA = 1e-6
DRAWS = 30_000


@pytest.fixture
def force_jit(monkeypatch):
    """Route batched kernel calls through the jit tier regardless of numba.

    Without numba the tier's entry points are the numpy reference twins,
    which compute the identical streams the compiled loops would.
    """
    monkeypatch.setattr(kernels, "HAVE_JIT", True)


@pytest.fixture
def metrics_on():
    saved = obs.ENABLED
    obs.enable()
    obs.reset()
    try:
        yield obs
    finally:
        obs.reset()
        (obs.enable if saved else obs.disable)()


def make_tables(n=64, seed=5):
    gen = np.random.default_rng(seed)
    weights = gen.random(n) + 0.05
    prob, alias = kernels.build_alias_tables_batch(weights)
    return weights, prob, alias


def table_masses(prob, alias):
    """Exact per-element mass implied by an urn table."""
    n = len(prob)
    masses = prob.copy() / n
    for urn in range(n):
        if prob[urn] < 1.0:
            masses[alias[urn]] += (1.0 - prob[urn]) / n
    return masses


class TestAliasDraw:
    def test_jit_stream_matches_table_distribution(self):
        _, prob, alias = make_tables()
        out = np.empty(DRAWS, dtype=np.intp)
        kernels_jit.alias_draw(prob, alias, 12345, out)
        masses = table_masses(prob, alias)
        pvalue = chi_square_weighted_pvalue(
            out.tolist(), {i: masses[i] for i in range(len(prob))}
        )
        assert pvalue > ALPHA

    def test_same_seed_is_byte_reproducible(self):
        _, prob, alias = make_tables()
        first = np.empty(2048, dtype=np.intp)
        second = np.empty(2048, dtype=np.intp)
        kernels_jit.alias_draw(prob, alias, 99, first)
        kernels_jit.alias_draw(prob, alias, 99, second)
        assert np.array_equal(first, second)
        kernels_jit.alias_draw(prob, alias, 100, second)
        assert not np.array_equal(first, second)

    def test_entry_point_dispatches_to_jit(self, force_jit):
        _, prob, alias = make_tables()
        size = max(kernels.JIT_MIN_SIZE, 4096)
        out = kernels.alias_draw_batch(prob, alias, size, np.random.default_rng(1))
        masses = table_masses(prob, alias)
        pvalue = chi_square_weighted_pvalue(
            out.tolist(), {i: masses[i] for i in range(len(prob))}
        )
        assert pvalue > ALPHA


class TestBstTopdown:
    def make_tree(self, n=32, seed=3):
        from repro.substrates.bst import StaticBST

        gen = np.random.default_rng(seed)
        keys = [float(i) for i in range(n)]
        weights = (gen.random(n) + 0.1).tolist()
        tree = StaticBST(keys, weights)
        left, right, node_weight, _ = tree.packed_arrays()
        return (
            tree,
            np.asarray(left, dtype=np.intp),
            np.asarray(right, dtype=np.intp),
            np.asarray(node_weight, dtype=np.float64),
            weights,
        )

    def test_walk_matches_weight_distribution(self):
        tree, left, right, node_weight, weights = self.make_tree()
        out = np.full(DRAWS, tree.root, dtype=np.intp)
        visits = kernels_jit.bst_topdown(
            left, right, node_weight, out.copy(), 77, -1, out
        )
        # Every walk descends from the root to one of n leaves.
        assert visits >= DRAWS  # at least one step per token
        leaf_of = {int(tree.leaf_node(i)): i for i in range(len(weights))}
        samples = [leaf_of[int(node)] for node in out]
        pvalue = chi_square_weighted_pvalue(
            samples, {i: w for i, w in enumerate(weights)}
        )
        assert pvalue > ALPHA

    def test_same_seed_is_byte_reproducible(self):
        tree, left, right, node_weight, _ = self.make_tree()
        starts = np.full(1024, tree.root, dtype=np.intp)
        first = starts.copy()
        second = starts.copy()
        kernels_jit.bst_topdown(left, right, node_weight, starts.copy(), 7, -1, first)
        kernels_jit.bst_topdown(left, right, node_weight, starts.copy(), 7, -1, second)
        assert np.array_equal(first, second)


class TestByteIdenticalTiers:
    def test_rejection_accept_identical_across_tiers(self, monkeypatch):
        gen_seed = 31
        acceptance = np.random.default_rng(2).random(4096)
        monkeypatch.setattr(kernels, "HAVE_JIT", False)
        numpy_tier = kernels.rejection_accept_batch(
            acceptance, np.random.default_rng(gen_seed)
        )
        monkeypatch.setattr(kernels, "HAVE_JIT", True)
        jit_tier = kernels.rejection_accept_batch(
            acceptance, np.random.default_rng(gen_seed)
        )
        assert np.array_equal(numpy_tier, jit_tier)

    def test_alias_builders_identical_across_tiers(self, monkeypatch):
        gen = np.random.default_rng(4)
        weights = (gen.zipf(1.5, size=5000) + gen.random(5000)).astype(np.float64)
        monkeypatch.setattr(kernels, "HAVE_JIT", False)
        prob_np, alias_np = kernels.build_alias_tables_batch(weights)
        monkeypatch.setattr(kernels, "HAVE_JIT", True)
        prob_jit, alias_jit = kernels.build_alias_tables_batch(weights)
        assert np.array_equal(prob_np, prob_jit)
        assert np.array_equal(alias_np, alias_jit)

    def test_flat_builders_identical_across_tiers(self, monkeypatch):
        gen = np.random.default_rng(6)
        lengths = gen.integers(1, 40, size=200)
        values = gen.random(int(lengths.sum())) + 0.01
        monkeypatch.setattr(kernels, "HAVE_JIT", False)
        prob_np, alias_np = kernels.build_alias_tables_flat(values, lengths)
        monkeypatch.setattr(kernels, "HAVE_JIT", True)
        prob_jit, alias_jit = kernels.build_alias_tables_flat(values, lengths)
        assert np.array_equal(prob_np, prob_jit)
        assert np.array_equal(alias_np, alias_jit)

    def test_segmented_cumsum_allclose_across_tiers(self, monkeypatch):
        gen = np.random.default_rng(8)
        values = gen.random(3000)
        segments = np.sort(gen.integers(0, 50, size=3000))
        monkeypatch.setattr(kernels, "HAVE_JIT", False)
        numpy_tier = kernels._segmented_cumsum(values, segments)
        monkeypatch.setattr(kernels, "HAVE_JIT", True)
        jit_tier = kernels._segmented_cumsum(values, segments)
        assert np.allclose(numpy_tier, jit_tier)


class TestDispatchLadder:
    def test_use_jit_honours_cutoff(self, monkeypatch):
        monkeypatch.setattr(kernels, "HAVE_JIT", True)
        assert kernels.use_jit(kernels.JIT_MIN_SIZE)
        assert not kernels.use_jit(kernels.JIT_MIN_SIZE - 1)
        monkeypatch.setattr(kernels, "HAVE_JIT", False)
        assert not kernels.use_jit(10**9)

    def test_disable_env_kills_jit_tier(self):
        # HAVE_JIT is resolved at import time, so probe a fresh interpreter.
        env = dict(os.environ, REPRO_DISABLE_JIT="1")
        env["PYTHONPATH"] = os.pathsep.join(
            [str(p) for p in (os.path.join(os.getcwd(), "src"),)]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        probe = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.core import kernels; print(kernels.HAVE_JIT)",
            ],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        )
        assert probe.stdout.strip() == "False"

    def test_dispatch_counters(self, force_jit, metrics_on):
        _, prob, alias = make_tables()
        kernels.alias_draw_batch(prob, alias, 4096, np.random.default_rng(1))
        counters = metrics_on.snapshot()["counters"]
        assert counters.get("kernels.dispatch.jit", 0) >= 1
        kernels.use_batch(1)  # below BATCH_MIN_SIZE -> scalar rung
        counters = metrics_on.snapshot()["counters"]
        assert counters.get("kernels.dispatch.scalar", 0) >= 1


@pytest.mark.skipif(
    not kernels_jit.HAVE_NUMBA, reason="requires the [jit] extra (numba)"
)
class TestCompiledMatchesReference:
    """Byte-identity of compiled loops vs their numpy twins ([jit] extra)."""

    def test_alias_draw_compiled_equals_ref(self):
        _, prob, alias = make_tables(128)
        compiled = np.empty(8192, dtype=np.intp)
        reference = np.empty(8192, dtype=np.intp)
        kernels_jit.alias_draw(prob, alias, 424242, compiled)
        kernels_jit.alias_draw_ref(prob, alias, 424242, reference)
        assert np.array_equal(compiled, reference)

    def test_bst_topdown_compiled_equals_ref(self):
        from repro.substrates.bst import StaticBST

        gen = np.random.default_rng(11)
        n = 100
        tree = StaticBST([float(i) for i in range(n)], (gen.random(n) + 0.1).tolist())
        left, right, node_weight, _ = tree.packed_arrays()
        left = np.asarray(left, dtype=np.intp)
        right = np.asarray(right, dtype=np.intp)
        node_weight = np.asarray(node_weight, dtype=np.float64)
        starts = np.full(4096, tree.root, dtype=np.intp)
        compiled = starts.copy()
        reference = starts.copy()
        visits_c = kernels_jit.bst_topdown(
            left, right, node_weight, starts.copy(), 55, -1, compiled
        )
        visits_r = kernels_jit.bst_topdown_ref(
            left, right, node_weight, starts.copy(), 55, -1, reference
        )
        assert visits_c == visits_r
        assert np.array_equal(compiled, reference)

    def test_vose_finish_compiled_equals_ref(self):
        gen = np.random.default_rng(13)
        n = 500
        ids = np.arange(n, dtype=np.intp)
        masses = (gen.random(n) * 2.0).astype(np.float64)
        outs = [
            (np.empty(n, dtype=np.intp), np.empty(n), np.empty(n, dtype=np.intp))
            for _ in range(2)
        ]
        emitted_c = kernels_jit.vose_finish(ids, masses.copy(), *outs[0])
        emitted_r = kernels_jit.vose_finish_ref(ids, masses.copy(), *outs[1], 0)
        assert emitted_c == emitted_r
        for compiled, reference in zip(outs[0], outs[1]):
            assert np.array_equal(compiled[:emitted_c], reference[:emitted_r])

    def test_warmup_compiles_without_error(self):
        kernels_jit.warmup()
