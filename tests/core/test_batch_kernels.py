"""Correctness harness for the vectorized batch-sampling kernels.

Three layers of defence, per the kernel layer's contract:

1. **Distributional equivalence** — for every sampler whose
   ``sample_many`` dispatches to a kernel, the batch path and the forced
   scalar-fallback path are both chi-square-tested against the exact
   target distribution (the same machinery the seed suite uses, so a
   kernel that drifts from its scalar twin fails here, not in prod).
2. **Property tests** — hypothesis drives the kernels through edge cases:
   empty batches, single draws, single-item sets, degenerate weights.
3. **Perf smoke** — the batch path must beat the scalar loop by ≥3× at
   n=10⁵, s=10⁴ (alias and one range sampler), so the speedup that
   motivated the layer cannot silently regress.

The whole module is skipped when numpy is missing: in that environment
every sampler already runs the scalar path, which the rest of the suite
covers.
"""

import random
import time

import pytest

np = pytest.importorskip("numpy")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import kernels
from repro.core.alias import AliasSampler, build_alias_tables
from repro.core.dynamic import BucketDynamicSampler, FenwickDynamicSampler
from repro.core.range_sampler import (
    AliasAugmentedRangeSampler,
    ChunkedRangeSampler,
    TreeWalkRangeSampler,
)
from repro.core.schemes import multinomial_split
from repro.core.set_union import SetUnionSampler
from repro.core.tree_sampling import FlatTreeSampler, Tree, TreeSampler
from repro.stats.tests import chi_square_weighted_pvalue
from repro.substrates.bst import StaticBST

ALPHA = 1e-6
BATCH_DRAWS = 30_000
SCALAR_DRAWS = 10_000


@pytest.fixture
def force_scalar(monkeypatch):
    """Disable the numpy dispatch so samplers take their scalar loops."""

    def _force():
        monkeypatch.setattr(kernels, "HAVE_NUMPY", False)

    return _force


def _gen(seed: int = 0) -> "np.random.Generator":
    return np.random.default_rng(seed)


# ----------------------------------------------------------------------
# 1. scalar/batch distributional equivalence, sampler by sampler
# ----------------------------------------------------------------------

WEIGHTS = [0.25, 1.0, 2.5, 4.0, 0.5, 8.0, 1.75, 2.0]
TARGET = {index: weight for index, weight in enumerate(WEIGHTS)}


def both_paths(force_scalar, run):
    """Collect (batch_samples, scalar_samples) from fresh same-seed runs."""
    batch = run(BATCH_DRAWS)
    force_scalar()
    scalar = run(SCALAR_DRAWS)
    return batch, scalar


def assert_both_match_target(force_scalar, run, target):
    batch, scalar = both_paths(force_scalar, run)
    assert chi_square_weighted_pvalue(batch, target) > ALPHA, "batch path drifted"
    assert chi_square_weighted_pvalue(scalar, target) > ALPHA, "scalar path drifted"


class TestAliasEquivalence:
    def test_sample_indices(self, force_scalar):
        def run(draws):
            return AliasSampler(list(range(len(WEIGHTS))), WEIGHTS, rng=11).sample_indices(draws)

        assert_both_match_target(force_scalar, run, TARGET)

    def test_sample_many_maps_items(self):
        items = ["a", "b", "c"]
        sampler = AliasSampler(items, [1.0, 2.0, 3.0], rng=12)
        samples = sampler.sample_many(BATCH_DRAWS)
        assert set(samples) <= set(items)
        assert chi_square_weighted_pvalue(samples, {"a": 1.0, "b": 2.0, "c": 3.0}) > ALPHA


@pytest.mark.parametrize(
    "sampler_cls", [TreeWalkRangeSampler, AliasAugmentedRangeSampler, ChunkedRangeSampler]
)
class TestRangeSamplerEquivalence:
    def test_full_span(self, sampler_cls, force_scalar):
        keys = [float(i) for i in range(len(WEIGHTS))]

        def run(draws):
            sampler = sampler_cls(keys, WEIGHTS, rng=21)
            return sampler.sample_indices(keys[0], keys[-1], draws)

        assert_both_match_target(force_scalar, run, TARGET)

    def test_partial_span(self, sampler_cls, force_scalar):
        n = 64
        keys = [float(i) for i in range(n)]
        weights = [1.0 + (i % 5) for i in range(n)]
        lo, hi = 7, 41  # straddles chunk boundaries for the Theorem-3 structure
        target = {i: weights[i] for i in range(lo, hi)}

        def run(draws):
            sampler = sampler_cls(keys, weights, rng=22)
            return sampler.sample_span(lo, hi, draws)

        assert_both_match_target(force_scalar, run, target)


class TestTreeSamplerEquivalence:
    @staticmethod
    def _tree():
        return Tree.from_nested(
            [("a", 1.0), [("b", 2.0), ("c", 3.0)], [[("d", 1.5), ("e", 0.5)], ("f", 4.0)]]
        )

    def _target(self, tree):
        return {leaf: tree.weight(leaf) for leaf in tree.leaves_in_dfs_order()}

    def test_topdown_walker(self, force_scalar):
        def run(draws):
            tree = self._tree()
            return TreeSampler(tree, rng=31).sample_many(tree.root, draws)

        tree = self._tree()
        assert_both_match_target(force_scalar, run, self._target(tree))

    def test_flat_weighted(self, force_scalar):
        def run(draws):
            tree = self._tree()
            return FlatTreeSampler(tree, rng=32).sample_many(tree.root, draws)

        tree = self._tree()
        assert_both_match_target(force_scalar, run, self._target(tree))

    def test_flat_uniform_fast_path(self, force_scalar):
        def run(draws):
            tree = Tree.from_nested(
                [("a", 1.0), [("b", 1.0), ("c", 1.0)], [("d", 1.0), ("e", 1.0)]]
            )
            sampler = FlatTreeSampler(tree, rng=33)
            assert sampler.is_uniform
            return sampler.sample_many(tree.root, draws)

        tree = Tree.from_nested(
            [("a", 1.0), [("b", 1.0), ("c", 1.0)], [("d", 1.0), ("e", 1.0)]]
        )
        assert_both_match_target(force_scalar, run, self._target(tree))

    def test_subtree_query(self):
        tree = self._tree()
        internal = next(
            node for node in range(len(tree))
            if not tree.is_leaf(node) and node != tree.root
        )
        sampler = TreeSampler(tree, rng=34)
        samples = sampler.sample_many(internal, BATCH_DRAWS)
        lo, hi = FlatTreeSampler(tree, rng=0).leaf_span(internal)
        allowed = set(tree.leaves_in_dfs_order()[lo:hi])
        assert set(samples) <= allowed


class TestDynamicSamplerEquivalence:
    def test_fenwick(self, force_scalar):
        def run(draws):
            sampler = FenwickDynamicSampler(rng=41)
            handles = [sampler.insert(i, w) for i, w in enumerate(WEIGHTS)]
            sampler.delete(handles[3])  # leave a tombstone on the hot path
            return sampler.sample_many(draws)

        target = {i: w for i, w in enumerate(WEIGHTS) if i != 3}
        assert_both_match_target(force_scalar, run, target)

    def test_bucket(self, force_scalar):
        def run(draws):
            sampler = BucketDynamicSampler(rng=42)
            for i, w in enumerate(WEIGHTS):
                sampler.insert(i, w)
            return sampler.sample_many(draws)

        assert_both_match_target(force_scalar, run, TARGET)


class TestSetUnionEquivalence:
    FAMILY = [[1, 2, 3, 4, 5], [4, 5, 6], [5, 6, 7]]

    def test_uniform_over_union(self, force_scalar):
        def run(draws):
            return SetUnionSampler(self.FAMILY, rng=51).sample_many([0, 1, 2], draws)

        target = {element: 1.0 for element in range(1, 8)}
        assert_both_match_target(force_scalar, run, target)

    def test_diagnostics_advance(self):
        sampler = SetUnionSampler(self.FAMILY, rng=52)
        draws = 200
        sampler.sample_many([0, 1, 2], draws)
        assert sampler.total_queries == draws
        assert sampler.total_attempts >= draws
        mean_attempts = sampler.total_attempts / sampler.total_queries
        assert mean_attempts < 20 * sampler.interval_cap

    def test_rebuild_schedule_preserved(self):
        sampler = SetUnionSampler(self.FAMILY, rng=53, rebuild_after=64)
        sampler.sample_many([0, 1, 2], 1000)
        # 1000 samples across epochs of 64 queries each.
        assert sampler.rebuild_count >= 1000 // 64 - 1


class TestMultinomialSplitEquivalence:
    def test_counts_follow_weights(self, force_scalar):
        weights = [1.0, 3.0, 6.0]

        def run(draws):
            rng = random.Random(61)
            totals = [0] * len(weights)
            for _ in range(30):
                for part, count in enumerate(multinomial_split(weights, draws // 30, rng)):
                    totals[part] += count
            return [index for index, total in enumerate(totals) for _ in range(total)]

        target = {index: weight for index, weight in enumerate(weights)}
        assert_both_match_target(force_scalar, run, target)


# ----------------------------------------------------------------------
# 2. kernel edge cases (property tests)
# ----------------------------------------------------------------------

positive_weights = st.lists(
    st.floats(min_value=1e-6, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=40,
)


class TestKernelProperties:
    def test_empty_batch(self):
        prob, alias = build_alias_tables([1.0, 2.0])
        draws = kernels.alias_draw_batch(prob, alias, 0, _gen())
        assert len(draws) == 0

    def test_single_draw_single_item(self):
        prob, alias = build_alias_tables([7.0])
        draws = kernels.alias_draw_batch(prob, alias, 1, _gen())
        assert draws.tolist() == [0]

    @given(weights=positive_weights)
    @settings(max_examples=50, deadline=None)
    def test_alias_draws_in_range(self, weights):
        prob, alias = build_alias_tables(weights)
        draws = kernels.alias_draw_batch(prob, alias, 64, _gen(1))
        assert ((draws >= 0) & (draws < len(weights))).all()

    @given(weights=positive_weights, zeros=st.sets(st.integers(0, 39), max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_inverse_cdf_skips_zero_weight_slots(self, weights, zeros):
        slot_weights = [
            0.0 if index in zeros else weight for index, weight in enumerate(weights)
        ]
        if not any(slot_weights):
            slot_weights[0] = 1.0
        cum = np.cumsum(np.asarray(slot_weights, dtype=np.float64))
        draws = kernels.inverse_cdf_draw_batch(cum, 256, _gen(2))
        picked = np.asarray(slot_weights)[draws]
        assert (picked > 0).all()

    @given(weights=positive_weights, s=st.integers(min_value=0, max_value=500))
    @settings(max_examples=50, deadline=None)
    def test_multinomial_split_batch_sums(self, weights, s):
        counts = kernels.multinomial_split_batch(weights, s, _gen(3))
        assert len(counts) == len(weights)
        assert sum(counts) == s
        assert all(count >= 0 for count in counts)

    @given(lo=st.integers(0, 100), width=st.integers(1, 100), s=st.integers(0, 200))
    @settings(max_examples=50, deadline=None)
    def test_uniform_index_batch_in_range(self, lo, width, s):
        draws = kernels.uniform_index_batch(lo, lo + width, s, _gen(4))
        assert len(draws) == s
        assert ((draws >= lo) & (draws < lo + width)).all()

    @given(n=st.integers(min_value=1, max_value=200))
    @settings(max_examples=50, deadline=None)
    def test_bst_topdown_lands_on_leaves_in_span(self, n):
        tree = StaticBST([float(i) for i in range(n)], [1.0 + (i % 3) for i in range(n)])
        left, right, node_weight, span_lo = tree.packed_arrays()
        left = np.asarray(left, dtype=np.intp)
        right = np.asarray(right, dtype=np.intp)
        node_weight = np.asarray(node_weight, dtype=np.float64)
        span_lo_arr = np.asarray(span_lo, dtype=np.intp)
        starts = np.full(32, tree.root, dtype=np.intp)
        leaves = kernels.bst_topdown_batch(left, right, node_weight, starts, _gen(5))
        assert (left[leaves] == -1).all()
        positions = span_lo_arr[leaves]
        assert ((positions >= 0) & (positions < n)).all()

    @given(s=st.integers(min_value=1, max_value=12))
    @settings(max_examples=30, deadline=None)
    def test_small_batches_use_scalar_path(self, s):
        # Below BATCH_MIN_SIZE the dispatch must stay on the pure-Python
        # loop (no numpy generator is ever derived).
        sampler = AliasSampler(["x", "y"], [1.0, 3.0], rng=71)
        assert not kernels.use_batch(s)
        sampler.sample_many(s)
        assert not hasattr(sampler._rng, "_repro_batch_generator")

    def test_degenerate_weight_ratio(self):
        # 12 orders of magnitude between weights: the light element must
        # still appear with roughly its target frequency in a huge batch.
        weights = [1e-6, 1e6]
        sampler = AliasSampler([0, 1], weights, rng=72)
        draws = sampler.sample_many(200_000)
        light = draws.count(0)
        # Expected count 0.2; seeing many would mean a broken table.
        assert light <= 10

    def test_single_item_set_batch(self):
        sampler = AliasSampler(["only"], [3.5], rng=73)
        assert sampler.sample_many(1) == ["only"]
        assert sampler.sample_many(1000) == ["only"] * 1000


# ----------------------------------------------------------------------
# 3. perf smoke: the batch path must not silently regress
# ----------------------------------------------------------------------


def _best_of(callable_, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.process_time()
        callable_()
        best = min(best, time.process_time() - start)
    return best


@pytest.mark.skipif(
    not kernels.HAVE_NUMPY, reason="batch dispatch disabled (REPRO_DISABLE_NUMPY)"
)
class TestPerfSmoke:
    N = 100_000
    S = 10_000

    def test_alias_batch_at_least_3x(self, monkeypatch):
        weights = [1.0 + (i % 97) for i in range(self.N)]
        sampler = AliasSampler(list(range(self.N)), weights, rng=81)
        sampler.sample_many(self.S)  # warm the lazy caches
        batch = _best_of(lambda: sampler.sample_many(self.S))
        monkeypatch.setattr(kernels, "HAVE_NUMPY", False)
        scalar = _best_of(lambda: sampler.sample_many(self.S))
        assert scalar >= 3.0 * batch, (
            f"alias batch path only {scalar / batch:.2f}x faster "
            f"(scalar {scalar * 1e3:.1f}ms, batch {batch * 1e3:.1f}ms)"
        )

    def test_range_sampler_batch_at_least_3x(self, monkeypatch):
        keys = [float(i) for i in range(self.N)]
        weights = [1.0 + (i % 13) for i in range(self.N)]
        sampler = ChunkedRangeSampler(keys, weights, rng=82)
        x, y = keys[self.N // 10], keys[9 * self.N // 10]
        sampler.sample(x, y, self.S)  # warm the lazy caches
        batch = _best_of(lambda: sampler.sample(x, y, self.S))
        monkeypatch.setattr(kernels, "HAVE_NUMPY", False)
        scalar = _best_of(lambda: sampler.sample(x, y, self.S))
        assert scalar >= 3.0 * batch, (
            f"range batch path only {scalar / batch:.2f}x faster "
            f"(scalar {scalar * 1e3:.1f}ms, batch {batch * 1e3:.1f}ms)"
        )

    def test_aliasaugmented_construction_at_least_2x(self, monkeypatch):
        # PR-2 construction guard: the flat segmented Vose builder must
        # keep beating the pure-Python per-node build. Typical measured
        # ratio is ~3x at this size (see EXPERIMENTS.md E3c); the
        # assertion is set at 2x so shared-runner timing noise cannot
        # flake it, while a silent fall-back to the scalar path (ratio
        # ~1x) still fails loudly.
        n = 50_000
        keys = [float(i) for i in range(n)]
        weights = [1.0 + (i % 13) for i in range(n)]
        batch = _best_of(lambda: AliasAugmentedRangeSampler(keys, weights, rng=83))
        monkeypatch.setattr(kernels, "HAVE_NUMPY", False)
        scalar = _best_of(lambda: AliasAugmentedRangeSampler(keys, weights, rng=83))
        assert scalar >= 2.0 * batch, (
            f"vectorized Lemma-2 construction only {scalar / batch:.2f}x faster "
            f"(scalar {scalar * 1e3:.1f}ms, batch {batch * 1e3:.1f}ms)"
        )
