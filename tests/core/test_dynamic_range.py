"""Unit tests for the treap-based dynamic range sampler (§4.3, Dir. 1)."""

import random

import pytest

from repro.core.dynamic_range import DynamicRangeSampler
from repro.errors import BuildError, EmptyQueryError, InvalidWeightError
from repro.stats.tests import chi_square_weighted_pvalue

ALPHA = 1e-6


def build(keys, weights=None, rng=1):
    sampler = DynamicRangeSampler(rng=rng)
    for index, key in enumerate(keys):
        sampler.insert(key, 1.0 if weights is None else weights[index])
    return sampler


class TestUpdates:
    def test_insert_and_contains(self):
        sampler = build([3.0, 1.0, 2.0])
        assert 2.0 in sampler
        assert 5.0 not in sampler
        assert len(sampler) == 3

    def test_in_order_is_sorted(self):
        keys = random.Random(1).sample(range(1000), 200)
        sampler = build([float(k) for k in keys])
        assert sampler.keys_in_order() == sorted(float(k) for k in keys)

    def test_duplicate_insert_rejected(self):
        sampler = build([1.0])
        with pytest.raises(BuildError):
            sampler.insert(1.0)

    def test_bad_weight_rejected(self):
        sampler = DynamicRangeSampler(rng=1)
        with pytest.raises(InvalidWeightError):
            sampler.insert(1.0, 0.0)
        sampler.insert(1.0, 1.0)
        with pytest.raises(InvalidWeightError):
            sampler.update_weight(1.0, -1.0)

    def test_delete(self):
        sampler = build([1.0, 2.0, 3.0])
        sampler.delete(2.0)
        assert 2.0 not in sampler
        assert len(sampler) == 2
        assert sampler.keys_in_order() == [1.0, 3.0]

    def test_delete_missing_raises_and_preserves(self):
        sampler = build([1.0, 2.0])
        with pytest.raises(KeyError):
            sampler.delete(9.0)
        assert sampler.keys_in_order() == [1.0, 2.0]

    def test_update_weight(self):
        sampler = build([1.0, 2.0], weights=[1.0, 1.0])
        sampler.update_weight(2.0, 5.0)
        assert sampler.weight_of(2.0) == 5.0
        assert sampler.total_weight == pytest.approx(6.0)

    def test_update_missing_raises(self):
        sampler = build([1.0])
        with pytest.raises(KeyError):
            sampler.update_weight(2.0, 1.0)

    def test_total_weight_tracks_churn(self):
        sampler = DynamicRangeSampler(rng=2)
        rng = random.Random(3)
        reference = {}
        for step in range(300):
            if not reference or rng.random() < 0.6:
                key = float(rng.randrange(10_000))
                if key not in reference:
                    weight = 1.0 + rng.random() * 9
                    sampler.insert(key, weight)
                    reference[key] = weight
            else:
                key = rng.choice(list(reference))
                sampler.delete(key)
                del reference[key]
        assert len(sampler) == len(reference)
        assert sampler.total_weight == pytest.approx(sum(reference.values()))


class TestQueries:
    def test_count_matches_reference(self):
        keys = sorted(random.Random(4).sample(range(500), 120))
        sampler = build([float(k) for k in keys])
        for x, y in [(0, 499), (100, 300), (250, 250), (600, 700)]:
            expected = sum(1 for k in keys if x <= k <= y)
            assert sampler.count(float(x), float(y)) == expected

    def test_empty_range_raises(self):
        sampler = build([1.0, 2.0])
        with pytest.raises(EmptyQueryError):
            sampler.sample(5.0, 6.0, 1)

    def test_samples_in_range(self):
        keys = [float(k) for k in range(100)]
        sampler = build(keys, rng=5)
        out = sampler.sample(20.0, 70.0, 200)
        assert all(20.0 <= value <= 70.0 for value in out)

    def test_uniform_distribution(self):
        keys = [float(k) for k in range(12)]
        sampler = build(keys, rng=6)
        samples = sampler.sample(2.0, 9.0, 30_000)
        target = {float(k): 1.0 for k in range(2, 10)}
        assert chi_square_weighted_pvalue(samples, target) > ALPHA

    def test_weighted_distribution(self):
        keys = [float(k) for k in range(8)]
        weights = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]
        sampler = build(keys, weights, rng=7)
        samples = sampler.sample(1.0, 6.0, 30_000)
        target = {float(k): weights[k] for k in range(1, 7)}
        assert chi_square_weighted_pvalue(samples, target) > ALPHA

    def test_distribution_after_updates(self):
        sampler = build([float(k) for k in range(6)], rng=8)
        sampler.delete(3.0)
        sampler.insert(3.5, 4.0)
        sampler.update_weight(2.0, 2.0)
        samples = sampler.sample(1.0, 4.0, 30_000)
        target = {1.0: 1.0, 2.0: 2.0, 3.5: 4.0, 4.0: 1.0}
        assert chi_square_weighted_pvalue(samples, target) > ALPHA

    def test_single_key_range(self):
        sampler = build([float(k) for k in range(10)], rng=9)
        assert sampler.sample(4.0, 4.0, 5) == [4.0] * 5

    def test_range_weight(self):
        sampler = build([1.0, 2.0, 3.0], weights=[2.0, 3.0, 4.0])
        assert sampler.range_weight(1.5, 3.5) == pytest.approx(7.0)

    def test_repeated_queries_independent(self):
        sampler = build([float(k) for k in range(50)], rng=10)
        outputs = {tuple(sampler.sample(0.0, 49.0, 3)) for _ in range(20)}
        assert len(outputs) > 15


class TestBalance:
    def test_expected_logarithmic_depth(self):
        sampler = DynamicRangeSampler(rng=11)
        n = 4096
        for key in range(n):  # adversarial sorted insertion order
            sampler.insert(float(key))

        def depth(node):
            if node is None:
                return 0
            return 1 + max(depth(node.left), depth(node.right))

        import sys

        sys.setrecursionlimit(10_000)
        assert depth(sampler._root) < 5 * 12  # ~4.3·log2(n) whp for treaps
