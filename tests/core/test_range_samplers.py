"""Unit tests shared across the three weighted range samplers (§3.2, §4)."""

import pytest

from repro.core.naive import NaiveRangeSampler
from repro.core.range_sampler import (
    AliasAugmentedRangeSampler,
    ChunkedRangeSampler,
    TreeWalkRangeSampler,
)
from repro.errors import BuildError, EmptyQueryError, InvalidWeightError
from repro.stats.tests import chi_square_weighted_pvalue

ALPHA = 1e-6

ALL_SAMPLERS = [
    TreeWalkRangeSampler,
    AliasAugmentedRangeSampler,
    ChunkedRangeSampler,
    NaiveRangeSampler,
]


def make_keys(n):
    return [float(i) for i in range(n)]


@pytest.mark.parametrize("sampler_cls", ALL_SAMPLERS)
class TestContracts:
    def test_empty_keys_rejected(self, sampler_cls):
        with pytest.raises(BuildError):
            sampler_cls([])

    def test_unsorted_keys_rejected(self, sampler_cls):
        with pytest.raises(BuildError):
            sampler_cls([2.0, 1.0])

    def test_duplicate_keys_rejected(self, sampler_cls):
        with pytest.raises(BuildError):
            sampler_cls([1.0, 1.0, 2.0])

    def test_bad_weight_rejected(self, sampler_cls):
        with pytest.raises(InvalidWeightError):
            sampler_cls([1.0, 2.0], [1.0, -1.0])

    def test_weight_length_mismatch_rejected(self, sampler_cls):
        with pytest.raises(BuildError):
            sampler_cls([1.0, 2.0], [1.0])

    def test_empty_range_raises(self, sampler_cls):
        sampler = sampler_cls(make_keys(100), rng=1)
        with pytest.raises(EmptyQueryError):
            sampler.sample(200.0, 300.0, 1)

    def test_inverted_range_raises(self, sampler_cls):
        sampler = sampler_cls(make_keys(100), rng=1)
        with pytest.raises(EmptyQueryError):
            sampler.sample(50.0, 10.0, 1)

    def test_zero_samples_rejected(self, sampler_cls):
        sampler = sampler_cls(make_keys(100), rng=1)
        with pytest.raises(ValueError):
            sampler.sample(0.0, 99.0, 0)

    def test_samples_inside_range(self, sampler_cls):
        sampler = sampler_cls(make_keys(500), rng=2)
        out = sampler.sample(100.0, 400.0, 200)
        assert len(out) == 200
        assert all(100.0 <= value <= 400.0 for value in out)

    def test_samples_inside_tight_range(self, sampler_cls):
        sampler = sampler_cls(make_keys(500), rng=2)
        out = sampler.sample(250.0, 250.0, 5)
        assert out == [250.0] * 5

    def test_endpoints_inclusive(self, sampler_cls):
        sampler = sampler_cls([1.0, 2.0, 3.0], rng=3)
        seen = set(sampler.sample(1.0, 3.0, 300))
        assert seen == {1.0, 2.0, 3.0}

    def test_range_between_keys(self, sampler_cls):
        sampler = sampler_cls([1.0, 5.0, 9.0], rng=3)
        out = sampler.sample(2.0, 8.0, 20)
        assert set(out) == {5.0}

    def test_whole_domain_query(self, sampler_cls):
        sampler = sampler_cls(make_keys(64), rng=4)
        out = sampler.sample(float("-inf"), float("inf"), 50)
        assert all(0.0 <= value <= 63.0 for value in out)

    def test_deterministic_under_seed(self, sampler_cls):
        a = sampler_cls(make_keys(200), rng=11).sample(10.0, 150.0, 30)
        b = sampler_cls(make_keys(200), rng=11).sample(10.0, 150.0, 30)
        assert a == b

    def test_single_element_dataset(self, sampler_cls):
        sampler = sampler_cls([42.0], [3.0], rng=1)
        assert sampler.sample(0.0, 100.0, 4) == [42.0] * 4

    def test_sample_indices_matches_keys(self, sampler_cls):
        keys = [10.0, 20.0, 30.0, 40.0]
        sampler = sampler_cls(keys, rng=5)
        indices = sampler.sample_indices(15.0, 45.0, 50)
        assert all(keys[i] in (20.0, 30.0, 40.0) for i in indices)

    def test_weighted_distribution(self, sampler_cls):
        keys = [float(i) for i in range(8)]
        weights = [1.0, 1.0, 2.0, 4.0, 8.0, 1.0, 1.0, 1.0]
        sampler = sampler_cls(keys, weights, rng=6)
        # Query covers indices 2..5 → weights 2, 4, 8, 1.
        samples = sampler.sample(2.0, 5.0, 30_000)
        target = {2.0: 2.0, 3.0: 4.0, 4.0: 8.0, 5.0: 1.0}
        assert chi_square_weighted_pvalue(samples, target) > ALPHA

    def test_uniform_distribution(self, sampler_cls):
        keys = [float(i) for i in range(10)]
        sampler = sampler_cls(keys, rng=7)
        samples = sampler.sample(0.0, 9.0, 30_000)
        target = {key: 1.0 for key in keys}
        assert chi_square_weighted_pvalue(samples, target) > ALPHA


class TestSpaceAccounting:
    def test_lemma2_space_superlinear(self):
        # Lemma 2 uses Θ(n log n) words; Theorem 3 stays Θ(n).
        n_small, n_big = 1 << 10, 1 << 14
        lemma2_small = AliasAugmentedRangeSampler(make_keys(n_small)).space_words()
        lemma2_big = AliasAugmentedRangeSampler(make_keys(n_big)).space_words()
        chunked_small = ChunkedRangeSampler(make_keys(n_small)).space_words()
        chunked_big = ChunkedRangeSampler(make_keys(n_big)).space_words()
        # Per-element footprint grows for Lemma 2, stays ~flat for Theorem 3.
        assert lemma2_big / n_big > 1.25 * (lemma2_small / n_small)
        assert chunked_big / n_big < 1.25 * (chunked_small / n_small)

    def test_naive_space_linear(self):
        assert NaiveRangeSampler(make_keys(1000)).space_words() == 2000


class TestTreeWalkSpecifics:
    def test_space_linear(self):
        sampler = TreeWalkRangeSampler(make_keys(256))
        assert sampler.space_words() == 6 * (2 * 256 - 1)
