"""Unit tests for the Theorem-5 coverage sampler over all four indexes."""

import pytest

from repro.apps.workloads import uniform_points, zipf_weights
from repro.core.coverage import BSTIndex, CoverageSampler
from repro.errors import BuildError, EmptyQueryError
from repro.stats.tests import chi_square_weighted_pvalue
from repro.substrates.kdtree import KDTree
from repro.substrates.quadtree import QuadTree
from repro.substrates.rangetree import RangeTree

ALPHA = 1e-6


def brute_force_rect(points, rect):
    return [
        p
        for p in points
        if all(lo <= c <= hi for (lo, hi), c in zip(rect, p))
    ]


class TestBSTIndexCoverage:
    def test_samples_in_range(self):
        index = BSTIndex([float(i) for i in range(100)])
        sampler = CoverageSampler(index, rng=1)
        out = sampler.sample((20.0, 70.0), 100)
        assert all(20.0 <= v <= 70.0 for v in out)

    def test_empty_query_raises(self):
        index = BSTIndex([float(i) for i in range(10)])
        sampler = CoverageSampler(index, rng=1)
        with pytest.raises(EmptyQueryError):
            sampler.sample((100.0, 200.0), 1)

    def test_cover_size_logarithmic(self):
        index = BSTIndex([float(i) for i in range(1 << 12)])
        sampler = CoverageSampler(index, rng=1)
        assert sampler.cover_size((1.0, 4000.0)) <= 2 * 12

    def test_weighted_distribution(self):
        keys = [float(i) for i in range(6)]
        weights = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
        index = BSTIndex(keys, weights)
        sampler = CoverageSampler(index, rng=2)
        samples = sampler.sample((1.0, 4.0), 30_000)
        target = {1.0: 2.0, 2.0: 3.0, 3.0: 4.0, 4.0: 5.0}
        assert chi_square_weighted_pvalue(samples, target) > ALPHA


@pytest.mark.parametrize("index_cls", [KDTree, QuadTree])
class TestSpatialCoverage:
    def test_result_size_matches_brute_force(self, index_cls):
        points = uniform_points(400, 2, rng=3)
        index = index_cls(points, leaf_size=4)
        sampler = CoverageSampler(index, rng=4)
        rect = [(0.1, 0.6), (0.3, 0.9)]
        assert sampler.result_size(rect) == len(brute_force_rect(points, rect))

    def test_samples_satisfy_query(self, index_cls):
        points = uniform_points(400, 2, rng=3)
        index = index_cls(points, leaf_size=4)
        sampler = CoverageSampler(index, rng=5)
        rect = [(0.2, 0.8), (0.2, 0.8)]
        for point in sampler.sample(rect, 200):
            assert 0.2 <= point[0] <= 0.8 and 0.2 <= point[1] <= 0.8

    def test_uniformity_over_result(self, index_cls):
        points = uniform_points(60, 2, rng=6)
        index = index_cls(points, leaf_size=2)
        sampler = CoverageSampler(index, rng=7)
        rect = [(0.0, 1.0), (0.0, 1.0)]
        samples = sampler.sample(rect, 30_000)
        target = {p: 1.0 for p in index.leaf_items}
        assert chi_square_weighted_pvalue(samples, target) > ALPHA

    def test_empty_rect_raises(self, index_cls):
        points = uniform_points(50, 2, rng=8)
        index = index_cls(points, leaf_size=4)
        sampler = CoverageSampler(index, rng=9)
        with pytest.raises(EmptyQueryError):
            sampler.sample([(5.0, 6.0), (5.0, 6.0)], 1)


class TestRangeTreeCoverage:
    def test_result_size_matches_brute_force(self):
        points = uniform_points(300, 2, rng=10)
        index = RangeTree(points)
        sampler = CoverageSampler(index, rng=11)
        rect = [(0.25, 0.75), (0.1, 0.5)]
        assert sampler.result_size(rect) == len(brute_force_rect(points, rect))

    def test_three_dimensional(self):
        points = uniform_points(200, 3, rng=12)
        index = RangeTree(points)
        sampler = CoverageSampler(index, rng=13)
        rect = [(0.1, 0.9), (0.2, 0.8), (0.0, 0.7)]
        expected = brute_force_rect(points, rect)
        assert sampler.result_size(rect) == len(expected)
        for point in sampler.sample(rect, 50):
            assert point in expected

    def test_weighted_distribution(self):
        points = [(float(i), float(i % 3)) for i in range(9)]
        weights = [float(i + 1) for i in range(9)]
        index = RangeTree(points, weights)
        sampler = CoverageSampler(index, rng=14)
        rect = [(0.0, 8.0), (0.0, 2.0)]  # everything
        samples = sampler.sample(rect, 30_000)
        target = {points[i]: weights[i] for i in range(9)}
        assert chi_square_weighted_pvalue(samples, target) > ALPHA

    def test_cover_size_polylog(self):
        points = uniform_points(1 << 10, 2, rng=15)
        index = RangeTree(points)
        sampler = CoverageSampler(index, rng=16)
        rect = [(0.2, 0.8), (0.2, 0.8)]
        # 2D range tree: O(log n) spans (one contiguous run per primary
        # canonical node).
        assert sampler.cover_size(rect) <= 3 * 10


class TestBackends:
    def test_alias_backend_matches_chunked(self):
        points = uniform_points(200, 2, rng=17)
        weights = zipf_weights(200, rng=18)
        index = KDTree(points, weights, leaf_size=4)
        chunked = CoverageSampler(index, backend="chunked", rng=19)
        alias = CoverageSampler(index, backend="alias", rng=19)
        rect = [(0.0, 1.0), (0.0, 1.0)]
        target = {p: w for p, w in zip(index.leaf_items, index.leaf_weights)}
        assert chi_square_weighted_pvalue(chunked.sample(rect, 20_000), target) > ALPHA
        assert chi_square_weighted_pvalue(alias.sample(rect, 20_000), target) > ALPHA

    def test_uniform_backend_requires_equal_weights(self):
        points = uniform_points(50, 2, rng=20)
        index = KDTree(points, zipf_weights(50, rng=21), leaf_size=4)
        with pytest.raises(BuildError):
            CoverageSampler(index, backend="uniform")

    def test_unknown_backend_rejected(self):
        index = BSTIndex([1.0, 2.0])
        with pytest.raises(BuildError):
            CoverageSampler(index, backend="wat")

    def test_auto_picks_uniform_for_equal_weights(self):
        index = BSTIndex([1.0, 2.0, 3.0])
        assert CoverageSampler(index).backend == "uniform"

    def test_auto_picks_chunked_for_skewed_weights(self):
        index = BSTIndex([1.0, 2.0, 3.0], [1.0, 2.0, 3.0])
        assert CoverageSampler(index).backend == "chunked"
