"""Seeded determinism across the scalar and batch sampling paths.

Every sampler accepts an integer seed; two samplers built with the same
seed and driven by the same call sequence must produce *identical* sample
streams. The batch kernels derive their numpy generator from the sampler's
``random.Random`` (consuming 64 bits of it exactly once), so this property
must survive kernel dispatch — these tests guard it for both paths and for
interleavings of the two.
"""

import pytest

from repro.core import kernels
from repro.core.alias import AliasSampler
from repro.core.dynamic import BucketDynamicSampler, FenwickDynamicSampler
from repro.core.range_sampler import (
    AliasAugmentedRangeSampler,
    ChunkedRangeSampler,
    TreeWalkRangeSampler,
)
from repro.core.set_union import SetUnionSampler
from repro.core.tree_sampling import FlatTreeSampler, Tree, TreeSampler

BATCH = 64  # above BATCH_MIN_SIZE: takes the kernel path when numpy exists
SCALAR = 4  # below BATCH_MIN_SIZE: always takes the scalar loop

KEYS = [float(i) for i in range(40)]
WEIGHTS = [1.0 + (i % 7) for i in range(40)]


def _tree():
    return Tree.from_nested(
        [("a", 1.0), [("b", 2.0), ("c", 3.0)], [("d", 1.5), ("e", 4.0)]]
    )


DRIVERS = {
    "alias": lambda s: AliasSampler(list(range(40)), WEIGHTS, rng=7).sample_indices(s),
    "treewalk": lambda s: TreeWalkRangeSampler(KEYS, WEIGHTS, rng=7).sample_indices(
        KEYS[0], KEYS[-1], s
    ),
    "lemma2": lambda s: AliasAugmentedRangeSampler(KEYS, WEIGHTS, rng=7).sample_indices(
        KEYS[0], KEYS[-1], s
    ),
    "theorem3": lambda s: ChunkedRangeSampler(KEYS, WEIGHTS, rng=7).sample_indices(
        KEYS[0], KEYS[-1], s
    ),
    "tree": lambda s: TreeSampler(_tree(), rng=7).sample_many(_tree().root, s),
    "flat-tree": lambda s: FlatTreeSampler(_tree(), rng=7).sample_many(_tree().root, s),
    "set-union": lambda s: SetUnionSampler([[1, 2, 3], [3, 4, 5]], rng=7).sample_many(
        [0, 1], s
    ),
}


def _dynamic_fenwick(s):
    sampler = FenwickDynamicSampler(rng=7)
    for index, weight in enumerate(WEIGHTS):
        sampler.insert(index, weight)
    return sampler.sample_many(s)


def _dynamic_bucket(s):
    sampler = BucketDynamicSampler(rng=7)
    for index, weight in enumerate(WEIGHTS):
        sampler.insert(index, weight)
    return sampler.sample_many(s)


DRIVERS["dyn-fenwick"] = _dynamic_fenwick
DRIVERS["dyn-bucket"] = _dynamic_bucket


@pytest.mark.parametrize("name", sorted(DRIVERS))
@pytest.mark.parametrize("size", [SCALAR, BATCH], ids=["scalar-path", "batch-path"])
def test_same_seed_same_stream(name, size):
    driver = DRIVERS[name]
    assert driver(size) == driver(size)


@pytest.mark.parametrize("name", sorted(DRIVERS))
def test_interleaved_calls_reproducible(name):
    """Scalar draws, then batch draws, then scalar again — twice over."""
    driver = DRIVERS[name]

    def stream():
        return [driver(SCALAR), driver(BATCH), driver(SCALAR)]

    assert stream() == stream()


def test_scalar_path_unchanged_by_fallback(monkeypatch):
    """Below the cutoff, the stream is identical with numpy disabled.

    Guards the dispatch itself: small batches must not consume numpy
    randomness, or seeds would stop reproducing across environments with
    and without the [fast] extra.
    """
    with_numpy = DRIVERS["alias"](SCALAR)
    monkeypatch.setattr(kernels, "HAVE_NUMPY", False)
    without_numpy = DRIVERS["alias"](SCALAR)
    assert with_numpy == without_numpy


@pytest.mark.skipif(not kernels.HAVE_NUMPY, reason="numpy unavailable")
def test_batch_generator_derived_once():
    """The numpy generator is cached: repeated batches keep advancing one
    stream instead of re-deriving (which would repeat samples)."""
    sampler = AliasSampler(list(range(10)), rng=9)
    first = sampler.sample_indices(BATCH)
    second = sampler.sample_indices(BATCH)
    assert first != second  # overwhelmingly unlikely to collide if advancing
