"""Unit tests for approximate coverage (paper §6, Theorem 6, Corollary 7)."""

import pytest

from repro.core.approx_coverage import (
    ApproxCoverSampler,
    ComplementRangeIndex,
    PrecomputedCoverSampler,
)
from repro.errors import BuildError, EmptyQueryError
from repro.stats.tests import chi_square_weighted_pvalue

ALPHA = 1e-6


def keys_n(n):
    return [float(i) for i in range(n)]


class TestComplementRangeIndex:
    def test_counts(self):
        index = ComplementRangeIndex(keys_n(10))
        below, above = index.complement_counts((3.0, 6.0))
        assert (below, above) == (3, 3)

    def test_cover_spans_contain_complement(self):
        index = ComplementRangeIndex(keys_n(100))
        cover = index.find_approximate_cover((10.0, 90.0))
        covered = set()
        for lo, hi in cover.spans:
            covered.update(range(lo, hi))
        complement = set(range(0, 10)) | set(range(91, 100))
        assert complement <= covered

    def test_cover_size_at_most_two(self):
        index = ComplementRangeIndex(keys_n(1 << 10))
        for query in [(1.0, 1000.0), (100.0, 200.0), (0.5, 512.0), (-5.0, 500.0)]:
            cover = index.find_approximate_cover(query)
            assert len(cover.spans) <= 2

    def test_cover_at_most_factor_two_oversized(self):
        index = ComplementRangeIndex(keys_n(256))
        for query in [(3.0, 250.0), (17.0, 240.0), (100.0, 130.0)]:
            below, above = index.complement_counts(query)
            cover = index.find_approximate_cover(query)
            union = sum(hi - lo for lo, hi in cover.spans)
            assert union <= 2 * (below + above)

    def test_empty_complement_gives_empty_cover(self):
        index = ComplementRangeIndex(keys_n(10))
        cover = index.find_approximate_cover((-1.0, 100.0))
        assert cover.spans == ()

    def test_overlapping_dyadics_merge_to_full(self):
        # below = 6 → prefix 8; above = 10 → suffix 16; 8 + 16 > 16 so the
        # spans would overlap and must merge into the full array.
        index = ComplementRangeIndex(keys_n(16))
        cover = index.find_approximate_cover((5.5, 5.6))
        assert cover.spans == ((0, 16),)

    def test_abutting_dyadics_stay_disjoint(self):
        # below = above = 8 → two size-8 dyadic spans tile the array exactly.
        index = ComplementRangeIndex(keys_n(16))
        cover = index.find_approximate_cover((7.5, 7.6))
        assert cover.spans == ((0, 8), (8, 16))

    def test_exact_cover_size_is_larger(self):
        index = ComplementRangeIndex(keys_n(1 << 12))
        query = (1000.0, 3000.0)
        approx = len(index.find_approximate_cover(query).spans)
        exact = index.find_exact_cover_size(query)
        assert approx <= 2
        assert exact > 6  # Θ(log n) dyadic pieces

    def test_matches_predicate(self):
        index = ComplementRangeIndex(keys_n(10))
        assert index.matches((3.0, 6.0), 2)
        assert index.matches((3.0, 6.0), 7)
        assert not index.matches((3.0, 6.0), 4)

    def test_distinct_cover_enumeration_contains_all_query_covers(self):
        index = ComplementRangeIndex(keys_n(100))
        enumerated = {cover.key for cover in index.iter_distinct_covers()}
        for x in [0.5, 10.0, 33.0, 50.0, 99.0]:
            for y in [x, x + 5, x + 40, 99.0]:
                cover = index.find_approximate_cover((x, y))
                if cover.spans:
                    assert cover.key in enumerated

    def test_unsorted_keys_rejected(self):
        with pytest.raises(BuildError):
            ComplementRangeIndex([3.0, 1.0])


class TestApproxCoverSampler:
    def test_samples_satisfy_complement(self):
        index = ComplementRangeIndex(keys_n(200))
        sampler = ApproxCoverSampler(index, rng=1)
        out = sampler.sample((50.0, 150.0), 300)
        assert all(v < 50.0 or v > 150.0 for v in out)

    def test_empty_complement_raises(self):
        index = ComplementRangeIndex(keys_n(10))
        sampler = ApproxCoverSampler(index, rng=1)
        with pytest.raises(EmptyQueryError):
            sampler.sample((-1.0, 100.0), 1)

    def test_uniform_distribution_over_complement(self):
        index = ComplementRangeIndex(keys_n(40))
        sampler = ApproxCoverSampler(index, rng=2)
        samples = sampler.sample((10.0, 29.0), 40_000)
        target = {float(i): 1.0 for i in list(range(10)) + list(range(30, 40))}
        assert chi_square_weighted_pvalue(samples, target) > ALPHA

    def test_weighted_distribution_over_complement(self):
        weights = [float(i % 4 + 1) for i in range(30)]
        index = ComplementRangeIndex(keys_n(30), weights)
        sampler = ApproxCoverSampler(index, rng=3)
        samples = sampler.sample((5.0, 24.0), 40_000)
        target = {
            float(i): weights[i] for i in list(range(5)) + list(range(25, 30))
        }
        assert chi_square_weighted_pvalue(samples, target) > ALPHA

    def test_rejection_rate_is_constant(self):
        index = ComplementRangeIndex(keys_n(1 << 12))
        sampler = ApproxCoverSampler(index, rng=4)
        draws = 2000
        sampler.sample((100.0, 4000.0), draws)
        # Acceptance ≥ 1/2 ⇒ expect < 1 rejection per accepted sample.
        assert sampler.total_rejections < 2 * draws

    def test_one_sided_complement(self):
        index = ComplementRangeIndex(keys_n(64))
        sampler = ApproxCoverSampler(index, rng=5)
        out = sampler.sample((-10.0, 40.0), 100)  # only the suffix survives
        assert all(v > 40.0 for v in out)


class TestPrecomputedCoverSampler:
    def test_matches_on_the_fly_distribution(self):
        index = ComplementRangeIndex(keys_n(32))
        precomputed = PrecomputedCoverSampler(index, rng=6)
        samples = precomputed.sample((8.0, 23.0), 30_000)
        target = {float(i): 1.0 for i in list(range(8)) + list(range(24, 32))}
        assert chi_square_weighted_pvalue(samples, target) > ALPHA

    def test_space_is_polylog(self):
        index = ComplementRangeIndex(keys_n(1 << 12))
        precomputed = PrecomputedCoverSampler(index, rng=7)
        # O(log² n) covers of ≤ 2 spans each.
        assert precomputed.precomputed_space <= 2 * (14 * 14)

    def test_requires_enumerable_covers(self):
        class NoEnum:
            leaf_items = [1.0]
            leaf_weights = [1.0]

            def find_approximate_cover(self, query):
                raise NotImplementedError

            def matches(self, query, position):
                raise NotImplementedError

        with pytest.raises(BuildError):
            PrecomputedCoverSampler(NoEnum())
