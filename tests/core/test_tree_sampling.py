"""Unit tests for tree sampling (paper §3.2, §5, Proposition 1)."""

import pytest

from repro.core.tree_sampling import FlatTreeSampler, Tree, TreeSampler
from repro.errors import BuildError, InvalidWeightError
from repro.stats.tests import chi_square_weighted_pvalue

ALPHA = 1e-6


def build_sample_tree():
    """Root with three children; middle child has two leaf grandchildren."""
    tree = Tree()
    root = tree.add_root()
    tree.add_child(root, weight=1.0, payload="a")
    middle = tree.add_child(root)
    tree.add_child(middle, weight=2.0, payload="b")
    tree.add_child(middle, weight=3.0, payload="c")
    tree.add_child(root, weight=4.0, payload="d")
    tree.finalize()
    return tree


class TestTreeConstruction:
    def test_two_roots_rejected(self):
        tree = Tree()
        tree.add_root(weight=1.0)
        with pytest.raises(BuildError):
            tree.add_root(weight=1.0)

    def test_unknown_parent_rejected(self):
        tree = Tree()
        tree.add_root()
        with pytest.raises(BuildError):
            tree.add_child(99, weight=1.0)

    def test_finalize_requires_root(self):
        with pytest.raises(BuildError):
            Tree().finalize()

    def test_leaf_without_weight_rejected(self):
        tree = Tree()
        root = tree.add_root()
        tree.add_child(root)  # leaf with no weight
        with pytest.raises(InvalidWeightError):
            tree.finalize()

    def test_add_after_finalize_rejected(self):
        tree = Tree()
        tree.add_root(weight=1.0)
        tree.finalize()
        with pytest.raises(BuildError):
            tree.add_child(tree.root, weight=1.0)

    def test_internal_weights_aggregate(self):
        tree = build_sample_tree()
        assert tree.weight(tree.root) == pytest.approx(10.0)
        middle = tree.children(tree.root)[1]
        assert tree.weight(middle) == pytest.approx(5.0)

    def test_from_nested(self):
        tree = Tree.from_nested([("a", 1.0), [("b", 2.0), ("c", 3.0)], ("d", 4.0)])
        assert tree.weight(tree.root) == pytest.approx(10.0)
        assert len(tree.leaves_in_dfs_order()) == 4

    def test_single_leaf_tree(self):
        tree = Tree()
        tree.add_root(weight=5.0, payload="only")
        tree.finalize()
        sampler = TreeSampler(tree, rng=1)
        assert sampler.sample(tree.root) == tree.root

    def test_dfs_leaf_order_left_to_right(self):
        tree = build_sample_tree()
        payloads = [tree.payload(leaf) for leaf in tree.leaves_in_dfs_order()]
        assert payloads == ["a", "b", "c", "d"]

    def test_subtree_height(self):
        tree = build_sample_tree()
        assert tree.subtree_height(tree.root) == 2


class TestTreeSampler:
    def test_samples_are_subtree_leaves(self):
        tree = build_sample_tree()
        sampler = TreeSampler(tree, rng=2)
        middle = tree.children(tree.root)[1]
        leaves = {tree.payload(x) for x in sampler.sample_many(middle, 200)}
        assert leaves == {"b", "c"}

    def test_leaf_query_returns_leaf(self):
        tree = build_sample_tree()
        sampler = TreeSampler(tree, rng=2)
        leaf = tree.children(tree.root)[0]
        assert sampler.sample(leaf) == leaf

    def test_root_distribution_matches_weights(self):
        tree = build_sample_tree()
        sampler = TreeSampler(tree, rng=3)
        samples = [tree.payload(x) for x in sampler.sample_many(tree.root, 40_000)]
        target = {"a": 1.0, "b": 2.0, "c": 3.0, "d": 4.0}
        assert chi_square_weighted_pvalue(samples, target) > ALPHA

    def test_high_fanout_node(self):
        tree = Tree()
        root = tree.add_root()
        for index in range(50):
            tree.add_child(root, weight=float(index + 1), payload=index)
        tree.finalize()
        sampler = TreeSampler(tree, rng=4)
        out = sampler.sample_many(root, 100)
        assert all(tree.parent(x) == root for x in out)


class TestFlatTreeSampler:
    def test_spans_are_contiguous_and_nested(self):
        tree = build_sample_tree()
        flat = FlatTreeSampler(tree, rng=5)
        root_span = flat.leaf_span(tree.root)
        assert root_span == (0, 4)
        middle = tree.children(tree.root)[1]
        assert flat.leaf_span(middle) == (1, 3)

    def test_subtree_samples_stay_in_subtree(self):
        tree = build_sample_tree()
        flat = FlatTreeSampler(tree, rng=6)
        middle = tree.children(tree.root)[1]
        leaves = {tree.payload(x) for x in flat.sample_many(middle, 200)}
        assert leaves == {"b", "c"}

    def test_distribution_matches_tree_sampler(self):
        tree = build_sample_tree()
        flat = FlatTreeSampler(tree, rng=7)
        samples = [tree.payload(x) for x in flat.sample_many(tree.root, 40_000)]
        target = {"a": 1.0, "b": 2.0, "c": 3.0, "d": 4.0}
        assert chi_square_weighted_pvalue(samples, target) > ALPHA

    def test_uniform_fast_path_active(self):
        tree = Tree.from_nested([("a", 1.0), ("b", 1.0), [("c", 1.0), ("d", 1.0)]])
        flat = FlatTreeSampler(tree, rng=8)
        assert flat.is_uniform

    def test_uniform_fast_path_distribution(self):
        tree = Tree.from_nested([("a", 1.0), ("b", 1.0), [("c", 1.0), ("d", 1.0)]])
        flat = FlatTreeSampler(tree, rng=9)
        samples = [tree.payload(x) for x in flat.sample_many(tree.root, 40_000)]
        target = {"a": 1.0, "b": 1.0, "c": 1.0, "d": 1.0}
        assert chi_square_weighted_pvalue(samples, target) > ALPHA

    def test_weighted_path_used_for_skewed_weights(self):
        tree = build_sample_tree()
        flat = FlatTreeSampler(tree, rng=10)
        assert not flat.is_uniform

    def test_deep_chain_tree(self):
        # A path of unary internal nodes ending in one leaf.
        tree = Tree()
        node = tree.add_root()
        for _ in range(30):
            node = tree.add_child(node)
        leaf = tree.add_child(node, weight=1.0, payload="deep")
        tree.finalize()
        flat = FlatTreeSampler(tree, rng=11)
        assert flat.sample(tree.root) == leaf
