"""The query-planning layer: QueryPlan values, PlanStore, PlanScope.

Four concerns:

1. **QueryPlan value semantics** — cover/weight accessors, the portable
   (cross-process) form, and the ``--explain`` description payload.
2. **Store sharing** — one engine-scoped ``PlanStore`` serves many
   samplers, keyed by structure fingerprint, without any cross-talk
   between structures; the LRU bound is a shared budget.
3. **Scope/counter agreement** — the per-instance tallies (the
   deprecation-safe alias for the retired ``stats()`` shim) must agree
   with the obs registry's ``plan_cache.*`` counters and their per-kind
   twins whenever metrics are on.
4. **Deprecation** — ``stats()`` warns but keeps returning the shim
   dict, unchanged in shape.
"""

import random
import warnings

import pytest

from repro import obs
from repro.core.planner import (
    DEFAULT_CAPACITY,
    ENV_CAPACITY,
    PlanScope,
    PlanStore,
    QueryPlan,
    plan_scope,
    shared_store,
)
from repro.core.range_sampler import ChunkedRangeSampler, TreeWalkRangeSampler


def _plan(kind="treewalk", key=(3, 9), weights=(2.0, 1.0, 3.0)):
    return QueryPlan(
        kind,
        key,
        spans=((3, 5), (5, 6), (6, 9)),
        weights=weights,
        payload=object(),
        hint=(4, 11, 12),
    )


class TestQueryPlan:
    def test_cover_accessors(self):
        plan = _plan()
        assert plan.cover_size == 3
        assert plan.total_weight == pytest.approx(6.0)

    def test_portable_is_plain_data(self):
        plan = _plan()
        kind, key, hint = plan.portable()
        assert kind == "treewalk"
        assert key == (3, 9)
        assert hint == (4, 11, 12)
        # The payload (live tables) never crosses the boundary.
        assert plan.payload not in plan.portable()

    def test_describe_payload(self):
        info = _plan().describe()
        assert info["kind"] == "treewalk"
        assert info["key"] == (3, 9)
        assert info["cover_spans"] == 3
        assert info["total_weight"] == pytest.approx(6.0)
        assert info["spans"] == [(3, 5), (5, 6), (6, 9)]
        assert info["weights"] == [2.0, 1.0, 3.0]

    def test_spanless_plan_describes_without_spans(self):
        plan = QueryPlan("dynamic", (0.0, 1.0), spans=None, weights=(1.0,))
        assert "spans" not in plan.describe()
        assert plan.cover_size == 1


class TestPlanStoreSharing:
    def test_fingerprint_isolation_same_key(self):
        store = PlanStore(8)
        a = PlanScope(store, "treewalk")
        b = PlanScope(store, "treewalk")
        a.put((0, 10), "plan-a")
        b.put((0, 10), "plan-b")
        assert a.get((0, 10)) == "plan-a"
        assert b.get((0, 10)) == "plan-b"
        assert len(a) == 1 and len(b) == 1
        assert len(store) == 2

    def test_shared_lru_budget_and_eviction_attribution(self):
        store = PlanStore(2)
        a = PlanScope(store, "treewalk")
        b = PlanScope(store, "chunked")
        a.put((0, 1), "a0")
        b.put((0, 1), "b0")
        a.put((0, 2), "a1")  # evicts a's (0, 1), the LRU entry
        assert a.get((0, 1)) is None
        assert b.get((0, 1)) == "b0"
        # The eviction is attributed to the scope that lost the entry.
        assert a.evictions == 1
        assert b.evictions == 0

    def test_clear_scope_leaves_other_scopes(self):
        store = PlanStore(8)
        a = PlanScope(store, "treewalk")
        b = PlanScope(store, "treewalk")
        a.put((0, 1), "a")
        b.put((0, 1), "b")
        a.clear()
        assert len(a) == 0
        assert b.get((0, 1)) == "b"

    def test_capacity_zero_is_bypass_for_every_scope(self):
        store = PlanStore(0)
        scope = PlanScope(store, "treewalk")
        scope.put((0, 1), "x")
        assert scope.get((0, 1)) is None
        assert scope.misses == 0 and scope.hits == 0

    def test_plan_scope_default_joins_shared_store(self, monkeypatch):
        monkeypatch.delenv(ENV_CAPACITY, raising=False)
        a = plan_scope("treewalk")
        b = plan_scope("chunked")
        assert a.store is b.store
        assert a.store is shared_store()
        assert a.fingerprint != b.fingerprint

    def test_explicit_capacity_gets_private_store(self):
        scope = plan_scope("treewalk", 3)
        assert scope.store is not shared_store()
        assert scope.capacity == 3

    def test_env_knob_resolves_per_call(self, monkeypatch):
        monkeypatch.delenv(ENV_CAPACITY, raising=False)
        default = shared_store()
        assert default.capacity == DEFAULT_CAPACITY
        monkeypatch.setenv(ENV_CAPACITY, "5")
        assert shared_store().capacity == 5
        assert shared_store() is not default

    def test_samplers_share_the_engine_scoped_store(self, monkeypatch):
        monkeypatch.delenv(ENV_CAPACITY, raising=False)
        rnd = random.Random(7)
        keys = [float(i) for i in range(64)]
        weights = [rnd.random() + 0.1 for _ in range(64)]
        first = TreeWalkRangeSampler(keys, weights, rng=1)
        second = ChunkedRangeSampler(keys, weights, rng=1)
        assert first.plan_cache.store is second.plan_cache.store
        first.sample_span(5, 50, 3)
        second.sample_span(5, 50, 3)
        # Same span, two structures: two distinct entries, zero cross-talk.
        assert first.plan_cache.misses == 1 and first.plan_cache.hits == 0
        assert second.plan_cache.misses == 1 and second.plan_cache.hits == 0
        first.sample_span(5, 50, 3)
        assert first.plan_cache.hits == 1


class TestShimCounterAgreement:
    def test_scope_tallies_agree_with_registry_counters(self):
        saved = obs.ENABLED
        obs.enable()
        obs.reset()
        try:
            store = PlanStore(2)
            tree = PlanScope(store, "treewalk")
            chunk = PlanScope(store, "chunked")
            tree.get((0, 1))  # miss
            tree.put((0, 1), "t0")
            tree.get((0, 1))  # hit
            chunk.get((0, 1))  # miss
            chunk.put((0, 1), "c0")
            tree.put((0, 2), "t1")  # evicts tree's (0, 1)
            assert obs.value("plan_cache.hits") == tree.hits + chunk.hits == 1
            assert obs.value("plan_cache.misses") == tree.misses + chunk.misses == 2
            assert (
                obs.value("plan_cache.evictions")
                == tree.evictions + chunk.evictions
                == 1
            )
            # Per-kind twins split the same events by plan kind.
            assert obs.value("plan_cache.treewalk.hits") == 1
            assert obs.value("plan_cache.treewalk.misses") == 1
            assert obs.value("plan_cache.treewalk.evictions") == 1
            assert obs.value("plan_cache.chunked.misses") == 1
            assert obs.value("plan_cache.chunked.hits") == 0
        finally:
            obs.reset()
            (obs.enable if saved else obs.disable)()

    def test_stats_shim_agrees_and_warns(self):
        store = PlanStore(4)
        scope = PlanScope(store, "treewalk")
        scope.get((0, 1))
        scope.put((0, 1), "x")
        scope.get((0, 1))
        with pytest.warns(DeprecationWarning, match="deprecated"):
            stats = scope.stats()
        assert stats == {
            "hits": scope.hits,
            "misses": scope.misses,
            "evictions": scope.evictions,
            "size": len(scope),
            "capacity": scope.capacity,
        }
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_scope_tallies_record_with_metrics_off(self):
        saved = obs.ENABLED
        obs.disable()
        try:
            scope = PlanScope(PlanStore(4), "treewalk")
            scope.get((0, 1))
            scope.put((0, 1), "x")
            scope.get((0, 1))
            assert scope.hits == 1 and scope.misses == 1
            assert obs.value("plan_cache.hits") == 0
        finally:
            (obs.enable if saved else obs.disable)()

    def test_sampler_stats_route_matches_legacy_shape(self):
        """The retired per-instance shim and the new scope report the
        same dict shape through ``sampler.plan_cache.stats()``."""
        sampler = TreeWalkRangeSampler(
            [float(i) for i in range(32)], rng=5, plan_cache_size=4
        )
        sampler.sample_span(3, 29, 2)
        sampler.sample_span(3, 29, 2)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            stats = sampler.plan_cache.stats()
        assert set(stats) == {"hits", "misses", "evictions", "size", "capacity"}
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["size"] == 1
        assert stats["capacity"] == 4
