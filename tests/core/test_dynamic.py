"""Unit tests for the dynamic samplers (paper §9, Direction 1)."""

import pytest

from repro.core.dynamic import BucketDynamicSampler, FenwickDynamicSampler
from repro.errors import EmptyQueryError, InvalidWeightError
from repro.stats.tests import chi_square_weighted_pvalue

ALPHA = 1e-6

SAMPLERS = [FenwickDynamicSampler, BucketDynamicSampler]


@pytest.mark.parametrize("sampler_cls", SAMPLERS)
class TestBasics:
    def test_empty_sampler_raises(self, sampler_cls):
        with pytest.raises(EmptyQueryError):
            sampler_cls(rng=1).sample()

    def test_insert_then_sample(self, sampler_cls):
        sampler = sampler_cls(rng=1)
        sampler.insert("only", 2.0)
        assert sampler.sample() == "only"
        assert len(sampler) == 1

    def test_bad_weight_rejected(self, sampler_cls):
        sampler = sampler_cls(rng=1)
        for bad in (0.0, -1.0, float("nan"), float("inf")):
            with pytest.raises(InvalidWeightError):
                sampler.insert("x", bad)

    def test_delete_removes_element(self, sampler_cls):
        sampler = sampler_cls(rng=2)
        handle_a = sampler.insert("a", 1.0)
        sampler.insert("b", 1.0)
        assert sampler.delete(handle_a) == "a"
        assert len(sampler) == 1
        assert all(sampler.sample() == "b" for _ in range(20))

    def test_delete_unknown_handle_raises(self, sampler_cls):
        sampler = sampler_cls(rng=2)
        sampler.insert("a", 1.0)
        with pytest.raises(KeyError):
            sampler.delete(12345)

    def test_double_delete_raises(self, sampler_cls):
        sampler = sampler_cls(rng=2)
        handle = sampler.insert("a", 1.0)
        sampler.insert("b", 1.0)
        sampler.delete(handle)
        with pytest.raises(KeyError):
            sampler.delete(handle)

    def test_update_weight_changes_distribution(self, sampler_cls):
        sampler = sampler_cls(rng=3)
        handle_a = sampler.insert("a", 1.0)
        sampler.insert("b", 1.0)
        sampler.update_weight(handle_a, 9.0)
        samples = sampler.sample_many(20_000)
        assert chi_square_weighted_pvalue(samples, {"a": 9.0, "b": 1.0}) > ALPHA

    def test_total_weight_tracks_operations(self, sampler_cls):
        sampler = sampler_cls(rng=4)
        handle = sampler.insert("a", 2.0)
        sampler.insert("b", 3.0)
        assert sampler.total_weight == pytest.approx(5.0)
        sampler.update_weight(handle, 4.0)
        assert sampler.total_weight == pytest.approx(7.0)
        sampler.delete(handle)
        assert sampler.total_weight == pytest.approx(3.0)

    def test_distribution_after_churn(self, sampler_cls):
        # Insert 30, delete half, update some — final distribution must
        # match the surviving weights exactly.
        sampler = sampler_cls(rng=5)
        handles = {}
        for index in range(30):
            handles[index] = sampler.insert(index, float(index % 5 + 1))
        survivors = {}
        for index in range(30):
            if index % 2 == 0:
                sampler.delete(handles[index])
            else:
                survivors[index] = float(index % 5 + 1)
        for index in list(survivors)[:5]:
            sampler.update_weight(handles[index], 10.0)
            survivors[index] = 10.0
        samples = sampler.sample_many(40_000)
        assert chi_square_weighted_pvalue(samples, survivors) > ALPHA

    def test_reinsert_after_empty(self, sampler_cls):
        sampler = sampler_cls(rng=6)
        handle = sampler.insert("a", 1.0)
        sampler.delete(handle)
        with pytest.raises(EmptyQueryError):
            sampler.sample()
        sampler.insert("b", 1.0)
        assert sampler.sample() == "b"

    def test_many_inserts_trigger_growth(self, sampler_cls):
        sampler = sampler_cls(rng=7)
        for index in range(200):
            sampler.insert(index, 1.0)
        assert len(sampler) == 200
        assert 0 <= sampler.sample() < 200


class TestFenwickSpecifics:
    def test_slots_are_reused(self):
        sampler = FenwickDynamicSampler(rng=8, initial_capacity=4)
        handles = [sampler.insert(i, 1.0) for i in range(4)]
        sampler.delete(handles[2])
        new_handle = sampler.insert("new", 1.0)
        assert new_handle == handles[2]


class TestBucketSpecifics:
    def test_bucket_count_logarithmic(self):
        sampler = BucketDynamicSampler(rng=9)
        for index in range(100):
            sampler.insert(index, float(2 ** (index % 10)))
        assert sampler.bucket_count <= 10

    def test_extreme_weight_ratio(self):
        sampler = BucketDynamicSampler(rng=10)
        sampler.insert("tiny", 1e-9)
        sampler.insert("huge", 1e9)
        samples = sampler.sample_many(1000)
        assert samples.count("huge") >= 999  # tiny has probability 1e-18
