"""Internals of the Theorem-3 chunked structure, incl. the Figure-2 split."""

import pytest

from repro.core.range_sampler import ChunkedRangeSampler
from repro.errors import BuildError
from repro.stats.tests import chi_square_weighted_pvalue

ALPHA = 1e-6


def make(n, chunk_size=None, weights=None, rng=1):
    keys = [float(i) for i in range(n)]
    return ChunkedRangeSampler(keys, weights, rng=rng, chunk_size=chunk_size)


class TestChunking:
    def test_default_chunk_size_is_log_n(self):
        sampler = make(1 << 12)
        assert sampler.chunk_size == 12

    def test_chunk_count(self):
        sampler = make(100, chunk_size=7)
        assert sampler.num_chunks == 15  # ceil(100 / 7)

    def test_chunk_size_validation(self):
        with pytest.raises(BuildError):
            make(10, chunk_size=0)

    def test_single_chunk_dataset(self):
        sampler = make(5, chunk_size=10)
        assert sampler.num_chunks == 1
        assert set(sampler.sample(0.0, 4.0, 100)) == {0.0, 1.0, 2.0, 3.0, 4.0}


class TestFigure2Split:
    """The q1 / q2 / q3 decomposition of §4.2 (Figure 2)."""

    def test_generic_split_is_partition(self):
        sampler = make(100, chunk_size=10)
        # Query [13, 67) : head = [13, 20), middle = chunks 2..6, tail = [60, 67).
        (h_lo, h_hi), (m_lo, m_hi), (t_lo, t_hi) = sampler.query_split(13, 67)
        assert (h_lo, h_hi) == (13, 20)
        assert (m_lo, m_hi) == (2, 6)
        assert (t_lo, t_hi) == (60, 67)

    def test_chunk_aligned_query_has_no_partials(self):
        sampler = make(100, chunk_size=10)
        (h_lo, h_hi), (m_lo, m_hi), (t_lo, t_hi) = sampler.query_split(20, 70)
        assert h_lo == h_hi
        assert t_lo == t_hi
        assert (m_lo, m_hi) == (2, 7)

    def test_head_aligned_only(self):
        sampler = make(100, chunk_size=10)
        (h_lo, h_hi), (m_lo, m_hi), (t_lo, t_hi) = sampler.query_split(20, 75)
        assert h_lo == h_hi  # chunk 2 fully covered → goes to the middle
        assert (m_lo, m_hi) == (2, 7)
        assert (t_lo, t_hi) == (70, 75)

    def test_tail_aligned_only(self):
        sampler = make(100, chunk_size=10)
        (h_lo, h_hi), (m_lo, m_hi), (t_lo, t_hi) = sampler.query_split(25, 70)
        assert (h_lo, h_hi) == (25, 30)
        assert (m_lo, m_hi) == (3, 7)
        assert t_lo == t_hi

    def test_query_within_one_chunk(self):
        sampler = make(100, chunk_size=10)
        (h_lo, h_hi), (m_lo, m_hi), (t_lo, t_hi) = sampler.query_split(13, 17)
        assert (h_lo, h_hi) == (13, 17)
        assert m_lo == m_hi
        assert t_lo == t_hi

    def test_query_exactly_one_chunk(self):
        sampler = make(100, chunk_size=10)
        (h_lo, h_hi), (m_lo, m_hi), (t_lo, t_hi) = sampler.query_split(30, 40)
        assert h_lo == h_hi
        assert (m_lo, m_hi) == (3, 4)
        assert t_lo == t_hi

    def test_adjacent_partial_chunks_no_middle(self):
        sampler = make(100, chunk_size=10)
        (h_lo, h_hi), (m_lo, m_hi), (t_lo, t_hi) = sampler.query_split(15, 25)
        assert (h_lo, h_hi) == (15, 20)
        assert m_lo == m_hi
        assert (t_lo, t_hi) == (20, 25)

    @pytest.mark.parametrize("lo,hi", [(0, 100), (1, 99), (5, 95), (13, 67), (0, 1), (99, 100), (37, 38)])
    def test_split_partitions_every_query(self, lo, hi):
        sampler = make(100, chunk_size=10)
        (h_lo, h_hi), (m_lo, m_hi), (t_lo, t_hi) = sampler.query_split(lo, hi)
        covered = set(range(h_lo, h_hi)) | set(range(t_lo, t_hi))
        for chunk in range(m_lo, m_hi):
            covered |= set(range(chunk * 10, min(chunk * 10 + 10, 100)))
        assert covered == set(range(lo, hi))

    def test_ragged_final_chunk(self):
        sampler = make(23, chunk_size=5)  # last chunk holds 3 elements
        (h_lo, h_hi), (m_lo, m_hi), (t_lo, t_hi) = sampler.query_split(2, 23)
        assert (h_lo, h_hi) == (2, 5)
        assert (m_lo, m_hi) == (1, 5)  # final ragged chunk fully covered
        assert t_lo == t_hi


class TestDistributionAcrossSplit:
    def test_weighted_across_head_middle_tail(self):
        weights = [1.0 + (i % 5) for i in range(50)]
        sampler = make(50, chunk_size=8, weights=weights, rng=3)
        samples = sampler.sample(3.0, 44.0, 40_000)
        target = {float(i): weights[i] for i in range(3, 45)}
        assert chi_square_weighted_pvalue(samples, target) > ALPHA

    def test_uniform_tiny_chunks(self):
        sampler = make(30, chunk_size=1, rng=4)
        samples = sampler.sample(0.0, 29.0, 30_000)
        target = {float(i): 1.0 for i in range(30)}
        assert chi_square_weighted_pvalue(samples, target) > ALPHA
