"""Correctness harness for the vectorized *construction* kernels (PR 2).

The batch sampling kernels have their own harness
(``test_batch_kernels.py``); this module covers the table *builders*:

1. **Exactness** — an alias table encodes a distribution exactly: urn
   ``i`` keeps its element with probability ``prob[i]`` and otherwise
   yields ``alias[i]``, so the implied mass of element ``j`` is
   ``prob[j] + Σ_{alias[i]=j} (1 - prob[i])``. For every builder and
   every adversarial weight family, the implied distribution must match
   the normalized weights to within a few ulps — the vectorized
   multi-pass construction is not allowed to be "approximately Vose".
2. **Scalar/batch construction equivalence** — tables built by the
   scalar stack algorithm and by the vectorized kernels are different
   encodings of the same distribution; chi-square tests of draws through
   both must accept the common target (near-zero, one-dominant, and
   all-equal weights included, per the PR checklist).
3. **Structure-level dispatch** — samplers built under the numpy path
   and under the forced scalar fallback expose per-node tables with
   identical implied distributions.
"""

import random

import pytest

np = pytest.importorskip("numpy")

from repro.core import kernels
from repro.core.alias import alias_draw, build_alias_tables
from repro.core.range_sampler import AliasAugmentedRangeSampler
from repro.stats.tests import chi_square_weighted_pvalue

ALPHA = 1e-6
DRAWS = 20_000

# Adversarial weight families from the PR checklist: values that stress
# the scaled-mass partition (everything lands on one side of 1), the
# donation cascade (a single donor feeds every urn), and rounding.
FAMILIES = {
    "all_equal": [3.25] * 96,
    "near_zero": [1e-300] * 12 + [1.0] * 84,
    "one_dominant": [1e9] + [1e-9] * 95,
    "two_scales": [1e6, 1e-6] * 48,
    "ramp": [1.0 + i for i in range(96)],
    "random": [random.Random(5).random() + 1e-3 for _ in range(96)],
}


def implied_distribution(prob, alias):
    """Element masses encoded by an urn table, summing to ``len(prob)``."""
    prob = np.asarray(prob, dtype=np.float64)
    alias = np.asarray(alias, dtype=np.intp)
    implied = prob.copy()
    np.add.at(implied, alias, 1.0 - prob)
    return implied


def assert_encodes(prob, alias, weights, tol=1e-9):
    weights = np.asarray(weights, dtype=np.float64)
    got = implied_distribution(prob, alias) / len(weights)
    want = weights / weights.sum()
    assert np.abs(got - want).max() <= tol


# ----------------------------------------------------------------------
# 1. exactness, builder by builder
# ----------------------------------------------------------------------


class TestBatchBuildExactness:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_families(self, family):
        weights = FAMILIES[family]
        prob, alias = kernels.build_alias_tables_batch(weights)
        assert ((alias >= 0) & (alias < len(weights))).all()
        assert_encodes(prob, alias, weights)

    def test_large_instance_matches_scalar_distribution(self):
        rnd = random.Random(9)
        weights = [rnd.random() + 1e-6 for _ in range(5000)]
        batch = kernels.build_alias_tables_batch(weights)
        scalar = build_alias_tables(weights)
        assert_encodes(*batch, weights)
        assert_encodes(*scalar, weights)


class TestFlatBuildExactness:
    def check(self, values, lengths, tol=1e-9):
        values = np.asarray(values, dtype=np.float64)
        lengths = np.asarray(lengths, dtype=np.intp)
        prob, alias = kernels.build_alias_tables_flat(values, lengths)
        assert prob.shape == values.shape and alias.shape == values.shape
        start = 0
        for size in lengths:
            if size == 0:
                continue
            seg_prob = prob[start : start + size]
            seg_alias = alias[start : start + size]
            # Aliases are segment-local: a table slice is self-contained.
            assert ((seg_alias >= 0) & (seg_alias < size)).all()
            assert_encodes(seg_prob, seg_alias, values[start : start + size], tol)
            start += size

    def test_ragged_mixed_families(self):
        values = [w for family in sorted(FAMILIES) for w in FAMILIES[family]]
        lengths = [len(FAMILIES[family]) for family in sorted(FAMILIES)]
        self.check(values, lengths)

    def test_zero_length_segments_are_skipped(self):
        self.check([2.0, 1.0, 5.0, 3.0, 3.0], [2, 0, 3, 0])

    def test_many_narrow_segments(self):
        rnd = random.Random(11)
        values = [rnd.random() + 0.01 for _ in range(2 * 700)]
        self.check(values, [2] * 700)

    def test_wide_and_narrow_interleaved(self):
        # Exercises the shared-tape donor assignment across segments whose
        # pass counts differ wildly (the cross-segment repair path).
        rnd = random.Random(12)
        lengths = [1, 500, 2, 3, 1000, 2, 64, 2]
        values = [rnd.random() + 1e-4 for _ in range(sum(lengths))]
        self.check(values, lengths)

    def test_segment_with_nonfinite_free_zero_total_degenerates(self):
        # A zero-total segment cannot encode a distribution; the builder
        # degenerates it to full urns instead of dividing by zero.
        prob, alias = kernels.build_alias_tables_flat(
            np.array([0.0, 0.0, 1.0, 3.0]), np.array([2, 2])
        )
        assert prob[:2].tolist() == [1.0, 1.0]
        assert alias[:2].tolist() == [0, 1]
        assert_encodes(prob[2:], alias[2:], [1.0, 3.0])

    def test_lengths_must_sum(self):
        with pytest.raises(ValueError):
            kernels.build_alias_tables_flat(np.ones(4), np.array([2, 3]))


class TestPackedBuildExactness:
    def test_padded_rows_match_per_row_tables(self):
        rnd = random.Random(13)
        lengths = [3, 96, 17, 1, 40]
        width = max(lengths)
        matrix = np.zeros((len(lengths), width))
        rows = []
        for r, size in enumerate(lengths):
            row = [rnd.random() + 1e-3 for _ in range(size)]
            matrix[r, :size] = row
            rows.append(row)
        prob, alias = kernels.build_alias_tables_packed(matrix, lengths)
        assert prob.shape == matrix.shape and alias.shape == matrix.shape
        for r, row in enumerate(rows):
            size = lengths[r]
            assert ((alias[r, :size] >= 0) & (alias[r, :size] < size)).all()
            assert_encodes(prob[r, :size], alias[r, :size], row)

    def test_single_row_fast_path(self):
        weights = FAMILIES["random"]
        matrix = np.asarray([weights])
        prob, alias = kernels.build_alias_tables_packed(matrix, [len(weights)])
        assert_encodes(prob[0], alias[0], weights)


# ----------------------------------------------------------------------
# 2. chi-square scalar/batch construction equivalence
# ----------------------------------------------------------------------


@pytest.mark.parametrize("family", ["near_zero", "one_dominant", "all_equal"])
class TestConstructionEquivalence:
    def target(self, weights):
        total = sum(weights)
        return {
            i: w for i, w in enumerate(weights) if w / total > 1e-12
        }

    def test_scalar_and_batch_tables_draw_same_distribution(self, family):
        weights = FAMILIES[family]
        target = self.target(weights)

        scalar_prob, scalar_alias = build_alias_tables(weights)
        rng = random.Random(101)
        scalar_draws = [
            alias_draw(scalar_prob, scalar_alias, rng) for _ in range(DRAWS)
        ]
        scalar_draws = [d for d in scalar_draws if d in target]
        assert chi_square_weighted_pvalue(scalar_draws, target) > ALPHA

        batch_prob, batch_alias = kernels.build_alias_tables_batch(weights)
        gen = np.random.default_rng(102)
        batch_draws = kernels.alias_draw_batch(batch_prob, batch_alias, DRAWS, gen)
        batch_draws = [int(d) for d in batch_draws if int(d) in target]
        assert chi_square_weighted_pvalue(batch_draws, target) > ALPHA


# ----------------------------------------------------------------------
# 3. structure-level dispatch equivalence
# ----------------------------------------------------------------------


@pytest.mark.skipif(
    not kernels.HAVE_NUMPY,
    reason="numpy dispatch disabled (REPRO_DISABLE_NUMPY) — no batch path to compare",
)
class TestStructureDispatchEquivalence:
    N = 96  # >= BUILD_MIN_SIZE so the numpy build path engages

    def build(self, force_scalar: bool, monkeypatch):
        if force_scalar:
            monkeypatch.setattr(kernels, "HAVE_NUMPY", False)
        rnd = random.Random(17)
        keys = [float(i) for i in range(self.N)]
        weights = [rnd.random() + 1e-3 for _ in range(self.N)]
        return AliasAugmentedRangeSampler(keys, weights), weights

    def test_node_tables_encode_same_distributions(self, monkeypatch):
        with pytest.MonkeyPatch.context() as scalar_patch:
            scalar_sampler, weights = self.build(True, scalar_patch)
        batch_sampler, _ = self.build(False, monkeypatch)
        assert kernels.use_batch_build(self.N)
        tree = batch_sampler._tree
        for node in tree.iter_nodes():
            if tree.is_leaf(node):
                continue
            lo, hi = tree.leaf_span(node)
            span_weights = weights[lo:hi]
            for sampler in (scalar_sampler, batch_sampler):
                prob, alias = sampler._node_table(node)
                assert_encodes(prob, alias, span_weights)

    def test_space_accounting_matches_dispatch_paths(self, monkeypatch):
        with pytest.MonkeyPatch.context() as scalar_patch:
            scalar_sampler, _ = self.build(True, scalar_patch)
        batch_sampler, _ = self.build(False, monkeypatch)
        assert scalar_sampler.space_words() == batch_sampler.space_words()
