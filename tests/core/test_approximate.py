"""Unit tests for ε-approximate IQS (§9, Direction 4)."""

import math
from collections import Counter

import pytest

from repro.core.approximate import ApproximateDynamicSampler
from repro.errors import BuildError, EmptyQueryError, InvalidWeightError


class TestContracts:
    def test_bad_epsilon_rejected(self):
        for bad in (0.0, 1.0, -0.5):
            with pytest.raises(BuildError):
                ApproximateDynamicSampler(epsilon=bad)

    def test_empty_sampler_raises(self):
        with pytest.raises(EmptyQueryError):
            ApproximateDynamicSampler(rng=1).sample()

    def test_bad_weight_rejected(self):
        sampler = ApproximateDynamicSampler(rng=1)
        with pytest.raises(InvalidWeightError):
            sampler.insert("x", 0.0)

    def test_insert_delete_roundtrip(self):
        sampler = ApproximateDynamicSampler(rng=2)
        handle = sampler.insert("a", 3.0)
        sampler.insert("b", 5.0)
        assert sampler.delete(handle) == "a"
        assert len(sampler) == 1
        assert sampler.sample() == "b"

    def test_double_delete_raises(self):
        sampler = ApproximateDynamicSampler(rng=2)
        handle = sampler.insert("a", 3.0)
        sampler.delete(handle)
        with pytest.raises(KeyError):
            sampler.delete(handle)


class TestQuantization:
    def test_quantized_weight_within_factor(self):
        epsilon = 0.2
        sampler = ApproximateDynamicSampler(epsilon=epsilon, rng=3)
        for weight in (0.001, 0.5, 1.0, 7.3, 1e6):
            handle = sampler.insert("x", weight)
            quantized = sampler.quantized_weight(handle)
            ratio = quantized / weight
            half = math.sqrt(1 + epsilon)
            assert 1 / half <= ratio <= half

    def test_class_count_bounded(self):
        sampler = ApproximateDynamicSampler(epsilon=0.1, rng=4)
        for index in range(1000):
            sampler.insert(index, 1.0 + (index % 50))
        # Weight ratio 50 → ≤ log_{1.1}(50) + 1 ≈ 42 classes.
        assert sampler.class_count <= 43

    def test_equal_weights_single_class(self):
        sampler = ApproximateDynamicSampler(epsilon=0.5, rng=5)
        for index in range(20):
            sampler.insert(index, 2.0)
        assert sampler.class_count == 1


class TestDistribution:
    def test_probabilities_within_epsilon(self):
        epsilon = 0.15
        weights = {"a": 1.0, "b": 2.0, "c": 5.0, "d": 11.0}
        sampler = ApproximateDynamicSampler(epsilon=epsilon, rng=6)
        for item, weight in weights.items():
            sampler.insert(item, weight)
        draws = 200_000
        counts = Counter(sampler.sample_many(draws))
        total = sum(weights.values())
        for item, weight in weights.items():
            target = weight / total
            observed = counts[item] / draws
            # Allow the ε bound plus 5σ sampling noise.
            sigma = math.sqrt(target * (1 - target) / draws)
            assert observed >= target / (1 + epsilon) - 5 * sigma
            assert observed <= target * (1 + epsilon) + 5 * sigma

    def test_probability_bounds_helper(self):
        sampler = ApproximateDynamicSampler(epsilon=0.1, rng=7)
        handle = sampler.insert("x", 3.0)
        sampler.insert("y", 7.0)
        lower, upper = sampler.probability_bounds(handle, 10.0)
        assert lower <= 0.3 <= upper

    def test_updates_shift_distribution(self):
        sampler = ApproximateDynamicSampler(epsilon=0.1, rng=8)
        handle_a = sampler.insert("a", 1.0)
        sampler.insert("b", 1.0)
        sampler.delete(handle_a)
        sampler.insert("a", 100.0)
        counts = Counter(sampler.sample_many(2000))
        assert counts["a"] > 1900
