"""Unit tests for WoR range sampling on the IQS structures (§1 schemes)."""

from collections import Counter

import pytest

from repro.core.naive import NaiveRangeSampler
from repro.core.range_sampler import (
    AliasAugmentedRangeSampler,
    ChunkedRangeSampler,
    TreeWalkRangeSampler,
)
from repro.errors import EmptyQueryError

ALL_SAMPLERS = [
    TreeWalkRangeSampler,
    AliasAugmentedRangeSampler,
    ChunkedRangeSampler,
    NaiveRangeSampler,
]


@pytest.mark.parametrize("sampler_cls", ALL_SAMPLERS)
class TestWoRContracts:
    def test_distinct_and_in_range(self, sampler_cls):
        keys = [float(i) for i in range(100)]
        sampler = sampler_cls(keys, rng=1)
        out = sampler.sample_without_replacement(10.0, 60.0, 20)
        assert len(out) == 20
        assert len(set(out)) == 20
        assert all(10.0 <= value <= 60.0 for value in out)

    def test_full_range_draw(self, sampler_cls):
        keys = [float(i) for i in range(30)]
        sampler = sampler_cls(keys, rng=2)
        out = sampler.sample_without_replacement(0.0, 29.0, 30)
        assert sorted(out) == keys

    def test_oversized_request_raises(self, sampler_cls):
        keys = [float(i) for i in range(10)]
        sampler = sampler_cls(keys, rng=3)
        with pytest.raises(EmptyQueryError):
            sampler.sample_without_replacement(0.0, 4.0, 6)

    def test_empty_range_raises(self, sampler_cls):
        sampler = sampler_cls([1.0, 2.0], rng=4)
        with pytest.raises(EmptyQueryError):
            sampler.sample_without_replacement(5.0, 6.0, 1)

    def test_weighted_wor_distinct(self, sampler_cls):
        keys = [float(i) for i in range(40)]
        weights = [1.0 + (i % 7) for i in range(40)]
        sampler = sampler_cls(keys, weights, rng=5)
        out = sampler.sample_without_replacement(5.0, 35.0, 15)
        assert len(set(out)) == 15


class TestWoRDistribution:
    def test_uniform_wor_marginals(self):
        # Each element of a 5-key range appears in a size-2 WoR sample
        # with probability 2/5.
        keys = [float(i) for i in range(20)]
        sampler = ChunkedRangeSampler(keys, rng=6)
        counts = Counter()
        trials = 15_000
        for _ in range(trials):
            counts.update(sampler.sample_without_replacement(5.0, 9.0, 2))
        for key in (5.0, 6.0, 7.0, 8.0, 9.0):
            frequency = counts[key] / trials
            assert abs(frequency - 0.4) < 0.03

    def test_repeated_wor_queries_independent(self):
        # Unlike the §2 dependent structure, the IQS WoR wrapper returns
        # fresh sets across repeats.
        keys = [float(i) for i in range(100)]
        sampler = ChunkedRangeSampler(keys, rng=7)
        outputs = {
            tuple(sorted(sampler.sample_without_replacement(0.0, 99.0, 5)))
            for _ in range(20)
        }
        assert len(outputs) > 15
