"""Unit tests for set-union sampling (paper §7, Theorem 8)."""

import pytest

from repro.apps.workloads import overlapping_sets, skewed_set_family
from repro.core.naive import NaiveSetUnionSampler
from repro.core.set_union import SetUnionSampler
from repro.errors import BuildError, EmptyQueryError
from repro.stats.tests import chi_square_weighted_pvalue

ALPHA = 1e-6


class TestConstruction:
    def test_empty_family_rejected(self):
        with pytest.raises(BuildError):
            SetUnionSampler([])

    def test_all_empty_sets_rejected(self):
        with pytest.raises(BuildError):
            SetUnionSampler([[], []])

    def test_duplicates_within_a_set_collapse(self):
        sampler = SetUnionSampler([[1, 1, 2]], rng=1)
        assert sampler.total_size == 2

    def test_sizes(self):
        sampler = SetUnionSampler([[1, 2, 3], [3, 4]], rng=1)
        assert sampler.total_size == 5  # n: sum of set sizes
        assert sampler.universe_size == 4  # U: distinct elements


class TestEstimates:
    def test_estimate_within_factor(self):
        family = overlapping_sets(20, 200, 1000, rng=2)
        sampler = SetUnionSampler(family, rng=3)
        group = [0, 3, 7, 11, 19]
        exact = sampler.exact_union_size(group)
        estimate = sampler.union_size_estimate(group)
        assert exact / 2 <= estimate <= 1.5 * exact

    def test_small_sets_get_on_the_fly_sketches(self):
        family = [[1, 2], [3], list(range(100))]
        sampler = SetUnionSampler(family, rng=4)
        estimate = sampler.union_size_estimate([0, 1])
        assert estimate == pytest.approx(3.0)  # below k, the sketch is exact

    def test_empty_group_raises(self):
        sampler = SetUnionSampler([[1, 2]], rng=5)
        with pytest.raises(EmptyQueryError):
            sampler.union_size_estimate([])


class TestSampling:
    def test_sample_belongs_to_union(self):
        family = [[1, 2, 3], [3, 4, 5], [10, 11]]
        sampler = SetUnionSampler(family, rng=6)
        for _ in range(50):
            assert sampler.sample([0, 1]) in {1, 2, 3, 4, 5}

    def test_empty_group_raises(self):
        sampler = SetUnionSampler([[1]], rng=7)
        with pytest.raises(EmptyQueryError):
            sampler.sample([])

    def test_union_of_empty_sets_raises(self):
        sampler = SetUnionSampler([[1], []], rng=7)
        with pytest.raises(EmptyQueryError):
            sampler.sample([1])

    def test_bad_set_index_raises(self):
        sampler = SetUnionSampler([[1]], rng=7)
        with pytest.raises(IndexError):
            sampler.sample([5])

    @pytest.mark.slow
    def test_uniform_over_overlapping_union(self):
        # Heavy overlap: naive "pick set then member" would bias toward
        # elements in many sets; Theorem 8 must stay uniform.
        # Slow: 30k scalar draws; the batch path's uniformity over the same
        # family is covered by tests/core/test_batch_kernels.py.
        family = [[1, 2, 3, 4, 5], [4, 5, 6], [5, 6, 7]]
        sampler = SetUnionSampler(family, rng=8)
        samples = [sampler.sample([0, 1, 2]) for _ in range(30_000)]
        target = {element: 1.0 for element in range(1, 8)}
        assert chi_square_weighted_pvalue(samples, target) > ALPHA

    def test_uniform_single_set(self):
        sampler = SetUnionSampler([[10, 20, 30]], rng=9)
        samples = sampler.sample_many([0], 20_000)
        target = {10: 1.0, 20: 1.0, 30: 1.0}
        assert chi_square_weighted_pvalue(samples, target) > ALPHA

    def test_skewed_family(self):
        family = skewed_set_family(12, 300, rng=10)
        sampler = SetUnionSampler(family, rng=11)
        group = list(range(len(family)))
        union = set().union(*[set(s) for s in family])
        out = sampler.sample_many(group, 100)
        assert all(element in union for element in out)

    def test_expected_attempts_scale_with_log(self):
        family = overlapping_sets(8, 100, 400, rng=12)
        sampler = SetUnionSampler(family, rng=13)
        sampler.sample_many([0, 1, 2, 3], 50)
        mean_attempts = sampler.total_attempts / sampler.total_queries
        # Θ(m) = Θ(c log n) expected repeats; generous envelope.
        assert mean_attempts < 20 * sampler.interval_cap


class TestRebuilding:
    def test_rebuild_after_n_queries(self):
        family = [[1, 2, 3], [4, 5]]
        sampler = SetUnionSampler(family, rng=14, rebuild_after=5)
        for _ in range(12):
            sampler.sample([0, 1])
        assert sampler.rebuild_count >= 2

    def test_rebuild_disabled(self):
        family = [[1, 2, 3]]
        sampler = SetUnionSampler(family, rng=15, rebuild_after=0)
        for _ in range(10):
            sampler.sample([0])
        assert sampler.rebuild_count == 0

    def test_rebuild_preserves_distribution(self):
        family = [[1, 2], [2, 3]]
        sampler = SetUnionSampler(family, rng=16, rebuild_after=100)
        samples = sampler.sample_many([0, 1], 30_000)
        target = {1: 1.0, 2: 1.0, 3: 1.0}
        assert chi_square_weighted_pvalue(samples, target) > ALPHA


class TestNaiveBaseline:
    def test_matches_union(self):
        naive = NaiveSetUnionSampler([[1, 2], [2, 3]], rng=17)
        assert naive.sample([0, 1]) in {1, 2, 3}

    def test_uniformity(self):
        naive = NaiveSetUnionSampler([[1, 2, 3], [3, 4]], rng=18)
        samples = naive.sample_many([0, 1], 20_000)
        target = {element: 1.0 for element in range(1, 5)}
        assert chi_square_weighted_pvalue(samples, target) > ALPHA

    def test_empty_union_raises(self):
        naive = NaiveSetUnionSampler([[], [1]], rng=19)
        with pytest.raises(EmptyQueryError):
            naive.sample([0])
