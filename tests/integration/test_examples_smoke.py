"""The shipped examples must keep running (fast ones, as subprocesses)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str) -> str:
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    return completed.stdout


class TestExamples:
    def test_quickstart(self):
        output = run_example("quickstart.py")
        assert "IQS (Theorem 3)" in output
        assert "identical set every time" in output

    def test_diverse_recommendations(self):
        output = run_example("diverse_recommendations.py")
        assert "stuck forever" in output
        assert "distinct restaurants" in output

    @pytest.mark.parametrize(
        "name",
        [
            pytest.param("selectivity_estimation.py", marks=pytest.mark.slow),
            "external_memory_demo.py",
        ],
    )
    def test_other_fast_examples(self, name):
        output = run_example(name)
        assert output.strip()
