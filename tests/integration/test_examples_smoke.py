"""The shipped examples must keep running (all of them, as subprocesses).

Every example honours ``REPRO_EXAMPLE_QUICK=1`` (small instance sizes,
same code paths), so the full set smoke-runs in seconds. A couple of
content assertions on the cheapest scripts guard the narrative output the
README quotes.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"
SRC = Path(__file__).resolve().parents[2] / "src"

ALL_EXAMPLES = [
    "quickstart.py",
    "diverse_recommendations.py",
    "selectivity_estimation.py",
    "external_memory_demo.py",
    "fair_near_neighbor.py",
    "spatial_sampling.py",
    "table_analytics.py",
]


def run_example(name: str, quick: bool = True) -> str:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    if quick:
        env["REPRO_EXAMPLE_QUICK"] = "1"
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=240,
        env=env,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    return completed.stdout


def test_example_set_is_complete():
    assert sorted(ALL_EXAMPLES) == sorted(p.name for p in EXAMPLES.glob("*.py"))


@pytest.mark.parametrize("name", ALL_EXAMPLES)
def test_example_runs_quick(name):
    assert run_example(name).strip()


class TestExampleContent:
    def test_quickstart(self):
        output = run_example("quickstart.py")
        assert "IQS (Theorem 3)" in output
        assert "identical set every time" in output

    def test_diverse_recommendations(self):
        output = run_example("diverse_recommendations.py")
        assert "stuck forever" in output
        assert "distinct restaurants" in output

    @pytest.mark.slow
    def test_quickstart_full_size(self):
        output = run_example("quickstart.py", quick=False)
        assert "IQS (Theorem 3)" in output
