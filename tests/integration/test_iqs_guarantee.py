"""Integration tests of the *defining* IQS property (paper eq. 1):
repeated queries must yield independent outputs for every IQS structure,
and the §2 baseline must visibly fail the same diagnostics."""

import pytest

from repro.core.approx_coverage import ApproxCoverSampler, ComplementRangeIndex
from repro.core.coverage import BSTIndex, CoverageSampler
from repro.core.dependent import DependentRangeSampler
from repro.core.range_sampler import ChunkedRangeSampler
from repro.core.set_union import SetUnionSampler
from repro.stats.independence import (
    lag_independence_pvalue,
    repeat_query_distinct_fraction,
)

KEYS = [float(i) for i in range(16)]
REPS = 6000


def iqs_drawers():
    chunked = ChunkedRangeSampler(KEYS, rng=1)
    coverage = CoverageSampler(BSTIndex(KEYS), rng=2)
    complement = ApproxCoverSampler(ComplementRangeIndex(KEYS), rng=3)
    union = SetUnionSampler([[0, 1, 2, 3], [2, 3, 4, 5]], rng=4)
    return {
        "theorem3": lambda: chunked.sample(2.0, 13.0, 1)[0],
        "theorem5": lambda: coverage.sample((2.0, 13.0), 1)[0],
        "theorem6": lambda: complement.sample((6.0, 9.0), 1)[0],
        "theorem8": lambda: union.sample([0, 1]),
    }


class TestIQSStructuresPass:
    @pytest.mark.parametrize("name", ["theorem3", "theorem5", "theorem6", "theorem8"])
    def test_lag_independence(self, name):
        draw = iqs_drawers()[name]
        outputs = [draw() for _ in range(REPS)]
        assert lag_independence_pvalue(outputs) > 1e-6, name

    @pytest.mark.parametrize("name", ["theorem3", "theorem5", "theorem6", "theorem8"])
    def test_repeats_produce_fresh_samples(self, name):
        draw = iqs_drawers()[name]
        # Result sets have ≥ 6 elements; 40 repeats must surface several.
        distinct = {draw() for _ in range(40)}
        assert len(distinct) >= 3, name


class TestDependentBaselineFails:
    def test_distinct_fraction_collapses(self):
        sampler = DependentRangeSampler(KEYS, rng=5)
        fraction = repeat_query_distinct_fraction(
            lambda: sampler.sample_without_replacement(2.0, 13.0, 1)[0], 50
        )
        assert fraction == pytest.approx(1 / 50)

    def test_identical_repeated_outputs(self):
        sampler = DependentRangeSampler(KEYS, rng=6)
        outputs = {
            tuple(sampler.sample_without_replacement(0.0, 15.0, 4)) for _ in range(25)
        }
        assert len(outputs) == 1
