"""The experiment harness itself must not rot: structure checks on the
fast experiments in quick mode."""

import pytest

from repro.experiments.runner import (
    ALL_EXPERIMENTS,
    ExperimentResult,
    run_experiment,
)


class TestRunner:
    def test_registry_is_complete(self):
        assert len(ALL_EXPERIMENTS) == 17

    def test_unknown_id_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("e99")

    @pytest.mark.parametrize("experiment_id", ALL_EXPERIMENTS)
    def test_every_experiment_runs_quick(self, experiment_id):
        result = run_experiment(experiment_id, quick=True)
        assert isinstance(result, ExperimentResult)
        assert result.experiment_id == experiment_id
        assert result.rows, "experiment produced no rows"
        for row in result.rows:
            assert len(row) == len(result.columns)

    def test_render_contains_claim_and_rows(self):
        result = run_experiment("e4", quick=True)
        rendered = result.render()
        assert "claim:" in rendered
        assert result.title in rendered
        assert len(rendered.splitlines()) >= 5 + len(result.rows)


class TestResultFormatting:
    def test_add_row_and_note(self):
        result = ExperimentResult(
            experiment_id="eX",
            title="t",
            claim="c",
            columns=["a", "b"],
        )
        result.add_row(1, 2.5)
        result.add_note("hello")
        rendered = result.render()
        assert "hello" in rendered
        assert "2.5" in rendered

    def test_float_formatting(self):
        result = ExperimentResult("eX", "t", "c", ["v"])
        result.add_row(123456.789)
        result.add_row(0.000012)
        rendered = result.render()
        assert "1.23e+05" in rendered
        assert "1.2e-05" in rendered
