"""Dominance / 3-sided queries as Theorem-5 instances.

The kd-tree and quadtree cover finders accept rectangles with unbounded
sides, so dominance reporting ("all points with x ≤ a and y ≤ b") and
3-sided queries get IQS for free — the footnote-2 family of top-k/range
workloads.
"""

import math

import pytest

from repro.apps.workloads import uniform_points
from repro.core.coverage import CoverageSampler
from repro.substrates.kdtree import KDTree
from repro.substrates.rangetree import RangeTree
from repro.stats.tests import chi_square_weighted_pvalue

ALPHA = 1e-6
INF = math.inf


class TestDominance:
    def test_dominance_cover_matches_brute_force(self):
        points = uniform_points(400, 2, rng=1)
        tree = KDTree(points, leaf_size=4)
        sampler = CoverageSampler(tree, rng=2)
        rect = [(-INF, 0.4), (-INF, 0.7)]
        expected = sum(1 for p in points if p[0] <= 0.4 and p[1] <= 0.7)
        assert sampler.result_size(rect) == expected

    def test_dominance_samples_valid(self):
        points = uniform_points(300, 2, rng=3)
        sampler = CoverageSampler(KDTree(points, leaf_size=4), rng=4)
        rect = [(-INF, 0.5), (-INF, 0.5)]
        for point in sampler.sample(rect, 100):
            assert point[0] <= 0.5 and point[1] <= 0.5

    def test_three_sided_query(self):
        points = uniform_points(300, 2, rng=5)
        sampler = CoverageSampler(KDTree(points, leaf_size=4), rng=6)
        rect = [(0.2, 0.8), (0.5, INF)]  # x-range, y above threshold
        for point in sampler.sample(rect, 100):
            assert 0.2 <= point[0] <= 0.8 and point[1] >= 0.5

    def test_three_sided_uniformity(self):
        points = uniform_points(80, 2, rng=7)
        sampler = CoverageSampler(KDTree(points, leaf_size=2), rng=8)
        rect = [(0.0, 1.0), (0.3, INF)]
        matching = [p for p in points if p[1] >= 0.3]
        assert len(matching) >= 10
        samples = sampler.sample(rect, 30_000)
        target = {p: 1.0 for p in matching}
        assert chi_square_weighted_pvalue(samples, target) > ALPHA

    def test_range_tree_dominance(self):
        points = uniform_points(200, 2, rng=9)
        sampler = CoverageSampler(RangeTree(points), rng=10)
        rect = [(-INF, 0.6), (-INF, 0.6)]
        expected = sum(1 for p in points if p[0] <= 0.6 and p[1] <= 0.6)
        assert sampler.result_size(rect) == expected

    def test_3d_dominance(self):
        points = uniform_points(200, 3, rng=11)
        sampler = CoverageSampler(KDTree(points, leaf_size=4), rng=12)
        rect = [(-INF, 0.5)] * 3
        expected = sum(1 for p in points if all(c <= 0.5 for c in p))
        if expected == 0:
            pytest.skip("degenerate draw")
        assert sampler.result_size(rect) == expected
