"""Cheap operation-count checks of the theorems' complexity *shapes*.

Timing is noisy in CI, so these tests count structural work (cover sizes,
attempts, I/Os) rather than wall-clock — the benchmarks in benchmarks/ do
the timing.
"""

import math

from repro.apps.workloads import uniform_points
from repro.core.approx_coverage import ComplementRangeIndex
from repro.core.coverage import BSTIndex, CoverageSampler
from repro.core.set_union import SetUnionSampler
from repro.em.model import EMMachine
from repro.em.sample_pool import SamplePoolSetSampler
from repro.em.lower_bound import set_sampling_lower_bound
from repro.substrates.kdtree import KDTree


class TestCoverSizes:
    def test_bst_cover_grows_logarithmically(self):
        sizes = {}
        for exponent in (8, 12, 16):
            n = 1 << exponent
            sampler = CoverageSampler(BSTIndex([float(i) for i in range(n)]), rng=1)
            sizes[exponent] = sampler.cover_size((1.0, n - 2.0))
        # Doubling the exponent should roughly double the cover, far from
        # the 256× a linear structure would show.
        assert sizes[16] <= 3 * sizes[8]

    def test_kdtree_cover_grows_like_sqrt(self):
        sizes = {}
        for n in (1 << 8, 1 << 12):
            points = uniform_points(n, 2, rng=2)
            tree = KDTree(points, leaf_size=1)
            sampler = CoverageSampler(tree, rng=3)
            sizes[n] = sampler.cover_size([(0.25, 0.75), (0.25, 0.75)])
        # n grew 16×; √n grows 4×; linear would grow 16×.
        assert sizes[1 << 12] <= 8 * sizes[1 << 8]

    def test_complement_cover_constant(self):
        for exponent in (8, 12, 16):
            n = 1 << exponent
            index = ComplementRangeIndex([float(i) for i in range(n)])
            cover = index.find_approximate_cover((n * 0.25, n * 0.75))
            assert len(cover.spans) <= 2


class TestSetUnionWork:
    def test_attempts_independent_of_union_size(self):
        # Theorem 8: query cost depends on g and log n, not on |∪G|.
        means = {}
        for scale in (200, 2000):
            family = [list(range(i * scale, (i + 1) * scale)) for i in range(4)]
            sampler = SetUnionSampler(family, rng=4)
            sampler.sample_many([0, 1, 2, 3], 30)
            means[scale] = sampler.total_attempts / sampler.total_queries
        # 10× more data must not mean ~10× more attempts; allow log-factor
        # drift plus sampling noise.
        assert means[2000] <= 4 * means[200] + 10


class TestEMBounds:
    def test_pool_matches_lower_bound_shape(self):
        n, B = 4096, 32
        machine = EMMachine(block_size=B, memory_blocks=4)
        sampler = SamplePoolSetSampler(machine, list(range(n)), rng=5)
        machine.drop_cache()
        start = machine.stats.total
        queries, s = 8, 128
        for _ in range(queries):
            sampler.query(s)
        measured_per_query = (machine.stats.total - start) / queries
        lower = set_sampling_lower_bound(s, n, B, machine.M)
        # Measured cost sits between the lower bound and a constant
        # multiple of it — never anywhere near the naive Θ(s).
        assert measured_per_query <= 12 * lower + 8
        assert measured_per_query < s / 2

    def test_naive_violates_pool_bound(self):
        from repro.em.sample_pool import NaiveEMSetSampler

        n, B, s = 4096, 32, 128
        machine = EMMachine(block_size=B, memory_blocks=4)
        naive = NaiveEMSetSampler(machine, list(range(n)), rng=6)
        machine.drop_cache()
        start = machine.stats.total
        naive.query(s)
        assert machine.stats.total - start > 4 * set_sampling_lower_bound(
            s, n, B, machine.M
        )


class TestLogFactors:
    def test_chunk_count_matches_theory(self):
        from repro.core.range_sampler import ChunkedRangeSampler

        for exponent in (10, 14):
            n = 1 << exponent
            sampler = ChunkedRangeSampler([float(i) for i in range(n)])
            expected_chunks = math.ceil(n / int(math.log2(n)))
            assert sampler.num_chunks == expected_chunks
