"""Integration tests: different IQS structures must agree with each other
and with the naive baseline on the same workload."""

import pytest

from repro.apps.workloads import distinct_uniform_reals, zipf_weights
from repro.core.coverage import BSTIndex, CoverageSampler
from repro.core.naive import NaiveRangeSampler
from repro.core.range_sampler import (
    AliasAugmentedRangeSampler,
    ChunkedRangeSampler,
    TreeWalkRangeSampler,
)
from repro.stats.tests import chi_square_weighted_pvalue

ALPHA = 1e-6


@pytest.fixture(scope="module")
def workload():
    keys = distinct_uniform_reals(300, rng=1)
    weights = zipf_weights(300, alpha=0.8, rng=2)
    return keys, weights


def all_samplers(keys, weights):
    return {
        "treewalk": TreeWalkRangeSampler(keys, weights, rng=11),
        "lemma2": AliasAugmentedRangeSampler(keys, weights, rng=12),
        "theorem3": ChunkedRangeSampler(keys, weights, rng=13),
        "naive": NaiveRangeSampler(keys, weights, rng=14),
        "theorem5": CoverageSampler(BSTIndex(keys, weights), rng=15),
    }


class TestAgreement:
    def test_all_structures_same_distribution(self, workload):
        keys, weights = workload
        x, y = keys[40], keys[260]
        in_range = {
            keys[i]: weights[i] for i in range(len(keys)) if x <= keys[i] <= y
        }
        for name, sampler in all_samplers(keys, weights).items():
            if name == "theorem5":
                samples = sampler.sample((x, y), 25_000)
            else:
                samples = sampler.sample(x, y, 25_000)
            p_value = chi_square_weighted_pvalue(samples, in_range)
            assert p_value > ALPHA, f"{name} deviates (p={p_value})"

    def test_narrow_query_agreement(self, workload):
        keys, weights = workload
        x, y = keys[100], keys[104]
        expected = {keys[i] for i in range(100, 105)}
        for name, sampler in all_samplers(keys, weights).items():
            if name == "theorem5":
                out = sampler.sample((x, y), 300)
            else:
                out = sampler.sample(x, y, 300)
            assert set(out) <= expected, name


class TestSharedRNG:
    def test_structures_can_share_one_generator(self):
        # The IQS guarantee must survive several structures drawing from
        # one RNG stream (the realistic deployment).
        import random

        shared = random.Random(99)
        keys = [float(i) for i in range(50)]
        a = ChunkedRangeSampler(keys, rng=shared)
        b = AliasAugmentedRangeSampler(keys, rng=shared)
        for _ in range(20):
            assert 10.0 <= a.sample(10.0, 40.0, 1)[0] <= 40.0
            assert 20.0 <= b.sample(20.0, 30.0, 1)[0] <= 30.0
