"""Bucket-interpolated histogram quantiles: math, snapshot, exposition."""

import pytest

from repro.obs.export import to_prometheus
from repro.obs.registry import Histogram, MetricsRegistry


class TestQuantileMath:
    def test_empty_histogram_returns_zero(self):
        assert Histogram("h", buckets=[1.0, 2.0]).quantile(0.5) == 0.0

    def test_rejects_out_of_range_q(self):
        hist = Histogram("h", buckets=[1.0])
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            hist.quantile(1.5)
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            hist.quantile(-0.01)

    def test_interpolates_within_bucket(self):
        # 10 observations all landing in the (10, 20] bucket: the median
        # interpolates halfway through it.
        hist = Histogram("h", buckets=[10.0, 20.0, 30.0])
        for _ in range(10):
            hist.observe(15.0)
        assert hist.quantile(0.5) == pytest.approx(15.0)
        assert hist.quantile(1.0) == pytest.approx(20.0)

    def test_first_bucket_lower_edge_is_zero(self):
        # Prometheus histogram_quantile semantics: interpolation in the
        # first bucket starts from 0, not from the smallest observation.
        hist = Histogram("h", buckets=[8.0, 16.0])
        for _ in range(4):
            hist.observe(1.0)
        assert hist.quantile(0.5) == pytest.approx(4.0)

    def test_crosses_buckets_cumulatively(self):
        hist = Histogram("h", buckets=[1.0, 2.0, 4.0])
        for value in [0.5, 0.5, 1.5, 1.5, 3.0, 3.0, 3.0, 3.0]:
            hist.observe(value)
        # 8 observations: p50 target = 4th, which closes the (1, 2] bucket.
        assert hist.quantile(0.5) == pytest.approx(2.0)
        # p25 target = 2nd, closing the first bucket.
        assert hist.quantile(0.25) == pytest.approx(1.0)

    def test_overflow_clamps_to_largest_finite_bound(self):
        hist = Histogram("h", buckets=[1.0, 2.0])
        for _ in range(5):
            hist.observe(100.0)  # all in the +Inf bucket
        assert hist.quantile(0.99) == 2.0

    def test_monotone_in_q(self):
        hist = Histogram("h")
        for index in range(100):
            hist.observe(float(index * 37 % 1000))
        qs = [hist.quantile(q / 20) for q in range(21)]
        assert qs == sorted(qs)

    def test_tracks_exact_quantiles_on_uniform_data(self):
        # Power-of-two buckets on uniform data: the estimate must land
        # within the true value's bucket.
        hist = Histogram("h")
        values = [float(v) for v in range(1, 1001)]
        for value in values:
            hist.observe(value)
        for q, exact in [(0.5, 500.0), (0.9, 900.0), (0.99, 990.0)]:
            estimate = hist.quantile(q)
            assert exact / 2 <= estimate <= exact * 2


class TestQuantileSurfacing:
    def test_snapshot_carries_p50_p90_p99(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat.us")
        for value in [10.0, 20.0, 40.0, 800.0]:
            hist.observe(value)
        data = registry.snapshot()["histograms"]["lat.us"]
        assert data["p50"] == hist.quantile(0.50)
        assert data["p90"] == hist.quantile(0.90)
        assert data["p99"] == hist.quantile(0.99)

    def test_prometheus_exports_quantile_gauges(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat.us", "request latency")
        for value in [10.0, 20.0, 40.0, 800.0]:
            hist.observe(value)
        text = to_prometheus(registry.snapshot())
        assert "# TYPE repro_lat_us_p50 gauge" in text
        assert f"repro_lat_us_p99 {hist.quantile(0.99)!r}" in text
