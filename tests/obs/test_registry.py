"""Unit tests for the repro.obs registry, spans, and exporters."""

import json
import math

import pytest

from repro import obs
from repro.obs.export import to_json, to_prometheus, write_sidecar
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    DERIVED_RATIOS,
    SPAN_BUFFER,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_inc_and_add(self):
        c = Counter("x")
        c.inc()
        c.add(4)
        assert c.value == 5

    def test_negative_add_rejected(self):
        c = Counter("x")
        with pytest.raises(ValueError):
            c.add(-1)

    def test_reset(self):
        c = Counter("x")
        c.add(7)
        c.reset()
        assert c.value == 0


class TestGauge:
    def test_set_add(self):
        g = Gauge("g")
        g.set(2.5)
        g.add(-1.0)
        assert g.value == 1.5


class TestHistogram:
    def test_observe_and_mean(self):
        h = Histogram("h", buckets=[1, 2, 4])
        for v in (0.5, 1.5, 3.0, 100.0):
            h.observe(v)
        assert h.count == 4
        assert h.mean() == pytest.approx((0.5 + 1.5 + 3.0 + 100.0) / 4)

    def test_bucket_pairs_cumulative(self):
        h = Histogram("h", buckets=[1, 2, 4])
        for v in (0.5, 1.5, 3.0, 100.0):
            h.observe(v)
        pairs = h.bucket_pairs()
        assert pairs[-1] == (float("inf"), 4)
        counts = [c for _, c in pairs]
        assert counts == sorted(counts)  # cumulative => nondecreasing

    def test_default_buckets_are_powers_of_two(self):
        assert DEFAULT_BUCKETS[0] == 1.0
        assert all(b == 2 * a for a, b in zip(DEFAULT_BUCKETS, DEFAULT_BUCKETS[1:]))

    def test_empty_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=[])


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        r = MetricsRegistry()
        assert r.counter("a") is r.counter("a")

    def test_cross_type_name_collision_rejected(self):
        r = MetricsRegistry()
        r.counter("a")
        with pytest.raises(ValueError):
            r.gauge("a")

    def test_value_of_unknown_name_is_zero(self):
        assert MetricsRegistry().value("nope") == 0

    def test_snapshot_shape(self):
        r = MetricsRegistry()
        r.counter("c").inc()
        r.gauge("g").set(3)
        r.histogram("h").observe(2)
        snap = r.snapshot()
        assert snap["counters"] == {"c": 1}
        assert snap["gauges"] == {"g": 3.0}
        assert snap["histograms"]["h"]["count"] == 1
        assert set(snap["derived"]) == {name for name, _, _ in DERIVED_RATIOS}
        assert "spans" in snap

    def test_derived_none_on_zero_denominator(self):
        snap = MetricsRegistry().snapshot()
        # Nothing exercised: every ratio present but undefined.
        assert all(v is None for v in snap["derived"].values())

    def test_reset_keeps_registrations(self):
        r = MetricsRegistry()
        r.counter("c").add(5)
        r.reset()
        assert r.names()["counters"] == ["c"]
        assert r.value("c") == 0

    def test_span_buffer_bounded(self):
        r = MetricsRegistry()
        for i in range(SPAN_BUFFER + 10):
            r.record_span("q", float(i), {})
        spans = r.recent_spans()
        assert len(spans) == SPAN_BUFFER
        assert spans[-1]["us"] == float(SPAN_BUFFER + 9)


class TestEnablement:
    def test_enable_disable_roundtrip(self, metrics_off):
        assert not obs.enabled()
        obs.enable()
        assert obs.enabled()
        obs.disable()
        assert not obs.enabled()

    def test_scope_restores_prior_state(self, metrics_off):
        with obs.scope(True):
            assert obs.ENABLED
        assert not obs.ENABLED

    def test_span_is_noop_when_disabled(self, metrics_off):
        before = len(obs.REGISTRY.recent_spans())
        with obs.span("unit.test") as sp:
            sp.set(irrelevant=1)
        assert len(obs.REGISTRY.recent_spans()) == before

    def test_span_records_when_enabled(self, metrics_on):
        with obs.span("unit.test", tag="t") as sp:
            sp.set(extra=2)
        spans = obs.REGISTRY.recent_spans()
        assert spans[-1]["name"] == "unit.test"
        assert spans[-1]["attrs"]["tag"] == "t"
        assert spans[-1]["attrs"]["extra"] == 2
        assert spans[-1]["us"] >= 0.0


class TestExport:
    def _snapshot(self):
        r = MetricsRegistry()
        r.counter("alias.draws").add(3)
        r.gauge("pool.cursor").set(1.5)
        r.histogram("span.q.us", buckets=[1, 8]).observe(4.0)
        return r.snapshot()

    def test_json_roundtrip(self):
        text = to_json(self._snapshot())
        back = json.loads(text)
        assert back["counters"]["alias.draws"] == 3

    def test_prometheus_names_and_values(self):
        text = to_prometheus(self._snapshot())
        assert "repro_alias_draws_total 3" in text
        assert "repro_pool_cursor 1.5" in text
        assert 'repro_span_q_us_bucket{le="+Inf"} 1' in text
        assert "repro_span_q_us_count 1" in text

    def test_prometheus_none_derived_is_nan(self):
        text = to_prometheus(MetricsRegistry().snapshot())
        line = next(
            l
            for l in text.splitlines()
            if l.startswith("repro_derived_wor_rejections_per_draw ")
        )
        assert math.isnan(float(line.split()[-1]))

    def test_write_sidecar(self, tmp_path):
        path = tmp_path / "nested" / "metrics.json"
        write_sidecar(str(path), self._snapshot(), extra={"experiment": "e1"})
        data = json.loads(path.read_text())
        assert data["meta"]["experiment"] == "e1"
        assert data["metrics"]["counters"]["alias.draws"] == 3

    def test_global_snapshot_carries_enabled_flag(self, metrics_on):
        assert obs.snapshot()["enabled"] is True
