"""Theorem-shaped counter assertions.

The paper's guarantees are *cost-shape* claims — expected O(1)
rejections per draw (Lemma-2-style analysis), O((1+s) log n) TreeWalk
node visits, ≤ s urn probes per Lemma-2 query, O(1 + s/B) I/Os per EM
query. The ``repro.obs`` counters record exactly those quantities, so
each claim is asserted on the counted primitive operations rather than
inferred from wall-clock curves.

All tests use the ``metrics_on`` fixture (enable + reset + restore), so
they are exact and deterministic under fixed seeds.
"""

import math

import pytest

from repro import obs
from repro.core.alias import AliasSampler
from repro.core.range_sampler import (
    AliasAugmentedRangeSampler,
    ChunkedRangeSampler,
    TreeWalkRangeSampler,
)
from repro.em.em_range_sampler import EMRangeSampler
from repro.em.model import EMMachine


def _keys(n):
    return [float(v) for v in range(n)]


class TestAliasDraws:
    def test_scalar_path_counts_exact(self, metrics_on):
        from repro.core import kernels

        sampler = AliasSampler(list(range(64)), [1.0 + (i % 3) for i in range(64)], rng=7)
        saved = kernels.HAVE_NUMPY
        kernels.HAVE_NUMPY = False
        try:
            sampler.sample_many(100)
            sampler.sample()
        finally:
            kernels.HAVE_NUMPY = saved
        assert obs.value("alias.draws") == 101

    def test_batch_path_counts_exact(self, metrics_on):
        pytest.importorskip("numpy")
        from repro.core import kernels

        if not kernels.HAVE_NUMPY:
            pytest.skip("numpy kernels disabled")
        sampler = AliasSampler(list(range(64)), rng=7)
        sampler.sample_many(5000)
        assert obs.value("alias.draws") == 5000


class TestWorRejectionsBounded:
    """Mean rejection-loop iterations per WoR draw stay O(1) across n.

    With uniform weights and ``s = |S_q| / 10`` the acceptance
    probability never falls below 0.9, so rejections/draw is expected
    ≈ 0.06 and certainly below 0.5 — and, critically, it does NOT grow
    with n (the bound is a constant, not a function of the input size).
    """

    BOUND = 0.5

    @pytest.mark.parametrize("n", [1_000, 10_000, 100_000])
    def test_rejections_per_draw_constant(self, metrics_on, n):
        sampler = AliasAugmentedRangeSampler(_keys(n), rng=11)
        s = n // 10
        sampler.sample_without_replacement(0.0, float(n), s)
        draws = obs.value("wor.draws")
        rejections = obs.value("wor.rejections")
        assert draws == s
        assert rejections / draws < self.BOUND

    def test_ratio_in_derived_snapshot(self, metrics_on):
        sampler = AliasAugmentedRangeSampler(_keys(2_000), rng=11)
        sampler.sample_without_replacement(0.0, 2_000.0, 100)
        ratio = obs.snapshot()["derived"]["wor.rejections_per_draw"]
        assert ratio is not None and ratio < self.BOUND


class TestTreeWalkVisits:
    """Node visits per query obey the §3.2 bound O((1+s) log n)."""

    @pytest.mark.parametrize("n", [1_024, 16_384, 131_072])
    def test_visits_within_logarithmic_bound(self, metrics_on, n):
        s = 16
        sampler = TreeWalkRangeSampler(_keys(n), rng=5)
        queries = 8
        for q in range(queries):
            sampler.sample(float(q), float(q) + n / 2.0, s)
        visits = obs.value("range.treewalk.node_visits")
        assert obs.value("range.treewalk.queries") == queries
        per_query = visits / queries
        bound = 3.0 * (1 + s) * (math.log2(n) + 2)
        assert 0 < per_query <= bound

    def test_visits_grow_logarithmically_not_linearly(self, metrics_on):
        per_query = {}
        for n in (1_024, 131_072):
            obs.reset()
            sampler = TreeWalkRangeSampler(_keys(n), rng=5)
            sampler.sample(0.0, float(n), 16)
            per_query[n] = obs.value("range.treewalk.node_visits")
        # 128x more keys → at most ~2.2x more visits (log ratio is 17/10);
        # a linear-cost walk would scale by ~128x.
        assert per_query[131_072] <= 4 * per_query[1_024]


class TestLemma2Probes:
    def test_probes_at_most_draws(self, metrics_on):
        """Each Lemma-2 draw probes at most one per-node urn (≤ s/query)."""
        sampler = AliasAugmentedRangeSampler(_keys(8_192), rng=3)
        s = 64
        for q in range(8):
            sampler.sample(float(q * 100), float(q * 100) + 4_000.0, s)
        probes = obs.value("range.lemma2.urn_probes")
        draws = obs.value("range.lemma2.draws")
        assert draws == 8 * s
        assert 0 < probes <= draws


class TestChunkedTouches:
    def test_touches_bounded_by_s_plus_partials(self, metrics_on):
        sampler = ChunkedRangeSampler(_keys(8_192), rng=4)
        s = 32
        queries = 8
        for q in range(queries):
            sampler.sample(float(q * 50), float(q * 50) + 4_000.0, s)
        touches = obs.value("range.chunked.chunk_touches")
        # At most one chunk per draw plus the two boundary partials.
        assert 0 < touches <= queries * (s + 2)


class TestPlanCache:
    def test_hit_rate_appears_in_derived(self, metrics_on):
        sampler = AliasAugmentedRangeSampler(_keys(4_096), rng=9)
        for _ in range(10):
            sampler.sample(100.0, 3_000.0, 8)
        snap = obs.snapshot()
        assert obs.value("plan_cache.misses") >= 1
        assert obs.value("plan_cache.hits") >= 9
        hit_rate = snap["derived"]["plan_cache.hit_rate"]
        assert hit_rate is not None and hit_rate >= 0.9


class TestEMAccounting:
    def _run_queries(self, queries=8, s=32):
        machine = EMMachine(block_size=16, memory_blocks=4)
        sampler = EMRangeSampler(machine, _keys(1_024), rng=2, pool_blocks=2)
        for q in range(queries):
            sampler.query(float(q), float(q) + 512.0, s)
        return machine

    def test_ios_per_query_derived(self, metrics_on):
        machine = self._run_queries()
        snap = obs.snapshot()
        assert obs.value("em.queries") == 8
        # Registry mirrors the per-machine counters exactly.
        assert obs.value("em.block_reads") == machine.stats.reads
        assert obs.value("em.block_writes") == machine.stats.writes
        assert snap["derived"]["em.ios_per_query"] is not None
        assert snap["derived"]["em.ios_per_query"] > 0

    def test_reset_clears_stale_io_counts(self, metrics_on):
        """Consecutive experiments must not accumulate stale I/O counts."""
        machine = self._run_queries()
        assert obs.value("em.block_reads") > 0
        obs.reset()
        machine.stats.reset()
        assert obs.value("em.block_reads") == 0
        assert obs.value("em.queries") == 0
        assert machine.stats.total == 0
        assert machine.stats.history == []
        # A fresh window counts only its own work.
        self._run_queries(queries=2)
        assert obs.value("em.queries") == 2


@pytest.mark.slow
class TestExperimentSnapshots:
    """Acceptance shape: E1/E3/E9 runs yield the headline derived ratios."""

    def test_e1_e3_e9_quick_produce_required_ratios(self, metrics_on):
        from repro.experiments.runner import run_experiment

        derived = {}
        for experiment_id in ("e1", "e3", "e9"):
            result = run_experiment(experiment_id, quick=True)
            assert result.metrics is not None
            for name, value in result.metrics["derived"].items():
                if value is not None:
                    derived[name] = value
        assert "wor.rejections_per_draw" in derived or "range.lemma2.urn_probes_per_query" in derived
        assert "range.treewalk.node_visits_per_query" in derived
        assert "plan_cache.hit_rate" in derived
        assert "em.ios_per_query" in derived
