"""Harvest baseline/delta capture and registry merge semantics."""

import pickle

import pytest

from repro.obs.harvest import baseline, delta_since
from repro.obs.recorder import FlightRecorder
from repro.obs.registry import MetricsRegistry


def fresh():
    return MetricsRegistry(), FlightRecorder()


class TestDelta:
    def test_only_movers_appear(self):
        registry, recorder = fresh()
        moved = registry.counter("a.moved", "moved help")
        registry.counter("a.static")
        base = baseline(registry, recorder)
        moved.add(3)
        delta = delta_since(base, registry, recorder)
        assert delta["counters"] == {"a.moved": 3}
        assert delta["histograms"] == {}
        assert delta["help"] == {"a.moved": "moved help"}

    def test_histogram_delta_is_bucketwise(self):
        registry, recorder = fresh()
        hist = registry.histogram("h", buckets=[1.0, 10.0])
        hist.observe(0.5)
        base = baseline(registry, recorder)
        hist.observe(0.5)
        hist.observe(5.0)
        hist.observe(100.0)
        delta = delta_since(base, registry, recorder)["histograms"]["h"]
        assert delta["bounds"] == [1.0, 10.0]
        assert delta["counts"] == [1, 1, 1]  # le=1, le=10, +Inf — deltas only
        assert delta["count"] == 3
        assert delta["sum"] == pytest.approx(105.5)

    def test_gauge_delta_ships_current_value(self):
        registry, recorder = fresh()
        gauge = registry.gauge("g")
        gauge.set(2.0)
        base = baseline(registry, recorder)
        delta = delta_since(base, registry, recorder)
        assert delta["gauges"] == {}  # unchanged → absent
        gauge.set(7.0)
        delta = delta_since(base, registry, recorder)
        assert delta["gauges"] == {"g": 7.0}

    def test_spans_and_records_since_baseline(self):
        registry, recorder = fresh()
        registry.record_span("warm", 1.0, {})
        recorder.record(
            trace="t0", spec="x", op="sample", s=1, backend="serial",
            duration_us=1.0,
        )
        base = baseline(registry, recorder)
        registry.record_span("fresh", 2.0, {"trace": "t1"})
        recorder.record(
            trace="t1", spec="x", op="sample", s=1, backend="serial",
            duration_us=2.0,
        )
        delta = delta_since(base, registry, recorder)
        assert [s["name"] for s in delta["spans"]] == ["fresh"]
        assert [r["trace"] for r in delta["records"]] == ["t1"]

    def test_delta_is_picklable(self):
        registry, recorder = fresh()
        base = baseline(registry, recorder)
        registry.counter("c").inc()
        registry.histogram("h").observe(3.0)
        registry.record_span("op", 5.0, {"trace": "t"})
        delta = delta_since(base, registry, recorder)
        assert pickle.loads(pickle.dumps(delta)) == delta


class TestMerge:
    def roundtrip(self, mutate):
        """Capture a delta from one registry, merge into another."""
        source_registry, source_recorder = fresh()
        base = baseline(source_registry, source_recorder)
        mutate(source_registry, source_recorder)
        delta = delta_since(base, source_registry, source_recorder)
        target = MetricsRegistry()
        target.merge(delta)
        return target, delta

    def test_counters_sum(self):
        target, _ = self.roundtrip(lambda reg, rec: reg.counter("c").add(4))
        target.merge({"counters": {"c": 2}})
        assert target.value("c") == 6

    def test_negative_counter_delta_rejected(self):
        target = MetricsRegistry()
        with pytest.raises(ValueError, match="cannot decrease"):
            target.merge({"counters": {"c": -1}})

    def test_unknown_metrics_auto_register_with_help(self):
        target, _ = self.roundtrip(
            lambda reg, rec: reg.counter("worker.only", "worker-side help").inc()
        )
        assert target.value("worker.only") == 1
        assert target.help_strings()["worker.only"] == "worker-side help"

    def test_histograms_merge_bucketwise(self):
        def mutate(reg, rec):
            hist = reg.histogram("h", buckets=[1.0, 10.0])
            hist.observe(0.5)
            hist.observe(5.0)

        target, delta = self.roundtrip(mutate)
        target.merge(delta)  # merge the same delta twice: counts double
        hist = target.histogram("h")
        assert hist.count == 4
        assert hist.sum == pytest.approx(11.0)
        assert hist.quantile(1.0) == 10.0

    def test_mismatched_bucket_bounds_raise(self):
        target = MetricsRegistry()
        target.histogram("h", buckets=[1.0, 2.0])
        with pytest.raises(ValueError, match="bucket bounds"):
            target.merge(
                {
                    "histograms": {
                        "h": {
                            "bounds": [5.0, 50.0],
                            "counts": [1, 0, 0],
                            "count": 1,
                            "sum": 1.0,
                        }
                    }
                }
            )

    def test_merged_spans_do_not_reobserve_histograms(self):
        def mutate(reg, rec):
            reg.record_span("op", 5.0, {})

        target, delta = self.roundtrip(mutate)
        # The span histogram arrives once via the delta's histogram
        # section; appending the span record must not double it.
        assert target.histogram("span.op.us").count == 1
        assert len(target.recent_spans()) == 1
        assert target.span_total == 1

    def test_gauges_last_write(self):
        target = MetricsRegistry()
        target.gauge("g").set(1.0)
        target.merge({"gauges": {"g": 9.0}})
        assert target.value("g") == 9.0


class TestGlobalEntryPoint:
    def test_obs_merge_feeds_registry_and_recorder(self, metrics_on):
        source_registry, source_recorder = fresh()
        base = baseline(source_registry, source_recorder)
        source_registry.counter("harvested.c").add(2)
        source_recorder.record(
            trace="t9", spec="x", op="sample", s=1, backend="process",
            duration_us=3.0, worker=12345,
        )
        delta = delta_since(base, source_registry, source_recorder)
        metrics_on.merge(delta)
        assert metrics_on.value("harvested.c") == 2
        assert metrics_on.RECORDER.for_trace("t9")[0]["worker"] == 12345
