"""The disabled path must be free: no counts, no stream drift, no time.

Three contracts when ``REPRO_METRICS`` is off (the default):

1. Counters stay untouched — instrumented code never records.
2. Seeded sample streams are byte-identical to a metrics-on run —
   instrumentation never consumes randomness.
3. The guard overhead is within 5% of an instrumentation-absent build —
   measured against a hand-inlined twin of the scalar alias loop, the
   hottest instrumented call site.
"""

import time

from repro import obs
from repro.core.alias import AliasSampler, alias_draw
from repro.core.range_sampler import (
    AliasAugmentedRangeSampler,
    ChunkedRangeSampler,
    TreeWalkRangeSampler,
)
from repro.em.em_range_sampler import EMRangeSampler
from repro.em.model import EMMachine


def _keys(n):
    return [float(v) for v in range(n)]


def _workload(seed_base=100):
    """One pass over every instrumented sampler family; returns outputs."""
    out = {}
    keys = _keys(2_048)
    out["alias"] = AliasSampler(keys, rng=seed_base).sample_many(50)
    for name, cls in (
        ("treewalk", TreeWalkRangeSampler),
        ("lemma2", AliasAugmentedRangeSampler),
        ("chunked", ChunkedRangeSampler),
    ):
        sampler = cls(keys, rng=seed_base + 1)
        out[name] = sampler.sample(10.0, 1_500.0, 40)
        out[name + ".wor"] = sampler.sample_without_replacement(10.0, 1_500.0, 20)
    machine = EMMachine(block_size=16, memory_blocks=4)
    em = EMRangeSampler(machine, keys[:512], rng=seed_base + 2, pool_blocks=2)
    out["em"] = em.query(5.0, 300.0, 25)
    return out


class TestCountersUntouchedWhenDisabled:
    def test_no_counts_recorded(self, metrics_off):
        _workload()
        snap = obs.snapshot()
        assert snap["enabled"] is False
        assert all(v == 0 for v in snap["counters"].values())
        assert snap["spans"] == []

    def test_counts_recorded_when_enabled(self, metrics_on):
        _workload()
        counters = obs.snapshot()["counters"]
        for name in (
            "alias.draws",
            "range.treewalk.node_visits",
            "range.lemma2.urn_probes",
            "range.chunked.chunk_touches",
            "wor.draws",
            "em.block_reads",
            "em.queries",
            "bst.covers",
        ):
            assert counters[name] > 0, name


class TestStreamsIdentical:
    def test_seeded_outputs_byte_identical_on_and_off(self):
        saved = obs.ENABLED
        try:
            obs.disable()
            off = _workload()
            obs.enable()
            obs.reset()
            on = _workload()
        finally:
            obs.reset()
            (obs.enable if saved else obs.disable)()
        assert off == on


def _best_of_interleaved(fn_a, fn_b, repeats=9):
    """Best-of timings of two callables, measured alternately.

    Alternating the measurements round-by-round (instead of timing one
    callable in a block and then the other) means slow drift — CPU
    frequency scaling, cache warmth, a background process — lands on
    both sides equally instead of biasing whichever ran second.
    """
    best_a = best_b = float("inf")
    for _ in range(repeats):
        start = time.process_time()
        fn_a()
        best_a = min(best_a, time.process_time() - start)
        start = time.process_time()
        fn_b()
        best_b = min(best_b, time.process_time() - start)
    return best_a, best_b


class TestOffPathOverhead:
    """Disabled-metrics sampling within 5% of an instrumentation-absent twin.

    The twin is the pre-instrumentation body of ``AliasSampler.sample_many``
    (scalar path) inlined by hand; the instrumented method adds exactly one
    ``if obs.ENABLED:`` guard per call. ``time.process_time`` + best-of
    filtering keeps scheduler noise out of the 5% budget, mirroring the
    TestPerfSmoke idiom in tests/core/test_batch_kernels.py.
    """

    S = 20_000

    def test_disabled_guard_within_five_percent(self, metrics_off):
        from repro.core import kernels
        from repro.validation import validate_sample_size

        sampler = AliasSampler(list(range(1_024)), rng=31)
        s = self.S

        def twin():
            # sample_many minus the `if obs.ENABLED:` guard, nothing else.
            validate_sample_size(s)
            items = sampler._items
            if kernels.use_batch(s):
                return [items[i] for i in sampler._batch_indices(s)]
            prob, alias, rng = sampler._prob, sampler._alias, sampler._rng
            return [items[alias_draw(prob, alias, rng)] for _ in range(s)]

        saved = kernels.HAVE_NUMPY
        kernels.HAVE_NUMPY = False
        try:
            # Warm both paths, then measure them alternately.
            sampler.sample_many(s)
            twin()
            instrumented, bare = _best_of_interleaved(
                lambda: sampler.sample_many(s), twin
            )
        finally:
            kernels.HAVE_NUMPY = saved
        assert instrumented <= bare * 1.05, (
            f"disabled-metrics path {instrumented:.4f}s vs bare twin "
            f"{bare:.4f}s exceeds the 5% off-path budget"
        )
