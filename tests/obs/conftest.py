"""Fixtures for the observability suite.

Every test that flips the global enablement or mutates counters runs
inside ``metrics_on``/``metrics_off``: the prior state is restored and
the registry is reset on both sides, so tests never see each other's
counts regardless of ``REPRO_METRICS`` in the environment.
"""

import pytest

from repro import obs


@pytest.fixture
def metrics_on():
    saved = obs.ENABLED
    obs.enable()
    obs.reset()
    try:
        yield obs
    finally:
        obs.reset()
        (obs.enable if saved else obs.disable)()


@pytest.fixture
def metrics_off():
    saved = obs.ENABLED
    obs.disable()
    obs.reset()
    try:
        yield obs
    finally:
        obs.reset()
        (obs.enable if saved else obs.disable)()
