"""Flight recorder: ring bounds, tail, trace lookup, engine wiring."""

import pytest

from repro.engine import QueryRequest, SamplingEngine, build
from repro.obs.recorder import DEFAULT_CAPACITY, FlightRecorder

KEYS = [float(i) for i in range(64)]


def record(recorder, trace="t0", error=None, **over):
    kwargs = dict(
        trace=trace,
        spec="range.chunked",
        op="sample",
        s=4,
        backend="serial",
        duration_us=10.0,
        error=error,
    )
    kwargs.update(over)
    return recorder.record(**kwargs)


class TestRing:
    def test_capacity_validation(self):
        with pytest.raises(ValueError, match=">= 1"):
            FlightRecorder(0)

    def test_bounded_with_monotonic_total(self):
        recorder = FlightRecorder(capacity=4)
        for index in range(10):
            record(recorder, trace=f"t{index}")
        assert len(recorder) == 4
        assert recorder.total == 10
        assert [r["trace"] for r in recorder.tail()] == ["t6", "t7", "t8", "t9"]

    def test_tail_limit_keeps_newest_oldest_first(self):
        recorder = FlightRecorder(capacity=8)
        for index in range(5):
            record(recorder, trace=f"t{index}")
        assert [r["trace"] for r in recorder.tail(2)] == ["t3", "t4"]
        assert recorder.tail(0) == []
        assert len(recorder.tail(100)) == 5

    def test_for_trace_filters(self):
        recorder = FlightRecorder()
        record(recorder, trace="a")
        record(recorder, trace="b")
        record(recorder, trace="a", error="RuntimeError")
        matches = recorder.for_trace("a")
        assert len(matches) == 2
        assert matches[1]["error"] == "RuntimeError"

    def test_since_survives_wraparound(self):
        recorder = FlightRecorder(capacity=4)
        for index in range(3):
            record(recorder, trace=f"t{index}")
        mark = recorder.total
        for index in range(3, 9):
            record(recorder, trace=f"t{index}")
        # 6 appended since the mark but only 4 retained: since() returns
        # what the ring still holds, never duplicates, never invents.
        fresh = recorder.since(mark)
        assert [r["trace"] for r in fresh] == ["t5", "t6", "t7", "t8"]
        assert recorder.since(recorder.total) == []

    def test_clear_keeps_total(self):
        recorder = FlightRecorder()
        record(recorder)
        recorder.clear()
        assert len(recorder) == 0
        assert recorder.total == 1

    def test_worker_defaults_to_pid(self):
        import os

        entry = record(FlightRecorder())
        assert entry["worker"] == os.getpid()


class TestEngineWiring:
    def test_default_capacity_recorder_is_global(self, metrics_on):
        assert metrics_on.RECORDER.capacity == DEFAULT_CAPACITY

    def test_serial_requests_are_recorded(self, metrics_on):
        sampler = build("range.chunked", keys=KEYS, rng=1)
        requests = [
            QueryRequest(op="sample", args=(5.0, 50.0), s=3) for _ in range(4)
        ]
        results = SamplingEngine(backend="serial", seed=9).run(sampler, requests)
        records = metrics_on.tail()
        assert len(records) == 4
        assert [r["trace"] for r in records] == [r.trace_id for r in results]
        assert all(r["backend"] == "serial" for r in records)
        assert all(r["error"] is None for r in records)
        assert all(r["us"] > 0 for r in records)

    def test_captured_error_flushes_flight_records(self, metrics_on):
        from tests.engine.faulty import build_faulty

        sampler = build_faulty()
        requests = [
            QueryRequest(op="sample", args=("ok",), s=2),
            QueryRequest(op="sample", args=("raise",), s=2),
        ]
        results = SamplingEngine(backend="serial", seed=9).run(sampler, requests)
        failed = results[1]
        assert failed.error is not None
        records = failed.error.flight_records
        assert len(records) == 1
        assert records[0]["trace"] == failed.trace_id
        assert records[0]["error"] == "RuntimeError"

    def test_timeline_reassembles_one_trace(self, metrics_on):
        sampler = build("range.chunked", keys=KEYS, rng=1)
        requests = [
            QueryRequest(op="sample", args=(5.0, 50.0), s=3) for _ in range(3)
        ]
        results = SamplingEngine(backend="serial", seed=9).run(sampler, requests)
        target = results[1].trace_id
        timeline = metrics_on.timeline(target)
        assert timeline["trace"] == target
        assert len(timeline["records"]) == 1
        assert timeline["records"][0]["trace"] == target
        assert all(
            span["attrs"].get("trace") == target for span in timeline["spans"]
        )

    def test_disabled_engine_records_nothing(self, metrics_off):
        sampler = build("range.chunked", keys=KEYS, rng=1)
        SamplingEngine(backend="serial", seed=9).run(
            sampler, [QueryRequest(op="sample", args=(5.0, 50.0), s=3)]
        )
        assert metrics_off.tail() == []
