"""Shard backend: seeded reproducibility, partitioning, edge cases, obs."""

import pytest

from repro.engine import QueryRequest, SamplingEngine, build
from repro.engine.shard import ShardedSampler, shard_bounds

N = 240
KEYS = [float(i) for i in range(N)]
WEIGHTS = [1.0 + (i % 7) for i in range(N)]


def make_sampler(rng=1):
    return build("range.chunked", keys=KEYS, weights=WEIGHTS, rng=rng)


def make_requests(count=24, s=6):
    return [
        QueryRequest(op="sample", args=(float(i % 90), float(i % 90 + 120)), s=s)
        for i in range(count)
    ]


def run_shard(shards, max_workers, seed=17, sampler_rng=1, requests=None):
    engine = SamplingEngine(
        backend="shard", seed=seed, shards=shards, max_workers=max_workers
    )
    return engine.run(make_sampler(rng=sampler_rng), requests or make_requests())


class TestShardBounds:
    @pytest.mark.parametrize("n,k", [(10, 1), (10, 3), (7, 7), (64, 8), (5, 2)])
    def test_bounds_partition_the_index_space(self, n, k):
        bounds = shard_bounds(n, k)
        assert bounds[0] == 0 and bounds[-1] == n
        sizes = [bounds[j + 1] - bounds[j] for j in range(k)]
        assert all(size >= 1 for size in sizes)
        assert sum(sizes) == n
        assert max(sizes) - min(sizes) <= 1


class TestSeededReproducibility:
    @pytest.mark.parametrize("shards", [1, 2, 4, 8])
    def test_same_engine_seed_same_merged_output(self, shards):
        first = run_shard(shards, max_workers=1, sampler_rng=1)
        second = run_shard(shards, max_workers=1, sampler_rng=2)
        assert all(r.ok for r in first)
        assert [r.values for r in first] == [r.values for r in second]

    @pytest.mark.parametrize("shards", [2, 4, 8])
    def test_worker_count_does_not_change_output(self, shards):
        # The split and every shard stream derive from one stateless
        # base, so thread scheduling cannot reorder randomness.
        lone = run_shard(shards, max_workers=1)
        wide = run_shard(shards, max_workers=4)
        assert [r.values for r in lone] == [r.values for r in wide]

    def test_values_lie_in_the_query_interval(self):
        requests = make_requests(count=12, s=16)
        for result in run_shard(4, max_workers=4, requests=requests):
            x, y = result.request.args
            assert all(x <= value <= y for value in result.unwrap())

    def test_repeated_runs_are_identical(self):
        engine = SamplingEngine(backend="shard", seed=5, shards=4)
        sampler = make_sampler()
        requests = make_requests(count=8)
        assert [r.values for r in engine.run(sampler, requests)] == [
            r.values for r in engine.run(sampler, requests)
        ]


class TestPartitioning:
    def test_shard_count_clamped_to_key_count(self):
        small = build("range.chunked", keys=[1.0, 2.0, 3.0], rng=1)
        view = ShardedSampler.from_sampler(small, 8)
        assert view.num_shards == 3
        assert view.shard_sizes() == [1, 1, 1]

    def test_query_inside_a_single_shard(self):
        # [0, 30] touches only shard 0 of 8; the other shards contribute
        # an empty sub-span and must be skipped, not sampled.
        view = ShardedSampler.from_sampler(make_sampler(), 8)
        values = view.sample(0.0, 30.0, 10, rng=3)
        assert all(0.0 <= value <= 30.0 for value in values)

    def test_sample_indices_map_to_global_positions(self):
        view = ShardedSampler.from_sampler(make_sampler(), 4)
        indices = view.sample_indices(50.0, 200.0, 20, rng=9)
        assert all(0 <= index < N for index in indices)
        assert all(50.0 <= KEYS[index] <= 200.0 for index in indices)

    def test_without_replacement_draws_distinct_keys(self):
        view = ShardedSampler.from_sampler(make_sampler(), 4)
        values = view.sample_without_replacement(10.0, 220.0, 24, rng=11)
        assert len(values) == len(set(values)) == 24

    def test_describe_reports_sharding(self):
        view = ShardedSampler.from_sampler(make_sampler(), 4)
        info = view.describe()
        assert info["shards"] == 4
        assert info["shard_type"] == "ChunkedRangeSampler"

    def test_wrapping_a_sharded_view_is_a_no_op(self):
        view = ShardedSampler.from_sampler(make_sampler(), 4)
        assert ShardedSampler.from_sampler(view, 2) is view


class TestEdgeCases:
    def test_zero_s_is_captured_like_serial(self):
        bad = [QueryRequest(op="sample", args=(10.0, 100.0), s=0)]
        [serial] = SamplingEngine(backend="serial", seed=1).run(
            make_sampler(), bad
        )
        [sharded] = SamplingEngine(backend="shard", seed=1, shards=4).run(
            make_sampler(), bad
        )
        assert not serial.ok and not sharded.ok
        assert type(serial.error) is type(sharded.error)

    def test_inverted_interval_is_captured_like_serial(self):
        bad = [QueryRequest(op="sample", args=(100.0, 10.0), s=4)]
        [result] = SamplingEngine(backend="shard", seed=1, shards=4).run(
            make_sampler(), bad
        )
        assert not result.ok
        assert isinstance(result.error, ValueError)

    def test_unshardable_sampler_raises_type_error(self):
        alias = build(
            "alias", items=[1.0, 2.0, 3.0], weights=[1.0, 1.0, 2.0], rng=1
        )
        engine = SamplingEngine(backend="shard", seed=1, shards=2)
        with pytest.raises(TypeError, match="does not support key-space"):
            engine.run(alias, [QueryRequest(op="sample", s=2)])

    def test_shard_count_validation(self):
        with pytest.raises(ValueError, match="shards must be"):
            SamplingEngine(backend="shard", shards=0)
        with pytest.raises(ValueError, match="num_shards must be >= 1"):
            ShardedSampler.from_sampler(make_sampler(), 0)
        with pytest.raises(TypeError, match="num_shards must be an int"):
            ShardedSampler.from_sampler(make_sampler(), 2.5)

    def test_view_is_memoized_on_the_engine_not_the_sampler(self):
        engine = SamplingEngine(backend="shard", seed=1, shards=4)
        sampler = make_sampler()
        engine.run(sampler, make_requests(count=2))
        views = engine._placement._views
        assert len(views) == 1
        (memo_sampler, view), = views.values()
        assert memo_sampler is sampler
        engine.run(sampler, make_requests(count=2))
        assert engine._placement._views[id(sampler)][1] is view
        # The wrapped sampler stays pristine: nothing is monkey-stashed
        # on the caller's structure, so two engines can't fight over it.
        assert not hasattr(sampler, "_engine_shard_views")

    def test_close_shuts_down_cached_views_deterministically(self):
        engine = SamplingEngine(backend="shard", seed=1, shards=4, max_workers=4)
        sampler = make_sampler()
        engine.run(sampler, make_requests(count=2))
        (_, view), = engine._placement._views.values()
        view._shard_pool()  # force the fan-out pool into existence
        assert view._pool is not None
        engine.close()
        assert engine._placement._views == {}
        assert view._pool is None  # ShardedSampler.close() ran
        # close is idempotent and the engine stays usable for a new run
        engine.close()
        engine.run(sampler, make_requests(count=1))
        engine.close()


class TestObservability:
    def test_shard_counters_and_merge_histogram(self, metrics_on):
        SamplingEngine(backend="shard", seed=1, shards=4).run(
            make_sampler(), make_requests(count=6, s=8)
        )
        snap = metrics_on.snapshot()
        assert snap["counters"]["engine.shards"] > 0
        assert snap["histograms"]["engine.shard_merge_us"]["count"] >= 6
