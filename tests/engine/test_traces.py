"""Trace-ID propagation and cross-backend metric parity (acceptance).

The observability pipeline must be a pure observer: trace IDs are a
stateless hash of the seed stream (never consuming randomness), and the
harvested process-backend counters must equal a serial run's counters on
the same seeded workload — the theorem-shaped cost accounting is
backend-independent.
"""

import pytest

from repro import obs
from repro.engine import QueryRequest, SamplingEngine, spec_token

KEYS = [float(i) for i in range(256)]
PARAMS = {"keys": KEYS, "rng": 1}

#: Counters that must agree between serial and process runs of the same
#: seeded range.chunked workload: the engine's own accounting plus the
#: Theorem-1/Theorem-3 cost counters the workers increment.
PARITY_COUNTERS = (
    "engine.requests",
    "alias.draws",
    "range.chunked.queries",
    "range.chunked.chunk_touches",
)


def range_requests(count=8, s=5):
    return [
        QueryRequest(op="sample", args=(20.0, 200.0), s=s) for _ in range(count)
    ]


class TestTraceIds:
    def test_assigned_deterministically(self):
        engine = SamplingEngine(backend="serial", seed=11)
        first = engine.trace_ids_for(range_requests())
        second = engine.trace_ids_for(range_requests())
        assert first == second
        assert len(set(first)) == len(first)  # distinct per index
        assert all(len(t) == 16 and int(t, 16) >= 0 for t in first)

    def test_explicit_trace_id_wins(self):
        requests = range_requests(count=2)
        object.__setattr__(requests[0], "trace_id", "feedface00000000")
        engine = SamplingEngine(backend="serial", seed=11)
        ids = engine.trace_ids_for(requests)
        assert ids[0] == "feedface00000000"
        assert ids[1] != ids[0]

    def test_request_seed_overrides_batch_position_base(self):
        tagged = QueryRequest(op="sample", args=(20.0, 200.0), s=5, seed=99)
        plain = QueryRequest(op="sample", args=(20.0, 200.0), s=5)
        engine = SamplingEngine(backend="serial", seed=11)
        tagged_id, plain_id = engine.trace_ids_for([tagged, plain])
        assert tagged_id == obs.trace_id_for(99, 0)
        assert tagged_id != plain_id

    def test_results_carry_trace_ids_metrics_off(self):
        # Trace stamping is unconditional (it costs one hash per request
        # and makes results correlatable), even with metrics disabled.
        with obs.scope(False):
            engine = SamplingEngine(backend="serial", seed=11)
            results = engine.run_spec("range.chunked", PARAMS, range_requests())[1]
        assert all(r.trace_id is not None for r in results)

    def test_identical_across_serial_and_process(self, metrics_on):
        requests = range_requests()
        _, serial = SamplingEngine(backend="serial", seed=11).run_spec(
            "range.chunked", PARAMS, requests
        )
        with SamplingEngine(backend="process", seed=11, max_workers=2) as engine:
            proc = engine.run_token(
                spec_token("range.chunked", PARAMS), range_requests()
            )
        assert [r.trace_id for r in serial] == [r.trace_id for r in proc]

    def test_worker_records_carry_the_parent_trace(self, metrics_on):
        with SamplingEngine(backend="process", seed=11, max_workers=2) as engine:
            results = engine.run_token(
                spec_token("range.chunked", PARAMS), range_requests()
            )
        for result in results:
            records = metrics_on.RECORDER.for_trace(result.trace_id)
            assert records, f"no flight record for {result.trace_id}"
            assert all(r["backend"] == "process" for r in records)


class TestStreamPurity:
    def test_streams_byte_identical_metrics_on_vs_off(self):
        def run():
            engine = SamplingEngine(backend="serial", seed=11)
            return [
                r.values
                for r in engine.run_spec("range.chunked", PARAMS, range_requests())[1]
            ]

        with obs.scope(False):
            dark = run()
        saved = obs.ENABLED
        obs.enable()
        obs.reset()
        try:
            lit = run()
        finally:
            obs.reset()
            (obs.enable if saved else obs.disable)()
        assert dark == lit

    def test_process_streams_byte_identical_metrics_on_vs_off(self):
        def run():
            with SamplingEngine(
                backend="process", seed=11, max_workers=2
            ) as engine:
                return [
                    r.values
                    for r in engine.run_token(
                        spec_token("range.chunked", PARAMS), range_requests()
                    )
                ]

        with obs.scope(False):
            dark = run()
        saved = obs.ENABLED
        obs.enable()
        obs.reset()
        try:
            lit = run()
        finally:
            obs.reset()
            (obs.enable if saved else obs.disable)()
        assert dark == lit


class TestCounterParity:
    @pytest.fixture
    def counts(self, metrics_on):
        def capture(run):
            metrics_on.reset()
            run()
            counters = metrics_on.snapshot()["counters"]
            return {name: counters.get(name, 0) for name in PARITY_COUNTERS}

        return capture

    def test_process_harvest_equals_serial(self, counts):
        def serial():
            SamplingEngine(backend="serial", seed=11).run_spec(
                "range.chunked", PARAMS, range_requests()
            )

        def process():
            with SamplingEngine(
                backend="process", seed=11, max_workers=2
            ) as engine:
                engine.run_token(
                    spec_token("range.chunked", PARAMS), range_requests()
                )

        serial_counts = counts(serial)
        process_counts = counts(process)
        assert serial_counts == process_counts
        assert serial_counts["engine.requests"] == 8
        assert serial_counts["range.chunked.queries"] > 0
        assert serial_counts["alias.draws"] > 0

    def test_parity_holds_for_alias_spec(self, counts):
        items = [float(i) for i in range(64)]
        params = {
            "items": items,
            "weights": [1.0 + (i % 5) for i in range(64)],
            "rng": 1,
        }
        requests = [QueryRequest(op="sample", s=6) for _ in range(6)]

        def serial():
            SamplingEngine(backend="serial", seed=3).run_spec(
                "alias", params, [QueryRequest(op="sample", s=6) for _ in range(6)]
            )

        def process():
            with SamplingEngine(
                backend="process", seed=3, max_workers=2
            ) as engine:
                engine.run_token(spec_token("alias", params), requests)

        serial_counts = counts(serial)
        process_counts = counts(process)
        assert serial_counts["alias.draws"] == process_counts["alias.draws"] > 0
        assert serial_counts["engine.requests"] == process_counts["engine.requests"]
