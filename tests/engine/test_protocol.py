"""Protocol-level contracts: request validation and execute semantics.

The uniformity half is the point: every interval sampler — TreeWalk
(§3.2), Lemma-2 alias-augmented, Theorem-3 chunked, and the §8 EM
B-tree — must reject a bad sample size or an inverted interval with the
*same* exception types, both through its native ``sample(x, y, s)`` entry
and through the engine's request path.
"""

import pytest

from repro.em.em_range_sampler import EMRangeSampler
from repro.em.model import EMMachine
from repro.engine import QueryRequest, build
from repro.errors import EmptyQueryError

N = 64
KEYS = [float(i) for i in range(1, N + 1)]
X, Y = 8.0, 40.0

RANGE_SPECS = ["range.treewalk", "range.lemma2", "range.chunked", "range.em"]


def make(spec):
    if spec == "range.em":
        machine = EMMachine(block_size=8, memory_blocks=4)
        return EMRangeSampler(machine, KEYS, rng=1)
    return build(spec, keys=KEYS, rng=1)


class TestNativeValidationUniformity:
    """One ValueError/TypeError contract across every interval sampler."""

    @pytest.mark.parametrize("spec", RANGE_SPECS)
    @pytest.mark.parametrize("bad_s", [0, -1])
    def test_nonpositive_s_is_value_error(self, spec, bad_s):
        with pytest.raises(ValueError):
            make(spec).sample(X, Y, bad_s)

    @pytest.mark.parametrize("spec", RANGE_SPECS)
    @pytest.mark.parametrize("bad_s", [1.5, "3", None, True])
    def test_non_int_s_is_type_error(self, spec, bad_s):
        with pytest.raises(TypeError):
            make(spec).sample(X, Y, bad_s)

    @pytest.mark.parametrize("spec", RANGE_SPECS)
    def test_inverted_interval_is_value_error(self, spec):
        with pytest.raises(ValueError):
            make(spec).sample(Y, X, 4)

    @pytest.mark.parametrize("spec", RANGE_SPECS)
    def test_empty_interval_is_empty_query_error(self, spec):
        with pytest.raises(EmptyQueryError):
            make(spec).sample(X + 0.25, X + 0.75, 4)


class TestRequestValidation:
    def test_request_bad_s(self):
        with pytest.raises(ValueError):
            QueryRequest(s=0).validate()
        with pytest.raises(TypeError):
            QueryRequest(s=1.5).validate()
        with pytest.raises(TypeError):
            QueryRequest(s=True).validate()

    def test_request_bad_seed_and_args(self):
        with pytest.raises(TypeError):
            QueryRequest(seed="x").validate()
        with pytest.raises(TypeError):
            QueryRequest(args=[1, 2]).validate()

    @pytest.mark.parametrize("spec", ["range.treewalk", "range.chunked"])
    def test_execute_inverted_interval(self, spec):
        with pytest.raises(EmptyQueryError):
            make(spec).execute(QueryRequest(op="sample", args=(Y, X), s=4))

    def test_execute_unknown_op(self):
        with pytest.raises(ValueError, match="does not support op"):
            make("range.chunked").execute(QueryRequest(op="frobnicate", args=(X, Y)))


class TestExecuteSemantics:
    def test_seeded_execute_is_deterministic_per_state(self):
        request = QueryRequest(op="sample", args=(X, Y), s=6, seed=1234)
        first = make("range.chunked").execute(request)
        second = make("range.chunked").execute(request)
        assert first.values == second.values
        assert first.seed == second.seed == 1234

    def test_unseeded_execute_consumes_instance_stream(self):
        sampler = make("range.chunked")
        request = QueryRequest(op="sample", args=(X, Y), s=6)
        first = sampler.execute(request)
        second = sampler.execute(request)
        assert first.seed is None
        # Same instance, advancing stream: draws differ (w.h.p. for s=6).
        assert first.values != second.values

    def test_describe_reports_spec_and_ops(self):
        info = make("range.chunked").describe()
        assert info["spec"] == "range.chunked"
        assert "sample" in info["ops"]
        assert info["thread_safe"] is True
        assert info["size"] == N

    def test_result_unwrap(self):
        result = make("range.chunked").execute(
            QueryRequest(op="sample", args=(X, Y), s=3, seed=9)
        )
        assert result.ok
        assert len(result.unwrap()) == 3
