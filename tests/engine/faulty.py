"""Fault-injection sampler for the process-backend tests.

Lives in its own importable module (not a ``test_*`` file) because the
process backend's workers import it by dotted path through a
``("call", "tests.engine.faulty:build_faulty", ...)`` build token.
"""

import os
from typing import Any, ClassVar, List, Mapping, Optional, Sequence

from repro import obs
from repro.core.range_sampler import RangeSamplerBase
from repro.engine.protocol import EngineOp, EngineSampler
from repro.substrates.rng import ensure_rng


class FaultySampler(EngineSampler):
    """Engine sampler whose behaviour is chosen per request.

    Request args are ``(behavior,)``:

    * ``"ok"`` — return ``s`` deterministic floats from the request rng.
    * ``"raise"`` — raise ``RuntimeError`` inside the worker.
    * ``"die"`` — hard-kill the worker process (``os._exit``), simulating
      a segfault/OOM kill: no exception propagates, the pool just breaks.

    With metrics enabled, every completed ``"ok"`` draw increments the
    ``faulty.draws`` counter — a metric that exists only in worker
    processes (the parent never executes this sampler under the process
    backend), so the harvest tests can assert the parent learned it
    exclusively through :meth:`repro.obs.registry.MetricsRegistry.merge`
    auto-registration, counted exactly once per executed request even
    when crashed batchmates force phase-2 retries.
    """

    engine_ops: ClassVar[Mapping[str, EngineOp]] = {
        "sample": EngineOp("draw", takes_s=True, pass_rng=True),
    }
    engine_thread_safe: ClassVar[bool] = True

    def draw(self, behavior: str, s: int, *, rng: Any = None) -> List[float]:
        if behavior == "raise":
            raise RuntimeError("injected worker failure")
        if behavior == "die":
            os._exit(17)
        base = rng.random() if rng is not None else 0.5
        if obs.ENABLED:
            obs.counter(
                "faulty.draws", "Completed FaultySampler ok-draws"
            ).inc()
        return [base + index for index in range(s)]

    def sample(self, *args: Any, **kwargs: Any) -> List[float]:
        return self.draw(*args, **kwargs)


def build_faulty(**params: Any) -> FaultySampler:
    return FaultySampler()


class FaultyRangeSampler(RangeSamplerBase):
    """Range structure whose shard hard-dies over poisoned keys.

    Keys below :data:`DIE_BELOW` are poisoned: ``sample_span`` over a
    span that starts on a poisoned key calls ``os._exit``. Under the
    composed ``sharded × process`` backend only the shard *owning* those
    keys has a dying resident worker, so the crash-isolation test can
    assert that requests touching that shard fail with
    ``WorkerCrashedError`` while requests confined to sibling shards
    keep succeeding on their intact residents. The class is importable
    by dotted path (this module, not a ``test_*`` file) because the
    runner's fallback ``("shard", ...)`` token rebuilds it worker-side.
    """

    DIE_BELOW = 10.0

    def __init__(
        self,
        keys: Sequence[float],
        weights: Optional[Sequence[float]] = None,
        rng: Any = None,
    ):
        super().__init__(keys, weights)
        self._rng = ensure_rng(rng)

    def sample_span(
        self, lo: int, hi: int, s: int, rng: Any = None
    ) -> List[int]:
        if self.keys[lo] < self.DIE_BELOW:
            os._exit(17)
        rng = self._rng if rng is None else rng
        width = hi - lo
        return [
            lo + min(int(rng.random() * width), width - 1) for _ in range(s)
        ]
