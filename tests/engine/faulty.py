"""Fault-injection sampler for the process-backend tests.

Lives in its own importable module (not a ``test_*`` file) because the
process backend's workers import it by dotted path through a
``("call", "tests.engine.faulty:build_faulty", ...)`` build token.
"""

import os
from typing import Any, ClassVar, List, Mapping

from repro import obs
from repro.engine.protocol import EngineOp, EngineSampler


class FaultySampler(EngineSampler):
    """Engine sampler whose behaviour is chosen per request.

    Request args are ``(behavior,)``:

    * ``"ok"`` — return ``s`` deterministic floats from the request rng.
    * ``"raise"`` — raise ``RuntimeError`` inside the worker.
    * ``"die"`` — hard-kill the worker process (``os._exit``), simulating
      a segfault/OOM kill: no exception propagates, the pool just breaks.

    With metrics enabled, every completed ``"ok"`` draw increments the
    ``faulty.draws`` counter — a metric that exists only in worker
    processes (the parent never executes this sampler under the process
    backend), so the harvest tests can assert the parent learned it
    exclusively through :meth:`repro.obs.registry.MetricsRegistry.merge`
    auto-registration, counted exactly once per executed request even
    when crashed batchmates force phase-2 retries.
    """

    engine_ops: ClassVar[Mapping[str, EngineOp]] = {
        "sample": EngineOp("draw", takes_s=True, pass_rng=True),
    }
    engine_thread_safe: ClassVar[bool] = True

    def draw(self, behavior: str, s: int, *, rng: Any = None) -> List[float]:
        if behavior == "raise":
            raise RuntimeError("injected worker failure")
        if behavior == "die":
            os._exit(17)
        base = rng.random() if rng is not None else 0.5
        if obs.ENABLED:
            obs.counter(
                "faulty.draws", "Completed FaultySampler ok-draws"
            ).inc()
        return [base + index for index in range(s)]

    def sample(self, *args: Any, **kwargs: Any) -> List[float]:
        return self.draw(*args, **kwargs)


def build_faulty(**params: Any) -> FaultySampler:
    return FaultySampler()
