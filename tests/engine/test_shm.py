"""Zero-copy shared-memory tokens: round trips, lifecycle, pickling gate.

The contract under test (repro.engine.shm + SamplingEngine.share):

* attaching a manifest yields a sampler whose draws are byte-identical
  to the original under the same rng;
* the ("shm", manifest) token is O(1) in n — process workers mmap-attach
  instead of rebuilding, so ``engine.serialized_bytes`` stays tiny while
  the structure arrays are megabytes;
* the parent owns segment lifecycle: ``close()`` unlinks everything,
  including after a worker crash broke the pool;
* attach-by-name works under both ``fork`` and ``spawn`` start methods.
"""

import pickle
from multiprocessing.shared_memory import SharedMemory

import numpy as np
import pytest

from repro.core import kernels
from repro.core.alias import AliasSampler
from repro.core.range_sampler import (
    AliasAugmentedRangeSampler,
    ChunkedRangeSampler,
    TreeWalkRangeSampler,
)
from repro.engine import QueryRequest, SamplingEngine
from repro.engine import shm
from repro.substrates.rng import ensure_rng

FAULTY = ("call", "tests.engine.faulty:build_faulty", ())


def make_keys_weights(n=3000, seed=7):
    gen = np.random.default_rng(seed)
    keys = sorted(set(np.sort(gen.random(n)).tolist()))
    weights = (gen.random(len(keys)) + 0.1).tolist()
    return keys, weights


def range_requests(keys, count=12, s=16):
    lo, hi = keys[3], keys[-3]
    return [QueryRequest(op="sample", args=(lo, hi), s=s) for _ in range(count)]


def assert_unlinked(manifest):
    for name, _, _ in manifest["arrays"].values():
        with pytest.raises(FileNotFoundError):
            SharedMemory(name=name)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "factory,label",
        [
            (lambda k, w: AliasSampler(list(range(len(k))), w, rng=3), "alias"),
            (lambda k, w: TreeWalkRangeSampler(k, w, rng=3), "treewalk"),
            (lambda k, w: AliasAugmentedRangeSampler(k, w, rng=3), "lemma2"),
        ],
    )
    def test_attached_draws_are_byte_identical(self, factory, label):
        if label == "lemma2" and not kernels.HAVE_NUMPY:
            pytest.skip("lemma2 shares its flat-table (numpy build) form only")
        keys, weights = make_keys_weights()
        original = factory(keys, weights)
        manifest, segments = shm.export_sampler(original)
        try:
            attached = shm.attach_sampler(manifest)
            assert type(attached) is type(original)
            if label == "alias":
                expected = original.sample_many(400, rng=ensure_rng(99))
                got = attached.sample_many(400, rng=ensure_rng(99))
            else:
                lo, hi = keys[50], keys[-50]
                expected = original.sample(lo, hi, 400, rng=ensure_rng(99))
                got = attached.sample(lo, hi, 400, rng=ensure_rng(99))
            assert got == expected
            # Attached samplers must hand back native Python scalars, not
            # numpy ones — same types a rebuilt sampler would return.
            assert {type(v) for v in got} == {type(v) for v in expected}
        finally:
            shm.unlink_segments(segments)

    def test_token_is_small_and_picklable(self):
        keys, weights = make_keys_weights()
        sampler = TreeWalkRangeSampler(keys, weights, rng=3)
        manifest, segments = shm.export_sampler(sampler)
        try:
            blob = pickle.dumps(shm.shm_token(manifest))
            # The structure arrays are ~600 KB; the token must stay O(1).
            assert shm.manifest_nbytes(manifest) > 100_000
            assert len(blob) < 2_000
        finally:
            shm.unlink_segments(segments)

    def test_unsupported_structure_raises(self):
        from tests.engine.faulty import build_faulty

        with pytest.raises(shm.ShmShareError, match="spec token"):
            shm.export_sampler(build_faulty())

    def test_scalar_built_lemma2_round_trips(self, monkeypatch):
        # A scalar build keeps per-node tables instead of the flat form;
        # the exporter synthesizes the flat arrays so the attached copy
        # still draws byte-identically.
        monkeypatch.setattr(kernels, "HAVE_NUMPY", False)
        keys, weights = make_keys_weights(200)
        scalar_form = AliasAugmentedRangeSampler(keys, weights, rng=3)
        assert scalar_form._flat_tables is None
        manifest, segments = shm.export_sampler(scalar_form)
        try:
            attached = shm.attach_sampler(manifest)
            lo, hi = keys[10], keys[-10]
            expected = scalar_form.sample(lo, hi, 200, rng=ensure_rng(99))
            assert attached.sample(lo, hi, 200, rng=ensure_rng(99)) == expected
        finally:
            shm.unlink_segments(segments)

    def test_chunked_round_trips(self):
        keys, weights = make_keys_weights(2000)
        original = ChunkedRangeSampler(keys, weights, rng=3)
        manifest, segments = shm.export_sampler(original)
        try:
            attached = shm.attach_sampler(manifest)
            assert type(attached) is ChunkedRangeSampler
            lo, hi = keys[50], keys[-50]
            expected = original.sample(lo, hi, 400, rng=ensure_rng(99))
            got = attached.sample(lo, hi, 400, rng=ensure_rng(99))
            assert got == expected
            assert {type(v) for v in got} == {type(v) for v in expected}
        finally:
            shm.unlink_segments(segments)

    @pytest.mark.parametrize("uniform", [True, False])
    def test_coverage_round_trips(self, uniform):
        from repro.core.coverage import BSTIndex, CoverageSampler

        keys, weights = make_keys_weights(800)
        if uniform:
            weights = None
        original = CoverageSampler(BSTIndex(keys, weights), rng=3)
        manifest, segments = shm.export_sampler(original)
        try:
            attached = shm.attach_sampler(manifest)
            assert attached.backend == original.backend
            query = (keys[30], keys[-30])
            expected = original.sample(query, 300, rng=ensure_rng(99))
            got = attached.sample(query, 300, rng=ensure_rng(99))
            assert got == expected
            assert {type(v) for v in got} == {type(v) for v in expected}
        finally:
            shm.unlink_segments(segments)

    def test_coverage_alias_backend_raises(self):
        from repro.core.coverage import BSTIndex, CoverageSampler

        keys, weights = make_keys_weights(100)
        sampler = CoverageSampler(BSTIndex(keys, weights), backend="alias", rng=3)
        with pytest.raises(shm.ShmShareError, match="alias"):
            shm.export_sampler(sampler)

    def test_attach_records_histogram(self, metrics_on):
        keys, weights = make_keys_weights(500)
        sampler = TreeWalkRangeSampler(keys, weights, rng=3)
        manifest, segments = shm.export_sampler(sampler)
        try:
            shm.attach_sampler(manifest)
        finally:
            shm.unlink_segments(segments)
        histograms = metrics_on.snapshot()["histograms"]
        assert histograms["engine.shm_attach_us"]["count"] >= 1


class TestEngineIntegration:
    def test_process_backend_matches_serial(self):
        keys, weights = make_keys_weights()
        sampler = TreeWalkRangeSampler(keys, weights, rng=3)
        requests = range_requests(keys)
        serial = SamplingEngine(backend="serial", seed=7).run(sampler, requests)
        with SamplingEngine(backend="process", seed=7, max_workers=2) as engine:
            token = engine.share(sampler)
            proc = engine.run_token(token, requests)
        assert [r.error for r in proc] == [None] * len(proc)
        assert [[float(v) for v in r.values] for r in proc] == [
            [float(v) for v in r.values] for r in serial
        ]

    def test_spawn_start_method(self):
        keys, weights = make_keys_weights(800)
        if kernels.HAVE_NUMPY:
            sampler = AliasAugmentedRangeSampler(keys, weights, rng=3)
        else:  # scalar build: lemma2 has no flat tables, share a treewalk
            sampler = TreeWalkRangeSampler(keys, weights, rng=3)
        requests = range_requests(keys, count=4, s=8)
        serial = SamplingEngine(backend="serial", seed=7).run(sampler, requests)
        with SamplingEngine(
            backend="process", seed=7, max_workers=1, mp_context="spawn"
        ) as engine:
            token = engine.share(sampler)
            proc = engine.run_token(token, requests)
        assert [r.error for r in proc] == [None] * len(proc)
        assert [[float(v) for v in r.values] for r in proc] == [
            [float(v) for v in r.values] for r in serial
        ]

    def test_invalid_mp_context_rejected(self):
        with pytest.raises(ValueError, match="mp_context"):
            SamplingEngine(backend="process", mp_context="telepathy")

    def test_zero_structure_pickling(self, metrics_on):
        # A 50k-key structure is ~1.2 MB of arrays; the shm token keeps
        # per-batch serialization at token-size — bytes, not megabytes —
        # and residency at one attach per worker.
        keys, weights = make_keys_weights(50_000)
        sampler = TreeWalkRangeSampler(keys, weights, rng=3)
        requests = range_requests(keys, count=32, s=16)
        with SamplingEngine(backend="process", seed=7, max_workers=2) as engine:
            token = engine.share(sampler)
            assert shm.manifest_nbytes(token[1]) > 1_000_000
            results = engine.run_token(token, requests)
        assert all(r.error is None for r in results)
        counters = metrics_on.snapshot()["counters"]
        assert counters["engine.worker_rebuilds"] <= 2
        assert 0 < counters["engine.serialized_bytes"] < 50_000

    def test_share_is_memoized_per_sampler(self):
        keys, weights = make_keys_weights(500)
        sampler = TreeWalkRangeSampler(keys, weights, rng=3)
        with SamplingEngine(backend="process", seed=7) as engine:
            first = engine.share(sampler)
            second = engine.share(sampler)
            assert first is second
            assert len(engine._shm_segments) == len(first[1]["arrays"])


class TestLifecycle:
    def test_close_unlinks_segments(self):
        keys, weights = make_keys_weights(500)
        sampler = TreeWalkRangeSampler(keys, weights, rng=3)
        engine = SamplingEngine(backend="process", seed=7, max_workers=1)
        token = engine.share(sampler)
        engine.close()
        assert_unlinked(token[1])
        assert engine._shm_segments == []

    def test_close_is_idempotent_with_segments(self):
        keys, weights = make_keys_weights(500)
        sampler = TreeWalkRangeSampler(keys, weights, rng=3)
        engine = SamplingEngine(backend="process", seed=7, max_workers=1)
        token = engine.share(sampler)
        engine.close()
        engine.close()
        assert_unlinked(token[1])

    def test_no_leak_after_worker_crash(self):
        # A worker hard-dying must not leave segments behind: the parent
        # still owns them and close() unlinks every one.
        keys, weights = make_keys_weights(500)
        sampler = TreeWalkRangeSampler(keys, weights, rng=3)
        engine = SamplingEngine(backend="process", seed=7, max_workers=2)
        token = engine.share(sampler)
        crash = QueryRequest(op="sample", args=("die",), s=3)
        results = engine.run_token(FAULTY, [crash])
        assert results[0].error is not None  # the pool actually broke
        survivors = engine.run_token(token, range_requests(keys, count=4))
        assert all(r.error is None for r in survivors)
        engine.close()
        assert_unlinked(token[1])
