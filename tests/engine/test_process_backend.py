"""Process backend: residency, fault injection, crash recovery, tokens.

The fault-injected sampler lives in :mod:`tests.engine.faulty` so the
worker processes can import it through a ``("call", ...)`` build token.
"""

import threading

import pytest

from repro.engine import QueryRequest, SamplingEngine, spec_token
from repro.errors import WorkerCrashedError

FAULTY = ("call", "tests.engine.faulty:build_faulty", ())

KEYS = [float(i) for i in range(128)]


def req(behavior, s=3):
    return QueryRequest(op="sample", args=(behavior,), s=s)


def range_requests(count=8, s=4):
    return [
        QueryRequest(op="sample", args=(10.0, 100.0), s=s) for _ in range(count)
    ]


class TestProcessExecution:
    def test_matches_serial_byte_for_byte(self):
        params = {"keys": KEYS, "rng": 1}
        requests = range_requests()
        _, serial = SamplingEngine(backend="serial", seed=7).run_spec(
            "range.chunked", params, requests
        )
        with SamplingEngine(backend="process", seed=7, max_workers=2) as engine:
            _, proc = engine.run_spec("range.chunked", params, requests)
        assert [r.values for r in serial] == [r.values for r in proc]
        assert [r.seed for r in serial] == [r.seed for r in proc]

    def test_worker_residency_builds_once(self, metrics_on):
        with SamplingEngine(backend="process", seed=1, max_workers=1) as engine:
            engine.run_token(FAULTY, [req("ok") for _ in range(8)])
            engine.run_token(FAULTY, [req("ok") for _ in range(8)])
        counters = metrics_on.snapshot()["counters"]
        # Two batches, sixteen requests, exactly one build in the single
        # resident worker.
        assert counters["engine.worker_rebuilds"] == 1
        assert counters["engine.requests"] == 16

    def test_run_rejects_prebuilt_samplers(self):
        from repro.engine import build

        sampler = build("range.chunked", keys=KEYS, rng=1)
        with SamplingEngine(backend="process", seed=1) as engine:
            with pytest.raises(ValueError, match="build tokens"):
                engine.run(sampler, range_requests(count=1))

    def test_run_token_requires_process_backend(self):
        with pytest.raises(ValueError, match="requires backend='process'"):
            SamplingEngine(backend="serial").run_token(FAULTY, [req("ok")])

    def test_unpicklable_token_raises_type_error(self):
        token = ("call", "tests.engine.faulty:build_faulty", (("lock", threading.Lock()),))
        with SamplingEngine(backend="process", seed=1) as engine:
            with pytest.raises(TypeError, match="picklable"):
                engine.run_token(token, [req("ok")])

    def test_spec_token_is_order_insensitive(self):
        assert spec_token("range.chunked", {"a": 1, "b": 2}) == spec_token(
            "range.chunked", {"b": 2, "a": 1}
        )


class TestFaultInjection:
    def test_capture_keeps_batch_alive(self):
        with SamplingEngine(backend="process", seed=1, max_workers=2) as engine:
            results = engine.run_token(
                FAULTY, [req("ok"), req("raise"), req("ok")]
            )
        assert [r.ok for r in results] == [True, False, True]
        assert isinstance(results[1].error, RuntimeError)
        assert "injected worker failure" in str(results[1].error)

    def test_raise_mode_propagates_first_failure(self):
        with SamplingEngine(
            backend="process", seed=1, max_workers=2, errors="raise"
        ) as engine:
            with pytest.raises(RuntimeError, match="injected worker failure"):
                engine.run_token(FAULTY, [req("ok"), req("raise")])

    def test_worker_death_poisons_only_the_crasher(self):
        with SamplingEngine(backend="process", seed=1, max_workers=2) as engine:
            results = engine.run_token(
                FAULTY, [req("ok"), req("die"), req("ok"), req("ok")]
            )
            assert [r.ok for r in results] == [True, False, True, True]
            assert isinstance(results[1].error, WorkerCrashedError)
            # The engine replaced its broken pool and stays usable.
            again = engine.run_token(FAULTY, [req("ok") for _ in range(4)])
            assert all(r.ok for r in again)

    def test_worker_death_raise_mode(self):
        with SamplingEngine(
            backend="process", seed=1, max_workers=2, errors="raise"
        ) as engine:
            with pytest.raises(WorkerCrashedError):
                engine.run_token(FAULTY, [req("ok"), req("die")])

    def test_captured_errors_are_counted(self, metrics_on):
        with SamplingEngine(backend="process", seed=1, max_workers=1) as engine:
            engine.run_token(FAULTY, [req("ok"), req("raise"), req("raise")])
        assert metrics_on.snapshot()["counters"]["engine.request_errors"] == 2


class TestLifecycle:
    def test_close_is_idempotent(self):
        engine = SamplingEngine(backend="process", seed=1, max_workers=1)
        engine.run_token(FAULTY, [req("ok")])
        engine.close()
        engine.close()
        # A closed engine lazily reopens its pool on the next batch.
        assert all(r.ok for r in engine.run_token(FAULTY, [req("ok")]))
        engine.close()
