"""Plan-once-ship-everywhere: the sharded placement's plan layer.

The tentpole promise of the plan → execute split at the engine level:

* **Exactly one cover computation per request.** A sharded request
  builds its fan-out plan (active-shard table + one shard-local
  ``QueryPlan`` per planful shard) once; warm requests over the same
  span reuse it wholesale. ``engine.plan_builds`` / ``engine.plan_reuse``
  are the proof counters, checked at K ∈ {2, 4, 8}.
* **Plans ship across the process boundary.** The process runner sends
  each task's plan in portable form ``(kind, key, hint)`` — O(log n)
  ints — and the resident worker rebuilds it from the hint *without*
  redoing the cover search, byte-identically.
* **Planning consumes no randomness**, so explaining or pre-planning a
  request can never perturb a seeded stream.
"""

import pickle

import pytest

from repro import obs
from repro.core.range_sampler import ChunkedRangeSampler
from repro.engine import QueryRequest, SamplingEngine, demo_build

SHARD_COUNTS = [2, 4, 8]
N = 128


def _requests(template, count, s):
    return [
        QueryRequest(op=template.op, args=template.args, s=s)
        for _ in range(count)
    ]


@pytest.mark.parametrize("shards", SHARD_COUNTS)
class TestOneCoverComputationPerRequest:
    def test_warm_requests_reuse_the_fan_out_plan(self, shards, metrics_on):
        sampler, template = demo_build("range.chunked", n=N)
        with SamplingEngine(
            backend="serial", placement="sharded", seed=11, shards=shards
        ) as engine:
            results = engine.run(sampler, _requests(template, 6, 5))
        assert all(r.ok for r in results)
        # One cover computation for the whole batch...
        assert obs.value("engine.plan_builds") == 1
        # ...and every later request reuses it wholesale.
        assert obs.value("engine.plan_reuse") == 5
        # The shard-local plans were built inside that single fan-out
        # build: at most one per active shard, never one per request.
        assert 1 <= obs.value("plan_cache.chunked.misses") <= shards
        assert obs.value("plan_cache.chunked.hits") == 0
        assert obs.value("plan_cache.sharded.misses") == 1
        assert obs.value("plan_cache.sharded.hits") == 5

    def test_legacy_shard_backend_reuses_plans_too(self, shards, metrics_on):
        sampler, template = demo_build("range.treewalk", n=N)
        with SamplingEngine(backend="shard", seed=13, shards=shards) as engine:
            results = engine.run(sampler, _requests(template, 4, 3))
        assert all(r.ok for r in results)
        assert obs.value("engine.plan_builds") == 1
        assert obs.value("engine.plan_reuse") == 3


class TestShippedPlanByteIdentity:
    @pytest.mark.parametrize("spec", ["range.chunked", "range.treewalk"])
    def test_process_runner_matches_serial(self, spec):
        batches = {}
        for execution in ("serial", "process"):
            sampler, template = demo_build(spec, n=96)
            with SamplingEngine(
                backend=execution, placement="sharded", seed=7, shards=4,
                max_workers=2,
            ) as engine:
                results = engine.run(sampler, _requests(template, 4, 6))
            assert all(r.ok for r in results), [r.error for r in results]
            batches[execution] = [r.values for r in results]
        assert batches["serial"] == batches["process"]


class TestWorkerExecutesShippedPlans:
    def _token(self, keys, weights):
        return (
            "shard",
            "repro.core.range_sampler:ChunkedRangeSampler",
            tuple(keys),
            tuple(weights),
        )

    def test_portable_entry_matches_span_path(self):
        from repro.engine.worker import _RESIDENT, execute_shard_chunk

        keys = [float(i) for i in range(64)]
        weights = [1.0 + (i % 5) for i in range(64)]
        token = self._token(keys, weights)
        key = pickle.dumps(token) + b"#plan-shipping-identity"
        parent = ChunkedRangeSampler(list(keys), weights=list(weights), rng=0)
        portable = parent.plan_span(3, 57).portable()
        try:
            _, plain_out, _ = execute_shard_chunk(
                key, token, [(0, 3, 57, 5, 1234, None)]
            )
            _RESIDENT.pop(key, None)  # fresh resident for the shipped leg
            _, shipped_out, _ = execute_shard_chunk(
                key, token, [(0, 3, 57, 5, 1234, None, portable)]
            )
        finally:
            _RESIDENT.pop(key, None)
        assert plain_out[0][0] == "ok", plain_out[0][1]
        assert shipped_out == plain_out

    def test_cover_hint_skips_the_cover_search(self):
        from repro.engine.worker import _RESIDENT, execute_shard_chunk

        keys = [float(i) for i in range(64)]
        weights = [1.0] * 64
        token = self._token(keys, weights)
        key = pickle.dumps(token) + b"#plan-shipping-hint"
        parent = ChunkedRangeSampler(list(keys), weights=list(weights), rng=0)
        try:
            # Make the shard resident, then poison its cover search: a
            # shipped hint must not need it.
            execute_shard_chunk(key, token, [(0, 1, 9, 2, 7, None)])
            resident = _RESIDENT[key]

            def boom(lo, hi):
                raise AssertionError(
                    "cover search ran despite a shipped plan hint"
                )

            resident.query_split = boom
            portable = parent.plan_span(5, 61).portable()
            _, outcomes, _ = execute_shard_chunk(
                key, token, [(0, 5, 61, 3, 99, None, portable)]
            )
            assert outcomes[0][0] == "ok", outcomes[0][1]
            # Without the hint, the same uncached span needs the search
            # — proving the poison was live and the hint really skipped
            # it.
            _, outcomes, _ = execute_shard_chunk(
                key, token, [(0, 5, 62, 3, 99, None)]
            )
            assert outcomes[0][0] == "err"
        finally:
            _RESIDENT.pop(key, None)


class TestPlanningSideEffectFree:
    def test_planning_consumes_no_randomness(self):
        first, template = demo_build("range.treewalk", n=64)
        second, _ = demo_build("range.treewalk", n=64)
        first.plan_request(
            QueryRequest(op=template.op, args=template.args, s=3)
        )
        assert first.sample_span(5, 50, 4) == second.sample_span(5, 50, 4)


class TestEngineExplain:
    def test_explain_reports_cover_and_cache_state(self):
        sampler, template = demo_build("range.chunked", n=64)
        request = QueryRequest(op=template.op, args=template.args, s=8)
        with SamplingEngine(backend="serial", seed=3) as engine:
            cold = engine.explain(sampler, request)
            warm = engine.explain(sampler, request)
        assert cold["kind"] == "chunked"
        assert cold["cached"] is False
        assert warm["cached"] is True
        assert cold["cover_spans"] >= 1
        assert "budget_split" not in cold

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_explain_sharded_budget_split(self, shards):
        sampler, template = demo_build("range.chunked", n=N)
        request = QueryRequest(op=template.op, args=template.args, s=40)
        with SamplingEngine(
            backend="serial", placement="sharded", seed=3, shards=shards
        ) as engine:
            info = engine.explain(sampler, request)
        split = info["budget_split"]
        assert 1 <= len(split) <= shards
        assert sum(row["expected_quota"] for row in split) == pytest.approx(
            40.0
        )
        assert info["sub_plans"] is not None
        assert all(sub is not None for sub in info["sub_plans"])
        assert len(info["sub_plans"]) == len(split)

    def test_explain_rejects_unplanful_structures(self):
        sampler, template = demo_build("setunion")
        request = QueryRequest(op=template.op, args=template.args, s=2)
        with SamplingEngine(backend="serial", seed=1) as engine:
            with pytest.raises(TypeError, match="plan"):
                engine.explain(sampler, request)
