"""Registry coverage: every spec builds, executes, and replays.

The shim-equivalence tests are the PR's no-regression guarantee: a
sampler built through ``build(spec, **params)`` is the *same* class with
the same constructor arguments as a direct import, so under a fixed seed
the two produce byte-identical sample streams.
"""

import pytest

from repro.engine import REGISTRY, build
from repro.engine.demo import demo_build

ALL_SPECS = list(REGISTRY)


def test_registry_is_populated():
    # One key per P1–P7 structure plus the extension families.
    assert len(ALL_SPECS) >= 25
    for required in (
        "alias",
        "tree.topdown",
        "range.treewalk",
        "range.lemma2",
        "range.chunked",
        "coverage",
        "complement.approx",
        "setunion",
        "fair_nn",
        "em.setpool",
        "table",
    ):
        assert required in ALL_SPECS


def test_unknown_spec_suggests_close_key():
    with pytest.raises(KeyError, match="range.chunked"):
        build("range.chunkd")


@pytest.mark.parametrize("spec", ALL_SPECS)
def test_every_spec_builds_executes_describes(spec):
    sampler, request = demo_build(spec)
    info = sampler.describe()
    assert info["spec"] == spec
    assert request.op in info["ops"]
    result = sampler.execute(request)
    assert result.ok
    assert result.unwrap() is not None


@pytest.mark.parametrize("spec", ALL_SPECS)
def test_every_spec_replays_per_state_and_seed(spec):
    """Two identical instances given the same seeded request agree.

    This is the engine determinism contract: per (state, seed). Stateful
    structures (EM pools consume pre-drawn entries, set-union rebuilds its
    permutation) legitimately answer repeated requests differently on ONE
    instance, but fresh identical instances must match draw for draw.
    """
    first_sampler, request = demo_build(spec)
    second_sampler, _ = demo_build(spec)
    seeded = request.__class__(
        op=request.op, args=request.args, s=request.s, seed=987654321
    )
    first = first_sampler.execute(seeded)
    second = second_sampler.execute(seeded)
    assert first.values == second.values


class TestShimEquivalence:
    """Registry-built samplers reproduce direct-constructor streams."""

    def test_alias(self):
        from repro.core.alias import AliasSampler

        items = list(range(50))
        weights = [1.0 + (i % 7) for i in items]
        direct = AliasSampler(items, weights, rng=42)
        via = build("alias", items=items, weights=weights, rng=42)
        assert type(via) is AliasSampler
        assert [direct.sample() for _ in range(200)] == [
            via.sample() for _ in range(200)
        ]

    @pytest.mark.parametrize(
        "spec,cls_path",
        [
            ("range.treewalk", "repro.core.range_sampler:TreeWalkRangeSampler"),
            ("range.lemma2", "repro.core.range_sampler:AliasAugmentedRangeSampler"),
            ("range.chunked", "repro.core.range_sampler:ChunkedRangeSampler"),
        ],
    )
    def test_range_samplers(self, spec, cls_path):
        import importlib

        module_name, _, attr = cls_path.partition(":")
        cls = getattr(importlib.import_module(module_name), attr)
        keys = [float(i) for i in range(200)]
        weights = [1.0 + (i % 3) for i in range(200)]
        direct = cls(keys, weights, rng=7)
        via = build(spec, keys=keys, weights=weights, rng=7)
        assert type(via) is cls
        assert [direct.sample(20.0, 150.0, 8) for _ in range(20)] == [
            via.sample(20.0, 150.0, 8) for _ in range(20)
        ]

    def test_set_union(self):
        from repro.core.set_union import SetUnionSampler

        family = [list(range(i, i + 30)) for i in range(0, 60, 10)]
        direct = SetUnionSampler(family, rng=5, rebuild_after=0)
        via = build("setunion", family=family, rng=5, rebuild_after=0)
        assert type(via) is SetUnionSampler
        group = [0, 2, 4]
        assert [direct.sample(group) for _ in range(100)] == [
            via.sample(group) for _ in range(100)
        ]

    def test_coverage(self):
        from repro.core.coverage import BSTIndex, CoverageSampler

        keys = [float(i) for i in range(128)]
        direct = CoverageSampler(BSTIndex(keys), rng=3)
        via = build("coverage", index=BSTIndex(keys), rng=3)
        assert type(via) is CoverageSampler
        assert [direct.sample((10.0, 90.0), 6) for _ in range(20)] == [
            via.sample((10.0, 90.0), 6) for _ in range(20)
        ]

    def test_fair_nn(self):
        from repro.apps.fair_nn import FairNearNeighbor

        points = [(float(i % 8), float(i // 8)) for i in range(64)]
        direct = FairNearNeighbor(points, radius=2.0, num_grids=2, rng=11)
        via = build("fair_nn", points=points, radius=2.0, num_grids=2, rng=11)
        assert type(via) is FairNearNeighbor
        query = (3.0, 3.0)
        assert [direct.sample(query) for _ in range(100)] == [
            via.sample(query) for _ in range(100)
        ]


def test_entries_carry_catalogue_metadata():
    for entry in REGISTRY.specs():
        assert entry.problem
        assert entry.summary
