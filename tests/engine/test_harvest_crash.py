"""Worker metric harvest under fault injection: exactly-once counting.

The harvest protocol's crash-safety is structural — a delta exists only
inside a successfully returned worker envelope, and the engine merges
each envelope exactly once — so these tests drive the process backend
through raises, worker deaths, and phase-2 retries and assert the
parent's counters equal what a single clean execution of each resolved
request would have produced. The probe metric is ``faulty.draws``
(:mod:`tests.engine.faulty`), which only worker processes ever
increment, so every count the parent sees necessarily arrived through
:meth:`repro.obs.registry.MetricsRegistry.merge`.
"""

import pytest

from repro.engine import QueryRequest, SamplingEngine
from repro.errors import WorkerCrashedError

FAULTY = ("call", "tests.engine.faulty:build_faulty", ())


def req(behavior, s=3):
    return QueryRequest(op="sample", args=(behavior,), s=s)


class TestHarvestCleanPath:
    def test_worker_counts_land_on_parent(self, metrics_on):
        with SamplingEngine(backend="process", seed=1, max_workers=2) as engine:
            results = engine.run_token(FAULTY, [req("ok") for _ in range(6)])
        assert all(r.ok for r in results)
        counters = metrics_on.snapshot()["counters"]
        # faulty.draws is auto-registered on the parent purely through
        # the merge (nothing in the parent process increments it).
        assert counters["faulty.draws"] == 6
        assert counters["engine.harvested_chunks"] >= 1

    def test_help_text_rides_the_delta(self, metrics_on):
        with SamplingEngine(backend="process", seed=1, max_workers=1) as engine:
            engine.run_token(FAULTY, [req("ok")])
        help_map = metrics_on.snapshot()["help"]
        assert help_map["faulty.draws"] == "Completed FaultySampler ok-draws"

    def test_worker_latency_histograms_merge(self, metrics_on):
        with SamplingEngine(backend="process", seed=1, max_workers=1) as engine:
            engine.run_token(FAULTY, [req("ok") for _ in range(4)])
        hists = metrics_on.snapshot()["histograms"]
        # The worker.execute span histogram is recorded worker-side and
        # arrives via the delta's histogram section.
        assert hists["span.worker.execute.us"]["count"] == 4


class TestHarvestUnderCrash:
    def test_crashed_worker_counts_exactly_once(self, metrics_on):
        """A death mid-batch must not double-count retried batchmates.

        The dying request's chunk-mates may execute twice (once in the
        crashed worker, whose partial counts die with it, once in the
        phase-2 retry) — the parent must still end up with exactly one
        count per *resolved* ok request.
        """
        batch = [req("ok"), req("ok"), req("die"), req("ok"), req("ok"), req("ok")]
        with SamplingEngine(backend="process", seed=1, max_workers=2) as engine:
            results = engine.run_token(FAULTY, batch)
        ok = [r for r in results if r.ok]
        assert len(ok) == 5
        assert isinstance(results[2].error, WorkerCrashedError)
        assert metrics_on.snapshot()["counters"]["faulty.draws"] == 5

    def test_repeated_batches_after_crash_stay_exact(self, metrics_on):
        with SamplingEngine(backend="process", seed=1, max_workers=2) as engine:
            engine.run_token(FAULTY, [req("ok"), req("die"), req("ok")])
            again = engine.run_token(FAULTY, [req("ok") for _ in range(4)])
        assert all(r.ok for r in again)
        assert metrics_on.snapshot()["counters"]["faulty.draws"] == 6

    def test_raised_errors_do_not_count_draws(self, metrics_on):
        with SamplingEngine(backend="process", seed=1, max_workers=1) as engine:
            results = engine.run_token(FAULTY, [req("ok"), req("raise"), req("ok")])
        assert [r.ok for r in results] == [True, False, True]
        counters = metrics_on.snapshot()["counters"]
        assert counters["faulty.draws"] == 2
        assert counters["engine.request_errors"] == 1

    def test_crash_envelope_carries_flight_records(self, metrics_on):
        with SamplingEngine(backend="process", seed=1, max_workers=2) as engine:
            results = engine.run_token(FAULTY, [req("ok"), req("die")])
        crashed = results[1]
        assert isinstance(crashed.error, WorkerCrashedError)
        records = getattr(crashed.error, "flight_records", None)
        assert records, "WorkerCrashedError should ship its flight records"
        assert any(r["error"] == "WorkerCrashedError" for r in records)
        assert all(r["trace"] == crashed.trace_id for r in records)

    def test_disabled_metrics_ship_no_delta(self):
        from repro import obs

        with obs.scope(False):
            before = obs.REGISTRY.value("faulty.draws")
            with SamplingEngine(backend="process", seed=1, max_workers=1) as engine:
                results = engine.run_token(FAULTY, [req("ok"), req("ok")])
            assert all(r.ok for r in results)
            assert obs.REGISTRY.value("faulty.draws") == before


@pytest.mark.parametrize("workers", [1, 2])
def test_harvest_totals_match_request_count(metrics_on, workers):
    count = 9
    with SamplingEngine(backend="process", seed=3, max_workers=workers) as engine:
        results = engine.run_token(FAULTY, [req("ok") for _ in range(count)])
    assert all(r.ok for r in results)
    counters = metrics_on.snapshot()["counters"]
    assert counters["faulty.draws"] == count
    assert counters["engine.requests"] == count
