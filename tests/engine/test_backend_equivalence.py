"""Backend-equivalence harness: all four backends, two agreement tiers.

Tier 1 (byte-identical): structures whose request execution is a pure
function of ``(structure, request, seed)`` — the ``pass_rng`` families
plus the swap-locked stateless samplers — must produce *identical*
batches under serial, thread, and process execution, because the engine
spawns the same per-request seed stream regardless of backend and the
process workers rebuild the same deterministic demo structure.

Tier 2 (distributional): stateful samplers (pool refills, periodic
rebuilds) and the shard backend (which spends per-draw randomness in a
different order than the serial stream, §4.1 multinomial split) are
exchangeable with serial, not byte-identical — each backend's output is
checked against the known target distribution with a chi-square test at
a fixed seed, so the suite is deterministic and flake-free.

Tier 3 (composed placement): the placement × execution refactor promises
that ``placement="sharded"`` composed with *any* execution backend —
inline, threads, or shard-resident worker processes — produces output
byte-identical to the legacy ``"shard"`` backend at every shard count,
because every shard task carries a stateless derived seed. A dying
shard-resident worker must fail only the requests touching its shard.
"""

import pytest

from repro.engine import QueryRequest, SamplingEngine, build, demo_build
from repro.engine.demo import DEMO_N
from repro.errors import WorkerCrashedError
from repro.stats.tests import (
    chi_square_uniform_pvalue,
    chi_square_weighted_pvalue,
)

#: Specs whose demo execution is byte-reproducible per (structure, seed).
BYTE_SPECS = [
    "alias",
    "tree.topdown",
    "tree.flat",
    "range.treewalk",
    "range.lemma2",
    "range.chunked",
    "range.naive",
    "range.integer",
]

#: (spec, uniform support of its demo workload) for the stateful tier.
STATEFUL_SPECS = [
    # Union of demo sets {0,1,2}: 0..9 ∪ 8..17 ∪ 16..25 — Theorem 8
    # samples uniformly over the union.
    ("setunion", list(range(26))),
    # The EM set-pool samples uniformly over all DEMO_N values.
    ("em.setpool", [float(i) for i in range(1, DEMO_N + 1)]),
]

#: Deterministic fixed-seed chi-square acceptance threshold.
P_FLOOR = 1e-4

ENGINE_SEED = 23


@pytest.fixture(scope="module")
def process_engine():
    with SamplingEngine(
        backend="process", seed=ENGINE_SEED, max_workers=2
    ) as engine:
        yield engine


def demo_requests(spec, count, s):
    _, template = demo_build(spec)
    return [
        QueryRequest(op=template.op, args=template.args, s=s)
        for _ in range(count)
    ]


class TestByteIdenticalTier:
    @pytest.mark.parametrize("spec", BYTE_SPECS)
    def test_serial_thread_process_identical(self, spec, process_engine):
        requests = demo_requests(spec, count=16, s=5)
        sampler, _ = demo_build(spec)
        serial = SamplingEngine(backend="serial", seed=ENGINE_SEED).run(
            sampler, requests
        )
        sampler, _ = demo_build(spec)
        threaded = SamplingEngine(
            backend="thread", seed=ENGINE_SEED, max_workers=4
        ).run(sampler, requests)
        proc = process_engine.run_token(("demo", spec, DEMO_N), requests)
        assert all(r.ok for r in serial)
        values = [r.values for r in serial]
        assert [r.values for r in threaded] == values
        assert [r.values for r in proc] == values
        assert [r.seed for r in proc] == [r.seed for r in serial]


class TestDistributionalTier:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    @pytest.mark.parametrize(
        "spec,support", STATEFUL_SPECS, ids=[s for s, _ in STATEFUL_SPECS]
    )
    def test_stateful_specs_match_target_distribution(
        self, spec, support, backend, process_engine
    ):
        requests = demo_requests(spec, count=100, s=8)
        if backend == "process":
            results = process_engine.run_token(("demo", spec, DEMO_N), requests)
        else:
            sampler, _ = demo_build(spec)
            results = SamplingEngine(
                backend=backend, seed=ENGINE_SEED, max_workers=4
            ).run(sampler, requests)
        samples = [value for result in results for value in result.unwrap()]
        assert chi_square_uniform_pvalue(samples, support) > P_FLOOR

    @pytest.mark.parametrize(
        "backend,placement,shards",
        [
            ("serial", None, None),
            ("shard", None, 4),
            ("process", "sharded", 4),
        ],
        ids=["serial", "legacy-shard", "sharded-process"],
    )
    def test_shard_matches_weighted_range_distribution(
        self, backend, placement, shards
    ):
        # §4.1: the multinomial split preserves the weighted interval
        # distribution exactly, so serial, the legacy shard backend, and
        # the composed shard-per-process backend must all fit it.
        n = 40
        keys = [float(i) for i in range(n)]
        weights = [1.0 + (i % 5) for i in range(n)]
        sampler = build("range.chunked", keys=keys, weights=weights, rng=1)
        requests = [
            QueryRequest(op="sample", args=(5.0, 34.0), s=50) for _ in range(40)
        ]
        with SamplingEngine(
            backend=backend,
            placement=placement,
            seed=101,
            shards=shards,
            max_workers=2 if placement else None,
        ) as engine:
            results = engine.run(sampler, requests)
        samples = [value for result in results for value in result.unwrap()]
        support = {keys[i]: weights[i] for i in range(5, 35)}
        assert chi_square_weighted_pvalue(samples, support) > P_FLOOR


class TestShardApplicability:
    @pytest.mark.parametrize("spec", ["alias", "tree.topdown", "setunion"])
    def test_non_range_specs_reject_shard_backend(self, spec):
        sampler, template = demo_build(spec)
        engine = SamplingEngine(backend="shard", seed=1, shards=2)
        with pytest.raises(TypeError, match="key-space sharding"):
            engine.run(
                sampler,
                [QueryRequest(op=template.op, args=template.args, s=2)],
            )

    @pytest.mark.parametrize(
        "spec", ["range.treewalk", "range.chunked", "range.naive"]
    )
    def test_range_specs_accept_shard_backend(self, spec):
        sampler, template = demo_build(spec)
        engine = SamplingEngine(backend="shard", seed=9, shards=4)
        results = engine.run(
            sampler,
            [QueryRequest(op=template.op, args=template.args, s=6)] * 8,
        )
        assert all(r.ok for r in results)
        x, y = template.args
        for result in results:
            assert all(x <= value <= y for value in result.unwrap())


class TestComposedPlacementTier:
    """sharded × {serial, thread, process} are all byte-identical."""

    @pytest.mark.parametrize(
        "spec", ["range.chunked", "range.treewalk", "range.lemma2"]
    )
    def test_every_execution_matches_the_legacy_shard_stream(self, spec):
        requests = demo_requests(spec, count=8, s=6)
        sampler, _ = demo_build(spec)
        legacy = SamplingEngine(backend="shard", seed=ENGINE_SEED, shards=4).run(
            sampler, requests
        )
        assert all(r.ok for r in legacy)
        reference = [r.values for r in legacy]
        for execution in ("serial", "thread", "process"):
            sampler, _ = demo_build(spec)
            with SamplingEngine(
                placement="sharded",
                backend=execution,
                seed=ENGINE_SEED,
                shards=4,
                max_workers=2,
            ) as engine:
                results = engine.run(sampler, requests)
            assert [r.values for r in results] == reference, execution

    @pytest.mark.parametrize("shards", [1, 2, 4, 8])
    def test_process_matches_inline_at_every_shard_count(self, shards):
        requests = demo_requests("range.chunked", count=6, s=8)
        sampler, _ = demo_build("range.chunked")
        inline = SamplingEngine(
            placement="sharded", backend="serial", seed=ENGINE_SEED, shards=shards
        ).run(sampler, requests)
        assert all(r.ok for r in inline)
        sampler, _ = demo_build("range.chunked")
        with SamplingEngine(
            placement="sharded",
            backend="process",
            seed=ENGINE_SEED,
            shards=shards,
            max_workers=2,
        ) as engine:
            proc = engine.run(sampler, requests)
        assert [r.values for r in proc] == [r.values for r in inline]

    def test_composed_process_ships_tokens_not_structures(self, metrics_on):
        # The shard residents attach shm segments (or rebuild once from a
        # raw-array token); per-request traffic is the pickled token key
        # plus five ints per shard — O(log n) bytes, not the structure.
        n = 20_000
        keys = [float(i) for i in range(n)]
        weights = [1.0 + (i % 9) for i in range(n)]
        sampler = build("range.chunked", keys=keys, weights=weights, rng=1)
        requests = [
            QueryRequest(op="sample", args=(50.0, float(n) - 50.0), s=24)
            for _ in range(8)
        ]
        with SamplingEngine(
            placement="sharded",
            backend="process",
            seed=7,
            shards=4,
            max_workers=2,
        ) as engine:
            results = engine.run(sampler, requests)
            shared_bytes = sum(seg.size for seg in engine._shm_segments)
        assert all(r.ok for r in results)
        assert shared_bytes > 500_000  # the structure itself is ~MBs…
        counters = metrics_on.snapshot()["counters"]
        # …but what crossed the pipe per submission is token-sized.
        assert 0 < counters["engine.serialized_bytes"] < 200_000
        assert counters["engine.placement_shards"] > 0


class TestComposedCrashIsolation:
    def test_dying_shard_resident_fails_only_its_requests(self):
        from tests.engine.faulty import FaultyRangeSampler

        n = 240
        keys = [float(i) for i in range(n)]
        # Shard 0 owns keys 0..59, which include the poisoned keys below
        # FaultyRangeSampler.DIE_BELOW; its resident worker dies on first
        # touch. Shards 1..3 have their own pools (max_workers=4), so
        # requests confined to [80, 230] never see the crash.
        sampler = FaultyRangeSampler(keys, rng=1)
        safe = QueryRequest(op="sample", args=(80.0, 230.0), s=16)
        poisoned = QueryRequest(op="sample", args=(0.0, 230.0), s=32)
        with SamplingEngine(
            placement="sharded",
            backend="process",
            seed=5,
            shards=4,
            max_workers=4,
        ) as engine:
            ok_a, crashed, ok_b = engine.run(sampler, [safe, poisoned, safe])
        assert ok_a.ok and ok_b.ok
        assert all(80.0 <= v <= 230.0 for v in ok_a.unwrap())
        assert isinstance(crashed.error, WorkerCrashedError)
        assert "shard 0" in str(crashed.error)
