"""Backend-equivalence harness: all four backends, two agreement tiers.

Tier 1 (byte-identical): structures whose request execution is a pure
function of ``(structure, request, seed)`` — the ``pass_rng`` families
plus the swap-locked stateless samplers — must produce *identical*
batches under serial, thread, and process execution, because the engine
spawns the same per-request seed stream regardless of backend and the
process workers rebuild the same deterministic demo structure.

Tier 2 (distributional): stateful samplers (pool refills, periodic
rebuilds) and the shard backend (which spends per-draw randomness in a
different order than the serial stream, §4.1 multinomial split) are
exchangeable with serial, not byte-identical — each backend's output is
checked against the known target distribution with a chi-square test at
a fixed seed, so the suite is deterministic and flake-free.
"""

import pytest

from repro.engine import QueryRequest, SamplingEngine, build, demo_build
from repro.engine.demo import DEMO_N
from repro.stats.tests import (
    chi_square_uniform_pvalue,
    chi_square_weighted_pvalue,
)

#: Specs whose demo execution is byte-reproducible per (structure, seed).
BYTE_SPECS = [
    "alias",
    "tree.topdown",
    "tree.flat",
    "range.treewalk",
    "range.lemma2",
    "range.chunked",
    "range.naive",
    "range.integer",
]

#: (spec, uniform support of its demo workload) for the stateful tier.
STATEFUL_SPECS = [
    # Union of demo sets {0,1,2}: 0..9 ∪ 8..17 ∪ 16..25 — Theorem 8
    # samples uniformly over the union.
    ("setunion", list(range(26))),
    # The EM set-pool samples uniformly over all DEMO_N values.
    ("em.setpool", [float(i) for i in range(1, DEMO_N + 1)]),
]

#: Deterministic fixed-seed chi-square acceptance threshold.
P_FLOOR = 1e-4

ENGINE_SEED = 23


@pytest.fixture(scope="module")
def process_engine():
    with SamplingEngine(
        backend="process", seed=ENGINE_SEED, max_workers=2
    ) as engine:
        yield engine


def demo_requests(spec, count, s):
    _, template = demo_build(spec)
    return [
        QueryRequest(op=template.op, args=template.args, s=s)
        for _ in range(count)
    ]


class TestByteIdenticalTier:
    @pytest.mark.parametrize("spec", BYTE_SPECS)
    def test_serial_thread_process_identical(self, spec, process_engine):
        requests = demo_requests(spec, count=16, s=5)
        sampler, _ = demo_build(spec)
        serial = SamplingEngine(backend="serial", seed=ENGINE_SEED).run(
            sampler, requests
        )
        sampler, _ = demo_build(spec)
        threaded = SamplingEngine(
            backend="thread", seed=ENGINE_SEED, max_workers=4
        ).run(sampler, requests)
        proc = process_engine.run_token(("demo", spec, DEMO_N), requests)
        assert all(r.ok for r in serial)
        values = [r.values for r in serial]
        assert [r.values for r in threaded] == values
        assert [r.values for r in proc] == values
        assert [r.seed for r in proc] == [r.seed for r in serial]


class TestDistributionalTier:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    @pytest.mark.parametrize(
        "spec,support", STATEFUL_SPECS, ids=[s for s, _ in STATEFUL_SPECS]
    )
    def test_stateful_specs_match_target_distribution(
        self, spec, support, backend, process_engine
    ):
        requests = demo_requests(spec, count=100, s=8)
        if backend == "process":
            results = process_engine.run_token(("demo", spec, DEMO_N), requests)
        else:
            sampler, _ = demo_build(spec)
            results = SamplingEngine(
                backend=backend, seed=ENGINE_SEED, max_workers=4
            ).run(sampler, requests)
        samples = [value for result in results for value in result.unwrap()]
        assert chi_square_uniform_pvalue(samples, support) > P_FLOOR

    @pytest.mark.parametrize("backend,shards", [("serial", None), ("shard", 4)])
    def test_shard_matches_weighted_range_distribution(self, backend, shards):
        # §4.1: the multinomial split preserves the weighted interval
        # distribution exactly, so serial and shard must both fit it.
        n = 40
        keys = [float(i) for i in range(n)]
        weights = [1.0 + (i % 5) for i in range(n)]
        sampler = build("range.chunked", keys=keys, weights=weights, rng=1)
        requests = [
            QueryRequest(op="sample", args=(5.0, 34.0), s=50) for _ in range(40)
        ]
        engine = SamplingEngine(backend=backend, seed=101, shards=shards)
        results = engine.run(sampler, requests)
        samples = [value for result in results for value in result.unwrap()]
        support = {keys[i]: weights[i] for i in range(5, 35)}
        assert chi_square_weighted_pvalue(samples, support) > P_FLOOR


class TestShardApplicability:
    @pytest.mark.parametrize("spec", ["alias", "tree.topdown", "setunion"])
    def test_non_range_specs_reject_shard_backend(self, spec):
        sampler, template = demo_build(spec)
        engine = SamplingEngine(backend="shard", seed=1, shards=2)
        with pytest.raises(TypeError, match="key-space sharding"):
            engine.run(
                sampler,
                [QueryRequest(op=template.op, args=template.args, s=2)],
            )

    @pytest.mark.parametrize(
        "spec", ["range.treewalk", "range.chunked", "range.naive"]
    )
    def test_range_specs_accept_shard_backend(self, spec):
        sampler, template = demo_build(spec)
        engine = SamplingEngine(backend="shard", seed=9, shards=4)
        results = engine.run(
            sampler,
            [QueryRequest(op=template.op, args=template.args, s=6)] * 8,
        )
        assert all(r.ok for r in results)
        x, y = template.args
        for result in results:
            assert all(x <= value <= y for value in result.unwrap())
