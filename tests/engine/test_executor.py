"""SamplingEngine behaviour: seed spawning, backends, error capture, obs."""

import os

import pytest

from repro.engine import QueryRequest, SamplingEngine, build
from repro.substrates.rng import DEFAULT_SEED, derive_seed

N = 256
KEYS = [float(i) for i in range(N)]


def make_sampler(rng=1):
    return build("range.chunked", keys=KEYS, rng=rng)


def make_requests(count=40, s=5):
    return [
        QueryRequest(op="sample", args=(float(i % 100), float(i % 100 + 100)), s=s)
        for i in range(count)
    ]


class TestSeedSpawning:
    def test_batch_is_pure_function_of_engine_seed(self):
        requests = make_requests()
        first = SamplingEngine(seed=99).run(make_sampler(rng=1), requests)
        second = SamplingEngine(seed=99).run(make_sampler(rng=2), requests)
        # Different instance streams, same engine seed: identical batches,
        # because every request runs on its own spawned stream.
        assert [r.values for r in first] == [r.values for r in second]

    def test_requests_get_distinct_spawned_seeds(self):
        engine = SamplingEngine(seed=99)
        seeds = engine.seeds_for(make_requests())
        assert len(set(seeds)) == len(seeds)
        assert seeds[3] == derive_seed(99, 3)

    def test_default_seed_policy(self):
        assert SamplingEngine().seed == DEFAULT_SEED

    def test_explicit_request_seed_wins(self):
        requests = [QueryRequest(op="sample", args=(10.0, 200.0), s=4, seed=777)]
        [result] = SamplingEngine(seed=99).run(make_sampler(), requests)
        assert result.seed == 777

    def test_instance_stream_mode(self):
        engine = SamplingEngine(seed=False)
        assert engine.seed is None
        requests = make_requests(count=6)
        assert engine.seeds_for(requests) == [None] * 6
        results = engine.run(make_sampler(), requests)
        assert all(r.ok and r.seed is None for r in results)


class TestBackends:
    def test_thread_matches_serial(self):
        requests = make_requests(count=60)
        serial = SamplingEngine(backend="serial", seed=7).run(
            make_sampler(), requests
        )
        threaded = SamplingEngine(backend="thread", seed=7, max_workers=4).run(
            make_sampler(), requests
        )
        assert [r.values for r in serial] == [r.values for r in threaded]
        assert [r.seed for r in serial] == [r.seed for r in threaded]

    def test_thread_backend_on_swap_locked_sampler(self):
        # Set-union has no per-call rng: requests serialize on the swap
        # lock but stay correct and seed-deterministic per (state, seed).
        family = [list(range(i, i + 20)) for i in range(0, 60, 10)]
        requests = [
            QueryRequest(op="sample", args=([0, 2, 4],), s=1) for _ in range(12)
        ]
        first = SamplingEngine(backend="thread", seed=5, max_workers=4).run(
            build("setunion", family=family, rng=1, rebuild_after=0), requests
        )
        second = SamplingEngine(backend="serial", seed=5).run(
            build("setunion", family=family, rng=1, rebuild_after=0), requests
        )
        assert [r.values for r in first] == [r.values for r in second]

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            SamplingEngine(backend="fiber")

    @pytest.mark.parametrize(
        "typo,suggestion",
        [("thraed", "'thread'"), ("serail", "'serial'"), ("shards", "'shard'")],
    )
    def test_invalid_backend_suggests_close_match(self, typo, suggestion):
        # Same did-you-mean contract as the registry's KeyError.
        with pytest.raises(ValueError) as excinfo:
            SamplingEngine(backend=typo)
        message = str(excinfo.value)
        assert "did you mean" in message
        assert suggestion in message
        assert "'serial', 'thread', 'process', 'shard'" in message

    def test_invalid_backend_without_close_match_lists_choices(self):
        with pytest.raises(ValueError) as excinfo:
            SamplingEngine(backend="gpu")
        message = str(excinfo.value)
        assert "did you mean" not in message
        assert "choose from" in message

    @pytest.mark.slow
    def test_thread_speedup_on_multicore(self):
        if (os.cpu_count() or 1) < 2:
            pytest.skip("single-core runner — no parallel speedup to measure")
        import time

        requests = make_requests(count=1000, s=8)
        sampler = make_sampler()
        serial = SamplingEngine(backend="serial", seed=7)
        threaded = SamplingEngine(backend="thread", seed=7)
        serial.run(sampler, requests[:32])  # warm plan caches
        started = time.perf_counter()
        serial.run(sampler, requests)
        serial_s = time.perf_counter() - started
        started = time.perf_counter()
        threaded.run(sampler, requests)
        thread_s = time.perf_counter() - started
        assert thread_s < serial_s * 1.5


class TestErrors:
    def test_capture_keeps_batch_alive(self):
        requests = [
            QueryRequest(op="sample", args=(10.0, 100.0), s=4),
            QueryRequest(op="sample", args=(100.0, 10.0), s=4),  # inverted
            QueryRequest(op="sample", args=(10.0, 100.0), s=4),
        ]
        results = SamplingEngine(seed=1).run(make_sampler(), requests)
        assert [r.ok for r in results] == [True, False, True]
        assert isinstance(results[1].error, ValueError)
        with pytest.raises(ValueError):
            results[1].unwrap()

    def test_raise_mode_propagates(self):
        requests = [QueryRequest(op="sample", args=(100.0, 10.0), s=4)]
        with pytest.raises(ValueError):
            SamplingEngine(seed=1, errors="raise").run(make_sampler(), requests)

    def test_engine_constructor_validation(self):
        with pytest.raises(ValueError):
            SamplingEngine(errors="ignore")
        with pytest.raises(ValueError):
            SamplingEngine(max_workers=0)
        with pytest.raises(TypeError):
            SamplingEngine(seed="abc")
        with pytest.raises(ValueError, match="shards must be"):
            SamplingEngine(backend="shard", shards=0)
        with pytest.raises(ValueError, match="shards must be"):
            SamplingEngine(backend="shard", shards=2.0)


class TestRunSpec:
    def test_run_spec_builds_and_runs(self):
        engine = SamplingEngine(seed=3)
        sampler, results = engine.run_spec(
            "range.chunked", {"keys": KEYS, "rng": 1}, make_requests(count=5)
        )
        assert sampler.engine_spec == "range.chunked"
        assert len(results) == 5
        assert all(r.ok for r in results)


class TestObservability:
    def test_counters_and_errors(self, metrics_on):
        requests = make_requests(count=4) + [
            QueryRequest(op="sample", args=(9.0, 1.0), s=2)
        ]
        SamplingEngine(seed=1).run(make_sampler(), requests)
        snap = metrics_on.snapshot()
        counters = snap["counters"]
        assert counters["engine.batches"] == 1
        assert counters["engine.requests"] == 5
        assert counters["engine.request_errors"] == 1
