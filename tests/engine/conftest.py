"""Fixtures for the engine suite."""

import pytest

from repro import obs


@pytest.fixture
def metrics_on():
    saved = obs.ENABLED
    obs.enable()
    obs.reset()
    try:
        yield obs
    finally:
        obs.reset()
        (obs.enable if saved else obs.disable)()
