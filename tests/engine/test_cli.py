"""The ``python -m repro engine``/``obs`` subcommands, end to end."""

import json
import os
import subprocess
import sys
from pathlib import Path

SRC = Path(__file__).resolve().parents[2] / "src"


def run_cli(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        timeout=120,
        env=env,
    )


class TestEngineList:
    def test_lists_every_spec(self):
        completed = run_cli("engine", "list")
        assert completed.returncode == 0, completed.stderr[-2000:]
        for spec in ("alias", "range.chunked", "setunion", "fair_nn", "em.setpool"):
            assert spec in completed.stdout


class TestEngineRun:
    def test_runs_batched_demo_queries(self):
        completed = run_cli(
            "engine", "run", "range.chunked", "--requests", "5", "--s", "3"
        )
        assert completed.returncode == 0, completed.stderr[-2000:]
        assert "range.chunked" in completed.stdout
        assert "5" in completed.stdout

    def test_thread_backend(self):
        completed = run_cli(
            "engine", "run", "alias", "--requests", "3", "--backend", "thread"
        )
        assert completed.returncode == 0, completed.stderr[-2000:]

    def test_process_backend(self):
        completed = run_cli(
            "engine", "run", "range.chunked",
            "--requests", "4", "--backend", "process", "--workers", "2",
        )
        assert completed.returncode == 0, completed.stderr[-2000:]
        assert "backend:  process" in completed.stdout

    def test_shard_backend_reports_shard_count(self):
        completed = run_cli(
            "engine", "run", "range.chunked",
            "--requests", "4", "--backend", "shard", "--shards", "4",
        )
        assert completed.returncode == 0, completed.stderr[-2000:]
        assert "backend:  shard" in completed.stdout
        assert "shards: 4" in completed.stdout

    def test_shard_backend_rejects_non_range_spec(self):
        completed = run_cli(
            "engine", "run", "alias", "--requests", "2", "--backend", "shard"
        )
        assert completed.returncode == 2
        assert "key-space sharding" in completed.stderr

    def test_unknown_spec_fails_with_hint(self):
        completed = run_cli("engine", "run", "range.chunkd")
        assert completed.returncode != 0
        combined = completed.stdout + completed.stderr
        assert "range.chunked" in combined

    def test_repeat_and_warmup_report_timings(self):
        completed = run_cli(
            "engine", "run", "range.treewalk",
            "--requests", "4", "--repeat", "3", "--warmup", "2",
        )
        assert completed.returncode == 0, completed.stderr[-2000:]
        assert "timing:   warmup=2 repeat=3" in completed.stdout
        assert "wall per batch" in completed.stdout

    def test_invalid_repeat_rejected(self):
        completed = run_cli("engine", "run", "alias", "--repeat", "0")
        assert completed.returncode == 2
        assert "--repeat" in completed.stderr

    def test_no_jit_flag_reports_tier(self):
        completed = run_cli("engine", "run", "alias", "--no-jit")
        assert completed.returncode == 0, completed.stderr[-2000:]
        assert "jit=off" in completed.stdout

    def test_shm_flag_on_process_backend(self):
        completed = run_cli(
            "engine", "run", "range.treewalk",
            "--requests", "4", "--n", "512",
            "--backend", "process", "--workers", "2", "--shm",
            "--warmup", "1", "--repeat", "2",
        )
        assert completed.returncode == 0, completed.stderr[-2000:]
        assert "shm: on" in completed.stdout

    def test_shm_requires_process_backend(self):
        completed = run_cli("engine", "run", "range.treewalk", "--shm")
        assert completed.returncode == 2
        assert "--backend process" in completed.stderr

    def test_explain_prints_plan_without_draws(self):
        completed = run_cli("engine", "run", "range.treewalk", "--explain")
        assert completed.returncode == 0, completed.stderr[-2000:]
        assert "kind=treewalk" in completed.stdout
        assert "canonical span(s)" in completed.stdout
        assert "built cold" in completed.stdout
        assert "none executed" in completed.stdout
        assert "values=" not in completed.stdout

    def test_explain_sharded_prints_budget_split(self):
        completed = run_cli(
            "engine", "run", "range.chunked",
            "--placement", "sharded", "--shards", "4", "--s", "16",
            "--explain",
        )
        assert completed.returncode == 0, completed.stderr[-2000:]
        assert "kind=sharded" in completed.stdout
        assert "expected quota=" in completed.stdout
        assert "active shard(s)" in completed.stdout

    def test_explain_rejects_unplanful_spec(self):
        completed = run_cli("engine", "run", "setunion", "--explain")
        assert completed.returncode == 2
        assert "plan" in completed.stderr


class TestObsCli:
    def test_dump_table_reports_engine_and_quantiles(self):
        completed = run_cli("obs")
        assert completed.returncode == 0, completed.stderr[-2000:]
        assert "engine.requests" in completed.stdout
        assert "engine.harvested_chunks" in completed.stdout
        assert "p99=" in completed.stdout

    def test_prometheus_has_help_and_quantile_gauges(self):
        completed = run_cli("obs", "--format", "prometheus")
        assert completed.returncode == 0, completed.stderr[-2000:]
        assert "# HELP repro_alias_draws_total" in completed.stdout
        assert "# TYPE repro_engine_request_us histogram" in completed.stdout
        assert "repro_engine_request_us_p99" in completed.stdout

    def test_tail_lists_serial_and_process_records(self):
        completed = run_cli("obs", "tail", "-n", "64")
        assert completed.returncode == 0, completed.stderr[-2000:]
        assert "flight-recorder records" in completed.stdout
        assert "serial" in completed.stdout
        assert "process" in completed.stdout

    def test_tail_json_records_are_structured(self):
        completed = run_cli("obs", "tail", "--format", "json", "-n", "5")
        assert completed.returncode == 0, completed.stderr[-2000:]
        records = json.loads(completed.stdout)
        assert 0 < len(records) <= 5
        for record in records:
            assert set(record) >= {"trace", "backend", "worker", "op", "us"}
            assert len(record["trace"]) == 16

    def test_tail_rejects_prometheus_format(self):
        completed = run_cli("obs", "tail", "--format", "prometheus")
        assert completed.returncode == 2
        assert "table or json" in completed.stderr
