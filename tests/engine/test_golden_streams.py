"""Golden seeded-stream snapshots for every registry spec.

The plan/execute refactor's contract is that it changes *where* the
canonical-cover computation happens, never *what* a seeded query
returns. These tests pin that contract to data: the exact output
streams of every registry spec, captured from the pre-refactor tree and
committed as ``tests/data/golden_streams.json``, must keep reproducing
byte-for-byte — warm cache, cold cache (``REPRO_PLAN_CACHE_SIZE=0``),
and across the serial/thread/sharded backends.

Regenerate (only when a capture leg is deliberately added) with::

    PYTHONPATH=src python tests/engine/test_golden_streams.py --regen

The capture uses only long-stable public entry points (``demo_build``,
``SamplingEngine``, ``QueryRequest``), so the same procedure runs
unchanged before and after the refactor — that is what makes the file a
pre/post byte-identity oracle rather than a self-fulfilling snapshot.

Streams are tier-sensitive only above the batch cutoffs; every capture
leg keeps ``s`` below ``kernels.BATCH_MIN_SIZE`` so the goldens hold on
the scalar fallback (``REPRO_DISABLE_NUMPY=1``) too — asserted by the
CI matrix, which runs this module under both tiers. The one structure
whose *internal* draws cross the cutoff regardless of the query's ``s``
(the EM sampler's pool refill splits a full pool multinomially) gets a
scalar-tier variant captured alongside, stored under a ``@scalar`` leg
suffix; ``--regen`` discovers such legs automatically by re-running the
capture in a ``REPRO_DISABLE_NUMPY=1`` subprocess and diffing.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core import kernels
from repro.engine import QueryRequest, SamplingEngine, demo_build
from repro.engine.registry import REGISTRY

GOLDEN_PATH = Path(__file__).resolve().parent.parent / "data" / "golden_streams.json"

#: Engine master seed for the batched legs (arbitrary, fixed forever).
ENGINE_SEED = 20260807
#: Explicit per-request seed for the standalone-execute leg.
DIRECT_SEED = 7
#: Draws per request — deliberately below kernels.BATCH_MIN_SIZE so the
#: scalar draw path runs on every tier and the streams stay
#: tier-independent.
BATCH_S = 5
DIRECT_S = 8
#: Requests per batched leg.
BATCH_REQUESTS = 3
#: Shard counts for the sharded-placement legs (the acceptance K set).
SHARD_COUNTS = (2, 4, 8)


def _normalize(values):
    """Round-trip through JSON so tuples/lists compare canonically."""
    return json.loads(json.dumps(values))


def _batch(template: QueryRequest):
    return [
        QueryRequest(op=template.op, args=template.args, s=BATCH_S)
        for _ in range(BATCH_REQUESTS)
    ]


def _run_serial(spec: str):
    sampler, template = demo_build(spec)
    engine = SamplingEngine(backend="serial", seed=ENGINE_SEED)
    try:
        results = engine.run(sampler, _batch(template))
        return [_normalize(result.unwrap()) for result in results]
    finally:
        engine.close()


def _run_thread(spec: str):
    sampler, template = demo_build(spec)
    engine = SamplingEngine(backend="thread", seed=ENGINE_SEED, max_workers=4)
    try:
        results = engine.run(sampler, _batch(template))
        return [_normalize(result.unwrap()) for result in results]
    finally:
        engine.close()


def _run_direct(spec: str):
    sampler, template = demo_build(spec)
    request = QueryRequest(
        op=template.op, args=template.args, s=DIRECT_S, seed=DIRECT_SEED
    )
    return _normalize(sampler.execute(request).unwrap())


def _run_sharded(spec: str, shards: int):
    sampler, template = demo_build(spec)
    engine = SamplingEngine(
        backend="serial", placement="sharded", shards=shards, seed=ENGINE_SEED
    )
    try:
        results = engine.run(sampler, _batch(template))
        return [_normalize(result.unwrap()) for result in results]
    finally:
        engine.close()


def capture() -> dict:
    """Capture every leg for every spec (the --regen entry)."""
    from repro.engine.shard import ShardedSampler

    goldens: dict = {}
    for entry in REGISTRY.specs():
        spec = entry.key
        legs = {
            "serial": _run_serial(spec),
            "direct": _run_direct(spec),
        }
        probe, _ = demo_build(spec)
        if ShardedSampler.supports(probe):
            for shards in SHARD_COUNTS:
                try:
                    legs[f"sharded{shards}"] = _run_sharded(spec, shards)
                except (TypeError, ValueError):
                    # Structure class without the (keys, weights, rng)
                    # constructor shape sharding rebuilds through.
                    break
        goldens[spec] = legs
    return goldens


def _load_goldens() -> dict:
    if not GOLDEN_PATH.exists():  # pragma: no cover - regen guard
        pytest.fail(
            f"golden stream file missing: {GOLDEN_PATH} "
            f"(regenerate with `python {__file__} --regen`)"
        )
    return json.loads(GOLDEN_PATH.read_text())


GOLDENS = _load_goldens() if GOLDEN_PATH.exists() else {}
SPECS = sorted(spec for spec in GOLDENS)


def _leg(spec: str, name: str):
    """The stored leg for this kernel tier (``@scalar`` variant wins
    when numpy kernels are off and a variant was captured)."""
    legs = GOLDENS[spec]
    if not kernels.HAVE_NUMPY:
        scalar = legs.get(f"{name}@scalar")
        if scalar is not None:
            return scalar
    return legs[name]


def test_golden_covers_every_registry_spec():
    assert sorted(entry.key for entry in REGISTRY.specs()) == SPECS


@pytest.mark.parametrize("spec", SPECS)
def test_serial_stream_matches_golden(spec):
    assert _run_serial(spec) == _leg(spec, "serial")


@pytest.mark.parametrize("spec", SPECS)
def test_direct_execute_matches_golden(spec):
    assert _run_direct(spec) == _leg(spec, "direct")


@pytest.mark.parametrize("spec", SPECS)
def test_thread_backend_matches_golden(spec):
    # Not a separate stored leg: the thread backend must be
    # byte-identical to serial, so it checks against the same golden.
    assert _run_thread(spec) == _leg(spec, "serial")


@pytest.mark.parametrize(
    "spec,shards",
    [
        (spec, shards)
        for spec in SPECS
        for shards in SHARD_COUNTS
        if f"sharded{shards}" in GOLDENS.get(spec, {})
    ],
)
def test_sharded_stream_matches_golden(spec, shards):
    assert _run_sharded(spec, shards) == _leg(spec, f"sharded{shards}")


@pytest.mark.parametrize("spec", SPECS)
def test_cache_disabled_stream_matches_golden(spec, monkeypatch):
    """The cache-off leg: byte-identity must hold without memoization.

    ``REPRO_PLAN_CACHE_SIZE=0`` disables every plan cache consulted at
    sampler construction; rebuilt samplers then recompute each plan per
    query and must still replay the committed streams exactly.
    """
    monkeypatch.setenv("REPRO_PLAN_CACHE_SIZE", "0")
    assert _run_serial(spec) == _leg(spec, "serial")
    assert _run_direct(spec) == _leg(spec, "direct")
    for shards in SHARD_COUNTS:
        if f"sharded{shards}" in GOLDENS[spec]:
            assert _run_sharded(spec, shards) == _leg(spec, f"sharded{shards}")


def main(argv=None) -> int:  # pragma: no cover - maintenance entry
    import argparse
    import os
    import subprocess
    import sys

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--regen", action="store_true", help="rewrite the golden stream file"
    )
    parser.add_argument(
        "--capture-json", action="store_true",
        help="print this tier's capture as JSON (used by --regen's "
             "scalar-tier subprocess)",
    )
    args = parser.parse_args(argv)
    if args.capture_json:
        print(json.dumps(capture(), sort_keys=True))
        return 0
    if not args.regen:
        parser.error("nothing to do (pass --regen)")
    if not kernels.HAVE_NUMPY:
        parser.error("--regen must run on the numpy tier (it spawns the "
                     "scalar capture itself)")
    goldens = capture()
    env = dict(os.environ, REPRO_DISABLE_NUMPY="1")
    scalar_out = subprocess.run(
        [sys.executable, __file__, "--capture-json"],
        env=env, capture_output=True, text=True, check=True,
    )
    scalar = json.loads(scalar_out.stdout)
    variants = 0
    for spec, legs in scalar.items():
        for name, values in legs.items():
            if goldens.get(spec, {}).get(name) != values:
                goldens[spec][f"{name}@scalar"] = values
                variants += 1
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(goldens, indent=1, sort_keys=True) + "\n")
    legs = sum(len(v) for v in goldens.values())
    print(
        f"wrote {len(goldens)} specs / {legs} legs "
        f"({variants} scalar-tier variants) to {GOLDEN_PATH}"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
