"""Placement layer: backend normalization, §4.1 primitives, merge ladder.

The contracts under test (repro.engine.placement):

* ``normalize_backend`` maps every legacy backend string onto the
  placement × execution matrix (``"shard"`` aliases sharded+thread) and
  rejects nonsense with did-you-mean hints;
* the §4.1 primitives are pure functions of the request's stateless
  base: the split runs on ``derive_seed(base, 0)``, shard ``j`` draws on
  ``derive_seed(base, 1 + j)``, and a single-active-shard plan consumes
  no split stream at all;
* ``merge_indices`` is a deterministic shard-order merge that dispatches
  through the scalar → numpy → jit kernel ladder;
* the legacy ``"shard"`` backend and every composed
  ``placement="sharded"`` execution produce byte-identical engine
  output.
"""

import pytest

from repro.core import kernels
from repro.engine import (
    BACKENDS,
    PLACEMENTS,
    QueryRequest,
    SamplingEngine,
    build,
    normalize_backend,
)
from repro.engine.placement import (
    LocalPlacement,
    ShardedPlacement,
    make_placement,
    merge_indices,
    plan_fan_out,
    shard_seed,
    split_budget,
)
from repro.substrates.rng import derive_seed

N = 240
KEYS = [float(i) for i in range(N)]
WEIGHTS = [1.0 + (i % 7) for i in range(N)]


def make_sampler(rng=1):
    return build("range.chunked", keys=KEYS, weights=WEIGHTS, rng=rng)


def make_requests(count=12, s=6):
    return [
        QueryRequest(op="sample", args=(float(i % 90), float(i % 90 + 120)), s=s)
        for i in range(count)
    ]


class TestNormalizeBackend:
    @pytest.mark.parametrize(
        "backend,expected",
        [
            ("serial", ("local", "serial")),
            ("thread", ("local", "thread")),
            ("process", ("local", "process")),
            ("shard", ("sharded", "thread")),
        ],
    )
    def test_legacy_strings_map_onto_the_matrix(self, backend, expected):
        assert normalize_backend(backend) == expected

    @pytest.mark.parametrize("execution", ["serial", "thread", "process"])
    @pytest.mark.parametrize("placement", ["local", "sharded"])
    def test_explicit_placement_composes_with_every_execution(
        self, placement, execution
    ):
        assert normalize_backend(execution, placement) == (placement, execution)

    def test_shard_alias_accepts_its_own_placement(self):
        assert normalize_backend("shard", "sharded") == ("sharded", "thread")

    def test_shard_alias_rejects_local_placement(self):
        with pytest.raises(ValueError, match="legacy alias"):
            normalize_backend("shard", "local")

    def test_unknown_backend_offers_suggestions(self):
        with pytest.raises(ValueError, match="did you mean.*'serial'"):
            normalize_backend("seril")

    def test_unknown_placement_offers_suggestions(self):
        with pytest.raises(ValueError, match="did you mean.*'sharded'"):
            normalize_backend("thread", "shardedd")

    def test_unknown_execution_under_placement(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            normalize_backend("quantum", "sharded")

    def test_matrix_constants_exported(self):
        assert PLACEMENTS == ("local", "sharded")
        assert BACKENDS == ("serial", "thread", "process", "shard")

    def test_make_placement_kinds(self):
        assert isinstance(make_placement("local"), LocalPlacement)
        sharded = make_placement("sharded", shards=6)
        assert isinstance(sharded, ShardedPlacement)
        assert sharded.shards == 6


class TestSplitPrimitives:
    BASE = 0x9E3779B97F4A7C15

    def test_split_budget_is_stateless_and_exact(self):
        first = split_budget([1.0, 2.0, 3.0], 60, self.BASE)
        second = split_budget([1.0, 2.0, 3.0], 60, self.BASE)
        assert first == second
        assert sum(first) == 60
        assert all(count >= 0 for count in first)

    def test_split_runs_on_stream_zero(self):
        # Changing the base changes the split; the stream is
        # derive_seed(base, 0), disjoint from every shard stream.
        a = split_budget([1.0] * 4, 100, self.BASE)
        b = split_budget([1.0] * 4, 100, self.BASE + 1)
        assert a != b or derive_seed(self.BASE, 0) != derive_seed(self.BASE + 1, 0)

    def test_shard_seed_derivation(self):
        assert shard_seed(self.BASE, 0) == derive_seed(self.BASE, 1)
        assert shard_seed(self.BASE, 3) == derive_seed(self.BASE, 4)
        seeds = [shard_seed(self.BASE, j) for j in range(8)]
        assert len(set(seeds)) == 8

    def test_plan_single_active_shard_takes_whole_budget(self):
        plan = plan_fan_out([(2, 5, 30, 9.0)], 17, self.BASE)
        assert len(plan.tasks) == 1
        task = plan.tasks[0]
        assert (task.shard, task.lo, task.hi, task.quota) == (2, 5, 30, 17)
        assert task.seed == shard_seed(self.BASE, 2)

    def test_plan_multi_shard_splits_and_drops_zero_quotas(self):
        active = [(0, 0, 10, 1.0), (1, 0, 10, 1.0), (2, 0, 10, 1e-12)]
        plan = plan_fan_out(active, 40, self.BASE)
        assert sum(task.quota for task in plan.tasks) == 40
        assert all(task.quota > 0 for task in plan.tasks)
        expected = split_budget([1.0, 1.0, 1e-12], 40, self.BASE)
        quotas = {task.shard: task.quota for task in plan.tasks}
        assert quotas == {
            j: count for j, count in enumerate(expected) if count > 0
        }


class TestMergeIndices:
    BOUNDS = [0, 100, 200, 300]

    def test_merge_is_shard_ordered_and_offset(self):
        partials = [(2, [1, 3]), (0, [5]), (1, [0, 9])]
        assert merge_indices(partials, self.BOUNDS) == [5, 100, 109, 201, 203]

    def test_merge_matches_scalar_reference_at_every_size(self):
        for per_shard in (2, 8, 40, 200):  # scalar, scalar, numpy, jit-eligible
            partials = [(j, list(range(per_shard))) for j in range(3)]
            expected = [
                self.BOUNDS[j] + index
                for j in range(3)
                for index in range(per_shard)
            ]
            assert merge_indices(partials, self.BOUNDS) == expected

    def test_merge_dispatch_rides_the_kernel_ladder(self, metrics_on):
        if not kernels.HAVE_NUMPY:
            pytest.skip("ladder assertions need the numpy tier")
        small = [(0, list(range(4)))]  # total 4 < BATCH_MIN_SIZE: scalar
        numpy_sized = [(j, list(range(20))) for j in range(2)]  # 40 draws
        jit_sized = [(j, list(range(200))) for j in range(2)]  # 400 draws
        merge_indices(small, self.BOUNDS)
        merge_indices(numpy_sized, self.BOUNDS)
        merge_indices(jit_sized, self.BOUNDS)
        counters = metrics_on.snapshot()["counters"]
        if kernels.HAVE_JIT:
            assert counters["kernels.dispatch.jit"] >= 1
            assert counters["kernels.dispatch.numpy"] >= 1
        else:
            assert counters["kernels.dispatch.numpy"] >= 2
        histograms = metrics_on.snapshot()["histograms"]
        assert histograms["engine.shard_merge_us"]["count"] == 3


class TestEngineComposition:
    def test_engine_exposes_placement_and_execution(self):
        engine = SamplingEngine(backend="shard", seed=1)
        assert (engine.placement, engine.execution) == ("sharded", "thread")
        composed = SamplingEngine(
            placement="sharded", backend="serial", seed=1
        )
        assert (composed.placement, composed.execution) == ("sharded", "serial")
        local = SamplingEngine(backend="thread", seed=1)
        assert (local.placement, local.execution) == ("local", "thread")

    def test_legacy_shard_alias_is_byte_identical(self):
        requests = make_requests()
        legacy = SamplingEngine(backend="shard", seed=11, shards=4).run(
            make_sampler(), requests
        )
        composed = SamplingEngine(
            placement="sharded", backend="thread", seed=11, shards=4
        ).run(make_sampler(), requests)
        inline = SamplingEngine(
            placement="sharded", backend="serial", seed=11, shards=4
        ).run(make_sampler(), requests)
        assert all(r.ok for r in legacy)
        values = [r.values for r in legacy]
        assert [r.values for r in composed] == values
        assert [r.values for r in inline] == values

    def test_local_process_still_requires_tokens(self):
        engine = SamplingEngine(backend="process", seed=1)
        with pytest.raises(ValueError, match="placement='sharded'"):
            engine.run(make_sampler(), make_requests(count=1))

    def test_placement_shards_counter(self, metrics_on):
        SamplingEngine(
            placement="sharded", backend="serial", seed=3, shards=4
        ).run(make_sampler(), make_requests(count=4, s=8))
        counters = metrics_on.snapshot()["counters"]
        assert counters["engine.placement_shards"] > 0
