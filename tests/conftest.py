"""Shared pytest fixtures.

Statistical tests in this suite use fixed seeds and a very small
significance level (ALPHA) so they are deterministic and non-flaky: a
correct sampler fails a chi-square check with probability ~1e-6, and under
a fixed seed the outcome never changes between runs anyway.
"""

import random
import sys
from pathlib import Path

import pytest

# Allow running the suite from a source checkout without installation.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

ALPHA = 1e-6


@pytest.fixture
def rng():
    return random.Random(0xC0FFEE)


@pytest.fixture
def alpha():
    return ALPHA
