"""Unit tests for the kd-tree substrate (§5, Theorem-5 example 1)."""

import math

import pytest

from repro.apps.workloads import uniform_points
from repro.errors import BuildError
from repro.substrates.kdtree import KDTree


def brute_force(points, rect):
    return sorted(
        p for p in points if all(lo <= c <= hi for (lo, hi), c in zip(rect, p))
    )


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(BuildError):
            KDTree([])

    def test_mixed_dims_rejected(self):
        with pytest.raises(BuildError):
            KDTree([(1.0, 2.0), (1.0,)])

    def test_bad_leaf_size_rejected(self):
        with pytest.raises(BuildError):
            KDTree([(1.0, 2.0)], leaf_size=0)

    def test_weight_mismatch_rejected(self):
        with pytest.raises(BuildError):
            KDTree([(1.0, 2.0)], weights=[1.0, 2.0])

    def test_leaf_order_is_permutation(self):
        points = uniform_points(100, 2, rng=1)
        tree = KDTree(points, leaf_size=4)
        assert sorted(tree.leaf_items) == sorted(points)
        assert sorted(tree.original_index(i) for i in range(100)) == list(range(100))

    def test_weights_follow_points(self):
        points = [(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)]
        weights = [1.0, 2.0, 3.0]
        tree = KDTree(points, weights, leaf_size=1)
        for position in range(3):
            original = tree.original_index(position)
            assert tree.leaf_weights[position] == weights[original]


class TestSpanInvariants:
    def test_node_spans_nest(self):
        tree = KDTree(uniform_points(200, 2, rng=2), leaf_size=4)
        spans = tree.iter_node_spans()
        assert spans[0] == (0, 200)  # root (pre-order id 0)
        for lo, hi in spans:
            assert 0 <= lo < hi <= 200


class TestCovers:
    @pytest.mark.parametrize("dims", [1, 2, 3])
    def test_cover_equals_brute_force(self, dims):
        points = uniform_points(300, dims, rng=3)
        tree = KDTree(points, leaf_size=5)
        rect = [(0.2, 0.7)] * dims
        covered = sorted(
            tree.leaf_items[i] for lo, hi in tree.find_cover(rect) for i in range(lo, hi)
        )
        assert covered == brute_force(points, rect)

    def test_cover_spans_disjoint(self):
        points = uniform_points(300, 2, rng=4)
        tree = KDTree(points, leaf_size=5)
        spans = tree.find_cover([(0.1, 0.9), (0.1, 0.9)])
        seen = set()
        for lo, hi in spans:
            for position in range(lo, hi):
                assert position not in seen
                seen.add(position)

    def test_cover_size_sublinear(self):
        # Crossing bound: O(√n) spans for a 2D rectangle on n points.
        n = 1 << 12
        points = uniform_points(n, 2, rng=5)
        tree = KDTree(points, leaf_size=1)
        spans = tree.find_cover([(0.25, 0.75), (0.25, 0.75)])
        assert len(spans) <= 12 * math.isqrt(n)

    def test_empty_cover(self):
        tree = KDTree(uniform_points(50, 2, rng=6), leaf_size=4)
        assert tree.find_cover([(2.0, 3.0), (2.0, 3.0)]) == []

    def test_wrong_dims_rejected(self):
        tree = KDTree(uniform_points(10, 2, rng=7), leaf_size=4)
        with pytest.raises(ValueError):
            tree.find_cover([(0.0, 1.0)])

    def test_point_query(self):
        points = [(0.5, 0.5), (0.1, 0.9)]
        tree = KDTree(points, leaf_size=1)
        rect = [(0.5, 0.5), (0.5, 0.5)]
        assert tree.report(rect) == [(0.5, 0.5)]


class TestReporting:
    def test_report_and_count_agree(self):
        points = uniform_points(200, 2, rng=8)
        tree = KDTree(points, leaf_size=8)
        rect = [(0.0, 0.5), (0.5, 1.0)]
        assert len(tree.report(rect)) == tree.count(rect)

    def test_full_domain(self):
        points = uniform_points(64, 2, rng=9)
        tree = KDTree(points, leaf_size=8)
        rect = [(-1.0, 2.0), (-1.0, 2.0)]
        assert tree.count(rect) == 64

    def test_duplicate_points_supported(self):
        points = [(0.5, 0.5)] * 10
        tree = KDTree(points, leaf_size=2)
        assert tree.count([(0.0, 1.0), (0.0, 1.0)]) == 10
