"""Unit tests for the Fenwick range-sum structure (§4.2)."""

import pytest

from repro.substrates.fenwick import FenwickTree, fenwick_from


class TestConstruction:
    def test_requires_values_or_size(self):
        with pytest.raises(ValueError):
            FenwickTree()

    def test_from_values(self):
        tree = FenwickTree([1.0, 2.0, 3.0])
        assert tree.total == pytest.approx(6.0)

    def test_from_size_starts_zero(self):
        tree = FenwickTree(size=5)
        assert tree.total == 0.0

    def test_from_iterable(self):
        tree = fenwick_from(x * 1.0 for x in range(4))
        assert tree.total == pytest.approx(6.0)

    def test_bulk_build_matches_incremental(self):
        values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        bulk = FenwickTree(values)
        incremental = FenwickTree(size=len(values))
        for index, value in enumerate(values):
            incremental.add(index, value)
        for count in range(len(values) + 1):
            assert bulk.prefix_sum(count) == pytest.approx(incremental.prefix_sum(count))


class TestSums:
    def test_prefix_sums(self):
        tree = FenwickTree([1.0, 2.0, 3.0, 4.0])
        assert [tree.prefix_sum(i) for i in range(5)] == [0.0, 1.0, 3.0, 6.0, 10.0]

    def test_range_sum(self):
        tree = FenwickTree([1.0, 2.0, 3.0, 4.0])
        assert tree.range_sum(1, 3) == pytest.approx(5.0)
        assert tree.range_sum(0, 4) == pytest.approx(10.0)
        assert tree.range_sum(2, 2) == 0.0

    def test_range_sum_reversed_rejected(self):
        tree = FenwickTree([1.0])
        with pytest.raises(IndexError):
            tree.range_sum(1, 0)

    def test_prefix_out_of_range_rejected(self):
        tree = FenwickTree([1.0, 2.0])
        with pytest.raises(IndexError):
            tree.prefix_sum(3)

    def test_add(self):
        tree = FenwickTree([1.0, 1.0, 1.0])
        tree.add(1, 4.0)
        assert tree.range_sum(0, 3) == pytest.approx(7.0)
        assert tree.range_sum(1, 2) == pytest.approx(5.0)

    def test_add_out_of_range_rejected(self):
        tree = FenwickTree([1.0])
        with pytest.raises(IndexError):
            tree.add(1, 1.0)

    def test_values_roundtrip(self):
        values = [2.0, 0.0, 7.5, 1.25]
        assert FenwickTree(values).values() == pytest.approx(values)


class TestFindPrefix:
    def test_basic_lookup(self):
        tree = FenwickTree([1.0, 2.0, 3.0])
        assert tree.find_prefix(0.0) == 0
        assert tree.find_prefix(0.99) == 0
        assert tree.find_prefix(1.0) == 1
        assert tree.find_prefix(2.99) == 1
        assert tree.find_prefix(3.0) == 2
        assert tree.find_prefix(5.99) == 2

    def test_skips_zero_slots(self):
        tree = FenwickTree([0.0, 5.0, 0.0, 5.0])
        assert tree.find_prefix(0.0) == 1
        assert tree.find_prefix(4.99) == 1
        assert tree.find_prefix(5.0) == 3

    def test_negative_target_rejected(self):
        tree = FenwickTree([1.0])
        with pytest.raises(ValueError):
            tree.find_prefix(-0.1)

    def test_target_at_total_rejected(self):
        tree = FenwickTree([1.0, 2.0])
        with pytest.raises(ValueError):
            tree.find_prefix(3.0)

    def test_non_power_of_two_size(self):
        tree = FenwickTree([1.0] * 13)
        for target in range(13):
            assert tree.find_prefix(float(target) + 0.5) == target
