"""Unit tests for the §3.2 BST, including the Figure-1 canonical nodes."""

import pytest

from repro.errors import BuildError, InvalidWeightError
from repro.substrates.bst import StaticBST


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(BuildError):
            StaticBST([])

    def test_unsorted_rejected(self):
        with pytest.raises(BuildError):
            StaticBST([2.0, 1.0])

    def test_duplicates_rejected(self):
        with pytest.raises(BuildError):
            StaticBST([1.0, 1.0])

    def test_bad_weights_rejected(self):
        with pytest.raises(InvalidWeightError):
            StaticBST([1.0], [0.0])

    def test_node_count(self):
        tree = StaticBST([float(i) for i in range(17)])
        assert tree.node_count == 2 * 17 - 1

    def test_singleton_tree(self):
        tree = StaticBST([5.0])
        assert tree.is_leaf(tree.root)
        assert tree.node_weight(tree.root) == 1.0


class TestConventions:
    """The four §3.2 structural conventions."""

    def test_height_logarithmic(self):
        n = 1 << 10
        tree = StaticBST([float(i) for i in range(n)])
        assert tree.height() <= 11

    def test_every_internal_node_has_two_children(self):
        tree = StaticBST([float(i) for i in range(13)])
        for node in tree.iter_nodes():
            if not tree.is_leaf(node):
                left, right = tree.children(node)
                assert left >= 0 and right >= 0

    def test_left_keys_below_right_keys(self):
        tree = StaticBST([float(i) for i in range(13)])
        for node in tree.iter_nodes():
            if tree.is_leaf(node):
                continue
            left, right = tree.children(node)
            left_lo, left_hi = tree.leaf_span(left)
            right_lo, right_hi = tree.leaf_span(right)
            assert max(tree.keys[left_lo:left_hi]) < min(tree.keys[right_lo:right_hi])

    def test_internal_key_is_min_of_right_subtree(self):
        tree = StaticBST([float(i) for i in range(13)])
        for node in tree.iter_nodes():
            if tree.is_leaf(node):
                continue
            _, right = tree.children(node)
            right_lo, _ = tree.leaf_span(right)
            assert tree.node_key(node) == tree.keys[right_lo]

    def test_weights_aggregate_bottom_up(self):
        weights = [float(i + 1) for i in range(9)]
        tree = StaticBST([float(i) for i in range(9)], weights)
        for node in tree.iter_nodes():
            lo, hi = tree.leaf_span(node)
            assert tree.node_weight(node) == pytest.approx(sum(weights[lo:hi]))


class TestCanonicalNodes:
    """Figure 1: the canonical cover of a query interval."""

    def test_cover_partitions_result(self):
        tree = StaticBST([float(i) for i in range(100)])
        cover = tree.canonical_nodes(13.0, 77.0)
        covered = []
        for node in cover:
            lo, hi = tree.leaf_span(node)
            covered.extend(range(lo, hi))
        assert sorted(covered) == list(range(13, 78))
        assert len(covered) == len(set(covered))  # disjoint subtrees

    def test_cover_size_logarithmic(self):
        n = 1 << 12
        tree = StaticBST([float(i) for i in range(n)])
        for query in [(0.0, n - 1.0), (1.0, n - 2.0), (100.0, 3000.0)]:
            assert len(tree.canonical_nodes(*query)) <= 2 * 12

    def test_empty_query(self):
        tree = StaticBST([1.0, 2.0, 3.0])
        assert tree.canonical_nodes(10.0, 20.0) == []
        assert tree.canonical_nodes(5.0, 4.0) == []

    def test_whole_tree_is_single_canonical_node(self):
        tree = StaticBST([float(i) for i in range(16)])
        cover = tree.canonical_nodes(0.0, 15.0)
        assert cover == [tree.root]

    def test_single_element_query(self):
        tree = StaticBST([float(i) for i in range(16)])
        cover = tree.canonical_nodes(7.0, 7.0)
        assert len(cover) == 1
        assert tree.is_leaf(cover[0])
        assert tree.leaf_span(cover[0]) == (7, 8)

    def test_cover_ordered_left_to_right(self):
        tree = StaticBST([float(i) for i in range(64)])
        cover = tree.canonical_nodes(3.0, 60.0)
        spans = [tree.leaf_span(node) for node in cover]
        assert spans == sorted(spans)

    def test_figure1_example_shape(self):
        # A 16-leaf perfectly balanced tree; query [1, 14] must decompose
        # into maximal subtrees: {1}, {2,3}, {4..7}, {8..11}, {12,13}, {14}.
        tree = StaticBST([float(i) for i in range(16)])
        cover = tree.canonical_nodes(1.0, 14.0)
        spans = [tree.leaf_span(node) for node in cover]
        assert spans == [(1, 2), (2, 4), (4, 8), (8, 12), (12, 14), (14, 15)]


class TestQueries:
    def test_report(self):
        tree = StaticBST([1.0, 3.0, 5.0, 7.0])
        assert tree.report(2.0, 6.0) == [3.0, 5.0]

    def test_count(self):
        tree = StaticBST([float(i) for i in range(50)])
        assert tree.count(10.0, 19.5) == 10

    def test_range_weight(self):
        tree = StaticBST([1.0, 2.0, 3.0], [10.0, 20.0, 30.0])
        assert tree.range_weight(1.5, 3.0) == pytest.approx(50.0)

    def test_leaf_node_lookup(self):
        tree = StaticBST([float(i) for i in range(8)])
        for index in range(8):
            leaf = tree.leaf_node(index)
            assert tree.is_leaf(leaf)
            assert tree.leaf_span(leaf) == (index, index + 1)
