"""Unit tests for permutation/rank utilities (§2, §7)."""

import pytest

from repro.substrates.permutation import (
    assign_ranks,
    inverse_permutation,
    random_permutation,
)


class TestRandomPermutation:
    def test_is_permutation(self):
        items = list(range(50))
        permuted = random_permutation(items, rng=1)
        assert sorted(permuted) == items

    def test_input_not_mutated(self):
        items = [3, 1, 2]
        random_permutation(items, rng=1)
        assert items == [3, 1, 2]

    def test_deterministic_under_seed(self):
        assert random_permutation(range(20), rng=5) == random_permutation(range(20), rng=5)

    def test_different_seeds_differ(self):
        assert random_permutation(range(50), rng=1) != random_permutation(range(50), rng=2)


class TestAssignRanks:
    def test_ranks_are_one_to_n(self):
        ranks = assign_ranks(["a", "b", "c", "d"], rng=1)
        assert sorted(ranks.values()) == [1, 2, 3, 4]

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            assign_ranks(["a", "a"])

    def test_uniformity_of_first_rank(self):
        # Across seeds, each element gets rank 1 about equally often.
        counts = {"a": 0, "b": 0, "c": 0}
        for seed in range(3000):
            ranks = assign_ranks(["a", "b", "c"], rng=seed)
            for item, rank in ranks.items():
                if rank == 1:
                    counts[item] += 1
        assert max(counts.values()) - min(counts.values()) < 300


class TestInversePermutation:
    def test_roundtrip(self):
        permutation = [2, 0, 3, 1]
        inverse = inverse_permutation(permutation)
        assert [permutation[i] for i in inverse] == [0, 1, 2, 3]

    def test_identity(self):
        assert inverse_permutation([0, 1, 2]) == [0, 1, 2]
