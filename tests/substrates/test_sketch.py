"""Unit tests for the KMV distinct-count sketch (§7)."""

import pytest

from repro.errors import BuildError
from repro.substrates.sketch import KMVSketch, _hash_to_unit


class TestHash:
    def test_deterministic(self):
        assert _hash_to_unit("x", 7) == _hash_to_unit("x", 7)

    def test_salt_changes_hash(self):
        assert _hash_to_unit("x", 1) != _hash_to_unit("x", 2)

    def test_in_unit_interval(self):
        for item in range(100):
            value = _hash_to_unit(item, 3)
            assert 0.0 <= value < 1.0


class TestSketch:
    def test_k_too_small_rejected(self):
        with pytest.raises(BuildError):
            KMVSketch(k=1)

    def test_small_set_exact(self):
        sketch = KMVSketch.from_items(range(10), k=64)
        assert sketch.estimate() == pytest.approx(10.0)

    def test_duplicates_ignored(self):
        sketch = KMVSketch(k=16)
        for _ in range(5):
            sketch.add("same")
        assert sketch.estimate() == pytest.approx(1.0)

    def test_large_set_estimate_within_rse(self):
        true_count = 5000
        sketch = KMVSketch.from_items(range(true_count), k=64, salt=42)
        estimate = sketch.estimate()
        # §7 needs a 1.5-approximation; k=64 gives RSE ≈ 12.7 %.
        assert true_count / 2 <= estimate <= 1.5 * true_count

    def test_retains_at_most_k(self):
        sketch = KMVSketch.from_items(range(1000), k=8)
        assert len(sketch) == 8

    def test_estimate_accuracy_across_salts(self):
        true_count = 2000
        errors = []
        for salt in range(10):
            sketch = KMVSketch.from_items(range(true_count), k=64, salt=salt)
            errors.append(abs(sketch.estimate() - true_count) / true_count)
        assert sum(errors) / len(errors) < 0.25


class TestMerge:
    def test_merge_equals_union_sketch(self):
        a = KMVSketch.from_items(range(0, 600), k=32, salt=5)
        b = KMVSketch.from_items(range(400, 1000), k=32, salt=5)
        merged = a.merge(b)
        direct = KMVSketch.from_items(range(0, 1000), k=32, salt=5)
        assert merged.estimate() == pytest.approx(direct.estimate())

    def test_merge_different_salts_rejected(self):
        a = KMVSketch(k=8, salt=1)
        b = KMVSketch(k=8, salt=2)
        with pytest.raises(BuildError):
            a.merge(b)

    def test_merge_uses_smaller_k(self):
        a = KMVSketch.from_items(range(100), k=8, salt=1)
        b = KMVSketch.from_items(range(100), k=16, salt=1)
        assert a.merge(b).k == 8

    def test_merge_disjoint_sets_adds_up(self):
        a = KMVSketch.from_items(range(0, 20), k=64, salt=9)
        b = KMVSketch.from_items(range(20, 45), k=64, salt=9)
        assert a.merge(b).estimate() == pytest.approx(45.0)

    def test_merge_is_commutative(self):
        a = KMVSketch.from_items(range(0, 500), k=16, salt=3)
        b = KMVSketch.from_items(range(300, 800), k=16, salt=3)
        assert a.merge(b).estimate() == pytest.approx(b.merge(a).estimate())
