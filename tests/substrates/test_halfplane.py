"""Unit tests for convex layers + halfplane covers (§6 remark, 2D)."""

import math
import random

import pytest

from repro.core.coverage import CoverageSampler
from repro.errors import BuildError, EmptyQueryError
from repro.stats.tests import chi_square_weighted_pvalue
from repro.substrates.convex_layers import ConvexLayers, PolygonExtremes, convex_hull
from repro.substrates.halfplane import HalfplaneIndex

ALPHA = 1e-6


def random_points(n, seed, box=10.0):
    rng = random.Random(seed)
    return [(rng.uniform(-box, box), rng.uniform(-box, box)) for _ in range(n)]


class TestConvexHull:
    def test_triangle(self):
        hull = convex_hull([(0.0, 0.0), (1.0, 0.0), (0.0, 1.0)])
        assert len(hull) == 3

    def test_collinear_points_reduce_to_segment(self):
        hull = convex_hull([(float(i), float(i)) for i in range(5)])
        assert hull == [(0.0, 0.0), (4.0, 4.0)]

    def test_interior_points_excluded(self):
        square = [(0.0, 0.0), (4.0, 0.0), (4.0, 4.0), (0.0, 4.0)]
        hull = convex_hull(square + [(2.0, 2.0), (1.0, 1.0)])
        assert sorted(hull) == sorted(square)

    def test_ccw_orientation(self):
        hull = convex_hull(random_points(50, seed=1))
        area2 = sum(
            hull[i][0] * hull[(i + 1) % len(hull)][1]
            - hull[(i + 1) % len(hull)][0] * hull[i][1]
            for i in range(len(hull))
        )
        assert area2 > 0  # ccw

    def test_single_point(self):
        assert convex_hull([(1.0, 2.0)]) == [(1.0, 2.0)]


class TestPolygonExtremes:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_argmax_matches_scan(self, seed):
        rng = random.Random(seed)
        hull = convex_hull(random_points(200, seed=seed))
        extremes = PolygonExtremes(hull)
        for _ in range(30):
            angle = rng.uniform(0, 2 * math.pi)
            direction = (math.cos(angle), math.sin(angle))
            chosen = hull[extremes.argmax(direction)]
            best = max(v[0] * direction[0] + v[1] * direction[1] for v in hull)
            assert chosen[0] * direction[0] + chosen[1] * direction[1] == pytest.approx(
                best, abs=1e-9
            )

    def test_argmin_is_opposite(self):
        hull = convex_hull(random_points(100, seed=5))
        extremes = PolygonExtremes(hull)
        direction = (1.0, 0.0)
        low = hull[extremes.argmin(direction)]
        assert low[0] == pytest.approx(min(v[0] for v in hull), abs=1e-9)

    def test_axis_aligned_directions(self):
        hull = convex_hull(random_points(80, seed=6))
        extremes = PolygonExtremes(hull)
        assert hull[extremes.argmax((0.0, 1.0))][1] == pytest.approx(
            max(v[1] for v in hull)
        )


class TestConvexLayers:
    def test_layers_partition_points(self):
        points = random_points(200, seed=7)
        layers = ConvexLayers(points)
        assert len(layers) == 200
        assert sorted(layers.leaf_items) == sorted(points)

    def test_duplicates_kept_once_each(self):
        points = [(1.0, 1.0)] * 5 + [(0.0, 0.0), (2.0, 0.0), (1.0, 3.0)]
        layers = ConvexLayers(points)
        assert len(layers) == 8
        assert layers.leaf_items.count((1.0, 1.0)) == 5

    def test_layer_count_reasonable(self):
        layers = ConvexLayers(random_points(500, seed=8))
        assert 1 <= layers.num_layers < 100

    def test_outer_layer_is_global_hull(self):
        points = random_points(100, seed=9)
        layers = ConvexLayers(points)
        assert sorted(layers.layer_vertices[0]) == sorted(convex_hull(points))

    def test_empty_rejected(self):
        with pytest.raises(BuildError):
            ConvexLayers([])


class TestHalfplaneCovers:
    @pytest.mark.parametrize("seed", [10, 11, 12])
    def test_report_matches_brute_force(self, seed):
        points = random_points(250, seed=seed)
        index = HalfplaneIndex(points)
        rng = random.Random(seed + 100)
        for _ in range(10):
            a, b = rng.uniform(-3, 3), rng.uniform(-12, 12)
            expected = sorted(p for p in points if p[1] - a * p[0] - b <= 0)
            assert sorted(index.report((a, b))) == expected

    def test_spans_disjoint(self):
        points = random_points(300, seed=13)
        index = HalfplaneIndex(points)
        seen = set()
        for lo, hi in index.find_cover((0.7, 1.0)):
            for position in range(lo, hi):
                assert position not in seen
                seen.add(position)

    def test_empty_halfplane(self):
        points = [(0.0, 5.0), (1.0, 6.0)]
        index = HalfplaneIndex(points)
        assert index.find_cover((0.0, 0.0)) == []

    def test_full_halfplane_single_walk(self):
        points = random_points(200, seed=14)
        index = HalfplaneIndex(points)
        assert index.count((0.0, 100.0)) == 200

    def test_predicate_evaluations_sublinear(self):
        points = random_points(4000, seed=15)
        index = HalfplaneIndex(points)
        query = (0.2, -6.0)  # selective: the walk stops early
        touched = index.touched_layers(query)
        index.predicate_evaluations = 0
        cover = index.find_cover(query)
        result_size = sum(hi - lo for lo, hi in cover)
        # Each touched layer costs O(log m) predicate evaluations; compare
        # against scanning every touched layer in full.
        touched_scan_cost = sum(
            len(index._layers.layer_vertices[i]) for i in range(touched)
        )
        max_hull = max(
            len(index._layers.layer_vertices[i]) for i in range(touched)
        )
        import math

        per_layer_log = 2 * math.ceil(math.log2(max(2, max_hull))) + 10
        assert index.predicate_evaluations <= touched * per_layer_log
        assert index.predicate_evaluations < 0.8 * touched_scan_cost
        assert result_size > 0

    def test_collinear_dataset(self):
        points = [(float(i), float(i)) for i in range(20)]
        index = HalfplaneIndex(points)
        assert index.count((1.0, 0.0)) == 20  # y = x line: all on it
        assert index.count((1.0, -0.5)) == 0


class TestHalfplaneSampling:
    def test_samples_below_line(self):
        points = random_points(400, seed=16)
        sampler = CoverageSampler(HalfplaneIndex(points), rng=17)
        a, b = 0.4, -1.0
        for point in sampler.sample((a, b), 100):
            assert point[1] - a * point[0] - b <= 1e-12

    def test_uniformity(self):
        points = random_points(60, seed=18)
        index = HalfplaneIndex(points)
        sampler = CoverageSampler(index, rng=19)
        query = (0.2, 2.0)
        matching = [p for p in points if p[1] - 0.2 * p[0] - 2.0 <= 0]
        assert len(matching) >= 10
        samples = sampler.sample(query, 30_000)
        target = {p: 1.0 for p in matching}
        assert chi_square_weighted_pvalue(samples, target) > ALPHA

    def test_weighted_sampling(self):
        points = [(float(i), 0.0) for i in range(6)]
        weights = [float(i + 1) for i in range(6)]
        sampler = CoverageSampler(HalfplaneIndex(points, weights), rng=20)
        samples = sampler.sample((0.0, 1.0), 30_000)  # all points qualify
        target = {points[i]: weights[i] for i in range(6)}
        assert chi_square_weighted_pvalue(samples, target) > ALPHA

    def test_empty_query_raises(self):
        sampler = CoverageSampler(HalfplaneIndex([(0.0, 5.0)]), rng=21)
        with pytest.raises(EmptyQueryError):
            sampler.sample((0.0, 0.0), 1)
