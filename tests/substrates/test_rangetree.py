"""Unit tests for the multi-dimensional range tree (§3.2, §5)."""

import pytest

from repro.apps.workloads import uniform_points
from repro.errors import BuildError
from repro.substrates.rangetree import RangeTree


def brute_force(points, rect):
    return sorted(
        p for p in points if all(lo <= c <= hi for (lo, hi), c in zip(rect, p))
    )


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(BuildError):
            RangeTree([])

    def test_mixed_dims_rejected(self):
        with pytest.raises(BuildError):
            RangeTree([(1.0, 2.0), (1.0,)])

    def test_weight_mismatch_rejected(self):
        with pytest.raises(BuildError):
            RangeTree([(1.0, 2.0)], weights=[1.0, 2.0])

    def test_storage_superlinear_in_2d(self):
        # Each point is replicated once per primary-tree level: Θ(n log n).
        n = 256
        tree = RangeTree(uniform_points(n, 2, rng=1))
        assert tree.storage_size() > 4 * n
        assert tree.storage_size() < 3 * n * 10  # ≈ n log2(n) with slack

    def test_one_dimensional_degenerates_to_sorted_array(self):
        tree = RangeTree([(3.0,), (1.0,), (2.0,)])
        assert tree.storage_size() == 3
        assert tree.report([(1.5, 3.5)]) == [(2.0,), (3.0,)]


class TestCovers:
    @pytest.mark.parametrize("dims", [1, 2, 3])
    def test_cover_matches_brute_force(self, dims):
        points = uniform_points(200, dims, rng=2)
        tree = RangeTree(points)
        rect = [(0.15, 0.8)] * dims
        covered = sorted(
            tree.leaf_items[i] for lo, hi in tree.find_cover(rect) for i in range(lo, hi)
        )
        assert covered == brute_force(points, rect)

    def test_no_double_counting_despite_duplication(self):
        # Each point is stored at many leaves (footnote 4); a query's cover
        # must still contain every matching point exactly once.
        points = uniform_points(150, 2, rng=3)
        tree = RangeTree(points)
        rect = [(0.0, 1.0), (0.0, 1.0)]
        covered = [
            tree.leaf_items[i] for lo, hi in tree.find_cover(rect) for i in range(lo, hi)
        ]
        assert len(covered) == 150
        assert sorted(covered) == sorted(points)

    def test_cover_size_polylog_2d(self):
        n = 1 << 10
        tree = RangeTree(uniform_points(n, 2, rng=4))
        spans = tree.find_cover([(0.2, 0.8), (0.3, 0.7)])
        assert len(spans) <= 3 * 10  # O(log n) contiguous runs in 2D

    def test_empty_cover(self):
        tree = RangeTree(uniform_points(50, 2, rng=5))
        assert tree.find_cover([(2.0, 3.0), (0.0, 1.0)]) == []

    def test_wrong_dims_rejected(self):
        tree = RangeTree(uniform_points(10, 2, rng=6))
        with pytest.raises(ValueError):
            tree.find_cover([(0.0, 1.0)])

    def test_duplicate_coordinates_handled(self):
        points = [(1.0, float(i)) for i in range(10)]  # all same x
        tree = RangeTree(points)
        rect = [(1.0, 1.0), (2.0, 7.0)]
        assert tree.count(rect) == 6

    def test_tie_heavy_dataset(self):
        points = [(float(i % 3), float(i % 2)) for i in range(30)]
        tree = RangeTree(points)
        rect = [(0.0, 1.0), (0.0, 0.0)]
        expected = len(brute_force(points, rect))
        assert tree.count(rect) == expected


class TestWeights:
    def test_weights_replicated_with_points(self):
        points = [(float(i), float(-i)) for i in range(8)]
        weights = [float(i + 1) for i in range(8)]
        tree = RangeTree(points, weights)
        weight_of = dict(zip(points, weights))
        for position, point in enumerate(tree.leaf_items):
            assert tree.leaf_weights[position] == weight_of[point]
