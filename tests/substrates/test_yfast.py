"""Unit tests for the y-fast trie predecessor substrate (§4.3 remark)."""

import random
from bisect import bisect_right

import pytest

from repro.errors import BuildError
from repro.substrates.yfast import YFastTrie


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(BuildError):
            YFastTrie([])

    def test_unsorted_rejected(self):
        with pytest.raises(BuildError):
            YFastTrie([5, 3])

    def test_duplicates_rejected(self):
        with pytest.raises(BuildError):
            YFastTrie([3, 3])

    def test_negative_rejected(self):
        with pytest.raises(BuildError):
            YFastTrie([-1, 3])

    def test_universe_too_small_rejected(self):
        with pytest.raises(BuildError):
            YFastTrie([100], universe_bits=4)

    def test_singleton(self):
        trie = YFastTrie([42])
        assert trie.predecessor(41) is None
        assert trie.predecessor(42) == 42
        assert trie.predecessor(100) == 42


class TestPredecessor:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_matches_bisect_randomized(self, seed):
        rng = random.Random(seed)
        keys = sorted(rng.sample(range(1 << 20), 2000))
        trie = YFastTrie(keys)
        for query in rng.sample(range((1 << 20) + 1000), 3000):
            expected = bisect_right(keys, query) - 1
            actual = trie.predecessor_index(query)
            if expected < 0:
                assert actual is None
            else:
                assert actual == expected

    def test_exact_keys(self):
        keys = [3, 7, 100, 1000]
        trie = YFastTrie(keys)
        for index, key in enumerate(keys):
            assert trie.predecessor_index(key) == index

    def test_dense_keys(self):
        keys = list(range(100))
        trie = YFastTrie(keys)
        for query in range(100):
            assert trie.predecessor(query) == query

    def test_above_universe(self):
        trie = YFastTrie([1, 5, 9], universe_bits=8)
        assert trie.predecessor(1_000_000) == 9

    def test_verify_helper(self):
        trie = YFastTrie(sorted(random.Random(4).sample(range(10_000), 300)))
        assert all(trie.verify_against_bisect(q) for q in range(0, 11_000, 37))


class TestSuccessor:
    def test_successor_basics(self):
        trie = YFastTrie([10, 20, 30])
        assert trie.successor(5) == 10
        assert trie.successor(10) == 10
        assert trie.successor(11) == 20
        assert trie.successor(30) == 30
        assert trie.successor(31) is None

    def test_matches_reference(self):
        rng = random.Random(5)
        keys = sorted(rng.sample(range(1 << 16), 500))
        trie = YFastTrie(keys)
        for query in rng.sample(range(1 << 16), 1000):
            expected = next((key for key in keys if key >= query), None)
            assert trie.successor(query) == expected


class TestSpan:
    def test_span_matches_bisect(self):
        rng = random.Random(6)
        keys = sorted(rng.sample(range(1 << 16), 800))
        trie = YFastTrie(keys)
        from bisect import bisect_left

        for _ in range(500):
            x = rng.randrange(1 << 16)
            y = x + rng.randrange(1 << 12)
            assert trie.span_of(x, y) == (
                bisect_left(keys, x),
                bisect_right(keys, y),
            ) or trie.span_of(x, y) == (0, 0) and bisect_left(keys, x) >= bisect_right(keys, y)

    def test_empty_and_inverted(self):
        trie = YFastTrie([10, 20])
        assert trie.span_of(30, 40) == (0, 0)
        assert trie.span_of(20, 10) == (0, 0)
        assert trie.span_of(11, 19) == (0, 0)
