"""Unit tests for the quadtree substrate (§3.2 remark, Looz–Meyerhenke)."""

import pytest

from repro.apps.workloads import clustered_points, uniform_points
from repro.errors import BuildError
from repro.substrates.quadtree import QuadTree


def brute_force(points, rect):
    return sorted(
        p for p in points if all(lo <= c <= hi for (lo, hi), c in zip(rect, p))
    )


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(BuildError):
            QuadTree([])

    def test_non_2d_rejected(self):
        with pytest.raises(BuildError):
            QuadTree([(1.0, 2.0, 3.0)])

    def test_bad_leaf_size_rejected(self):
        with pytest.raises(BuildError):
            QuadTree([(0.0, 0.0)], leaf_size=0)

    def test_leaf_order_is_permutation(self):
        points = uniform_points(100, 2, rng=1)
        tree = QuadTree(points, leaf_size=4)
        assert sorted(tree.leaf_items) == sorted(points)

    def test_identical_points_bounded_depth(self):
        # All-equal points can never split; max_depth must stop recursion.
        tree = QuadTree([(0.5, 0.5)] * 50, leaf_size=2, max_depth=6)
        assert tree.count([(0.0, 1.0), (0.0, 1.0)]) == 50


class TestCovers:
    def test_cover_equals_brute_force_uniform(self):
        points = uniform_points(300, 2, rng=2)
        tree = QuadTree(points, leaf_size=4)
        rect = [(0.2, 0.7), (0.1, 0.8)]
        covered = sorted(
            tree.leaf_items[i] for lo, hi in tree.find_cover(rect) for i in range(lo, hi)
        )
        assert covered == brute_force(points, rect)

    def test_cover_equals_brute_force_clustered(self):
        points = clustered_points(300, 2, clusters=5, rng=3)
        tree = QuadTree(points, leaf_size=4)
        rect = [(0.3, 0.6), (0.3, 0.6)]
        covered = sorted(
            tree.leaf_items[i] for lo, hi in tree.find_cover(rect) for i in range(lo, hi)
        )
        assert covered == brute_force(points, rect)

    def test_cover_spans_disjoint(self):
        points = uniform_points(200, 2, rng=4)
        tree = QuadTree(points, leaf_size=2)
        seen = set()
        for lo, hi in tree.find_cover([(0.0, 1.0), (0.0, 1.0)]):
            for position in range(lo, hi):
                assert position not in seen
                seen.add(position)

    def test_wrong_dims_rejected(self):
        tree = QuadTree([(0.0, 0.0)], leaf_size=1)
        with pytest.raises(ValueError):
            tree.find_cover([(0.0, 1.0)])

    def test_empty_cover(self):
        tree = QuadTree(uniform_points(50, 2, rng=5), leaf_size=4)
        assert tree.find_cover([(5.0, 6.0), (5.0, 6.0)]) == []


class TestReporting:
    def test_report_count_agree(self):
        points = uniform_points(150, 2, rng=6)
        tree = QuadTree(points, leaf_size=6)
        rect = [(0.25, 0.9), (0.0, 0.4)]
        assert len(tree.report(rect)) == tree.count(rect)

    def test_node_count_linear_ish(self):
        points = uniform_points(500, 2, rng=7)
        tree = QuadTree(points, leaf_size=4)
        assert tree.node_count < 6 * 500
