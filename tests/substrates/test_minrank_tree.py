"""Unit tests for the min-rank-augmented BST (§2 dependent baseline)."""

import random

import pytest

from repro.errors import BuildError
from repro.substrates.minrank_tree import MinRankTree


def build(n, seed=0):
    keys = [float(i) for i in range(n)]
    ranks = list(range(n))
    random.Random(seed).shuffle(ranks)
    return MinRankTree(keys, ranks), ranks


class TestConstruction:
    def test_length_mismatch_rejected(self):
        with pytest.raises(BuildError):
            MinRankTree([1.0, 2.0], [0])

    def test_duplicate_ranks_rejected(self):
        with pytest.raises(BuildError):
            MinRankTree([1.0, 2.0], [0, 0])

    def test_rank_lookup(self):
        tree = MinRankTree([1.0, 2.0, 3.0], [2, 0, 1])
        assert tree.rank_of_index(0) == 2
        assert tree.rank_of_index(1) == 0


class TestLowestRanked:
    def test_matches_brute_force(self):
        tree, ranks = build(60, seed=3)
        for x, y, s in [(0.0, 59.0, 5), (10.0, 30.0, 7), (25.0, 25.0, 1), (5.0, 50.0, 100)]:
            hits = tree.lowest_ranked_in_range(x, y, s)
            expected = sorted(
                (ranks[i], i) for i in range(60) if x <= float(i) <= y
            )[:s]
            assert hits == expected

    def test_output_in_increasing_rank_order(self):
        tree, _ = build(40, seed=4)
        hits = tree.lowest_ranked_in_range(5.0, 35.0, 10)
        rank_sequence = [rank for rank, _ in hits]
        assert rank_sequence == sorted(rank_sequence)

    def test_empty_range(self):
        tree, _ = build(10)
        assert tree.lowest_ranked_in_range(100.0, 200.0, 3) == []

    def test_request_larger_than_range(self):
        tree, ranks = build(10)
        hits = tree.lowest_ranked_in_range(2.0, 4.0, 50)
        assert len(hits) == 3

    def test_deterministic(self):
        tree, _ = build(30, seed=5)
        assert tree.lowest_ranked_in_range(0.0, 29.0, 5) == tree.lowest_ranked_in_range(
            0.0, 29.0, 5
        )
