"""The normalized ``REPRO_*`` environment parsing helper."""

import pytest

from repro.substrates.env import env_flag, env_int


class TestEnvFlag:
    def test_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_FLAG", raising=False)
        assert env_flag("REPRO_TEST_FLAG") is False
        assert env_flag("REPRO_TEST_FLAG", default=True) is True

    @pytest.mark.parametrize("value", ["", "0", "false", "False", "NO", "off", " Off "])
    def test_falsy_spellings(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_TEST_FLAG", value)
        if value.strip():
            assert env_flag("REPRO_TEST_FLAG") is False
            # An explicit falsy spelling wins even over default=True.
            assert env_flag("REPRO_TEST_FLAG", default=True) is False
        else:
            # Empty string behaves like unset: the default applies.
            assert env_flag("REPRO_TEST_FLAG") is False
            assert env_flag("REPRO_TEST_FLAG", default=True) is True

    @pytest.mark.parametrize("value", ["1", "true", "TRUE", "yes", "on", " On "])
    def test_truthy_spellings(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_TEST_FLAG", value)
        assert env_flag("REPRO_TEST_FLAG") is True

    def test_unrecognized_nonempty_is_true(self, monkeypatch):
        # Conservative kill-switch semantics: REPRO_DISABLE_X=banana
        # disables X rather than being silently ignored.
        monkeypatch.setenv("REPRO_TEST_FLAG", "banana")
        assert env_flag("REPRO_TEST_FLAG") is True


class TestEnvInt:
    def test_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_INT", raising=False)
        assert env_int("REPRO_TEST_INT") is None
        assert env_int("REPRO_TEST_INT", 7) == 7

    def test_parses_integer(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_INT", " 42 ")
        assert env_int("REPRO_TEST_INT", 7) == 42

    def test_garbage_raises_with_name(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_INT", "many")
        with pytest.raises(ValueError, match="REPRO_TEST_INT"):
            env_int("REPRO_TEST_INT", 7)
