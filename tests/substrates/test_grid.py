"""Unit tests for the shifted-grid LSH stand-in (§7 substitution)."""

import math

import pytest

from repro.apps.workloads import uniform_points
from repro.errors import BuildError
from repro.substrates.grid import ShiftedGrids


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(BuildError):
            ShiftedGrids([], cell_size=1.0)

    def test_bad_cell_size_rejected(self):
        with pytest.raises(BuildError):
            ShiftedGrids([(0.0, 0.0)], cell_size=0.0)

    def test_bad_grid_count_rejected(self):
        with pytest.raises(BuildError):
            ShiftedGrids([(0.0, 0.0)], cell_size=1.0, num_grids=0)

    def test_each_point_in_one_cell_per_grid(self):
        points = uniform_points(100, 2, rng=1)
        grids = ShiftedGrids(points, cell_size=0.2, num_grids=3, rng=2)
        assert grids.total_family_size() == 300

    def test_family_covers_all_points(self):
        points = uniform_points(50, 2, rng=3)
        grids = ShiftedGrids(points, cell_size=0.3, num_grids=2, rng=4)
        members = set()
        for cell in grids.family:
            members.update(cell)
        assert members == set(range(50))


class TestBallQueries:
    def test_candidate_cells_cover_ball(self):
        points = uniform_points(200, 2, rng=5)
        grids = ShiftedGrids(points, cell_size=0.1, num_grids=2, rng=6)
        center, radius = (0.5, 0.5), 0.1
        candidates = set()
        for family_index in grids.cells_for_ball(center, radius):
            candidates.update(grids.family[family_index])
        for index, point in enumerate(points):
            distance = math.dist(point, center)
            if distance <= radius:
                assert index in candidates

    def test_far_query_returns_no_cells(self):
        points = uniform_points(50, 2, rng=7)
        grids = ShiftedGrids(points, cell_size=0.1, num_grids=2, rng=8)
        assert grids.cells_for_ball((50.0, 50.0), 0.1) == []

    def test_wrong_dims_rejected(self):
        grids = ShiftedGrids([(0.0, 0.0)], cell_size=1.0)
        with pytest.raises(ValueError):
            grids.cells_for_ball((0.0,), 1.0)

    def test_pruning_keeps_only_nearby_cells(self):
        # Every returned cell's box must actually touch the ball.
        points = uniform_points(300, 2, rng=9)
        grids = ShiftedGrids(points, cell_size=0.05, num_grids=1, rng=10)
        center, radius = (0.3, 0.7), 0.07
        for family_index in grids.cells_for_ball(center, radius):
            cell_points = [points[i] for i in grids.family[family_index]]
            # The cell has side 0.05, so every member lies within
            # radius + cell diagonal of the center.
            for point in cell_points:
                assert math.dist(point, center) <= radius + 0.05 * math.sqrt(2) + 1e-9
