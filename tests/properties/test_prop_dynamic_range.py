"""Property-based tests: treap range sampler vs a sorted-list reference."""

from bisect import bisect_left, bisect_right, insort

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dynamic_range import DynamicRangeSampler
from repro.errors import EmptyQueryError

operations_strategy = st.lists(
    st.tuples(
        st.sampled_from(["insert", "delete", "query"]),
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=0, max_value=200),
    ),
    min_size=1,
    max_size=80,
)


@given(operations=operations_strategy)
@settings(max_examples=200, deadline=None)
def test_treap_matches_sorted_list_reference(operations):
    sampler = DynamicRangeSampler(rng=9)
    reference = []  # sorted list of keys
    for kind, key_raw, width in operations:
        key = float(key_raw)
        if kind == "insert":
            if key not in reference:
                sampler.insert(key, 1.0 + (key_raw % 7))
                insort(reference, key)
        elif kind == "delete":
            if reference:
                victim = reference[key_raw % len(reference)]
                sampler.delete(victim)
                reference.remove(victim)
        else:
            x, y = key, key + width
            expected = bisect_right(reference, y) - bisect_left(reference, x)
            if reference:
                assert sampler.count(x, y) == expected
            if expected == 0 and len(sampler):
                with pytest.raises(EmptyQueryError):
                    sampler.sample(x, y, 1)
            elif expected > 0:
                for value in sampler.sample(x, y, 3):
                    assert x <= value <= y
    assert sampler.keys_in_order() == reference
    assert len(sampler) == len(reference)


@given(
    keys=st.sets(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=100),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=100, deadline=None)
def test_treap_weight_invariant(keys, seed):
    sampler = DynamicRangeSampler(rng=seed)
    total = 0.0
    for key in keys:
        weight = 1.0 + (key % 13)
        sampler.insert(float(key), weight)
        total += weight
    assert sampler.total_weight == pytest.approx(total)
    assert sampler.range_weight(float(min(keys)), float(max(keys))) == pytest.approx(total)
