"""Property-based tests for scheme conversions and cover structures."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.approx_coverage import ComplementRangeIndex
from repro.core.schemes import multinomial_split, uniform_indices_without_replacement
from repro.substrates.sketch import KMVSketch


@given(
    weights=st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=20),
    s=st.integers(min_value=1, max_value=500),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=150, deadline=None)
def test_multinomial_split_conserves_s(weights, s, seed):
    counts = multinomial_split(weights, s, rng=seed)
    assert sum(counts) == s
    assert all(count >= 0 for count in counts)


@given(
    bounds=st.tuples(st.integers(min_value=-100, max_value=100), st.integers(min_value=1, max_value=80)),
    seed=st.integers(min_value=0, max_value=10_000),
    data=st.data(),
)
@settings(max_examples=150, deadline=None)
def test_floyd_wor_always_distinct(bounds, seed, data):
    lo, width = bounds
    s = data.draw(st.integers(min_value=1, max_value=width))
    indices = uniform_indices_without_replacement(lo, lo + width, s, rng=seed)
    assert len(set(indices)) == s
    assert all(lo <= index < lo + width for index in indices)


@given(
    n=st.integers(min_value=1, max_value=300),
    x=st.floats(min_value=-10.0, max_value=310.0, allow_nan=False),
    width=st.floats(min_value=0.0, max_value=320.0, allow_nan=False),
)
@settings(max_examples=100, deadline=None)
def test_complement_cover_invariants(n, x, width):
    """The three §6 approximate-cover conditions, for every query."""
    index = ComplementRangeIndex([float(i) for i in range(n)])
    query = (x, x + width)
    cover = index.find_approximate_cover(query)
    below, above = index.complement_counts(query)
    result_size = below + above

    # Disjointness.
    seen = set()
    for lo, hi in cover.spans:
        for position in range(lo, hi):
            assert position not in seen
            seen.add(position)
    # Containment: S_q ⊆ ∪ spans.
    complement_positions = set(range(below)) | set(range(n - above, n))
    assert complement_positions <= seen
    # Constant-fraction occupancy: |∪ spans| ≤ 4·|S_q| (factor 2 per side,
    # slack for the merged-full-array case).
    if result_size:
        assert len(seen) <= 4 * result_size
    else:
        assert not seen


@given(
    items=st.lists(st.integers(min_value=0, max_value=10_000), max_size=300),
    k=st.integers(min_value=2, max_value=64),
    salt=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=100, deadline=None)
def test_kmv_never_exceeds_k_and_exact_below_k(items, k, salt):
    sketch = KMVSketch.from_items(items, k=k, salt=salt)
    distinct = len(set(items))
    assert len(sketch) == min(distinct, k)
    if distinct < k:
        assert sketch.estimate() == float(distinct)
