"""Property-based tests for the external-memory substrate (§8)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.em.array import ExternalArray, ExternalWriter
from repro.em.lower_bound import sort_bound_ios
from repro.em.model import EMMachine
from repro.em.sorting import external_merge_sort


machine_params = st.tuples(
    st.integers(min_value=1, max_value=16),  # B
    st.integers(min_value=2, max_value=8),  # memory blocks
)


@given(params=machine_params, values=st.lists(st.integers(), max_size=200))
@settings(max_examples=100, deadline=None)
def test_array_roundtrip(params, values):
    block_size, memory_blocks = params
    machine = EMMachine(block_size=block_size, memory_blocks=memory_blocks)
    array = ExternalArray.from_list(machine, values)
    assert array.to_list() == values


@given(params=machine_params, values=st.lists(st.integers(), max_size=200))
@settings(max_examples=100, deadline=None)
def test_writer_matches_from_list(params, values):
    block_size, memory_blocks = params
    machine = EMMachine(block_size=block_size, memory_blocks=memory_blocks)
    writer = ExternalWriter(machine)
    writer.extend(values)
    assert writer.finish().to_list() == values


@given(
    params=machine_params,
    values=st.lists(st.integers(min_value=-10_000, max_value=10_000), max_size=300),
)
@settings(max_examples=60, deadline=None)
def test_external_sort_sorts(params, values):
    block_size, memory_blocks = params
    machine = EMMachine(block_size=block_size, memory_blocks=memory_blocks)
    array = ExternalArray.from_list(machine, values)
    assert external_merge_sort(machine, array).to_list() == sorted(values)


@given(
    n=st.integers(min_value=64, max_value=1024),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=20, deadline=None)
def test_sort_io_within_bound(n, seed):
    import random

    values = [random.Random(seed).randint(0, 10**6) for _ in range(n)]
    machine = EMMachine(block_size=16, memory_blocks=4)
    array = ExternalArray.from_list(machine, values)
    machine.drop_cache()
    start = machine.stats.total
    external_merge_sort(machine, array)
    ios = machine.stats.total - start
    assert ios <= 8 * sort_bound_ios(n, 16, 64) + 16


@given(params=machine_params, values=st.lists(st.integers(), min_size=1, max_size=100))
@settings(max_examples=60, deadline=None)
def test_random_access_consistency(params, values):
    block_size, memory_blocks = params
    machine = EMMachine(block_size=block_size, memory_blocks=memory_blocks)
    array = ExternalArray.from_list(machine, values)
    for index in range(0, len(values), max(1, len(values) // 7)):
        assert array.get(index) == values[index]
