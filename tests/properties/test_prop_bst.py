"""Property-based tests for the BST canonical decomposition (Fig. 1)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.substrates.bst import StaticBST


@st.composite
def keys_and_query(draw):
    n = draw(st.integers(min_value=1, max_value=200))
    keys = [float(i) for i in range(n)]
    x = draw(st.floats(min_value=-5.0, max_value=n + 5.0, allow_nan=False))
    y = draw(st.floats(min_value=-5.0, max_value=n + 5.0, allow_nan=False))
    return keys, min(x, y), max(x, y)


@given(data=keys_and_query())
@settings(max_examples=100, deadline=None)
def test_canonical_nodes_partition_the_result(data):
    keys, x, y = data
    tree = StaticBST(keys)
    expected = [key for key in keys if x <= key <= y]
    covered = []
    for node in tree.canonical_nodes(x, y):
        lo, hi = tree.leaf_span(node)
        covered.extend(keys[lo:hi])
    assert sorted(covered) == expected
    assert len(covered) == len(set(covered))


@given(data=keys_and_query())
@settings(max_examples=100, deadline=None)
def test_cover_size_within_2log(data):
    keys, x, y = data
    tree = StaticBST(keys)
    cover = tree.canonical_nodes(x, y)
    height = tree.height()
    assert len(cover) <= max(2, 2 * height)


@given(n=st.integers(min_value=1, max_value=300))
@settings(max_examples=100, deadline=None)
def test_subtree_spans_tile_the_leaves(n):
    tree = StaticBST([float(i) for i in range(n)])
    for node in tree.iter_nodes():
        if tree.is_leaf(node):
            continue
        left, right = tree.children(node)
        left_lo, left_hi = tree.leaf_span(left)
        right_lo, right_hi = tree.leaf_span(right)
        lo, hi = tree.leaf_span(node)
        assert (left_lo, right_hi) == (lo, hi)
        assert left_hi == right_lo


@given(n=st.integers(min_value=2, max_value=256))
@settings(max_examples=100, deadline=None)
def test_height_is_ceil_log2(n):
    import math

    tree = StaticBST([float(i) for i in range(n)])
    assert tree.height() == math.ceil(math.log2(n))
