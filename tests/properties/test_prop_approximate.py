"""Property-based tests for the Direction-4 ε-approximate sampler."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.approximate import ApproximateDynamicSampler

weights_strategy = st.lists(
    st.floats(min_value=1e-6, max_value=1e9, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=60,
)


@given(weights=weights_strategy, epsilon=st.floats(min_value=0.01, max_value=0.9))
@settings(max_examples=200, deadline=None)
def test_quantization_within_sqrt_factor(weights, epsilon):
    sampler = ApproximateDynamicSampler(epsilon=epsilon, rng=1)
    half = math.sqrt(1 + epsilon) * (1 + 1e-9)
    for index, weight in enumerate(weights):
        handle = sampler.insert(index, weight)
        ratio = sampler.quantized_weight(handle) / weight
        assert 1 / half <= ratio <= half


@given(weights=weights_strategy, epsilon=st.floats(min_value=0.01, max_value=0.9))
@settings(max_examples=200, deadline=None)
def test_probability_deviation_bounded(weights, epsilon):
    """Analytic quantized probabilities stay within (1+ε) of targets."""
    sampler = ApproximateDynamicSampler(epsilon=epsilon, rng=2)
    handles = [sampler.insert(i, w) for i, w in enumerate(weights)]
    total = sum(weights)
    quantized = [sampler.quantized_weight(h) for h in handles]
    quantized_total = sum(quantized)
    bound = (1 + epsilon) * (1 + 1e-9)
    for q, w in zip(quantized, weights):
        ratio = (q / quantized_total) / (w / total)
        assert 1 / bound <= ratio <= bound


@given(
    operations=st.lists(
        st.tuples(
            st.booleans(),
            st.floats(min_value=1e-3, max_value=1e3),
            st.integers(min_value=0, max_value=1_000),
        ),
        min_size=1,
        max_size=50,
    )
)
@settings(max_examples=100, deadline=None)
def test_size_and_mass_invariants_under_churn(operations):
    sampler = ApproximateDynamicSampler(epsilon=0.2, rng=3)
    live = {}
    next_item = 0
    for is_insert, weight, selector in operations:
        if is_insert or not live:
            handle = sampler.insert(next_item, weight)
            live[handle] = next_item
            next_item += 1
        else:
            handle = sorted(live)[selector % len(live)]
            assert sampler.delete(handle) == live.pop(handle)
    assert len(sampler) == len(live)
    if live:
        assert sampler.sample() in set(live.values())
