"""Property-based tests: Fenwick tree vs a naive reference array."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.substrates.fenwick import FenwickTree

values_strategy = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=100,
)


@given(values=values_strategy)
@settings(max_examples=200, deadline=None)
def test_prefix_sums_match_reference(values):
    tree = FenwickTree(values)
    running = 0.0
    for count, value in enumerate(values, start=1):
        running += value
        assert abs(tree.prefix_sum(count) - running) < 1e-6 * max(1.0, running)


@given(
    values=values_strategy,
    updates=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=99),
            st.floats(min_value=0.0, max_value=1e4, allow_nan=False, allow_infinity=False),
        ),
        max_size=30,
    ),
)
@settings(max_examples=100, deadline=None)
def test_updates_match_reference(values, updates):
    tree = FenwickTree(values)
    reference = list(values)
    for index, delta in updates:
        index %= len(reference)
        tree.add(index, delta)
        reference[index] += delta
    for lo in range(0, len(reference), 7):
        for hi in range(lo, len(reference) + 1, 5):
            expected = sum(reference[lo:hi])
            assert abs(tree.range_sum(lo, hi) - expected) < 1e-6 * max(1.0, expected)


@given(values=st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=60))
@settings(max_examples=200, deadline=None)
def test_find_prefix_is_inverse_cdf(values):
    tree = FenwickTree(values)
    prefix = 0.0
    for index, value in enumerate(values):
        # A target strictly inside this slot's mass must map to this index.
        inside = prefix + value / 2
        assert tree.find_prefix(inside) == index
        prefix += value
