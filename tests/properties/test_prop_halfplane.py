"""Property-based tests: halfplane covers vs brute force."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.substrates.convex_layers import ConvexLayers, convex_hull
from repro.substrates.halfplane import HalfplaneIndex

coordinate = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)
points_strategy = st.lists(st.tuples(coordinate, coordinate), min_size=1, max_size=120)


@given(points=points_strategy)
@settings(max_examples=200, deadline=None)
def test_hull_contains_all_points(points):
    hull = convex_hull(points)
    if len(hull) < 3:
        return
    # Every input point lies inside or on the hull (non-negative cross
    # products against every ccw edge).
    m = len(hull)
    for point in points:
        for i in range(m):
            a, b = hull[i], hull[(i + 1) % m]
            cross = (b[0] - a[0]) * (point[1] - a[1]) - (b[1] - a[1]) * (point[0] - a[0])
            assert cross >= -1e-6 * max(1.0, abs(cross))


@given(points=points_strategy)
@settings(max_examples=200, deadline=None)
def test_layers_partition(points):
    layers = ConvexLayers(points)
    assert sorted(layers.leaf_items) == sorted(points)
    assert sorted(layers.original_index(i) for i in range(len(points))) == list(
        range(len(points))
    )


@given(
    points=points_strategy,
    a=st.floats(min_value=-5.0, max_value=5.0, allow_nan=False),
    b=st.floats(min_value=-120.0, max_value=120.0, allow_nan=False),
)
@settings(max_examples=100, deadline=None)
def test_halfplane_cover_matches_brute_force(points, a, b):
    index = HalfplaneIndex(points)
    expected = sorted(p for p in points if p[1] - a * p[0] - b <= 0)
    assert sorted(index.report((a, b))) == expected
    # Spans must be disjoint.
    seen = set()
    for lo, hi in index.find_cover((a, b)):
        for position in range(lo, hi):
            assert position not in seen
            seen.add(position)
