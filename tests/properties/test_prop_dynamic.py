"""Property-based tests: dynamic samplers vs a naive reference under
arbitrary update sequences (§9 Direction 1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dynamic import BucketDynamicSampler, FenwickDynamicSampler

# An operation is (kind, weight) where kind ∈ {insert, delete, update}.
operations_strategy = st.lists(
    st.tuples(
        st.sampled_from(["insert", "delete", "update"]),
        st.floats(min_value=1e-3, max_value=1e3, allow_nan=False, allow_infinity=False),
        st.integers(min_value=0, max_value=10_000),
    ),
    min_size=1,
    max_size=60,
)


def apply_operations(sampler_cls, operations):
    """Replay operations against the sampler and a reference dict."""
    sampler = sampler_cls(rng=7)
    reference = {}  # handle -> (item, weight)
    next_item = 0
    for kind, weight, selector in operations:
        if kind == "insert" or not reference:
            handle = sampler.insert(next_item, weight)
            reference[handle] = (next_item, weight)
            next_item += 1
        elif kind == "delete":
            handle = sorted(reference)[selector % len(reference)]
            item = sampler.delete(handle)
            assert item == reference.pop(handle)[0]
        else:
            handle = sorted(reference)[selector % len(reference)]
            sampler.update_weight(handle, weight)
            reference[handle] = (reference[handle][0], weight)
    return sampler, reference


@pytest.mark.parametrize("sampler_cls", [FenwickDynamicSampler, BucketDynamicSampler])
@given(operations=operations_strategy)
@settings(max_examples=100, deadline=None)
def test_state_matches_reference(sampler_cls, operations):
    sampler, reference = apply_operations(sampler_cls, operations)
    assert len(sampler) == len(reference)
    expected_total = sum(weight for _, weight in reference.values())
    assert sampler.total_weight == pytest.approx(expected_total, rel=1e-6)


@pytest.mark.parametrize("sampler_cls", [FenwickDynamicSampler, BucketDynamicSampler])
@given(operations=operations_strategy)
@settings(max_examples=60, deadline=None)
def test_samples_are_live_elements(sampler_cls, operations):
    sampler, reference = apply_operations(sampler_cls, operations)
    if not reference:
        return
    live_items = {item for item, _ in reference.values()}
    for _ in range(10):
        assert sampler.sample() in live_items
