"""Property-based tests for the alias structure (§3.1)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.alias import AliasSampler, build_alias_tables

positive_weights = st.lists(
    st.floats(min_value=1e-6, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=64,
)


@given(weights=positive_weights)
@settings(max_examples=200, deadline=None)
def test_urn_masses_reconstruct_weights(weights):
    """Condition (2) of §3.1: per-element urn mass equals w(e)/W."""
    sampler = AliasSampler(list(range(len(weights))), weights)
    total = sum(weights)
    for index, weight in enumerate(weights):
        assert math.isclose(
            sampler.probability(index), weight / total, rel_tol=1e-9, abs_tol=1e-12
        )


@given(weights=positive_weights)
@settings(max_examples=200, deadline=None)
def test_tables_shape_invariants(weights):
    prob, alias = build_alias_tables(weights)
    n = len(weights)
    assert len(prob) == len(alias) == n
    for p, a in zip(prob, alias):
        assert -1e-12 <= p <= 1.0 + 1e-12
        assert 0 <= a < n


@given(weights=positive_weights, seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=100, deadline=None)
def test_samples_always_valid_indices(weights, seed):
    sampler = AliasSampler(list(range(len(weights))), weights, rng=seed)
    for index in sampler.sample_indices(20):
        assert 0 <= index < len(weights)


@given(
    n=st.integers(min_value=1, max_value=50),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=100, deadline=None)
def test_uniform_weights_all_urns_full(n, seed):
    prob, _ = build_alias_tables([1.0] * n)
    assert all(math.isclose(p, 1.0) for p in prob)
