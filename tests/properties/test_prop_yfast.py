"""Property-based tests: y-fast trie vs bisect reference (§4.3)."""

from bisect import bisect_right

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.substrates.yfast import YFastTrie


@st.composite
def keys_and_queries(draw):
    keys = sorted(
        draw(
            st.sets(
                st.integers(min_value=0, max_value=(1 << 16) - 1),
                min_size=1,
                max_size=200,
            )
        )
    )
    queries = draw(
        st.lists(st.integers(min_value=0, max_value=1 << 17), min_size=1, max_size=50)
    )
    return keys, queries


@given(data=keys_and_queries())
@settings(max_examples=100, deadline=None)
def test_predecessor_matches_bisect(data):
    keys, queries = data
    trie = YFastTrie(keys)
    for query in queries:
        expected = bisect_right(keys, query) - 1
        actual = trie.predecessor_index(query)
        if expected < 0:
            assert actual is None
        else:
            assert actual == expected


@given(data=keys_and_queries())
@settings(max_examples=200, deadline=None)
def test_successor_consistent_with_predecessor(data):
    keys, queries = data
    trie = YFastTrie(keys)
    for query in queries:
        successor = trie.successor(query)
        if successor is not None:
            assert successor >= query
            predecessor_of_prior = trie.predecessor(successor - 1) if successor else None
            assert predecessor_of_prior is None or predecessor_of_prior < query


@given(data=keys_and_queries())
@settings(max_examples=200, deadline=None)
def test_span_bounds_are_valid(data):
    keys, queries = data
    trie = YFastTrie(keys)
    for i in range(0, len(queries) - 1, 2):
        x, y = sorted((queries[i], queries[i + 1]))
        lo, hi = trie.span_of(x, y)
        assert 0 <= lo <= hi <= len(keys)
        covered = keys[lo:hi]
        expected = [key for key in keys if x <= key <= y]
        assert covered == expected
