"""Property-based tests for the Theorem-3 chunked sampler internals."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.range_sampler import ChunkedRangeSampler


@st.composite
def sampler_and_span(draw):
    n = draw(st.integers(min_value=1, max_value=150))
    chunk_size = draw(st.integers(min_value=1, max_value=20))
    lo = draw(st.integers(min_value=0, max_value=n - 1))
    hi = draw(st.integers(min_value=lo + 1, max_value=n))
    keys = [float(i) for i in range(n)]
    sampler = ChunkedRangeSampler(keys, rng=1, chunk_size=chunk_size)
    return sampler, lo, hi


@given(data=sampler_and_span())
@settings(max_examples=100, deadline=None)
def test_query_split_partitions_span(data):
    """The Figure-2 decomposition covers [lo, hi) exactly once."""
    sampler, lo, hi = data
    (h_lo, h_hi), (m_lo, m_hi), (t_lo, t_hi) = sampler.query_split(lo, hi)
    covered = list(range(h_lo, h_hi)) + list(range(t_lo, t_hi))
    for chunk in range(m_lo, m_hi):
        c_lo = chunk * sampler.chunk_size
        c_hi = min(c_lo + sampler.chunk_size, len(sampler.keys))
        covered.extend(range(c_lo, c_hi))
    assert sorted(covered) == list(range(lo, hi))


@given(data=sampler_and_span())
@settings(max_examples=100, deadline=None)
def test_partial_parts_stay_within_one_chunk(data):
    sampler, lo, hi = data
    (h_lo, h_hi), _, (t_lo, t_hi) = sampler.query_split(lo, hi)
    c = sampler.chunk_size
    if h_hi > h_lo:
        assert h_lo // c == (h_hi - 1) // c
    if t_hi > t_lo:
        assert t_lo // c == (t_hi - 1) // c


@given(data=sampler_and_span(), s=st.integers(min_value=1, max_value=30))
@settings(max_examples=150, deadline=None)
def test_samples_always_inside_span(data, s):
    sampler, lo, hi = data
    for index in sampler.sample_span(lo, hi, s):
        assert lo <= index < hi
