"""Machine-readable tier timings exporter (``BENCH_7.json``).

Times the batched alias-draw kernel on every available dispatch tier
(scalar, numpy, jit) across an (n, s) grid and writes one JSON document
CI uploads as an artifact, so tier regressions are diffable across runs
without parsing pytest-benchmark output.

Named ``bench7_report.py`` (no ``bench_`` prefix) deliberately: it is a
standalone script, not a pytest-collected benchmark. Run::

    python benchmarks/bench7_report.py --out BENCH_7.json [--quick]

Schema::

    {
      "workload": "alias_draw_batch",
      "tiers": ["scalar", "numpy", "jit"?],
      "have_numba": bool,
      "grid": [
        {"tier": ..., "n": ..., "s": ..., "best_s": ..., "mean_s": ...},
        ...
      ]
    }
"""

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro.core import kernels, kernels_jit  # noqa: E402
from repro.core.alias import alias_draw  # noqa: E402

REPEATS = 5


def time_call(fn, repeats=REPEATS):
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times), sum(times) / len(times)


def scalar_case(prob, alias, s):
    import random

    rng = random.Random(1)
    prob_list = prob.tolist()
    alias_list = alias.tolist()
    return lambda: [alias_draw(prob_list, alias_list, rng) for _ in range(s)]


def numpy_case(prob, alias, s):
    gen = np.random.default_rng(1)
    return lambda: kernels.alias_draw_batch(prob, alias, s, gen)


def jit_case(prob, alias, s):
    out = np.empty(s, dtype=np.intp)
    return lambda: kernels_jit.alias_draw(prob, alias, 12345, out)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_7.json", help="output path")
    parser.add_argument(
        "--quick", action="store_true", help="small grid for smoke runs"
    )
    args = parser.parse_args(argv)

    if args.quick:
        ns = [1_000, 10_000]
        ss = [1_000, 10_000]
    else:
        ns = [1_000, 10_000, 100_000]
        ss = [1_000, 10_000, 100_000]

    tiers = {"scalar": scalar_case, "numpy": numpy_case}
    if kernels_jit.HAVE_NUMBA:
        kernels_jit.warmup()
        tiers["jit"] = jit_case

    saved_jit = kernels.HAVE_JIT
    kernels.HAVE_JIT = False  # the numpy rows must not silently take jit
    grid = []
    try:
        for n in ns:
            gen = np.random.default_rng(5)
            prob, alias = kernels.build_alias_tables_batch(gen.random(n) + 0.05)
            for s in ss:
                for tier, case in tiers.items():
                    if tier == "scalar" and s > 10_000:
                        continue  # interpreter loop: minutes, not data
                    fn = case(prob, alias, s)
                    fn()  # untimed warm call (jit compile, cache touch)
                    best, mean = time_call(fn)
                    grid.append(
                        {"tier": tier, "n": n, "s": s, "best_s": best, "mean_s": mean}
                    )
                    print(
                        f"n={n:>7} s={s:>7} {tier:<6} best={best * 1e6:10.1f}us",
                        file=sys.stderr,
                    )
    finally:
        kernels.HAVE_JIT = saved_jit

    report = {
        "workload": "alias_draw_batch",
        "tiers": sorted(tiers),
        "have_numba": kernels_jit.HAVE_NUMBA,
        "grid": grid,
    }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out} ({len(grid)} grid points)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
