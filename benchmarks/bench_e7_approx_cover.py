"""E7 — Theorem 6 / Corollary 7 on range-complement queries."""

import pytest

from repro.core.approx_coverage import ComplementRangeIndex
from repro.core.coverage import BSTIndex
from repro.engine import build

N = 1 << 15
S = 16
QUERY = (N * 0.23, N * 0.77)


@pytest.fixture(scope="module")
def index():
    return ComplementRangeIndex([float(i) for i in range(N)])


def bench_theorem6_on_the_fly(benchmark, index):
    sampler = build("complement.approx", index=index, rng=1)
    benchmark.group = "e7-complement"
    benchmark(lambda: sampler.sample(QUERY, S))


def bench_corollary7_precomputed(benchmark, index):
    sampler = build("complement.precomputed", index=index, rng=2)
    benchmark.group = "e7-complement"
    benchmark(lambda: sampler.sample(QUERY, S))


def bench_exact_cover_two_queries(benchmark):
    """Baseline: answering the complement as two exact-cover range queries
    (Theorem 5 twice) — pays two Θ(log n) covers instead of one ≤2 cover."""
    keys = [float(i) for i in range(N)]
    sampler = build("coverage", index=BSTIndex(keys), rng=3)
    x, y = QUERY

    def complement_via_two_ranges():
        left = sampler.sample((float("-inf"), x - 1), S)
        right = sampler.sample((y + 1, float("inf")), S)
        return left, right

    benchmark.group = "e7-complement"
    benchmark(complement_via_two_ranges)
