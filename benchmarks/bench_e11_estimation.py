"""E11 — Benefit 1: estimation throughput from IQS samples."""

import pytest

from repro.apps.estimation import estimate_fraction, required_sample_size
from repro.engine import build

N = 100_000


@pytest.fixture(scope="module")
def keys():
    return [float(i) for i in range(N)]


@pytest.mark.parametrize("epsilon", [0.1, 0.05])
def bench_estimate_iqs(benchmark, keys, epsilon):
    sampler = build("range.chunked", keys=keys, rng=1)
    benchmark.group = f"e11-eps{epsilon}"
    benchmark(
        lambda: estimate_fraction(
            lambda t: sampler.sample(1000.0, 90_000.0, t),
            lambda value: value < 30_000.0,
            epsilon,
            0.01,
        )
    )


@pytest.mark.parametrize("epsilon", [0.1, 0.05])
def bench_estimate_naive(benchmark, keys, epsilon):
    sampler = build("range.naive", keys=keys, rng=2)
    benchmark.group = f"e11-eps{epsilon}"
    benchmark(
        lambda: estimate_fraction(
            lambda t: sampler.sample(1000.0, 90_000.0, t),
            lambda value: value < 30_000.0,
            epsilon,
            0.01,
        )
    )


def bench_exact_count(benchmark, keys):
    """The alternative to estimation: walk the whole result."""
    benchmark.group = "e11-eps0.05"
    benchmark(
        lambda: sum(1 for key in keys if 1000.0 <= key <= 90_000.0 and key < 30_000.0)
    )


def test_sample_sizes_reported():
    assert required_sample_size(0.1, 0.01) == 265
    assert required_sample_size(0.05, 0.01) == 1060
