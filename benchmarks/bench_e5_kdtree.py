"""E5 — Theorem 5 on spatial indexes: IQS query vs full reporting."""

import pytest

from repro.apps.workloads import uniform_points, zipf_weights
from repro.engine import build
from repro.substrates.kdtree import KDTree
from repro.substrates.quadtree import QuadTree

N = 1 << 14
S = 16
RECT = [(0.25, 0.75), (0.25, 0.75)]


@pytest.fixture(scope="module")
def spatial():
    points = uniform_points(N, 2, rng=1)
    weights = zipf_weights(N, alpha=0.5, rng=2)
    return points, weights


def bench_kdtree_iqs_query(benchmark, spatial):
    points, weights = spatial
    sampler = build("coverage", index=KDTree(points, weights, leaf_size=8), rng=3)
    benchmark.group = "e5-query"
    benchmark(lambda: sampler.sample(RECT, S))


def bench_quadtree_iqs_query(benchmark, spatial):
    points, weights = spatial
    sampler = build("coverage", index=QuadTree(points, weights, leaf_size=8), rng=4)
    benchmark.group = "e5-query"
    benchmark(lambda: sampler.sample(RECT, S))


def bench_kdtree_full_report(benchmark, spatial):
    points, weights = spatial
    tree = KDTree(points, weights, leaf_size=8)
    benchmark.group = "e5-query"
    benchmark(lambda: tree.report(RECT))


def bench_kdtree_alias_backend(benchmark, spatial):
    """Ablation: Lemma-2 style per-node alias tables instead of Theorem 3."""
    points, weights = spatial
    sampler = build(
        "coverage", index=KDTree(points, weights, leaf_size=8), backend="alias", rng=5
    )
    benchmark.group = "e5-backend-ablation"
    benchmark(lambda: sampler.sample(RECT, S))


def bench_kdtree_chunked_backend(benchmark, spatial):
    points, weights = spatial
    sampler = build(
        "coverage", index=KDTree(points, weights, leaf_size=8), backend="chunked", rng=6
    )
    benchmark.group = "e5-backend-ablation"
    benchmark(lambda: sampler.sample(RECT, S))
