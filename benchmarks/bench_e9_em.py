"""E9 — EM set/range sampling: wall-clock companions to the I/O tables.

I/O counts (the §8 currency) are produced by ``python -m repro.experiments
e9``; these benches time the simulator-level operations so regressions in
the EM code paths are visible too.
"""

from repro.em.array import ExternalArray
from repro.em.model import EMMachine
from repro.em.sorting import external_merge_sort
from repro.engine import build

N = 1 << 13
B = 64
S = 128


def bench_external_sort(benchmark):
    def run():
        machine = EMMachine(block_size=B, memory_blocks=16)
        array = ExternalArray.from_list(machine, list(range(N, 0, -1)))
        return external_merge_sort(machine, array)

    benchmark.group = "e9-sort"
    benchmark(run)


def bench_pool_queries(benchmark):
    machine = EMMachine(block_size=B, memory_blocks=16)
    sampler = build("em.setpool", machine=machine, values=list(range(N)), rng=1)
    benchmark.group = "e9-set-sampling"
    benchmark(lambda: sampler.query(S))


def bench_naive_queries(benchmark):
    machine = EMMachine(block_size=B, memory_blocks=16)
    sampler = build("em.naive", machine=machine, values=list(range(N)), rng=2)
    benchmark.group = "e9-set-sampling"
    benchmark(lambda: sampler.query(S))


def bench_em_range_query(benchmark):
    machine = EMMachine(block_size=B, memory_blocks=16)
    sampler = build(
        "range.em", machine=machine, values=[float(i) for i in range(N)], rng=3
    )
    sampler.query(0.0, float(N - 1), S)  # warm the pools
    benchmark.group = "e9-range"
    benchmark(lambda: sampler.query(float(N // 4), float(3 * N // 4), S))


def bench_em_range_naive(benchmark):
    machine = EMMachine(block_size=B, memory_blocks=16)
    sampler = build(
        "range.em", machine=machine, values=[float(i) for i in range(N)], rng=4
    )
    benchmark.group = "e9-range"
    benchmark(lambda: sampler.naive_query(float(N // 4), float(3 * N // 4), S))
