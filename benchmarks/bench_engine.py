"""Engine executor benches: batched range queries, serial vs thread.

The :class:`~repro.engine.executor.SamplingEngine` promises two things a
benchmark can check: (1) the thread backend returns the *same* results as
the serial backend when every request runs on its own spawned seed, and
(2) fanning a large batch over threads is profitable when the sampler's
hot path drops the GIL in numpy kernels. On a single-core runner the
speedup claim is vacuous, so that test skips itself there.
"""

import os
import time

import pytest

from repro.engine import QueryRequest, SamplingEngine, build

N = 1 << 14
BATCH = 1000
S = 8


@pytest.fixture(scope="module")
def sampler():
    return build("range.chunked", keys=[float(i) for i in range(N)], rng=1)


@pytest.fixture(scope="module")
def requests():
    # 1000 distinct intervals marching across the key space.
    return [
        QueryRequest(
            op="sample",
            args=(float(i % (N // 2)), float(i % (N // 2) + N // 2)),
            s=S,
        )
        for i in range(BATCH)
    ]


def bench_engine_serial(benchmark, sampler, requests):
    engine = SamplingEngine(backend="serial", seed=7)
    benchmark.group = "engine-backend"
    benchmark(lambda: engine.run(sampler, requests))


def bench_engine_thread(benchmark, sampler, requests):
    engine = SamplingEngine(backend="thread", seed=7)
    benchmark.group = "engine-backend"
    benchmark(lambda: engine.run(sampler, requests))


def test_thread_matches_serial(sampler, requests):
    """Same engine seed → identical per-request results on both backends."""
    serial = SamplingEngine(backend="serial", seed=7).run(sampler, requests)
    threaded = SamplingEngine(backend="thread", seed=7).run(sampler, requests)
    assert [r.values for r in serial] == [r.values for r in threaded]
    assert [r.seed for r in serial] == [r.seed for r in threaded]


def test_thread_speedup_on_multicore(sampler, requests):
    """The thread backend must not be slower than serial on multicore."""
    if (os.cpu_count() or 1) < 2:
        pytest.skip("single-core runner — no parallel speedup to measure")
    serial = SamplingEngine(backend="serial", seed=7)
    threaded = SamplingEngine(backend="thread", seed=7)
    for engine in (serial, threaded):  # warm caches before timing
        engine.run(sampler, requests[:32])
    started = time.perf_counter()
    serial.run(sampler, requests)
    serial_s = time.perf_counter() - started
    started = time.perf_counter()
    threaded.run(sampler, requests)
    thread_s = time.perf_counter() - started
    # Generous bound: threads must at least roughly keep pace; CI boxes
    # are noisy, so this guards against pathological serialization only.
    assert thread_s < serial_s * 1.5
