"""Engine executor benches: batched range queries across all backends.

The :class:`~repro.engine.executor.SamplingEngine` promises things a
benchmark can check: (1) the thread backend returns the *same* results as
the serial backend when every request runs on its own spawned seed;
(2) fanning a large batch over threads is profitable when the sampler's
hot path drops the GIL in numpy kernels; (3) the process backend lifts
the GIL off CPU-bound *scalar* samplers entirely (workers keep rebuilt
samplers resident, so the pool pays one build per worker, not per
request); (4) the shard backend's §4.1 multinomial split scales with the
shard count K — the ``engine-shard-scaling`` group records the K ∈
{1, 2, 4, 8} curve. On runners without enough cores the speedup claims
are vacuous, so those tests skip themselves there.

``REPRO_BENCH_QUICK=1`` shrinks the GIL-bound speedup workload for smoke
runs.
"""

import os
import time

import pytest

from repro.engine import QueryRequest, SamplingEngine, build, spec_token
from repro.substrates.env import env_flag

N = 1 << 14
BATCH = 1000
S = 8
QUICK = env_flag("REPRO_BENCH_QUICK")
SHARD_COUNTS = (1, 2, 4, 8)


@pytest.fixture(scope="module")
def sampler():
    return build("range.chunked", keys=[float(i) for i in range(N)], rng=1)


@pytest.fixture(scope="module")
def requests():
    # 1000 distinct intervals marching across the key space.
    return [
        QueryRequest(
            op="sample",
            args=(float(i % (N // 2)), float(i % (N // 2) + N // 2)),
            s=S,
        )
        for i in range(BATCH)
    ]


def bench_engine_serial(benchmark, sampler, requests):
    engine = SamplingEngine(backend="serial", seed=7)
    benchmark.group = "engine-backend"
    benchmark(lambda: engine.run(sampler, requests))


def bench_engine_thread(benchmark, sampler, requests):
    engine = SamplingEngine(backend="thread", seed=7)
    benchmark.group = "engine-backend"
    benchmark(lambda: engine.run(sampler, requests))


def bench_engine_process(benchmark, requests):
    keys = [float(i) for i in range(N)]
    token = spec_token("range.chunked", {"keys": keys, "rng": 1})
    with SamplingEngine(backend="process", seed=7, max_workers=2) as engine:
        engine.run_token(token, requests[:8])  # fork workers, build resident
        benchmark.group = "engine-backend"
        benchmark(lambda: engine.run_token(token, requests))


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def bench_engine_shard_scaling(benchmark, sampler, requests, shards):
    """One curve point per K: batched queries through the K-shard view."""
    engine = SamplingEngine(backend="shard", seed=7, shards=shards)
    engine.run(sampler, requests[:8])  # build + memoize the K-shard view
    benchmark.group = "engine-shard-scaling"
    benchmark.extra_info["shards"] = shards
    benchmark(lambda: engine.run(sampler, requests))


def test_thread_matches_serial(sampler, requests):
    """Same engine seed → identical per-request results on both backends."""
    serial = SamplingEngine(backend="serial", seed=7).run(sampler, requests)
    threaded = SamplingEngine(backend="thread", seed=7).run(sampler, requests)
    assert [r.values for r in serial] == [r.values for r in threaded]
    assert [r.seed for r in serial] == [r.seed for r in threaded]


def test_thread_speedup_on_multicore(sampler, requests):
    """The thread backend must not be slower than serial on multicore."""
    if (os.cpu_count() or 1) < 2:
        pytest.skip("single-core runner — no parallel speedup to measure")
    serial = SamplingEngine(backend="serial", seed=7)
    threaded = SamplingEngine(backend="thread", seed=7)
    for engine in (serial, threaded):  # warm caches before timing
        engine.run(sampler, requests[:32])
    started = time.perf_counter()
    serial.run(sampler, requests)
    serial_s = time.perf_counter() - started
    started = time.perf_counter()
    threaded.run(sampler, requests)
    thread_s = time.perf_counter() - started
    # Generous bound: threads must at least roughly keep pace; CI boxes
    # are noisy, so this guards against pathological serialization only.
    assert thread_s < serial_s * 1.5


def test_shard_scaling_stays_deterministic(sampler, requests):
    """Every K on the curve reproduces the same engine-seeded batch."""
    per_k = {}
    for shards in SHARD_COUNTS:
        engine = SamplingEngine(backend="shard", seed=7, shards=shards)
        first = engine.run(sampler, requests[:32])
        second = engine.run(sampler, requests[:32])
        assert [r.values for r in first] == [r.values for r in second]
        per_k[shards] = [r.values for r in first]
    # K = 1 is a genuine single-shard execution, not a serial alias.
    assert all(values is not None for values in per_k[1])


def test_process_speedup_on_gil_bound_scalar_sampler():
    """Acceptance: ≥ 2x over serial on a scalar treewalk, n=1e5, s=1e4.

    The treewalk's per-draw root-to-leaf descent is pure Python when the
    numpy kernels are disabled, so the thread backend cannot help (the
    GIL serializes it) while the process backend parallelizes across
    cores. Needs enough cores for 2x to be reachable.
    """
    if (os.cpu_count() or 1) < 3:
        pytest.skip("needs >= 3 cores for a meaningful 2x process speedup")
    from repro.core import kernels

    n = 10_000 if QUICK else 100_000
    s = 2_000 if QUICK else 10_000
    keys = [float(i) for i in range(n)]
    params = {"keys": keys, "rng": 1}
    requests = [
        QueryRequest(op="sample", args=(0.0, float(n)), s=s) for _ in range(8)
    ]
    saved = kernels.HAVE_NUMPY
    kernels.HAVE_NUMPY = False  # force the GIL-bound scalar hot loops
    os.environ["REPRO_DISABLE_NUMPY"] = "1"  # workers forked later follow
    try:
        sampler = build("range.treewalk", **params)
        serial_engine = SamplingEngine(backend="serial", seed=7)
        serial_engine.run(sampler, requests[:1])  # warm plan caches
        started = time.perf_counter()
        serial_engine.run(sampler, requests)
        serial_s = time.perf_counter() - started
        token = spec_token("range.treewalk", params)
        with SamplingEngine(backend="process", seed=7, max_workers=4) as engine:
            engine.run_token(token, requests)  # fork + resident builds
            started = time.perf_counter()
            engine.run_token(token, requests)
            process_s = time.perf_counter() - started
    finally:
        kernels.HAVE_NUMPY = saved
        os.environ.pop("REPRO_DISABLE_NUMPY", None)
    assert process_s * 2.0 <= serial_s, (
        f"process backend {process_s:.3f}s vs serial {serial_s:.3f}s "
        f"— expected >= 2x speedup"
    )
