"""E4 — build times behind the space table (Lemma 2's O(n log n) words
take proportionally longer to materialise than Theorem 3's O(n))."""

import pytest

from repro.engine import build

SIZES = [1 << 12, 1 << 15]


@pytest.mark.parametrize("n", SIZES)
def bench_build_lemma2(benchmark, n):
    keys = [float(i) for i in range(n)]
    benchmark.group = f"e4-build-n{n}"
    benchmark(lambda: build("range.lemma2", keys=keys))


@pytest.mark.parametrize("n", SIZES)
def bench_build_theorem3(benchmark, n):
    keys = [float(i) for i in range(n)]
    benchmark.group = f"e4-build-n{n}"
    benchmark(lambda: build("range.chunked", keys=keys))


def test_space_ratio_matches_log_factor():
    """Non-timing assertion recorded alongside the build benches."""
    n_small, n_big = 1 << 12, 1 << 16
    lemma2_growth = build(
        "range.lemma2", keys=[float(i) for i in range(n_big)]
    ).space_words() / (n_big) - build(
        "range.lemma2", keys=[float(i) for i in range(n_small)]
    ).space_words() / (n_small)
    theorem3_growth = build(
        "range.chunked", keys=[float(i) for i in range(n_big)]
    ).space_words() / (n_big) - build(
        "range.chunked", keys=[float(i) for i in range(n_small)]
    ).space_words() / (n_small)
    assert lemma2_growth > 2.0  # ~4 extra words/element per 4 doublings
    assert abs(theorem3_growth) < 1.0
