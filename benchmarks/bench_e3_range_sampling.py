"""E3 — the headline table: IQS range sampling vs report-then-sample
across selectivities (Lemma 2, Theorem 3 vs §1 naive)."""

import pytest

from repro.apps.workloads import (
    distinct_uniform_reals,
    interval_with_selectivity,
    zipf_weights,
)
from repro.core.naive import NaiveRangeSampler
from repro.core.range_sampler import (
    AliasAugmentedRangeSampler,
    ChunkedRangeSampler,
    TreeWalkRangeSampler,
)

N = 100_000
S = 16
SELECTIVITIES = [0.01, 0.1, 0.5]


@pytest.fixture(scope="module")
def dataset():
    keys = distinct_uniform_reals(N, rng=1)
    weights = zipf_weights(N, alpha=0.8, rng=2)
    queries = {
        selectivity: interval_with_selectivity(keys, selectivity, rng=3)
        for selectivity in SELECTIVITIES
    }
    return keys, weights, queries


SAMPLERS = {
    "naive": NaiveRangeSampler,
    "treewalk": TreeWalkRangeSampler,
    "lemma2": AliasAugmentedRangeSampler,
    "theorem3": ChunkedRangeSampler,
}


@pytest.mark.parametrize("selectivity", SELECTIVITIES)
@pytest.mark.parametrize("name", list(SAMPLERS))
def bench_range_query(benchmark, dataset, name, selectivity):
    keys, weights, queries = dataset
    sampler = SAMPLERS[name](keys, weights, rng=4)
    x, y = queries[selectivity]
    benchmark.group = f"e3-selectivity-{selectivity}"
    benchmark(lambda: sampler.sample(x, y, S))


@pytest.mark.parametrize("s", [1, 64, 1024])
def bench_theorem3_sample_size_sweep(benchmark, dataset, s):
    keys, weights, queries = dataset
    sampler = ChunkedRangeSampler(keys, weights, rng=5)
    x, y = queries[0.1]
    benchmark.group = "e3-s-sweep"
    benchmark(lambda: sampler.sample(x, y, s))


@pytest.mark.parametrize("name", list(SAMPLERS))
def bench_range_scalar_vs_batch(benchmark, dataset, batch_mode, name):
    """Scalar-vs-batch comparison column: s = 10⁴ draws at selectivity 0.5."""
    keys, weights, queries = dataset
    sampler = SAMPLERS[name](keys, weights, rng=6)
    x, y = queries[0.5]
    sampler.sample(x, y, 10_000)  # warm lazy kernel caches
    benchmark.group = f"e3-batch-vs-scalar-{name}"
    benchmark.extra_info["mode"] = batch_mode
    benchmark(lambda: sampler.sample(x, y, 10_000))
