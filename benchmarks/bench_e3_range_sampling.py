"""E3 — the headline table: IQS range sampling vs report-then-sample
across selectivities (Lemma 2, Theorem 3 vs §1 naive)."""

import pytest

from repro.apps.workloads import (
    distinct_uniform_reals,
    interval_with_selectivity,
    zipf_weights,
)
from repro.engine import build

N = 100_000
S = 16
SELECTIVITIES = [0.01, 0.1, 0.5]


@pytest.fixture(scope="module")
def dataset():
    keys = distinct_uniform_reals(N, rng=1)
    weights = zipf_weights(N, alpha=0.8, rng=2)
    queries = {
        selectivity: interval_with_selectivity(keys, selectivity, rng=3)
        for selectivity in SELECTIVITIES
    }
    return keys, weights, queries


SAMPLERS = {
    "naive": "range.naive",
    "treewalk": "range.treewalk",
    "lemma2": "range.lemma2",
    "theorem3": "range.chunked",
}


@pytest.mark.parametrize("selectivity", SELECTIVITIES)
@pytest.mark.parametrize("name", list(SAMPLERS))
def bench_range_query(benchmark, dataset, name, selectivity):
    keys, weights, queries = dataset
    sampler = build(SAMPLERS[name], keys=keys, weights=weights, rng=4)
    x, y = queries[selectivity]
    benchmark.group = f"e3-selectivity-{selectivity}"
    benchmark(lambda: sampler.sample(x, y, S))


@pytest.mark.parametrize("s", [1, 64, 1024])
def bench_theorem3_sample_size_sweep(benchmark, dataset, s):
    keys, weights, queries = dataset
    sampler = build("range.chunked", keys=keys, weights=weights, rng=5)
    x, y = queries[0.1]
    benchmark.group = "e3-s-sweep"
    benchmark(lambda: sampler.sample(x, y, s))


@pytest.mark.parametrize("name", list(SAMPLERS))
def bench_range_scalar_vs_batch(benchmark, dataset, batch_mode, name):
    """Scalar-vs-batch comparison column: s = 10⁴ draws at selectivity 0.5."""
    keys, weights, queries = dataset
    sampler = build(SAMPLERS[name], keys=keys, weights=weights, rng=6)
    x, y = queries[0.5]
    sampler.sample(x, y, 10_000)  # warm lazy kernel caches
    benchmark.group = f"e3-batch-vs-scalar-{name}"
    benchmark.extra_info["mode"] = batch_mode
    benchmark(lambda: sampler.sample(x, y, 10_000))


@pytest.mark.parametrize("name", ["treewalk", "lemma2", "theorem3"])
def bench_build_scalar_vs_batch(benchmark, dataset, batch_mode, name):
    """Construction column (PR 2): vectorized vs pure-Python structure
    build. The Lemma-2 row exercises the flat segmented Vose kernel over
    all O(n log n) urns; the Theorem-3 row the packed per-chunk build."""
    keys, weights, _ = dataset
    benchmark.group = f"e3-build-batch-vs-scalar-{name}"
    benchmark.extra_info["mode"] = batch_mode
    benchmark(lambda: build(SAMPLERS[name], keys=keys, weights=weights, rng=7))


@pytest.mark.parametrize("cache", ["cold", "warm"])
@pytest.mark.parametrize("name", ["treewalk", "theorem3"])
def bench_repeated_range_plan_cache(benchmark, dataset, name, cache):
    """Warm vs cold plan cache on a hot-range workload (PR 2).

    ``cold`` disables the :class:`QueryPlanCache` (capacity 0), ``warm``
    uses the default capacity; EXPERIMENTS.md records the latency ratio.
    """
    keys, weights, queries = dataset
    x, y = queries[0.1]
    cache_size = 0 if cache == "cold" else None
    sampler = build(
        SAMPLERS[name], keys=keys, weights=weights, rng=8, plan_cache_size=cache_size
    )
    sampler.sample(x, y, 4)  # prime the plan (a no-op when disabled)
    benchmark.group = f"e3-plan-cache-{name}"
    benchmark.extra_info["mode"] = cache
    benchmark(lambda: sampler.sample(x, y, 4))
