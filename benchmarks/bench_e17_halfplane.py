"""E17 — halfplane IQS on convex layers vs full halfplane reporting."""

import random

import pytest

from repro.engine import build
from repro.substrates.halfplane import HalfplaneIndex

N = 8_000
QUERY = (0.2, -6.0)  # y <= 0.2x - 6: the lower ~15 % of the box


@pytest.fixture(scope="module")
def index():
    rng = random.Random(1)
    points = [(rng.uniform(-10, 10), rng.uniform(-10, 10)) for _ in range(N)]
    return HalfplaneIndex(points)


def bench_halfplane_iqs(benchmark, index):
    sampler = build("coverage", index=index, rng=2)
    benchmark.group = "e17-halfplane"
    benchmark(lambda: sampler.sample(QUERY, 16))


def bench_halfplane_report(benchmark, index):
    benchmark.group = "e17-halfplane"
    benchmark(lambda: index.report(QUERY))


def bench_cover_finding_only(benchmark, index):
    benchmark.group = "e17-cover"
    benchmark(lambda: index.find_cover(QUERY))
