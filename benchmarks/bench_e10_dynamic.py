"""E10 — dynamic weighted sampling: update & sample costs under churn."""

import random

import pytest

from repro.core.alias import AliasSampler
from repro.core.dynamic import BucketDynamicSampler, FenwickDynamicSampler

N = 1 << 14


def loaded(sampler_cls):
    rng = random.Random(1)
    sampler = sampler_cls(rng=2)
    handles = [sampler.insert(i, 1.0 + rng.random() * 100) for i in range(N)]
    return sampler, handles, rng


@pytest.mark.parametrize("sampler_cls", [FenwickDynamicSampler, BucketDynamicSampler])
def bench_update(benchmark, sampler_cls):
    sampler, handles, rng = loaded(sampler_cls)

    def update():
        sampler.update_weight(handles[rng.randrange(N)], 1.0 + rng.random() * 100)

    benchmark.group = "e10-update"
    benchmark(update)


@pytest.mark.parametrize("sampler_cls", [FenwickDynamicSampler, BucketDynamicSampler])
def bench_sample(benchmark, sampler_cls):
    sampler, _, _ = loaded(sampler_cls)
    benchmark.group = "e10-sample"
    benchmark(sampler.sample)


@pytest.mark.parametrize("sampler_cls", [FenwickDynamicSampler, BucketDynamicSampler])
def bench_insert_delete_cycle(benchmark, sampler_cls):
    sampler, handles, rng = loaded(sampler_cls)

    def cycle():
        handle = sampler.insert("temp", 5.0)
        sampler.delete(handle)

    benchmark.group = "e10-insert-delete"
    benchmark(cycle)


def bench_static_alias_rebuild(benchmark):
    """The baseline an update-capable structure avoids: full O(n) rebuild."""
    rng = random.Random(3)
    weights = [1.0 + rng.random() * 100 for _ in range(N)]
    items = list(range(N))
    benchmark.group = "e10-update"
    benchmark(lambda: AliasSampler(items, weights, rng=4))
