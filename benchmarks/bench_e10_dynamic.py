"""E10 — dynamic weighted sampling: update & sample costs under churn."""

import random

import pytest

from repro.engine import build

N = 1 << 14


def loaded(spec):
    rng = random.Random(1)
    sampler = build(spec, rng=2)
    handles = [sampler.insert(i, 1.0 + rng.random() * 100) for i in range(N)]
    return sampler, handles, rng


@pytest.mark.parametrize("spec", ["dynamic.fenwick", "dynamic.bucket"])
def bench_update(benchmark, spec):
    sampler, handles, rng = loaded(spec)

    def update():
        sampler.update_weight(handles[rng.randrange(N)], 1.0 + rng.random() * 100)

    benchmark.group = "e10-update"
    benchmark(update)


@pytest.mark.parametrize("spec", ["dynamic.fenwick", "dynamic.bucket"])
def bench_sample(benchmark, spec):
    sampler, _, _ = loaded(spec)
    benchmark.group = "e10-sample"
    benchmark(sampler.sample)


@pytest.mark.parametrize("spec", ["dynamic.fenwick", "dynamic.bucket"])
def bench_insert_delete_cycle(benchmark, spec):
    sampler, handles, rng = loaded(spec)

    def cycle():
        handle = sampler.insert("temp", 5.0)
        sampler.delete(handle)

    benchmark.group = "e10-insert-delete"
    benchmark(cycle)


def bench_static_alias_rebuild(benchmark):
    """The baseline an update-capable structure avoids: full O(n) rebuild."""
    rng = random.Random(3)
    weights = [1.0 + rng.random() * 100 for _ in range(N)]
    items = list(range(N))
    benchmark.group = "e10-update"
    benchmark(lambda: build("alias", items=items, weights=weights, rng=4))
