"""Shared fixtures for the benchmark suite.

Each bench_eXX file regenerates the timing side of one EXPERIMENTS.md
experiment (the shape/series side lives in ``python -m repro.experiments``).
Run with::

    pytest benchmarks/ --benchmark-only
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
