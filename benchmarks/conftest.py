"""Shared fixtures for the benchmark suite.

Each bench_eXX file regenerates the timing side of one EXPERIMENTS.md
experiment (the shape/series side lives in ``python -m repro.experiments``).
Run with::

    pytest benchmarks/ --benchmark-only
"""

import os
import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def pytest_sessionfinish(session, exitstatus):
    """With metrics on, leave a sidecar JSON of the run's counters.

    The path comes from ``REPRO_METRICS_SIDECAR`` (default
    ``benchmarks/metrics-sidecar.json``); CI uploads it as an artifact so
    per-query cost accounting rides along with the timing numbers.
    """
    from repro import obs

    if not obs.ENABLED:
        return
    default = str(Path(__file__).resolve().parent / "metrics-sidecar.json")
    path = os.environ.get(obs.ENV_SIDECAR, default)
    obs.write_sidecar(
        path,
        obs.snapshot(),
        extra={"suite": "benchmarks", "exitstatus": int(exitstatus)},
    )


@pytest.fixture(params=["scalar", "batch"])
def batch_mode(request):
    """Run a benchmark under both sampling paths for A/B comparison.

    ``scalar`` forces the pure-Python loops (the seed behaviour);
    ``batch`` keeps the numpy kernel dispatch (skipped when numpy is
    unavailable). EXPERIMENTS.md records the measured ratio.
    """
    from repro.core import kernels

    if request.param == "scalar":
        saved = kernels.HAVE_NUMPY
        kernels.HAVE_NUMPY = False
        try:
            yield "scalar"
        finally:
            kernels.HAVE_NUMPY = saved
    else:
        if not kernels.HAVE_NUMPY:
            pytest.skip("numpy unavailable — no batch path to measure")
        yield "batch"
