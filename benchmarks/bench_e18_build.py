"""E18 — PR 2: vectorized structure construction.

Regenerates the construction side of the EXPERIMENTS.md E1c/E3c rows:
how long it takes to *build* each sampling structure, scalar fallback
vs the flat/packed numpy builders, plus the warm-plan-cache query column
for the repeated-range workload.

Quick mode (the CI benchmark-smoke step) shrinks the instance sizes so
the whole file runs in seconds::

    REPRO_BENCH_QUICK=1 pytest benchmarks/bench_e18_build.py --benchmark-only
"""


import pytest

from repro.apps.workloads import zipf_weights
from repro.engine import build
from repro.substrates.bst import StaticBST
from repro.substrates.env import env_flag

QUICK = env_flag("REPRO_BENCH_QUICK")

#: Quick mode keeps the Lemma-2 build (the heaviest structure: O(n log n)
#: urns) under ~100 ms per round so the CI smoke step stays cheap while
#: still exercising every builder's vectorized path.
SIZES = [1 << 12, 1 << 14] if QUICK else [1 << 14, 1 << 17]

BUILDERS = {
    "alias": lambda keys, weights: build("alias", items=keys, weights=weights, rng=2),
    "bst": lambda keys, weights: StaticBST(keys, weights),
    "treewalk": lambda keys, weights: build(
        "range.treewalk", keys=keys, weights=weights, rng=2
    ),
    "lemma2": lambda keys, weights: build(
        "range.lemma2", keys=keys, weights=weights, rng=2
    ),
    "theorem3": lambda keys, weights: build(
        "range.chunked", keys=keys, weights=weights, rng=2
    ),
}


@pytest.fixture(scope="module")
def datasets():
    return {
        n: (list(range(n)), zipf_weights(n, alpha=0.8, rng=1)) for n in SIZES
    }


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("name", list(BUILDERS))
def bench_build(benchmark, datasets, name, n, batch_mode):
    """Scalar-vs-batch construction for every structure touched by PR 2."""
    keys, weights = datasets[n]
    benchmark.group = f"e18-build-{name}-n{n}"
    benchmark.extra_info["mode"] = batch_mode
    benchmark(lambda: BUILDERS[name](keys, weights))
