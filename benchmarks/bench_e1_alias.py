"""E1 — Theorem 1: alias build is O(n), sampling is O(1) per draw.

The `sample_1000` group should show (near-)identical timings across n —
that flatness *is* the O(1) claim.
"""

import pytest

from repro.apps.workloads import zipf_weights
from repro.engine import build

SIZES = [1 << 10, 1 << 14, 1 << 18]


@pytest.mark.parametrize("n", SIZES)
def bench_build(benchmark, n):
    weights = zipf_weights(n, rng=1)
    items = list(range(n))
    benchmark.group = "e1-build"
    benchmark(lambda: build("alias", items=items, weights=weights, rng=2))


@pytest.mark.parametrize("n", SIZES)
def bench_sample_1000(benchmark, n):
    sampler = build("alias", items=list(range(n)), weights=zipf_weights(n, rng=1), rng=3)
    benchmark.group = "e1-sample-1000"
    benchmark(lambda: sampler.sample_many(1000))


@pytest.mark.parametrize("n", SIZES)
def bench_sample_many_scalar_vs_batch(benchmark, batch_mode, n):
    """Scalar-vs-batch comparison column: s = 10⁴ draws per call."""
    sampler = build("alias", items=list(range(n)), weights=zipf_weights(n, rng=1), rng=3)
    sampler.sample_many(10_000)  # warm lazy kernel caches
    benchmark.group = f"e1-batch-vs-scalar-n{n}"
    benchmark.extra_info["mode"] = batch_mode
    benchmark(lambda: sampler.sample_many(10_000))


@pytest.mark.parametrize("n", SIZES)
def bench_build_scalar_vs_batch(benchmark, batch_mode, n):
    """Construction column (PR 2): vectorized vs stack-loop Vose build."""
    weights = zipf_weights(n, rng=1)
    items = list(range(n))
    benchmark.group = f"e1-build-batch-vs-scalar-n{n}"
    benchmark.extra_info["mode"] = batch_mode
    benchmark(lambda: build("alias", items=items, weights=weights, rng=2))
