"""E12 — fair near-neighbor sampling vs exact ball scans."""

import pytest

from repro.apps.workloads import clustered_points
from repro.engine import build

N = 20_000
RADIUS = 0.05


@pytest.fixture(scope="module")
def fair():
    points = clustered_points(N, 2, clusters=10, spread=0.05, rng=1)
    index = build("fair_nn", points=points, radius=RADIUS, num_grids=2, rng=2)
    return index, points[0]


def bench_fair_sample(benchmark, fair):
    index, query = fair
    benchmark.group = "e12-near-neighbor"
    benchmark(lambda: index.sample(query))


def bench_exact_ball_scan(benchmark, fair):
    index, query = fair
    benchmark.group = "e12-near-neighbor"
    benchmark(lambda: index.near_points(query))


def bench_fair_sample_batch(benchmark, fair):
    index, query = fair
    benchmark.group = "e12-batch"
    benchmark(lambda: index.sample_many(query, 10))
