"""E14 — plain vs de-amortized EM sample pool (wall-clock side)."""

from repro.em.model import EMMachine
from repro.engine import build

N, B, S = 1 << 11, 16, 32


def bench_plain_pool(benchmark):
    machine = EMMachine(block_size=B, memory_blocks=8)
    sampler = build("em.setpool", machine=machine, values=list(range(N)), rng=1)
    benchmark.group = "e14-pool"
    benchmark(lambda: sampler.query(S))


def bench_deamortized_pool(benchmark):
    machine = EMMachine(block_size=B, memory_blocks=8)
    sampler = build(
        "em.setpool.deamortized", machine=machine, values=list(range(N)), rng=2
    )
    benchmark.group = "e14-pool"
    benchmark(lambda: sampler.query(S))
