"""E6 — Theorem 5 on the range tree vs kd-tree (space/query trade-off)."""

import pytest

from repro.apps.workloads import uniform_points, zipf_weights
from repro.engine import build
from repro.substrates.kdtree import KDTree
from repro.substrates.rangetree import RangeTree

N = 1 << 12
S = 16
RECT = [(0.2, 0.8), (0.3, 0.7)]


@pytest.fixture(scope="module")
def spatial():
    points = uniform_points(N, 2, rng=1)
    weights = zipf_weights(N, alpha=0.5, rng=2)
    return points, weights


def bench_rangetree_build(benchmark, spatial):
    points, weights = spatial
    benchmark.group = "e6-build"
    benchmark(lambda: RangeTree(points, weights))


def bench_kdtree_build(benchmark, spatial):
    points, weights = spatial
    benchmark.group = "e6-build"
    benchmark(lambda: KDTree(points, weights, leaf_size=8))


def bench_rangetree_query(benchmark, spatial):
    points, weights = spatial
    sampler = build("coverage", index=RangeTree(points, weights), rng=3)
    benchmark.group = "e6-query"
    benchmark(lambda: sampler.sample(RECT, S))


def bench_kdtree_query(benchmark, spatial):
    points, weights = spatial
    sampler = build("coverage", index=KDTree(points, weights, leaf_size=8), rng=4)
    benchmark.group = "e6-query"
    benchmark(lambda: sampler.sample(RECT, S))


def bench_rangetree_3d_query(benchmark):
    points = uniform_points(1 << 10, 3, rng=5)
    sampler = build("coverage", index=RangeTree(points), rng=6)
    rect = [(0.2, 0.8)] * 3
    benchmark.group = "e6-3d"
    benchmark(lambda: sampler.sample(rect, S))
