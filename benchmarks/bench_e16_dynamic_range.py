"""E16 — dynamic weighted range sampling (treap) vs static structures."""

import random

import pytest

from repro.engine import build

N = 1 << 14
S = 16


@pytest.fixture(scope="module")
def dataset():
    rng = random.Random(1)
    keys = sorted(rng.sample(range(10 * N), N))
    weights = [1.0 + rng.random() * 9 for _ in range(N)]
    return keys, weights


def bench_treap_insert_delete(benchmark, dataset):
    keys, weights = dataset
    sampler = build("range.dynamic", rng=2)
    for key, weight in zip(keys, weights):
        sampler.insert(float(key), weight)
    spare = iter(range(10 * N, 100 * N))

    def cycle():
        key = float(next(spare))
        sampler.insert(key, 2.0)
        sampler.delete(key)

    benchmark.group = "e16-update"
    benchmark(cycle)


def bench_static_rebuild_as_update(benchmark, dataset):
    keys, weights = dataset
    float_keys = [float(k) for k in keys]
    benchmark.group = "e16-update"
    benchmark(lambda: build("range.chunked", keys=float_keys, weights=weights))


def bench_treap_query(benchmark, dataset):
    keys, weights = dataset
    sampler = build("range.dynamic", rng=3)
    for key, weight in zip(keys, weights):
        sampler.insert(float(key), weight)
    x, y = float(keys[N // 10]), float(keys[9 * N // 10])
    benchmark.group = "e16-query"
    benchmark(lambda: sampler.sample(x, y, S))


def bench_static_query(benchmark, dataset):
    keys, weights = dataset
    sampler = build(
        "range.chunked", keys=[float(k) for k in keys], weights=weights, rng=4
    )
    x, y = float(keys[N // 10]), float(keys[9 * N // 10])
    benchmark.group = "e16-query"
    benchmark(lambda: sampler.sample(x, y, S))
