"""Observability-pipeline tail-latency exporter (``BENCH_8.json``).

Runs the same seeded batch workload through every engine backend
(serial/thread/process/shard) with metrics **off** and **on**, and
reports per-request tail latency (exact p50/p90/p99 over the results'
``elapsed_s``) plus batch wall-clock, so the cost of the full
observability pipeline — trace assignment, spans, flight records, and
for the process backend the worker metric harvest — is one diffable
JSON artifact per CI run.

For metrics-on runs the report also carries the bucket-interpolated
quantiles of the ``engine.request_us`` histogram next to the exact
ones, cross-checking :meth:`repro.obs.registry.Histogram.quantile`
against ground truth on live data.

Named with the ``bench_`` prefix to sit beside the pytest-benchmark
suite, but it is a standalone script (no ``bench_*`` functions, so
pytest collects nothing from it). Run::

    python benchmarks/bench_obs_pipeline.py --out BENCH_8.json [--quick]

``--gate`` additionally enforces the enabled-path budget on the process
backend (metrics-on batch wall-clock within ``GATE_RATIO``x of
metrics-off) and exits non-zero on breach.

Schema::

    {
      "workload": "obs_pipeline",
      "spec": "range.chunked",
      "n": ..., "requests": ..., "s": ..., "repeats": ...,
      "backends": [
        {"backend": ..., "metrics": "off"|"on",
         "p50_us": ..., "p90_us": ..., "p99_us": ...,
         "mean_batch_s": ..., "best_batch_s": ...,
         "hist_p50_us": ...?, "hist_p99_us": ...?,   # metrics-on only
         "harvested_chunks": ...?},                  # process+on only
        ...
      ],
      "gate": {"enforced": bool, "ratio": ..., "budget": ..., "ok": bool}
    }
"""

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import obs  # noqa: E402
from repro.engine import SamplingEngine, spec_token  # noqa: E402
from repro.engine.protocol import QueryRequest  # noqa: E402
from repro.engine.registry import build  # noqa: E402

SPEC = "range.chunked"
#: Enabled-path budget for the process backend under ``--gate``:
#: metrics-on mean batch wall-clock must stay within this multiple of
#: metrics-off. Generous — harvest adds a baseline+delta per chunk and a
#: merge per envelope, and CI machines are noisy — but it catches an
#: accidental O(requests) pickle or a per-draw harvest regression.
GATE_RATIO = 1.75
BACKENDS = ("serial", "thread", "process", "shard")


def make_keys(n):
    return [float(i) for i in range(1, n + 1)]


def make_batch(n, requests, s):
    lo, hi = float(n // 8), float((5 * n) // 8)
    return [QueryRequest(op="sample", args=(lo, hi), s=s) for _ in range(requests)]


def exact_quantile(sorted_values, q):
    """Nearest-rank-with-interpolation quantile of a sorted list."""
    if not sorted_values:
        return 0.0
    pos = q * (len(sorted_values) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] * (1 - frac) + sorted_values[hi] * frac


def run_backend(backend, keys, batch_template, repeats, workers):
    """Run ``repeats`` seeded batches; return (per-request us, batch seconds)."""
    n = len(keys)
    per_request_us = []
    batch_seconds = []
    if backend == "process":
        engine = SamplingEngine(backend=backend, seed=42, max_workers=workers)
        token = spec_token(SPEC, {"keys": keys, "rng": 1})
        runner = lambda reqs: engine.run_token(token, reqs)
    else:
        engine = SamplingEngine(backend=backend, seed=42, max_workers=workers)
        sampler = build(SPEC, keys=keys, rng=1)
        runner = lambda reqs: engine.run(sampler, reqs)
    try:
        # Untimed warm batch: process-pool spin-up + worker-resident build.
        runner([QueryRequest(op=r.op, args=r.args, s=r.s) for r in batch_template])
        for _ in range(repeats):
            reqs = [
                QueryRequest(op=r.op, args=r.args, s=r.s) for r in batch_template
            ]
            start = time.perf_counter()
            results = runner(reqs)
            batch_seconds.append(time.perf_counter() - start)
            for result in results:
                if result.error is not None:
                    raise RuntimeError(
                        f"{backend} batch failed: {result.error!r}"
                    )
                per_request_us.append((result.elapsed_s or 0.0) * 1e6)
    finally:
        engine.close()
    return per_request_us, batch_seconds


def measure(backend, keys, batch_template, repeats, workers, metrics_on):
    saved = obs.ENABLED
    (obs.enable if metrics_on else obs.disable)()
    try:
        if metrics_on:
            obs.reset()
        lat_us, batches = run_backend(
            backend, keys, batch_template, repeats, workers
        )
        lat_us.sort()
        row = {
            "backend": backend,
            "metrics": "on" if metrics_on else "off",
            "p50_us": exact_quantile(lat_us, 0.50),
            "p90_us": exact_quantile(lat_us, 0.90),
            "p99_us": exact_quantile(lat_us, 0.99),
            "mean_batch_s": sum(batches) / len(batches),
            "best_batch_s": min(batches),
        }
        if metrics_on:
            hist = obs.REGISTRY.histogram("engine.request_us")
            if hist.count:
                row["hist_p50_us"] = hist.quantile(0.50)
                row["hist_p99_us"] = hist.quantile(0.99)
            if backend == "process":
                row["harvested_chunks"] = obs.value("engine.harvested_chunks")
        return row
    finally:
        (obs.enable if saved else obs.disable)()


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_8.json", help="output path")
    parser.add_argument(
        "--quick", action="store_true", help="small workload for smoke runs"
    )
    parser.add_argument(
        "--gate",
        action="store_true",
        help=f"fail if process-backend metrics-on wall-clock exceeds "
        f"{GATE_RATIO}x metrics-off",
    )
    parser.add_argument(
        "--workers", type=int, default=4, help="pool width (default: 4)"
    )
    args = parser.parse_args(argv)

    if args.quick:
        n, requests, s, repeats = 4_096, 32, 128, 3
    else:
        n, requests, s, repeats = 16_384, 128, 256, 5

    keys = make_keys(n)
    batch_template = make_batch(n, requests, s)

    rows = []
    for backend in BACKENDS:
        for metrics_on in (False, True):
            row = measure(
                backend, keys, batch_template, repeats, args.workers, metrics_on
            )
            rows.append(row)
            print(
                f"{backend:<8} metrics={row['metrics']:<3} "
                f"p50={row['p50_us']:8.1f}us p99={row['p99_us']:8.1f}us "
                f"batch={row['mean_batch_s'] * 1e3:8.2f}ms",
                file=sys.stderr,
            )

    def wall(backend, metrics):
        for row in rows:
            if row["backend"] == backend and row["metrics"] == metrics:
                return row["mean_batch_s"]
        raise KeyError((backend, metrics))

    ratio = wall("process", "on") / wall("process", "off")
    gate_ok = ratio <= GATE_RATIO
    print(
        f"process enabled-path ratio: {ratio:.2f}x (budget {GATE_RATIO}x)"
        + ("" if gate_ok else "  ** OVER BUDGET **"),
        file=sys.stderr,
    )

    report = {
        "workload": "obs_pipeline",
        "spec": SPEC,
        "n": n,
        "requests": requests,
        "s": s,
        "repeats": repeats,
        "workers": args.workers,
        "backends": rows,
        "gate": {
            "enforced": args.gate,
            "ratio": ratio,
            "budget": GATE_RATIO,
            "ok": gate_ok,
        },
    }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out} ({len(rows)} rows)")
    if args.gate and not gate_ok:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
