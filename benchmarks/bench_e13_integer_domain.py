"""E13 — integer-domain range sampling (§4.3 remark, Afshani–Wei)."""

import random

import pytest

from repro.engine import build

N = 1 << 15
UNIVERSE_BITS = 30


@pytest.fixture(scope="module")
def keys():
    return sorted(random.Random(1).sample(range(1 << UNIVERSE_BITS), N))


def bench_yfast_span(benchmark, keys):
    sampler = build("range.integer", keys=keys, rng=2, universe_bits=UNIVERSE_BITS)
    x, y = keys[N // 5], keys[4 * N // 5]
    benchmark.group = "e13-span"
    benchmark(lambda: sampler.span_of(x, y))


def bench_bisect_span(benchmark, keys):
    sampler = build("range.chunked", keys=[float(k) for k in keys], rng=3)
    x, y = float(keys[N // 5]), float(keys[4 * N // 5])
    benchmark.group = "e13-span"
    benchmark(lambda: sampler.span_of(x, y))


def bench_integer_query(benchmark, keys):
    sampler = build("range.integer", keys=keys, rng=4, universe_bits=UNIVERSE_BITS)
    x, y = keys[N // 5], keys[4 * N // 5]
    benchmark.group = "e13-query"
    benchmark(lambda: sampler.sample(x, y, 4))


def bench_float_query(benchmark, keys):
    sampler = build("range.chunked", keys=[float(k) for k in keys], rng=5)
    x, y = float(keys[N // 5]), float(keys[4 * N // 5])
    benchmark.group = "e13-query"
    benchmark(lambda: sampler.sample(x, y, 4))
