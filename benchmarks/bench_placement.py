"""Placement-matrix scaling exporter (``BENCH_9.json``).

Runs one seeded range-sampling batch through the sharded placement under
every execution backend — inline, the legacy thread pool, and the
composed shard-per-process backend — and reports per-request tail
latency (exact p50/p90/p99 over the results' ``elapsed_s``) plus batch
wall-clock, so the scaling claim of the placement × execution refactor
is one diffable JSON artifact per CI run. The script also asserts the
refactor's correctness claim inline: all three executions must return
byte-identical batches before any timing is reported.

Named with the ``bench_`` prefix to sit beside the pytest-benchmark
suite, but it is a standalone script (no ``bench_*`` functions, so
pytest collects nothing from it). Run::

    python benchmarks/bench_placement.py --out BENCH_9.json [--quick]

``--gate`` additionally enforces the scale-out budget — the composed
``sharded × process`` backend must beat ``sharded × thread`` by at least
``GATE_RATIO``x on batch wall-clock — and exits non-zero on breach. The
gate only makes sense where the process pool has real cores to spread
shards over, so it is enforced only when ``os.cpu_count() >=
GATE_MIN_CORES``; below that the report records ``enforced: false`` and
the run always succeeds (the ratio is still measured and exported).

Schema::

    {
      "workload": "placement_matrix",
      "spec": "range.chunked",
      "n": ..., "requests": ..., "s": ..., "shards": ...,
      "repeats": ..., "workers": ..., "cpu_count": ...,
      "byte_identical": true,
      "configs": [
        {"placement": "sharded", "execution": "serial"|"thread"|"process",
         "p50_us": ..., "p90_us": ..., "p99_us": ...,
         "mean_batch_s": ..., "best_batch_s": ...},
        ...
      ],
      "gate": {"enforced": bool, "min_cores": ..., "ratio": ...,
               "budget": ..., "ok": bool}
    }
"""

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.engine import SamplingEngine  # noqa: E402
from repro.engine.protocol import QueryRequest  # noqa: E402
from repro.engine.registry import build  # noqa: E402

SPEC = "range.chunked"
#: Scale-out budget under ``--gate``: the composed shard-per-process
#: backend's best batch wall-clock must be at least this many times
#: faster than the legacy sharded thread pool. The thread pool serializes
#: the CPU-bound scalar portions of every shard draw on the GIL; shard
#: residents run them on separate cores, so on a machine with enough
#: cores the composition should clear 2x comfortably.
GATE_RATIO = 2.0
#: Cores below which the gate is measured but not enforced: with fewer
#: than one core per two shards the process pool cannot express the
#: parallelism the gate is checking for.
GATE_MIN_CORES = 4
EXECUTIONS = ("serial", "thread", "process")


def make_keys(n):
    return [float(i) for i in range(1, n + 1)]


def make_weights(n):
    return [1.0 + (i % 9) for i in range(n)]


def make_batch(n, requests, s):
    lo, hi = float(n // 8), float((7 * n) // 8)
    return [QueryRequest(op="sample", args=(lo, hi), s=s) for _ in range(requests)]


def exact_quantile(sorted_values, q):
    """Nearest-rank-with-interpolation quantile of a sorted list."""
    if not sorted_values:
        return 0.0
    pos = q * (len(sorted_values) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] * (1 - frac) + sorted_values[hi] * frac


def run_execution(execution, keys, weights, batch_template, repeats, shards, workers):
    """Run ``repeats`` seeded batches; return (latencies us, batch s, values)."""
    per_request_us = []
    batch_seconds = []
    values = None
    sampler = build(SPEC, keys=keys, weights=weights, rng=1)
    with SamplingEngine(
        placement="sharded",
        backend=execution,
        seed=42,
        shards=shards,
        max_workers=workers,
    ) as engine:
        # Untimed warm batch: pool spin-up, shard export, resident attach.
        engine.run(
            sampler,
            [QueryRequest(op=r.op, args=r.args, s=r.s) for r in batch_template],
        )
        for _ in range(repeats):
            reqs = [
                QueryRequest(op=r.op, args=r.args, s=r.s) for r in batch_template
            ]
            start = time.perf_counter()
            results = engine.run(sampler, reqs)
            batch_seconds.append(time.perf_counter() - start)
            for result in results:
                if result.error is not None:
                    raise RuntimeError(
                        f"sharded x {execution} batch failed: {result.error!r}"
                    )
                per_request_us.append((result.elapsed_s or 0.0) * 1e6)
            values = [result.values for result in results]
    return per_request_us, batch_seconds, values


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_9.json", help="output path")
    parser.add_argument(
        "--quick", action="store_true", help="small workload for smoke runs"
    )
    parser.add_argument(
        "--gate",
        action="store_true",
        help=f"fail unless sharded x process beats sharded x thread by "
        f"{GATE_RATIO}x (enforced only with >= {GATE_MIN_CORES} cores)",
    )
    parser.add_argument(
        "--shards", type=int, default=4, help="shard count (default: 4)"
    )
    parser.add_argument(
        "--workers", type=int, default=4, help="pool width (default: 4)"
    )
    args = parser.parse_args(argv)

    if args.quick:
        n, requests, s, repeats = 8_192, 24, 512, 3
    else:
        n, requests, s, repeats = 50_000, 64, 2_048, 5

    keys = make_keys(n)
    weights = make_weights(n)
    batch_template = make_batch(n, requests, s)

    rows = []
    streams = {}
    for execution in EXECUTIONS:
        lat_us, batches, values = run_execution(
            execution, keys, weights, batch_template, repeats,
            args.shards, args.workers,
        )
        lat_us.sort()
        streams[execution] = values
        rows.append(
            {
                "placement": "sharded",
                "execution": execution,
                "p50_us": exact_quantile(lat_us, 0.50),
                "p90_us": exact_quantile(lat_us, 0.90),
                "p99_us": exact_quantile(lat_us, 0.99),
                "mean_batch_s": sum(batches) / len(batches),
                "best_batch_s": min(batches),
            }
        )
        print(
            f"sharded x {execution:<8} "
            f"p50={rows[-1]['p50_us']:8.1f}us p99={rows[-1]['p99_us']:8.1f}us "
            f"batch={rows[-1]['mean_batch_s'] * 1e3:8.2f}ms",
            file=sys.stderr,
        )

    byte_identical = all(
        streams[execution] == streams["serial"] for execution in EXECUTIONS
    )
    if not byte_identical:
        print("** executions disagree: refusing to report timings **",
              file=sys.stderr)
        return 1

    def wall(execution):
        for row in rows:
            if row["execution"] == execution:
                return row["best_batch_s"]
        raise KeyError(execution)

    cores = os.cpu_count() or 1
    ratio = wall("thread") / wall("process")
    enforced = args.gate and cores >= GATE_MIN_CORES
    gate_ok = ratio >= GATE_RATIO
    print(
        f"process-over-thread speedup: {ratio:.2f}x "
        f"(budget {GATE_RATIO}x, {cores} cores, "
        + ("enforced" if enforced else "not enforced")
        + (")" if gate_ok or not enforced else ")  ** UNDER BUDGET **"),
        file=sys.stderr,
    )

    report = {
        "workload": "placement_matrix",
        "spec": SPEC,
        "n": n,
        "requests": requests,
        "s": s,
        "shards": args.shards,
        "repeats": repeats,
        "workers": args.workers,
        "cpu_count": cores,
        "byte_identical": byte_identical,
        "configs": rows,
        "gate": {
            "enforced": enforced,
            "min_cores": GATE_MIN_CORES,
            "ratio": ratio,
            "budget": GATE_RATIO,
            "ok": gate_ok,
        },
    }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out} ({len(rows)} configs)")
    if enforced and not gate_ok:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
