"""E8 — Theorem 8 set-union sampling vs materialising the union."""

import pytest

from repro.apps.workloads import overlapping_sets
from repro.engine import build

SET_SIZES = [500, 4000]
G = 6


@pytest.fixture(scope="module", params=SET_SIZES)
def family(request):
    set_size = request.param
    return set_size, overlapping_sets(10, set_size, set_size * 3, rng=1)


def bench_theorem8(benchmark, family):
    set_size, sets = family
    sampler = build("setunion", family=sets, rng=2, rebuild_after=0)
    group = list(range(G))
    benchmark.group = f"e8-size{set_size}"
    benchmark(lambda: sampler.sample(group))


def bench_naive_union(benchmark, family):
    set_size, sets = family
    sampler = build("setunion.naive", family=sets, rng=3)
    group = list(range(G))
    benchmark.group = f"e8-size{set_size}"
    benchmark(lambda: sampler.sample(group))


def bench_estimate_only(benchmark, family):
    """Ablation: the sketch-merge Û_G estimation step in isolation."""
    set_size, sets = family
    sampler = build("setunion", family=sets, rng=4)
    group = list(range(G))
    benchmark.group = f"e8-estimate-size{set_size}"
    benchmark(lambda: sampler.union_size_estimate(group))
