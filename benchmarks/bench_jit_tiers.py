"""Dispatch-ladder tier benches: scalar vs numpy vs compiled (jit).

The compiled tier's reason to exist is throughput on the batched hot
loops, so this file records the tier curves for the two draw kernels the
ladder serves (alias draws, BST top-down walks) and enforces the
regression gate the tier was merged under: **jit ≥ 3× numpy on alias
batched draws at n=10⁵, s=10⁴**. Everything jit-specific skips cleanly
when numba is absent — the numpy and scalar rungs are benched everywhere.

``REPRO_BENCH_QUICK=1`` shrinks workloads for smoke runs. The
machine-readable tier × n × s matrix CI uploads (``BENCH_7.json``) is
produced by ``benchmarks/bench7_report.py``, not this file.
"""

import time

import pytest

np = pytest.importorskip("numpy")

from repro.core import kernels, kernels_jit
from repro.substrates.env import env_flag

QUICK = env_flag("REPRO_BENCH_QUICK")

GATE_N = 10_000 if QUICK else 100_000
GATE_S = 2_000 if QUICK else 10_000
GATE_SPEEDUP = 3.0

needs_numba = pytest.mark.skipif(
    not kernels_jit.HAVE_NUMBA, reason="requires the [jit] extra (numba)"
)


def make_alias_tables(n, seed=5):
    gen = np.random.default_rng(seed)
    return kernels.build_alias_tables_batch(gen.random(n) + 0.05)


def best_of(fn, repeats=5):
    """Best wall time of ``repeats`` runs (the standard perf-smoke shape)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# -- recorded tier curves ----------------------------------------------


def bench_alias_numpy_tier(benchmark, monkeypatch):
    prob, alias = make_alias_tables(GATE_N)
    gen = np.random.default_rng(1)
    monkeypatch.setattr(kernels, "HAVE_JIT", False)
    benchmark.group = "jit-tier-alias"
    benchmark(lambda: kernels.alias_draw_batch(prob, alias, GATE_S, gen))


@needs_numba
def bench_alias_jit_tier(benchmark, monkeypatch):
    prob, alias = make_alias_tables(GATE_N)
    gen = np.random.default_rng(1)
    monkeypatch.setattr(kernels, "HAVE_JIT", True)
    kernels_jit.warmup()
    benchmark.group = "jit-tier-alias"
    benchmark(lambda: kernels.alias_draw_batch(prob, alias, GATE_S, gen))


def bench_bst_walk_numpy_tier(benchmark, monkeypatch):
    from repro.substrates.bst import StaticBST

    n = 4_096 if QUICK else 32_768
    gen = np.random.default_rng(3)
    tree = StaticBST([float(i) for i in range(n)], (gen.random(n) + 0.1).tolist())
    left, right, node_weight, _ = tree.packed_arrays()
    starts = np.full(GATE_S, tree.root, dtype=np.intp)
    monkeypatch.setattr(kernels, "HAVE_JIT", False)
    benchmark.group = "jit-tier-bst"
    benchmark(
        lambda: kernels.bst_topdown_batch(
            np.asarray(left, dtype=np.intp),
            np.asarray(right, dtype=np.intp),
            np.asarray(node_weight, dtype=np.float64),
            starts,
            np.random.default_rng(1),
        )
    )


@needs_numba
def bench_bst_walk_jit_tier(benchmark, monkeypatch):
    from repro.substrates.bst import StaticBST

    n = 4_096 if QUICK else 32_768
    gen = np.random.default_rng(3)
    tree = StaticBST([float(i) for i in range(n)], (gen.random(n) + 0.1).tolist())
    left, right, node_weight, _ = tree.packed_arrays()
    starts = np.full(GATE_S, tree.root, dtype=np.intp)
    monkeypatch.setattr(kernels, "HAVE_JIT", True)
    kernels_jit.warmup()
    benchmark.group = "jit-tier-bst"
    benchmark(
        lambda: kernels.bst_topdown_batch(
            np.asarray(left, dtype=np.intp),
            np.asarray(right, dtype=np.intp),
            np.asarray(node_weight, dtype=np.float64),
            starts,
            np.random.default_rng(1),
        )
    )


# -- the merge gate ----------------------------------------------------


@needs_numba
def test_jit_gate_alias_3x_over_numpy(monkeypatch):
    """The compiled tier must hold ≥3× over numpy on alias batched draws.

    n=10⁵ urns, s=10⁴ draws per call — the workload from the tier's
    acceptance criteria. Plain assert (not pytest-benchmark) so it runs
    in the default suite wherever numba is installed.
    """
    prob, alias = make_alias_tables(GATE_N)
    gen = np.random.default_rng(1)
    kernels_jit.warmup()
    # One uncounted call per tier: absorbs lazy numba loading artifacts.
    monkeypatch.setattr(kernels, "HAVE_JIT", False)
    kernels.alias_draw_batch(prob, alias, GATE_S, gen)
    numpy_time = best_of(lambda: kernels.alias_draw_batch(prob, alias, GATE_S, gen))
    monkeypatch.setattr(kernels, "HAVE_JIT", True)
    kernels.alias_draw_batch(prob, alias, GATE_S, gen)
    jit_time = best_of(lambda: kernels.alias_draw_batch(prob, alias, GATE_S, gen))
    speedup = numpy_time / jit_time
    assert speedup >= GATE_SPEEDUP, (
        f"jit tier only {speedup:.2f}x over numpy on alias draws "
        f"(n={GATE_N}, s={GATE_S}); the gate is {GATE_SPEEDUP}x"
    )
