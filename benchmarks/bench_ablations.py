"""Ablation benches for the design choices DESIGN.md calls out.

* Theorem 3's chunk size (the paper picks Θ(log n); sweeping shows why:
  tiny chunks blow up T_chunk, huge chunks blow up the partial-chunk
  scans);
* the EM range sampler's pool size (refill amortisation vs space);
* the fair-NN grid count L (candidate quality vs set-family size);
* the Theorem-8 sketch size k (estimate accuracy vs merge cost).
"""

import pytest

from repro.apps.workloads import distinct_uniform_reals, overlapping_sets, zipf_weights
from repro.em.model import EMMachine
from repro.engine import build

N = 1 << 15


@pytest.fixture(scope="module")
def keyset():
    return distinct_uniform_reals(N, rng=1), zipf_weights(N, rng=2)


@pytest.mark.parametrize("chunk_size", [2, 15, 120, 1000])
def bench_chunk_size_ablation(benchmark, keyset, chunk_size):
    keys, weights = keyset
    sampler = build(
        "range.chunked", keys=keys, weights=weights, rng=3, chunk_size=chunk_size
    )
    x, y = keys[N // 10], keys[9 * N // 10]
    benchmark.group = "ablation-chunk-size"
    benchmark(lambda: sampler.sample(x, y, 16))


@pytest.mark.parametrize("pool_blocks", [1, 4, 16])
def bench_em_pool_blocks_ablation(benchmark, pool_blocks):
    machine = EMMachine(block_size=64, memory_blocks=16)
    sampler = build(
        "range.em",
        machine=machine,
        values=[float(i) for i in range(1 << 12)],
        rng=4,
        pool_blocks=pool_blocks,
    )
    sampler.query(0.0, float((1 << 12) - 1), 64)  # warm
    benchmark.group = "ablation-pool-blocks"
    benchmark(lambda: sampler.query(0.0, float((1 << 12) - 1), 64))


@pytest.mark.parametrize("num_grids", [1, 2, 4])
def bench_fair_nn_grids_ablation(benchmark, num_grids):
    from repro.apps.workloads import clustered_points

    points = clustered_points(5_000, 2, clusters=8, spread=0.05, rng=5)
    fair = build("fair_nn", points=points, radius=0.05, num_grids=num_grids, rng=6)
    benchmark.group = "ablation-fair-nn-grids"
    benchmark(lambda: fair.sample(points[0]))


@pytest.mark.parametrize("sketch_k", [8, 64, 256])
def bench_sketch_k_ablation(benchmark, sketch_k):
    family = overlapping_sets(10, 1000, 3000, rng=7)
    sampler = build(
        "setunion", family=family, rng=8, sketch_k=sketch_k, rebuild_after=0
    )
    group = list(range(6))
    benchmark.group = "ablation-sketch-k"
    benchmark(lambda: sampler.sample(group))
