"""Plan-layer exporter (``BENCH_10.json``).

Measures the plan → execute split end to end and exports one diffable
JSON artifact per CI run:

* **Plan latency** — cold cover computation vs warm plan-store fetch,
  per plan kind (treewalk / lemma2 / chunked), in microseconds.
* **Warm-path draw latency gate** — the refactor's no-regression claim,
  measured machine-independently: a warm ``sample_span`` is a plan-store
  fetch plus ``execute_plan``, so the fetch overhead is
  ``(warm_sample - execute_only) / warm_sample`` against an
  execute-only baseline holding a prefetched plan. ``--gate`` fails the
  run when any kind's overhead exceeds ``GATE_OVERHEAD`` (5%) — i.e.
  the plan layer must be invisible on the warm draw path.
* **Cover computations per request vs shard count** — for K ∈ {2, 4, 8}
  a warm sharded batch must plan exactly once: ``engine.plan_builds``
  stays at 1 while ``engine.plan_reuse`` absorbs the rest, and the
  per-request cover computation count collapses to 1/requests.

Named with the ``bench_`` prefix to sit beside the pytest-benchmark
suite, but it is a standalone script (no ``bench_*`` functions, so
pytest collects nothing from it). Run::

    python benchmarks/bench_plan_layer.py --out BENCH_10.json [--quick] [--gate]

Schema::

    {
      "workload": "plan_layer",
      "n": ..., "s": ..., "iters": ..., "cpu_count": ...,
      "plan_latency": [
        {"kind": ..., "cold_build_us": ..., "warm_fetch_us": ...,
         "speedup": ...}, ...
      ],
      "warm_path": [
        {"kind": ..., "warm_sample_us": ..., "execute_only_us": ...,
         "plan_fetch_overhead": ...}, ...
      ],
      "sharded": [
        {"shards": ..., "requests": ..., "plan_builds": ...,
         "plan_reuse": ..., "reuse_rate": ...,
         "cover_computations_per_request": ...,
         "plan_cache_hits": ..., "plan_cache_misses": ...}, ...
      ],
      "gate": {"enforced": bool, "budget": ..., "max_overhead": ...,
               "ok": bool}
    }
"""

import argparse
import json
import os
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import obs  # noqa: E402
from repro.core.range_sampler import (  # noqa: E402
    AliasAugmentedRangeSampler,
    ChunkedRangeSampler,
    TreeWalkRangeSampler,
)
from repro.engine import SamplingEngine  # noqa: E402
from repro.engine.protocol import QueryRequest  # noqa: E402

KINDS = [
    ("treewalk", TreeWalkRangeSampler),
    ("lemma2", AliasAugmentedRangeSampler),
    ("chunked", ChunkedRangeSampler),
]
#: Warm-draw budget under ``--gate``: the plan-store fetch may cost at
#: most this fraction of a warm sample_span (interleaved minima).
GATE_OVERHEAD = 0.05
SHARD_COUNTS = (2, 4, 8)


def make_keys(n):
    return [float(i) for i in range(1, n + 1)]


def make_weights(n):
    return [1.0 + (i % 9) for i in range(n)]


def median_us(samples):
    return statistics.median(samples) * 1e6


def bench_plan_latency(sampler_cls, keys, weights, spans, iters):
    """(cold_build_us, warm_fetch_us) medians for one plan kind."""
    # Cold: capacity 0 bypasses the store, so every plan_span call is a
    # full cover computation.
    cold_sampler = sampler_cls(keys, weights, rng=1, plan_cache_size=0)
    cold = []
    for index in range(iters):
        lo, hi = spans[index % len(spans)]
        start = time.perf_counter()
        cold_sampler.plan_span(lo, hi)
        cold.append(time.perf_counter() - start)
    # Warm: one priming build, then every fetch is a store hit.
    warm_sampler = sampler_cls(keys, weights, rng=1, plan_cache_size=64)
    for lo, hi in spans:
        warm_sampler.plan_span(lo, hi)
    warm = []
    for index in range(iters):
        lo, hi = spans[index % len(spans)]
        start = time.perf_counter()
        warm_sampler.plan_span(lo, hi)
        warm.append(time.perf_counter() - start)
    return median_us(cold), median_us(warm)


def bench_warm_path(sampler_cls, keys, weights, span, s, iters, rounds=3):
    """(warm_sample_us, execute_only_us) minima for one plan kind.

    The two legs are *interleaved* (alternating order within each
    iteration) so clock-frequency and GC drift over the run cancels
    instead of landing entirely on whichever leg runs second, and the
    estimator is the minimum — timing noise is strictly additive, so
    the min converges on the true cost of each leg. Best of ``rounds``
    by overhead, since the gate asks "can the warm path match
    execute-only", not "does it on every sample".
    """
    sampler = sampler_cls(keys, weights, rng=3)
    lo, hi = span
    sampler.sample_span(lo, hi, s)  # prime the plan store
    plan = sampler.plan_span(lo, hi)
    best = None
    for _ in range(rounds):
        warm = []
        execute_only = []
        for index in range(iters):
            legs = [
                (warm, lambda: sampler.sample_span(lo, hi, s)),
                (execute_only, lambda: sampler.execute_plan(plan, s)),
            ]
            if index % 2:
                legs.reverse()
            for sink, leg in legs:
                start = time.perf_counter()
                leg()
                sink.append(time.perf_counter() - start)
        pair = (min(warm) * 1e6, min(execute_only) * 1e6)
        overhead = pair[0] - pair[1]
        if best is None or overhead < best[0]:
            best = (overhead, pair)
    return best[1]


def bench_sharded(keys, weights, span, shards, requests, s):
    """Cover-computation accounting for one warm sharded batch."""
    saved = obs.ENABLED
    obs.enable()
    obs.reset()
    try:
        sampler = ChunkedRangeSampler(keys, weights, rng=5)
        lo, hi = span
        batch = [
            QueryRequest(op="sample", args=(keys[lo], keys[hi - 1]), s=s)
            for _ in range(requests)
        ]
        with SamplingEngine(
            backend="serial", placement="sharded", seed=42, shards=shards
        ) as engine:
            results = engine.run(sampler, batch)
        for result in results:
            if result.error is not None:
                raise RuntimeError(f"sharded batch failed: {result.error!r}")
        builds = obs.value("engine.plan_builds")
        reuse = obs.value("engine.plan_reuse")
        hits = obs.value("plan_cache.hits")
        misses = obs.value("plan_cache.misses")
    finally:
        obs.reset()
        (obs.enable if saved else obs.disable)()
    return {
        "shards": shards,
        "requests": requests,
        "plan_builds": builds,
        "plan_reuse": reuse,
        "reuse_rate": reuse / (builds + reuse) if builds + reuse else 0.0,
        "cover_computations_per_request": builds / requests,
        "plan_cache_hits": hits,
        "plan_cache_misses": misses,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_10.json", help="output path")
    parser.add_argument(
        "--quick", action="store_true", help="small workload for smoke runs"
    )
    parser.add_argument(
        "--gate",
        action="store_true",
        help=f"fail when the warm-path plan-fetch overhead exceeds "
        f"{GATE_OVERHEAD:.0%} for any plan kind",
    )
    args = parser.parse_args(argv)

    if args.quick:
        n, s, iters, requests = 8_192, 256, 300, 16
    else:
        n, s, iters, requests = 50_000, 512, 800, 32

    keys = make_keys(n)
    weights = make_weights(n)
    span = (n // 8, (7 * n) // 8)
    spans = [
        (n // 8 + offset, (7 * n) // 8 - offset)
        for offset in range(0, n // 4, max(1, n // 64))
    ]

    plan_latency = []
    warm_path = []
    for kind, sampler_cls in KINDS:
        cold_us, warm_us = bench_plan_latency(
            sampler_cls, keys, weights, spans, iters
        )
        plan_latency.append(
            {
                "kind": kind,
                "cold_build_us": cold_us,
                "warm_fetch_us": warm_us,
                "speedup": cold_us / warm_us if warm_us else float("inf"),
            }
        )
        warm_sample_us, execute_only_us = bench_warm_path(
            sampler_cls, keys, weights, span, s, iters
        )
        overhead = (
            max(0.0, (warm_sample_us - execute_only_us) / warm_sample_us)
            if warm_sample_us
            else 0.0
        )
        warm_path.append(
            {
                "kind": kind,
                "warm_sample_us": warm_sample_us,
                "execute_only_us": execute_only_us,
                "plan_fetch_overhead": overhead,
            }
        )
        print(
            f"{kind:<9} plan: cold={cold_us:8.1f}us warm={warm_us:7.2f}us  "
            f"draw: warm={warm_sample_us:8.1f}us "
            f"exec-only={execute_only_us:8.1f}us "
            f"overhead={overhead:6.2%}",
            file=sys.stderr,
        )

    sharded = [
        bench_sharded(keys, weights, span, shards, requests, s)
        for shards in SHARD_COUNTS
    ]
    for row in sharded:
        print(
            f"sharded K={row['shards']}: builds={row['plan_builds']} "
            f"reuse={row['plan_reuse']} "
            f"covers/request={row['cover_computations_per_request']:.3f}",
            file=sys.stderr,
        )
        if row["plan_builds"] != 1:
            print(
                "** warm sharded batch planned more than once **",
                file=sys.stderr,
            )
            return 1

    max_overhead = max(row["plan_fetch_overhead"] for row in warm_path)
    gate_ok = max_overhead <= GATE_OVERHEAD
    print(
        f"warm-path plan-fetch overhead: max={max_overhead:.2%} "
        f"(budget {GATE_OVERHEAD:.0%}, "
        + ("enforced" if args.gate else "not enforced")
        + (")" if gate_ok or not args.gate else ")  ** OVER BUDGET **"),
        file=sys.stderr,
    )

    report = {
        "workload": "plan_layer",
        "n": n,
        "s": s,
        "iters": iters,
        "cpu_count": os.cpu_count() or 1,
        "plan_latency": plan_latency,
        "warm_path": warm_path,
        "sharded": sharded,
        "gate": {
            "enforced": args.gate,
            "budget": GATE_OVERHEAD,
            "max_overhead": max_overhead,
            "ok": gate_ok,
        },
    }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    if args.gate and not gate_ok:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
