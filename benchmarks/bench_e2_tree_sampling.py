"""E2 — tree sampling: §3.2 top-down walk vs §5 flat (DFS) sampler.

The walk pays O(height) per sample, the flat sampler O(1)-amortised; the
gap widens with s.
"""

import pytest

from repro.engine import build
from repro.experiments.e02_tree_sampling import random_tree

LEAVES = 20_000


@pytest.fixture(scope="module")
def tree():
    return random_tree(LEAVES, fanout=3, seed=7)


@pytest.mark.parametrize("s", [1, 64, 1024])
def bench_tree_walk(benchmark, tree, s):
    sampler = build("tree.topdown", tree=tree, rng=1)
    benchmark.group = f"e2-s{s}"
    benchmark(lambda: sampler.sample_many(tree.root, s))


@pytest.mark.parametrize("s", [1, 64, 1024])
def bench_flat(benchmark, tree, s):
    sampler = build("tree.flat", tree=tree, rng=2)
    benchmark.group = f"e2-s{s}"
    benchmark(lambda: sampler.sample_many(tree.root, s))
