"""E15 — Direction 4: ε-approximate sampler vs exact dynamic samplers."""

import math
import random

import pytest

from repro.engine import build

N = 1 << 14


def loaded_weights():
    rng = random.Random(1)
    return [math.exp(rng.uniform(0, 8)) for _ in range(N)]


@pytest.mark.parametrize("epsilon", [0.01, 0.3])
def bench_approx_sample(benchmark, epsilon):
    sampler = build("dynamic.approx", epsilon=epsilon, rng=2)
    for index, weight in enumerate(loaded_weights()):
        sampler.insert(index, weight)
    benchmark.group = "e15-sample"
    benchmark(sampler.sample)


def bench_exact_sample(benchmark):
    sampler = build("dynamic.fenwick", rng=3, initial_capacity=N)
    for index, weight in enumerate(loaded_weights()):
        sampler.insert(index, weight)
    benchmark.group = "e15-sample"
    benchmark(sampler.sample)


@pytest.mark.parametrize("epsilon", [0.1])
def bench_approx_update(benchmark, epsilon):
    rng = random.Random(4)
    sampler = build("dynamic.approx", epsilon=epsilon, rng=5)
    handles = [sampler.insert(i, w) for i, w in enumerate(loaded_weights())]

    def update():
        position = rng.randrange(len(handles))
        handle = handles[position]
        handles[position] = handles[-1]
        handles.pop()
        item = sampler.delete(handle)
        handles.append(sampler.insert(item, math.exp(rng.uniform(0, 8))))

    benchmark.group = "e15-update"
    benchmark(update)


def bench_exact_update(benchmark):
    rng = random.Random(6)
    sampler = build("dynamic.fenwick", rng=7, initial_capacity=N)
    handles = [sampler.insert(i, w) for i, w in enumerate(loaded_weights())]

    def update():
        sampler.update_weight(handles[rng.randrange(N)], math.exp(rng.uniform(0, 8)))

    benchmark.group = "e15-update"
    benchmark(update)
