#!/usr/bin/env python3
"""Benefit 2 (paper §2, §7): fair r-near neighbor search.

Scenario: a ride-hailing dispatcher must pick a driver within radius r of
the rider — *fairly*, i.e. uniformly among all eligible drivers, with a
fresh independent choice per request (so no driver is systematically
starved). Implemented with shifted-grid buckets + the Theorem-8 set-union
sampler + distance rejection.

Run: python examples/fair_near_neighbor.py
"""

import collections
import time

from repro import FairNearNeighbor
from repro.apps.workloads import clustered_points
from repro.substrates.env import env_flag

QUICK = env_flag("REPRO_EXAMPLE_QUICK")


def main() -> None:
    n = 4_000 if QUICK else 30_000
    radius = 0.04
    print(f"Placing {n:,} drivers across 12 city hot-spots ...")
    drivers = clustered_points(n, 2, clusters=12, spread=0.05, rng=21)
    dispatcher = FairNearNeighbor(drivers, radius=radius, num_grids=2, rng=22)

    rider = drivers[123]  # a rider inside a hot-spot
    eligible = dispatcher.near_points(rider)
    print(f"Rider at {tuple(round(c, 3) for c in rider)}: {len(eligible)} drivers in range")

    start = time.perf_counter()
    assignments = dispatcher.sample_many(rider, 500)
    elapsed = time.perf_counter() - start
    print(f"Dispatched 500 independent requests in {elapsed * 1e3:.1f} ms "
          f"({elapsed / 500 * 1e6:.0f} µs per request)")

    counts = collections.Counter(assignments)
    expected = 500 / len(eligible)
    print(f"\nFairness check — assignments per driver (expected ≈ {expected:.2f}):")
    busiest = counts.most_common(3)
    print(f"  busiest 3 drivers got {[count for _, count in busiest]} requests")
    print(f"  distinct drivers used: {len(counts)} / {len(eligible)}")

    print("\nEvery assignment stays within the radius:")
    from repro.apps.fair_nn import euclidean

    worst = max(euclidean(driver, rider) for driver in assignments)
    print(f"  max assigned distance {worst:.4f} <= r = {radius}")


if __name__ == "__main__":
    main()
