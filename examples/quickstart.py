#!/usr/bin/env python3
"""Quickstart: independent query sampling in five minutes.

Builds the Theorem-3 range sampling index (O(n) space, O(log n + s)
queries) over a million-row synthetic "orders" table and contrasts it with
the report-then-sample baseline and the §2 dependent sampler.

Run: python examples/quickstart.py
"""

import time

from repro import ChunkedRangeSampler, DependentRangeSampler, NaiveRangeSampler
from repro.apps.workloads import distinct_uniform_reals, zipf_weights
from repro.substrates.env import env_flag

#: Smoke-test hook: REPRO_EXAMPLE_QUICK=1 shrinks every example to run in
#: a couple of seconds while exercising the same code paths.
QUICK = env_flag("REPRO_EXAMPLE_QUICK")


def main() -> None:
    n = 5_000 if QUICK else 200_000
    print(f"Building indexes over {n:,} weighted keys ...")
    keys = distinct_uniform_reals(n, lo=0.0, hi=1e6, rng=7)
    weights = zipf_weights(n, alpha=0.8, rng=8)  # skewed row weights

    iqs = ChunkedRangeSampler(keys, weights, rng=1)  # Theorem 3
    naive = NaiveRangeSampler(keys, weights, rng=2)  # §1 baseline
    dependent = DependentRangeSampler(keys, rng=3)  # §2 baseline

    # A fat range: about half the table qualifies.
    x, y = 2.5e5, 7.5e5
    s = 10

    print(f"\nQuery: 10 weighted samples from keys in [{x:,.0f}, {y:,.0f}]")
    start = time.perf_counter()
    samples = iqs.sample(x, y, s)
    iqs_ms = (time.perf_counter() - start) * 1e3
    print(f"  IQS (Theorem 3):        {iqs_ms:8.2f} ms  -> {samples[:4]} ...")

    start = time.perf_counter()
    naive.sample(x, y, s)
    naive_ms = (time.perf_counter() - start) * 1e3
    print(f"  report-then-sample:     {naive_ms:8.2f} ms  ({naive_ms / iqs_ms:.0f}x slower)")

    print("\nCross-query independence (the IQS guarantee, paper eq. 1):")
    print("  repeating the query 3 times ...")
    for label, draw in (
        ("IQS", lambda: iqs.sample(x, y, 3)),
        ("dependent (§2)", lambda: dependent.sample_without_replacement(x, y, 3)),
    ):
        outputs = [tuple(round(v) for v in draw()) for _ in range(3)]
        print(f"  {label:16s} {outputs}")
    print("  -> the dependent structure returns the identical set every time;")
    print("     the IQS structure draws fresh, independent samples.")


if __name__ == "__main__":
    main()
