#!/usr/bin/env python3
"""Theorem 5 (paper §5): IQS over spatial indexes via covers.

Scenario: 2D geo points (e.g. GPS pings) under rectangle queries. The
coverage technique turns kd-trees, quadtrees, and range trees into IQS
structures with one generic adapter; this demo compares their cover sizes,
space, and query costs, and shows the §6 approximate-coverage trick for
complement ("everything except downtown") queries.

Run: python examples/spatial_sampling.py
"""

import time

from repro import (
    ApproxCoverSampler,
    ComplementRangeIndex,
    CoverageSampler,
    HalfplaneIndex,
    KDTree,
    QuadTree,
    RangeTree,
)
from repro.apps.workloads import clustered_points
from repro.substrates.env import env_flag

QUICK = env_flag("REPRO_EXAMPLE_QUICK")


def main() -> None:
    n = 3_000 if QUICK else 20_000
    print(f"Indexing {n:,} clustered GPS points three ways ...")
    points = clustered_points(n, 2, clusters=8, spread=0.04, rng=31)
    rect = [(0.3, 0.7), (0.3, 0.7)]
    s = 10

    indexes = {
        "kd-tree   (O(n) space)": KDTree(points, leaf_size=8),
        "quadtree  (O(n) space)": QuadTree(points, leaf_size=8),
        "range tree(O(n log n))": RangeTree(points),
    }
    print(f"\nQuery rectangle {rect}, s = {s} samples per query:")
    for name, index in indexes.items():
        sampler = CoverageSampler(index, rng=32)
        start = time.perf_counter()
        for _ in range(20):
            sampler.sample(rect, s)
        per_query_us = (time.perf_counter() - start) / 20 * 1e6
        print(
            f"  {name}: cover {sampler.cover_size(rect):4d} nodes, "
            f"|S_q| = {sampler.result_size(rect):5d}, query {per_query_us:7.0f} µs"
        )

    print("\nComplement query ('all points with x outside downtown [0.4, 0.6]'):")
    xs = sorted(set(point[0] for point in points))
    complement = ApproxCoverSampler(ComplementRangeIndex(xs), rng=33)
    query = (0.4, 0.6)
    cover = ComplementRangeIndex(xs).find_approximate_cover(query)
    picks = complement.sample(query, s)
    print(f"  approximate cover: {len(cover.spans)} spans (vs Θ(log n) exact)")
    print(f"  10 sampled x-coordinates: {[round(x, 3) for x in picks]}")
    print(f"  rejections so far: {complement.total_rejections} (≤ 1 expected per sample)")

    print("\nHalfplane query ('points below the value-for-money line y <= 0.8x'):")
    halfplane = HalfplaneIndex(points)
    hp_sampler = CoverageSampler(halfplane, rng=34)
    hp_query = (0.8, 0.0)
    hp_picks = hp_sampler.sample(hp_query, s)
    print(f"  convex layers: {halfplane.num_layers}, "
          f"cover {hp_sampler.cover_size(hp_query)} spans for "
          f"|S_q| = {hp_sampler.result_size(hp_query)} points")
    print(f"  sample: {[tuple(round(c, 2) for c in p) for p in hp_picks[:5]]} ...")


if __name__ == "__main__":
    main()
