#!/usr/bin/env python3
"""Paper §8: IQS on disk, measured in block I/Os.

Runs the simulated Aggarwal–Vitter machine (B-word blocks, M-word LRU
memory, I/O counters) and compares three ways to draw WR samples from a
disk-resident set: naive random access, the §8 sample-pool structure, and
the B-tree range sampler — against Hu et al.'s lower bound.

Run: python examples/external_memory_demo.py
"""


from repro import EMMachine, EMRangeSampler, NaiveEMSetSampler, SamplePoolSetSampler
from repro.em.lower_bound import set_sampling_lower_bound
from repro.substrates.env import env_flag

QUICK = env_flag("REPRO_EXAMPLE_QUICK")


def main() -> None:
    n, B, memory_blocks, s = (1 << 11 if QUICK else 1 << 14), 64, 16, 256
    print(f"Simulated disk: n = {n:,} values, B = {B} words/block, "
          f"M = {memory_blocks * B} words of memory; queries draw s = {s} samples.\n")

    naive_machine = EMMachine(block_size=B, memory_blocks=memory_blocks)
    naive = NaiveEMSetSampler(naive_machine, list(range(n)), rng=1)
    naive_machine.drop_cache()
    start = naive_machine.stats.total
    naive.query(s)
    print(f"naive random access:   {naive_machine.stats.total - start:6d} I/Os per query")

    pool_machine = EMMachine(block_size=B, memory_blocks=memory_blocks)
    pool = SamplePoolSetSampler(pool_machine, list(range(n)), rng=2)
    # Amortise across a full pool cycle (includes one rebuild).
    pool_machine.drop_cache()
    start = pool_machine.stats.total
    queries = (2 * n) // s
    for _ in range(queries):
        pool.query(s)
    per_query = (pool_machine.stats.total - start) / queries
    print(f"§8 sample pool:        {per_query:6.1f} I/Os per query (amortised, "
          f"{pool.rebuild_count} rebuilds)")

    bound = set_sampling_lower_bound(s, n, B, memory_blocks * B)
    print(f"Hu et al. lower bound: {bound:6.1f} I/Os per query\n")

    machine = EMMachine(block_size=B, memory_blocks=memory_blocks)
    ranger = EMRangeSampler(machine, [float(i) for i in range(n)], rng=3)
    ranger.query(0.0, float(n - 1), s)  # warm the subtree pools
    machine.drop_cache()
    start = machine.stats.total
    ranger.query(float(n // 4), float(3 * n // 4), s)
    range_ios = machine.stats.total - start
    machine.drop_cache()
    start = machine.stats.total
    ranger.naive_query(float(n // 4), float(3 * n // 4), s)
    report_ios = machine.stats.total - start
    print("Range sampling on the B-tree (query = middle half of the data):")
    print(f"  pooled IQS query:    {range_ios:6d} I/Os")
    print(f"  report-then-sample:  {report_ios:6d} I/Os "
          f"(reads all |S_q|/B = {n // 2 // B} result blocks)")


if __name__ == "__main__":
    main()
