#!/usr/bin/env python3
"""The library the way an application would use it: sampled analytics
over a table with duplicate values, weights, and ad-hoc filters.

Scenario: an e-commerce orders table. Dashboards need per-request random
order samples and instant fraction estimates over price ranges — without
scanning, and with independent results on every refresh.

Run: python examples/table_analytics.py
"""

import random
import time

from repro import SampledTable
from repro.substrates.env import env_flag

QUICK = env_flag("REPRO_EXAMPLE_QUICK")


def main() -> None:
    rng = random.Random(99)
    n = 20_000 if QUICK else 300_000
    print(f"Generating {n:,} synthetic orders ...")
    regions = ["NA", "EU", "APAC", "LATAM"]
    orders = [
        {
            "order_id": i,
            "price": round(rng.lognormvariate(3.2, 0.9), 2),
            "region": rng.choice(regions),
            "units": rng.randint(1, 8),
            "priority": 1.0 + 4.0 * (rng.random() < 0.1),  # 10% priority orders
        }
        for i in range(n)
    ]
    table = SampledTable(orders, rng=7)

    start = time.perf_counter()
    table.create_index("price")
    table.create_index("price", weight_column="priority")
    print(f"Built two price indexes in {time.perf_counter() - start:.2f}s\n")

    lo, hi = 20.0, 60.0
    matching = table.count_where("price", lo, hi)
    print(f"Orders with price in [{lo}, {hi}]: {matching:,} (counted in O(log n))")

    start = time.perf_counter()
    picks = table.sample_where("price", lo, hi, 5)
    elapsed_ms = (time.perf_counter() - start) * 1e3
    print(f"\n5 random in-range orders ({elapsed_ms:.2f} ms):")
    for row in picks:
        print(f"  #{row['order_id']}: ${row['price']} x{row['units']} [{row['region']}]")

    weighted = table.sample_where("price", lo, hi, 2000, weight_column="priority")
    priority_share = sum(1 for row in weighted if row["priority"] > 1) / len(weighted)
    print(f"\nPriority-weighted sampling: {priority_share:.0%} of draws are priority "
          "orders (they are 10% of rows at 5x weight → expect ≈ 36%)")

    filtered = table.sample_where(
        "price", lo, hi, 3, where=lambda row: row["region"] == "EU"
    )
    print(f"\n3 random EU orders in range: {[row['order_id'] for row in filtered]}")

    start = time.perf_counter()
    fraction = table.estimate_fraction_where(
        "price", lo, hi, lambda row: row["units"] >= 4, epsilon=0.03, delta=0.01
    )
    elapsed_ms = (time.perf_counter() - start) * 1e3
    truth = sum(
        1 for row in orders if lo <= row["price"] <= hi and row["units"] >= 4
    ) / matching
    print(f"\nFraction of in-range orders with >= 4 units:")
    print(f"  sampled estimate {fraction:.4f} in {elapsed_ms:.1f} ms "
          f"(truth {truth:.4f}, scanning {matching:,} rows would be needed exactly)")


if __name__ == "__main__":
    main()
