#!/usr/bin/env python3
"""Benefit 3 (paper §2): diverse representatives from huge query results.

Scenario: "find restaurants in New York" matches thousands of rows, the
app displays 10. Weighted IQS over a (price) range returns 10 random
representatives per request — popularity-weighted, fresh every time — so
repeated visits keep exposing new parts of the catalogue, which a
dependent sampler never does.

Run: python examples/diverse_recommendations.py
"""

import random

from repro import ChunkedRangeSampler, DependentRangeSampler
from repro.apps.diversity import coverage_over_time
from repro.substrates.env import env_flag

QUICK = env_flag("REPRO_EXAMPLE_QUICK")


def main() -> None:
    rng = random.Random(5)
    n = 1_000 if QUICK else 5_000
    # Restaurant "prices" as the indexed key; popularity as the weight.
    prices = sorted(rng.uniform(5, 200) for _ in range(n))
    popularity = [1.0 + rng.paretovariate(1.5) for _ in range(n)]

    iqs = ChunkedRangeSampler(prices, popularity, rng=1)
    dependent = DependentRangeSampler(prices, rng=2)

    lo, hi, page = 20.0, 60.0, 10
    matching = sum(1 for price in prices if lo <= price <= hi)
    print(f"{matching:,} restaurants match price ∈ [{lo}, {hi}]; showing {page}.\n")

    print("Three consecutive visits (IQS — popularity-weighted, fresh each time):")
    for visit in range(3):
        picks = iqs.sample(lo, hi, page)
        print(f"  visit {visit + 1}: {[f'${price:.0f}' for price in picks]}")

    print("\nThree consecutive visits (dependent baseline — frozen):")
    for visit in range(3):
        picks = dependent.sample_without_replacement(lo, hi, page)
        print(f"  visit {visit + 1}: {[f'${price:.0f}' for price in picks]}")

    rounds = 40
    iqs_curve = coverage_over_time(lambda s: iqs.sample(lo, hi, s), page, rounds)
    dep_curve = coverage_over_time(
        lambda s: dependent.sample_without_replacement(lo, hi, s), page, rounds
    )
    print(f"\nCatalogue coverage after {rounds} visits of {page} items each:")
    print(f"  IQS:       {iqs_curve[0]} -> {iqs_curve[-1]} distinct restaurants shown")
    print(f"  dependent: {dep_curve[0]} -> {dep_curve[-1]} (stuck forever)")


if __name__ == "__main__":
    main()
