#!/usr/bin/env python3
"""Benefit 1 (paper §2): online selectivity estimation from IQS samples.

Scenario: a relation with attributes A (indexed, range-queried) and B
(arbitrary). An analyst wants "what fraction of tuples with A in [x, y]
also satisfy P(B)?" — answered to ±ε with failure probability δ from
O((1/ε²) log(1/δ)) independent samples, instead of scanning the range.

The demo also reproduces the long-run argument: across many estimates an
IQS sampler's failures concentrate near mδ, while the dependent baseline
is all-or-nothing.

Run: python examples/selectivity_estimation.py
"""

import random
import statistics

from repro import ChunkedRangeSampler, DependentRangeSampler
from repro.apps.estimation import (
    estimate_fraction,
    failure_indicators,
    required_sample_size,
)
from repro.substrates.env import env_flag

QUICK = env_flag("REPRO_EXAMPLE_QUICK")


def main() -> None:
    n = 10_000 if QUICK else 100_000
    rng = random.Random(11)
    # Attribute A: the sorted key; attribute B: correlated noise.
    table = {float(a): (a / n + rng.gauss(0, 0.2)) for a in range(n)}
    keys = sorted(table)

    sampler = ChunkedRangeSampler(keys, rng=1)
    x, y = 0.2 * n, 0.8 * n
    predicate = lambda key: table[key] > 0.5  # noqa: E731

    truth = sum(1 for key in keys if x <= key <= y and predicate(key)) / sum(
        1 for key in keys if x <= key <= y
    )
    print(f"True fraction of P(B) within A ∈ [{x:,.0f}, {y:,.0f}]: {truth:.4f}")

    for epsilon, delta in ((0.1, 0.05), (0.02, 0.01)):
        estimate = estimate_fraction(
            lambda t: sampler.sample(x, y, t), predicate, epsilon, delta
        )
        budget = required_sample_size(epsilon, delta)
        print(
            f"  ε={epsilon:<5} δ={delta:<5} -> estimate {estimate.value:.4f} "
            f"(err {abs(estimate.value - truth):.4f}) from {budget:,} samples "
            f"instead of ~60,000 scanned rows"
        )

    repetitions = 30 if QUICK else 120
    trials = 3 if QUICK else 10
    print(f"\nLong-run failure concentration (m = {repetitions} estimates, ε = 0.08):")
    spec = dict(
        predicate=lambda key: key < 0.5 * n,
        true_fraction=0.5,
        epsilon=0.08,
        repetitions=repetitions,
        samples_per_estimate=64,
    )
    iqs_runs = []
    dependent_runs = []
    for trial in range(trials):
        iqs = ChunkedRangeSampler(keys, rng=100 + trial)
        iqs_runs.append(
            sum(failure_indicators(lambda t: iqs.sample(0.0, n - 1.0, t), **spec))
        )
        dep = DependentRangeSampler(keys, rng=200 + trial)
        dependent_runs.append(
            sum(
                failure_indicators(
                    lambda t: dep.sample_without_replacement(0.0, n - 1.0, t), **spec
                )
            )
        )
    print(f"  IQS        failures per run: {iqs_runs}  (stdev {statistics.pstdev(iqs_runs):.1f})")
    print(f"  dependent  failures per run: {dependent_runs}  (stdev {statistics.pstdev(dependent_runs):.1f})")
    print(
        f"  -> dependent runs are 0 or {repetitions}: "
        "one frozen estimate repeated m times."
    )


if __name__ == "__main__":
    main()
