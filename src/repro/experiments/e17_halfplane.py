"""E17 — halfplane IQS on convex layers (§6 remark, 2D stand-in for [3]).

Validates the cover shape — cover size tracks the touched-layer count,
not |S_q| — and the resulting sampling-vs-reporting gap.
"""

from __future__ import annotations

from repro.engine import build
from repro.experiments.runner import ExperimentResult, time_per_call
from repro.substrates.halfplane import HalfplaneIndex
from repro.substrates.rng import ensure_rng


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="e17",
        title="Halfplane IQS over convex layers (§6 remark, 2D)",
        claim="cover size tracks the touched-layer count t, which stays far "
        "below |S_q| — per-query work is sublinear in the output size",
        columns=[
            "n",
            "layers",
            "|S_q|",
            "touched_t",
            "cover",
            "Sq/cover",
            "iqs_us",
            "report_us",
            "ratio",
        ],
    )
    sizes = [1_000, 4_000] if quick else [1_000, 4_000, 16_000]
    s = 16
    for n in sizes:
        rng = ensure_rng(1)
        points = [(rng.uniform(-10, 10), rng.uniform(-10, 10)) for _ in range(n)]
        index = HalfplaneIndex(points)
        sampler = build("coverage", index=index, rng=2)
        # A selective halfplane (≈15 % of the points): inner layers are
        # quickly fully above the line, so the walk stops early.
        query = (0.2, -6.0)

        iqs_seconds = time_per_call(lambda: sampler.sample(query, s), repeats=5)
        report_seconds = time_per_call(lambda: index.report(query), repeats=3)
        result.add_row(
            n,
            index.num_layers,
            sampler.result_size(query),
            index.touched_layers(query),
            sampler.cover_size(query),
            sampler.result_size(query) / max(1, sampler.cover_size(query)),
            iqs_seconds * 1e6,
            report_seconds * 1e6,
            report_seconds / iqs_seconds,
        )
    result.add_note(
        "the structural claim is the Sq/cover column (work per query vs "
        "output size), which widens with n; Python constants keep the "
        "wall-clock ratio near 1 at these sizes"
    )
    return result
