"""E7 — Theorem 6 / Corollary 7: size-2 approximate covers for S \\ [x,y]."""

from __future__ import annotations

import math

from repro.core.approx_coverage import ComplementRangeIndex
from repro.engine import build
from repro.experiments.runner import ExperimentResult, time_per_call


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="e7",
        title="Approximate coverage for range-complement queries (§6)",
        claim="approx cover size ≤ 2 vs Θ(log n) exact; rejection rate < 1 per sample; "
        "Corollary-7 precomputation removes the per-query cover build",
        columns=[
            "n",
            "log2(n)",
            "exact_cover",
            "approx_cover",
            "rejects_per_sample",
            "thm6_us",
            "cor7_us",
        ],
    )
    exponents = (10, 13) if quick else (10, 13, 16)
    s = 16
    for exponent in exponents:
        n = 1 << exponent
        keys = [float(i) for i in range(n)]
        index = ComplementRangeIndex(keys)
        query = (n * 0.23, n * 0.77)
        on_the_fly = build("complement.approx", index=index, rng=1)
        precomputed = build("complement.precomputed", index=index, rng=2)

        draws = 2000
        on_the_fly.total_rejections = 0
        on_the_fly.sample(query, draws)
        rejects = on_the_fly.total_rejections / draws

        thm6_seconds = time_per_call(lambda: on_the_fly.sample(query, s), repeats=5)
        cor7_seconds = time_per_call(lambda: precomputed.sample(query, s), repeats=5)
        result.add_row(
            n,
            math.log2(n),
            index.find_exact_cover_size(query),
            len(index.find_approximate_cover(query).spans),
            rejects,
            thm6_seconds * 1e6,
            cor7_seconds * 1e6,
        )
    result.add_note("exact_cover tracks log2(n); approx_cover pinned at ≤ 2")
    return result
