"""E13 — §4.3 remark (Afshani–Wei): integer domains cut the log n term.

Over an integer universe the Θ(log n) endpoint search of Theorem 3 is
replaced by an O(log log U) y-fast predecessor query. With s = 1 the
endpoint search dominates the query, so the saving is visible directly.
"""

from __future__ import annotations

import math

from repro.engine import build
from repro.experiments.runner import ExperimentResult, time_per_call
from repro.substrates.rng import ensure_rng


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="e13",
        title="Integer-domain range sampling: O(log log U + s) (§4.3 remark)",
        claim="span location via y-fast predecessor grows ~log log U while "
        "binary search grows ~log n; sampling cost identical",
        columns=[
            "n",
            "log2(n)",
            "loglog(U)",
            "yfast_span_us",
            "bisect_span_us",
            "int_query_us",
            "float_query_us",
        ],
    )
    rng = ensure_rng(1)
    universe_bits = 30
    sizes = [1 << 10, 1 << 14] if quick else [1 << 10, 1 << 14, 1 << 17]
    for n in sizes:
        keys = sorted(rng.sample(range(1 << universe_bits), n))
        integer = build("range.integer", keys=keys, rng=2, universe_bits=universe_bits)
        floating = build("range.chunked", keys=[float(k) for k in keys], rng=3)
        x, y = keys[n // 5], keys[4 * n // 5]

        yfast_span = time_per_call(lambda: integer.span_of(x, y), repeats=5, inner=50)
        bisect_span = time_per_call(
            lambda: floating.span_of(float(x), float(y)), repeats=5, inner=50
        )
        integer_query = time_per_call(lambda: integer.sample(x, y, 1), repeats=5, inner=20)
        float_query = time_per_call(
            lambda: floating.sample(float(x), float(y), 1), repeats=5, inner=20
        )
        result.add_row(
            n,
            math.log2(n),
            math.log2(universe_bits),
            yfast_span * 1e6,
            bisect_span * 1e6,
            integer_query * 1e6,
            float_query * 1e6,
        )
    result.add_note(
        "U = 2^30 fixed; the yfast column should stay flat across n while "
        "bisect tracks log2(n) (Python dict-lookup constants apply)"
    )
    return result
