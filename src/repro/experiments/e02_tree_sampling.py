"""E2 — §3.2 vs §5: tree-walk O(s·h) against flat O(log n + s) sampling."""

from __future__ import annotations

from repro.core.tree_sampling import Tree
from repro.engine import build
from repro.experiments.runner import ExperimentResult, time_per_call
from repro.substrates.rng import ensure_rng


def random_tree(num_leaves: int, fanout: int, seed: int) -> Tree:
    """A random ``fanout``-ary tree with skewed leaf weights."""
    rng = ensure_rng(seed)
    tree = Tree()
    root = tree.add_root()
    internal = [root]
    remaining = num_leaves
    while remaining > 0:
        parent = internal[rng.randrange(len(internal))]
        if remaining > fanout and rng.random() < 0.3:
            internal.append(tree.add_child(parent))
        else:
            tree.add_child(parent, weight=1.0 / (1 + rng.randrange(100)))
            remaining -= 1
    # Internal nodes that never received a child would be weightless
    # leaves; give each one real leaf so finalize() accepts the tree.
    for node in internal:
        if tree.is_leaf(node):
            tree.add_child(node, weight=1.0 / (1 + rng.randrange(100)))
    tree.finalize()
    return tree


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="e2",
        title="Tree sampling: top-down walk vs DFS flattening (§3.2, §5)",
        claim="walk cost grows with s*height; flat cost is log n + s (Lemma-4 shape)",
        columns=["leaves", "s", "walk_us_per_query", "flat_us_per_query", "speedup"],
    )
    sizes = [2_000, 20_000] if not quick else [500, 2_000]
    for num_leaves in sizes:
        tree = random_tree(num_leaves, fanout=3, seed=7)
        walker = build("tree.topdown", tree=tree, rng=8)
        flat = build("tree.flat", tree=tree, rng=9)
        for s in (1, 16, 256):
            walk_seconds = time_per_call(lambda: walker.sample_many(tree.root, s), repeats=5)
            flat_seconds = time_per_call(lambda: flat.sample_many(tree.root, s), repeats=5)
            result.add_row(
                num_leaves,
                s,
                walk_seconds * 1e6,
                flat_seconds * 1e6,
                walk_seconds / flat_seconds,
            )
    result.add_note("speedup should widen with s (the walk pays height per sample)")
    return result
