"""E15 — Direction 4: ε-approximate sampling buys O(1) updates."""

from __future__ import annotations

import math

from repro.engine import build
from repro.experiments.runner import ExperimentResult, time_per_call
from repro.substrates.rng import ensure_rng


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="e15",
        title="ε-approximate IQS: accuracy/efficiency trade (§9 Direction 4)",
        claim="quantizing weights to (1+ε) classes keeps every probability "
        "within (1±ε) while updates become O(1) and classes stay few",
        columns=[
            "epsilon",
            "classes",
            "max_prob_error",
            "approx_update_us",
            "exact_update_us",
            "approx_sample_us",
        ],
    )
    n = 2_000 if quick else 10_000
    rng = ensure_rng(1)
    weights = [math.exp(rng.uniform(0, 8)) for _ in range(n)]  # 3000x spread
    total = sum(weights)

    exact = build("dynamic.fenwick", rng=2, initial_capacity=n)
    exact_handles = [exact.insert(i, weights[i]) for i in range(n)]

    def exact_update():
        exact.update_weight(exact_handles[rng.randrange(n)], math.exp(rng.uniform(0, 8)))

    exact_update_seconds = time_per_call(exact_update, repeats=5, inner=100)

    for epsilon in (0.01, 0.1, 0.3):
        approx = build("dynamic.approx", epsilon=epsilon, rng=3)
        handles = [approx.insert(i, weights[i]) for i in range(n)]

        # The exact probability the quantized structure assigns to each
        # element is unit(class(w)) / Σ units — compare analytically
        # against the true target w/Σw (sampling noise would swamp ε at
        # small ε; the sampler itself is exact over the quantized
        # distribution, which the distribution tests verify separately).
        quantized = [approx.quantized_weight(handle) for handle in handles]
        quantized_total = sum(quantized)
        max_error = max(
            abs((q / quantized_total) / (w / total) - 1.0)
            for q, w in zip(quantized, weights)
        )

        def approx_update():
            position = rng.randrange(len(handles))
            handle = handles[position]
            handles[position] = handles[-1]
            handles.pop()
            item = approx.delete(handle)
            handles.append(approx.insert(item, math.exp(rng.uniform(0, 8))))

        result.add_row(
            epsilon,
            approx.class_count,
            max_error,
            time_per_call(approx_update, repeats=5, inner=100) * 1e6,
            exact_update_seconds * 1e6,
            time_per_call(approx.sample, repeats=5, inner=100) * 1e6,
        )
    result.add_note(
        "max_prob_error stays below ε (analytic); classes "
        "shrink as ε grows; approximate updates are flat in n"
    )
    return result
