"""E4 — space accounting: Lemma 2's O(n log n) vs Theorem 3's O(n)."""

from __future__ import annotations

import math

from repro.engine import build
from repro.experiments.runner import ExperimentResult


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="e4",
        title="Structure space: O(n log n) vs O(n) (Lemma 2 vs Theorem 3)",
        claim="lemma2 words/element grows like log n; theorem3 and treewalk stay flat",
        columns=[
            "n",
            "log2(n)",
            "lemma2_words_per_elem",
            "theorem3_words_per_elem",
            "treewalk_words_per_elem",
            "naive_words_per_elem",
        ],
    )
    exponents = (10, 12, 14) if quick else (10, 12, 14, 16)
    for exponent in exponents:
        n = 1 << exponent
        keys = [float(i) for i in range(n)]
        lemma2 = build("range.lemma2", keys=keys).space_words()
        theorem3 = build("range.chunked", keys=keys).space_words()
        treewalk = build("range.treewalk", keys=keys).space_words()
        naive = build("range.naive", keys=keys).space_words()
        result.add_row(
            n,
            math.log2(n),
            lemma2 / n,
            theorem3 / n,
            treewalk / n,
            naive / n,
        )
    result.add_note("lemma2 column should track the log2(n) column up to a constant")
    return result
