"""Shared experiment plumbing: timing, tables, and the registry."""

from __future__ import annotations

import importlib
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro import obs


@dataclass
class ExperimentResult:
    """One experiment's output: a claim, a table, and commentary."""

    experiment_id: str
    title: str
    claim: str
    columns: Sequence[str]
    rows: List[Sequence] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    #: ``repro.obs`` snapshot taken right after the run (None when the
    #: metrics layer is disabled).
    metrics: Optional[dict] = None

    def add_row(self, *values) -> None:
        self.rows.append(values)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        def fmt(value) -> str:
            if isinstance(value, float):
                if value == 0:
                    return "0"
                if abs(value) >= 1000 or abs(value) < 0.001:
                    return f"{value:.3g}"
                return f"{value:.4g}"
            return str(value)

        header = [str(c) for c in self.columns]
        body = [[fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(header[i]), *(len(row[i]) for row in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [
            f"== {self.experiment_id.upper()}: {self.title} ==",
            f"claim: {self.claim}",
            "",
            "  ".join(h.ljust(w) for h, w in zip(header, widths)),
            "  ".join("-" * w for w in widths),
        ]
        for row in body:
            lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def time_per_call(fn: Callable[[], object], repeats: int = 5, inner: int = 1) -> float:
    """Median wall-clock seconds of ``fn`` over ``repeats`` trials."""
    timings = []
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(inner):
            fn()
        timings.append((time.perf_counter() - start) / inner)
    timings.sort()
    return timings[len(timings) // 2]


ALL_EXPERIMENTS = [
    "e1",
    "e2",
    "e3",
    "e4",
    "e5",
    "e6",
    "e7",
    "e8",
    "e9",
    "e10",
    "e11",
    "e12",
    "e13",
    "e14",
    "e15",
    "e16",
    "e17",
]

_MODULE_OF = {
    "e1": "repro.experiments.e01_alias",
    "e2": "repro.experiments.e02_tree_sampling",
    "e3": "repro.experiments.e03_range_sampling",
    "e4": "repro.experiments.e04_space",
    "e5": "repro.experiments.e05_kdtree",
    "e6": "repro.experiments.e06_rangetree",
    "e7": "repro.experiments.e07_approx_cover",
    "e8": "repro.experiments.e08_set_union",
    "e9": "repro.experiments.e09_em",
    "e10": "repro.experiments.e10_dynamic",
    "e11": "repro.experiments.e11_estimation",
    "e12": "repro.experiments.e12_fair_nn",
    "e13": "repro.experiments.e13_integer_domain",
    "e14": "repro.experiments.e14_deamortized",
    "e15": "repro.experiments.e15_approximate",
    "e16": "repro.experiments.e16_dynamic_range",
    "e17": "repro.experiments.e17_halfplane",
}


def run_experiment(experiment_id: str, quick: bool = False) -> ExperimentResult:
    """Load and run one experiment by id (e.g. ``"e3"``)."""
    key = experiment_id.lower()
    if key not in _MODULE_OF:
        raise KeyError(f"unknown experiment {experiment_id!r}; choose from {ALL_EXPERIMENTS}")
    module = importlib.import_module(_MODULE_OF[key])
    if not obs.ENABLED:
        return module.run(quick=quick)
    # Each experiment gets a clean measurement window; the snapshot rides
    # on the result so __main__ can write per-experiment sidecars.
    obs.reset()
    result = module.run(quick=quick)
    result.metrics = obs.snapshot()
    return result
