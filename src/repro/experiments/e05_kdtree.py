"""E5 — Theorem 5 on the kd-tree: O(n^{1-1/d} + s) multi-dim sampling."""

from __future__ import annotations

import math

from repro.apps.workloads import uniform_points, zipf_weights
from repro.engine import build
from repro.experiments.runner import ExperimentResult, time_per_call
from repro.substrates.kdtree import KDTree
from repro.substrates.quadtree import QuadTree


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="e5",
        title="kd-tree IQS: cover size √n, query ≪ reporting (Theorem 5, §5)",
        claim="cover grows ~√n (2D); IQS query beats full report+sample as |S_q| grows",
        columns=[
            "n",
            "sqrt(n)",
            "kd_cover",
            "quad_cover",
            "|S_q|",
            "iqs_us",
            "report_us",
            "ratio",
        ],
    )
    sizes = [1 << 10, 1 << 12] if quick else [1 << 10, 1 << 12, 1 << 14, 1 << 16]
    s = 16
    rect = [(0.25, 0.75), (0.25, 0.75)]
    for n in sizes:
        points = uniform_points(n, 2, rng=1)
        weights = zipf_weights(n, alpha=0.5, rng=2)
        kd = KDTree(points, weights, leaf_size=8)
        quad = QuadTree(points, weights, leaf_size=8)
        sampler = build("coverage", index=kd, rng=3)
        quad_sampler = build("coverage", index=quad, rng=4)
        iqs_seconds = time_per_call(lambda: sampler.sample(rect, s), repeats=5)

        def report_then_sample():
            reported = kd.report(rect)
            return reported[: s]

        report_seconds = time_per_call(report_then_sample, repeats=3)
        result.add_row(
            n,
            math.sqrt(n),
            sampler.cover_size(rect),
            quad_sampler.cover_size(rect),
            sampler.result_size(rect),
            iqs_seconds * 1e6,
            report_seconds * 1e6,
            report_seconds / iqs_seconds,
        )
    result.add_note("kd_cover / sqrt(n) should stay roughly constant across rows")
    return result
