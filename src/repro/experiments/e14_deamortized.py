"""E14 — §8 remark: de-amortization removes the rebuild I/O spikes."""

from __future__ import annotations

from repro.em.model import EMMachine
from repro.engine import build
from repro.experiments.runner import ExperimentResult


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="e14",
        title="De-amortized EM sample pool: worst-case query I/O (§8 remark)",
        claim="both pools share the same amortised cost; the plain pool's "
        "worst query pays a full rebuild, the de-amortized one never spikes",
        columns=[
            "variant",
            "queries",
            "mean_io/q",
            "worst_io/q",
            "rebuilds",
        ],
    )
    n = 1 << 10 if quick else 1 << 12
    B, memory_blocks, s = 16, 8, 32
    queries = (4 * n) // s  # several full pool cycles

    plain_machine = EMMachine(block_size=B, memory_blocks=memory_blocks)
    plain = build("em.setpool", machine=plain_machine, values=list(range(n)), rng=1)
    worst_plain = 0
    plain_machine.drop_cache()
    start_total = plain_machine.stats.total
    for _ in range(queries):
        before = plain_machine.stats.total
        plain.query(s)
        worst_plain = max(worst_plain, plain_machine.stats.total - before)
    result.add_row(
        "amortised (§8)",
        queries,
        (plain_machine.stats.total - start_total) / queries,
        worst_plain,
        plain.rebuild_count,
    )

    de_machine = EMMachine(block_size=B, memory_blocks=memory_blocks)
    deamortized = build(
        "em.setpool.deamortized", machine=de_machine, values=list(range(n)), rng=2
    )
    worst_de = 0
    de_machine.drop_cache()
    start_total = de_machine.stats.total
    for _ in range(queries):
        before = de_machine.stats.total
        deamortized.query(s)
        worst_de = max(worst_de, de_machine.stats.total - before)
    result.add_row(
        "de-amortized",
        queries,
        (de_machine.stats.total - start_total) / queries,
        worst_de,
        deamortized.rebuild_count,
    )
    result.add_note("worst_io/q: plain ≈ one full rebuild; de-amortized stays near its mean")
    return result
