"""E1 — Theorem 1: alias sampling is O(1) per draw, independent of n."""

from __future__ import annotations

from repro.apps.workloads import zipf_weights
from repro.engine import build
from repro.experiments.runner import ExperimentResult, time_per_call


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="e1",
        title="Alias method: O(n) build, O(1) sample (Theorem 1, §3.1)",
        claim="per-sample time stays flat as n grows 64x; build time grows ~linearly",
        columns=["n", "build_ms", "ns_per_sample", "samples_per_sec"],
    )
    sizes = [1 << 12, 1 << 15, 1 << 18] if not quick else [1 << 10, 1 << 13]
    batch = 10_000
    for n in sizes:
        weights = zipf_weights(n, alpha=1.0, rng=1)
        items = list(range(n))
        build_seconds = time_per_call(
            lambda: build("alias", items=items, weights=weights, rng=2), repeats=3
        )
        sampler = build("alias", items=items, weights=weights, rng=3)
        sample_seconds = time_per_call(lambda: sampler.sample_many(batch), repeats=5)
        per_sample = sample_seconds / batch
        result.add_row(n, build_seconds * 1e3, per_sample * 1e9, 1.0 / per_sample)
    result.add_note(
        "flat ns_per_sample across rows demonstrates the O(1) draw; "
        "build_ms growing ~proportionally to n demonstrates the O(n) build"
    )
    return result
