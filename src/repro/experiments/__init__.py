"""Experiment harness: regenerates every claim table in EXPERIMENTS.md.

The paper is a techniques survey with no measured tables of its own, so
each "experiment" here validates one stated theorem/bound (see DESIGN.md
§5 for the index). Run everything with::

    python -m repro.experiments            # full sweep (~ minutes)
    python -m repro.experiments --quick    # reduced sizes (~ seconds)
    python -m repro.experiments e3 e9      # selected experiments

Output is plain text tables; EXPERIMENTS.md archives a full run.
"""

from repro.experiments.runner import ExperimentResult, ALL_EXPERIMENTS, run_experiment

__all__ = ["ExperimentResult", "ALL_EXPERIMENTS", "run_experiment"]
