"""E6 — Theorem 5 on the range tree: polylog covers at O(n log n) space."""

from __future__ import annotations

import math

from repro.apps.workloads import uniform_points, zipf_weights
from repro.engine import build
from repro.experiments.runner import ExperimentResult, time_per_call
from repro.substrates.kdtree import KDTree
from repro.substrates.rangetree import RangeTree


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="e6",
        title="Range-tree IQS: O(log n) covers, O(n log n) space (Theorem 5)",
        claim="range-tree covers are polylog (≪ kd-tree's √n) at a log-factor space premium",
        columns=[
            "n",
            "log2(n)",
            "rt_cover",
            "kd_cover",
            "rt_storage/n",
            "rt_query_us",
            "kd_query_us",
        ],
    )
    sizes = [1 << 9, 1 << 11] if quick else [1 << 9, 1 << 11, 1 << 13]
    s = 16
    rect = [(0.2, 0.8), (0.3, 0.7)]
    for n in sizes:
        points = uniform_points(n, 2, rng=1)
        weights = zipf_weights(n, alpha=0.5, rng=2)
        range_tree = RangeTree(points, weights)
        kd = KDTree(points, weights, leaf_size=8)
        rt_sampler = build("coverage", index=range_tree, rng=3)
        kd_sampler = build("coverage", index=kd, rng=4)
        rt_seconds = time_per_call(lambda: rt_sampler.sample(rect, s), repeats=5)
        kd_seconds = time_per_call(lambda: kd_sampler.sample(rect, s), repeats=5)
        result.add_row(
            n,
            math.log2(n),
            rt_sampler.cover_size(rect),
            kd_sampler.cover_size(rect),
            range_tree.storage_size() / n,
            rt_seconds * 1e6,
            kd_seconds * 1e6,
        )
    result.add_note(
        "rt_cover tracks log2(n); rt_storage/n tracks log2(n); kd_cover grows ~sqrt"
    )
    return result
