"""E16 — dynamic weighted *range* sampling (§4.3 remark + Direction 1).

Compares the treap structure (O(log n) updates, O((1+s) log n) queries)
against the static Theorem-3 structure (faster queries, but any update
forces a full rebuild) under a mixed update/query workload.
"""

from __future__ import annotations

from repro.engine import build
from repro.experiments.runner import ExperimentResult, time_per_call
from repro.substrates.rng import ensure_rng


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="e16",
        title="Dynamic weighted range sampling: treap vs static rebuilds (§4.3)",
        claim="treap updates are O(log n); its query pays one extra log factor; "
        "the static structure's 'update' is a full O(n) rebuild",
        columns=[
            "n",
            "treap_insert_us",
            "treap_delete_us",
            "treap_query_us",
            "static_query_us",
            "static_rebuild_us",
        ],
    )
    sizes = [1 << 10, 1 << 13] if quick else [1 << 10, 1 << 13, 1 << 16]
    s = 16
    for n in sizes:
        rng = ensure_rng(1)
        keys = sorted(rng.sample(range(10 * n), n))
        weights = [1.0 + rng.random() * 9 for _ in range(n)]

        treap = build("range.dynamic", rng=2)
        for key, weight in zip(keys, weights):
            treap.insert(float(key), weight)
        static = build(
            "range.chunked", keys=[float(k) for k in keys], weights=weights, rng=3
        )
        x, y = float(keys[n // 10]), float(keys[9 * n // 10])

        spare_keys = iter(range(10 * n, 20 * n))
        inserted: list = []

        def treap_insert():
            key = float(next(spare_keys))
            treap.insert(key, 1.0)
            inserted.append(key)

        def treap_delete():
            treap.delete(inserted.pop())

        insert_seconds = time_per_call(treap_insert, repeats=5, inner=100)
        delete_seconds = time_per_call(treap_delete, repeats=5, inner=100)
        treap_query = time_per_call(lambda: treap.sample(x, y, s), repeats=5)
        static_query = time_per_call(lambda: static.sample(x, y, s), repeats=5)
        static_rebuild = time_per_call(
            lambda: build(
                "range.chunked", keys=[float(k) for k in keys], weights=weights
            ),
            repeats=3,
        )
        result.add_row(
            n,
            insert_seconds * 1e6,
            delete_seconds * 1e6,
            treap_query * 1e6,
            static_query * 1e6,
            static_rebuild * 1e6,
        )
    result.add_note(
        "treap updates grow ~log n while a static 'update' (rebuild) grows "
        "linearly; treap queries carry the predicted extra log factor"
    )
    return result
