"""E3 — Lemma 2 / Theorem 3 vs the naive baseline: the selectivity sweep.

The headline IQS phenomenon (§1): report-then-sample pays Θ(|S_q|), the
IQS structures pay O(log n + s). Sweeping selectivity shows the naive
cost exploding while the IQS structures stay flat, with the crossover at
tiny result sizes.
"""

from __future__ import annotations

from repro.apps.workloads import distinct_uniform_reals, interval_with_selectivity, zipf_weights
from repro.engine import build
from repro.experiments.runner import ExperimentResult, time_per_call


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="e3",
        title="Weighted range sampling vs report-then-sample (§4)",
        claim="IQS query time flat in selectivity; naive grows linearly with |S_q|",
        columns=[
            "selectivity",
            "|S_q|",
            "naive_us",
            "treewalk_us",
            "lemma2_us",
            "theorem3_us",
            "naive/theorem3",
        ],
    )
    n = 50_000 if quick else 200_000
    s = 16
    keys = distinct_uniform_reals(n, rng=1)
    weights = zipf_weights(n, alpha=0.8, rng=2)
    naive = build("range.naive", keys=keys, weights=weights, rng=3)
    treewalk = build("range.treewalk", keys=keys, weights=weights, rng=7)
    lemma2 = build("range.lemma2", keys=keys, weights=weights, rng=4)
    theorem3 = build("range.chunked", keys=keys, weights=weights, rng=5)
    for selectivity in (0.001, 0.01, 0.1, 0.5):
        x, y = interval_with_selectivity(keys, selectivity, rng=6)
        result_size = sum(1 for key in keys if x <= key <= y)
        naive_seconds = time_per_call(lambda: naive.sample(x, y, s), repeats=3)
        treewalk_seconds = time_per_call(lambda: treewalk.sample(x, y, s), repeats=5)
        lemma2_seconds = time_per_call(lambda: lemma2.sample(x, y, s), repeats=5)
        theorem3_seconds = time_per_call(lambda: theorem3.sample(x, y, s), repeats=5)
        # WoR variant (§1) — cheap, and it feeds the wor.* cost counters
        # so metrics runs report rejections/draw alongside the timings.
        lemma2.sample_without_replacement(x, y, s)
        result.add_row(
            selectivity,
            result_size,
            naive_seconds * 1e6,
            treewalk_seconds * 1e6,
            lemma2_seconds * 1e6,
            theorem3_seconds * 1e6,
            naive_seconds / theorem3_seconds,
        )
    result.add_note(f"n = {n}, s = {s}; naive/theorem3 ratio should grow ~linearly in |S_q|")
    result.add_note(
        "treewalk is the §3.2 O((1+s) log n) baseline; lemma2/theorem3 are O(log n + s)"
    )
    return result
