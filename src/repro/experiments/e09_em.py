"""E9 — §8: EM set sampling against the Hu-et-al. lower bound.

Measured I/Os per query for (a) the naive one-I/O-per-sample baseline,
(b) the sample-pool structure, compared against the closed-form lower
bound ``min(s, (s/B)·log_{M/B}(n/B))`` and the EM B-tree range sampler.
"""

from __future__ import annotations

from repro.em.lower_bound import set_sampling_lower_bound
from repro.em.model import EMMachine
from repro.engine import build
from repro.experiments.runner import ExperimentResult


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="e9",
        title="EM set sampling: I/Os vs the lower bound (§8)",
        claim="pool I/O per query sits within a small constant of the lower bound; "
        "naive pays ~s I/Os",
        columns=["n", "B", "s", "lower_bound", "pool_io/q", "naive_io/q", "btree_range_io/q"],
    )
    n = 1 << 13 if quick else 1 << 15
    B = 64
    memory_blocks = 16
    rounds = 6
    for s in (32, 128, 512):
        pool_machine = EMMachine(block_size=B, memory_blocks=memory_blocks)
        pool = build("em.setpool", machine=pool_machine, values=list(range(n)), rng=1)
        pool.query(s)  # warm
        pool_machine.drop_cache()
        start = pool_machine.stats.total
        # Amortise over at least two full pool cycles so the measurement
        # window includes the rebuild cost the bound talks about.
        pool_rounds = max(rounds, (2 * n) // s + 1)
        for _ in range(pool_rounds):
            pool.query(s)
        pool_per_query = (pool_machine.stats.total - start) / pool_rounds

        naive_machine = EMMachine(block_size=B, memory_blocks=memory_blocks)
        naive = build("em.naive", machine=naive_machine, values=list(range(n)), rng=2)
        naive_machine.drop_cache()
        start = naive_machine.stats.total
        for _ in range(rounds):
            naive.query(s)
        naive_per_query = (naive_machine.stats.total - start) / rounds

        range_machine = EMMachine(block_size=B, memory_blocks=memory_blocks)
        ranger = build(
            "range.em",
            machine=range_machine,
            values=[float(i) for i in range(n)],
            rng=3,
        )
        ranger.query(0.0, float(n - 1), s)  # warm pools
        range_machine.drop_cache()
        start = range_machine.stats.total
        for _ in range(rounds):
            ranger.query(float(n // 4), float(3 * n // 4), s)
        range_per_query = (range_machine.stats.total - start) / rounds

        result.add_row(
            n,
            B,
            s,
            set_sampling_lower_bound(s, n, B, memory_blocks * B),
            pool_per_query,
            naive_per_query,
            range_per_query,
        )
    result.add_note(
        "pool_io/q should track the lower bound's (s/B)·log shape; naive_io/q tracks s"
    )
    return result
