"""E12 — Benefit 2 / §7: fair near-neighbor sampling cost and fairness."""

from __future__ import annotations

from repro.apps.workloads import clustered_points
from repro.engine import build
from repro.experiments.runner import ExperimentResult, time_per_call
from repro.stats.tests import chi_square_weighted_pvalue


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="e12",
        title="Fair r-near neighbor via set-union sampling (§2 Benefit 2, §7)",
        claim="query cost ≪ scanning; outputs uniform over the r-ball (chi-square passes)",
        columns=[
            "n",
            "ball_size",
            "fair_us",
            "scan_us",
            "scan/fair",
            "uniformity_p",
        ],
    )
    sizes = [2_000, 10_000] if quick else [2_000, 10_000, 50_000]
    radius = 0.05
    for n in sizes:
        points = clustered_points(n, 2, clusters=10, spread=0.05, rng=1)
        fair = build("fair_nn", points=points, radius=radius, num_grids=2, rng=2)
        query = points[0]
        ball = fair.near_points(query)

        fair_seconds = time_per_call(lambda: fair.sample(query), repeats=7)
        scan_seconds = time_per_call(lambda: fair.near_points(query), repeats=3)

        draws = 600 if quick else 2000
        samples = fair.sample_many(query, draws)
        p_value = chi_square_weighted_pvalue(samples, {point: 1.0 for point in ball})
        result.add_row(
            n,
            len(ball),
            fair_seconds * 1e6,
            scan_seconds * 1e6,
            scan_seconds / fair_seconds,
            p_value,
        )
    result.add_note("uniformity_p > 1e-6 = outputs indistinguishable from uniform")
    return result
