"""CLI entry point: ``python -m repro.experiments [--quick] [ids...]``."""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro import obs
from repro.experiments.runner import ALL_EXPERIMENTS, run_experiment


def _derived_highlights(snapshot: dict) -> str:
    """One-line summary of the non-empty derived ratios."""
    pairs = [
        f"{name}={value:.3g}"
        for name, value in sorted(snapshot.get("derived", {}).items())
        if value is not None
    ]
    return ", ".join(pairs) if pairs else "(no derived ratios exercised)"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the EXPERIMENTS.md validation tables.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=[],
        help=f"experiment ids to run (default: all of {', '.join(ALL_EXPERIMENTS)})",
    )
    parser.add_argument(
        "--quick", action="store_true", help="reduced problem sizes (~seconds)"
    )
    parser.add_argument(
        "--metrics-out",
        metavar="DIR",
        default=None,
        help=(
            "directory for per-experiment metrics sidecars "
            "(<DIR>/<id>.metrics.json); implies metrics collection. "
            f"With {obs.ENV_ENABLED}=1 set, defaults to results/metrics"
        ),
    )
    args = parser.parse_args(argv)

    if args.metrics_out is not None:
        obs.enable()
    metrics_dir = args.metrics_out
    if metrics_dir is None and obs.ENABLED:
        metrics_dir = os.path.join("results", "metrics")

    selected = [e.lower() for e in args.experiments] or ALL_EXPERIMENTS
    for experiment_id in selected:
        started = time.perf_counter()
        result = run_experiment(experiment_id, quick=args.quick)
        elapsed = time.perf_counter() - started
        print(result.render())
        print(f"({experiment_id} completed in {elapsed:.1f}s)")
        if result.metrics is not None:
            print(f"metrics: {_derived_highlights(result.metrics)}")
            if metrics_dir is not None:
                sidecar = os.path.join(
                    metrics_dir, f"{experiment_id}.metrics.json"
                )
                obs.write_sidecar(
                    sidecar,
                    result.metrics,
                    extra={
                        "experiment": experiment_id,
                        "quick": args.quick,
                        "elapsed_s": round(elapsed, 3),
                    },
                )
                print(f"metrics sidecar: {sidecar}")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
