"""CLI entry point: ``python -m repro.experiments [--quick] [ids...]``."""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.runner import ALL_EXPERIMENTS, run_experiment


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the EXPERIMENTS.md validation tables.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=[],
        help=f"experiment ids to run (default: all of {', '.join(ALL_EXPERIMENTS)})",
    )
    parser.add_argument(
        "--quick", action="store_true", help="reduced problem sizes (~seconds)"
    )
    args = parser.parse_args(argv)

    selected = [e.lower() for e in args.experiments] or ALL_EXPERIMENTS
    for experiment_id in selected:
        started = time.perf_counter()
        result = run_experiment(experiment_id, quick=args.quick)
        elapsed = time.perf_counter() - started
        print(result.render())
        print(f"({experiment_id} completed in {elapsed:.1f}s)")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
