"""E11 — Benefit 1: failure counts concentrate under IQS, not otherwise."""

from __future__ import annotations

import statistics

from repro.apps.estimation import failure_indicators
from repro.engine import build
from repro.experiments.runner import ExperimentResult


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="e11",
        title="Benefit 1: long-run failure concentration of estimates (§2)",
        claim="over trials, IQS failure counts cluster near mδ with small spread; the "
        "dependent baseline is all-or-nothing per trial (huge spread)",
        columns=[
            "sampler",
            "trials",
            "m_estimates",
            "mean_failures",
            "stdev_failures",
            "min",
            "max",
        ],
    )
    n = 2000
    keys = [float(i) for i in range(n)]
    true_fraction = 0.5
    epsilon = 0.08
    per_estimate = 64
    m = 60 if quick else 150
    trials = 8 if quick else 15

    iqs_counts = []
    for trial in range(trials):
        sampler = build("range.chunked", keys=keys, rng=100 + trial)
        failures = failure_indicators(
            lambda count: sampler.sample(0.0, n - 1.0, count),
            lambda value: value < n / 2,
            true_fraction,
            epsilon,
            m,
            per_estimate,
        )
        iqs_counts.append(sum(failures))

    dependent_counts = []
    for trial in range(trials):
        sampler = build("range.dependent", keys=keys, rng=200 + trial)
        failures = failure_indicators(
            lambda count: sampler.sample_without_replacement(0.0, n - 1.0, count),
            lambda value: value < n / 2,
            true_fraction,
            epsilon,
            m,
            per_estimate,
        )
        dependent_counts.append(sum(failures))

    for name, counts in (("IQS (Theorem 3)", iqs_counts), ("dependent (§2)", dependent_counts)):
        result.add_row(
            name,
            trials,
            m,
            statistics.mean(counts),
            statistics.pstdev(counts),
            min(counts),
            max(counts),
        )
    result.add_note(
        "dependent rows show min=0/max=m behaviour (each trial repeats one frozen "
        "estimate m times); IQS spread stays near the binomial sqrt(mδ(1-δ))"
    )
    return result
