"""E8 — Theorem 8: set-union sampling cost is O(g log² n), not O(|∪G|)."""

from __future__ import annotations

from repro.apps.workloads import overlapping_sets
from repro.engine import build
from repro.experiments.runner import ExperimentResult, time_per_call


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="e8",
        title="Set-union sampling vs materialise-the-union (§7, Theorem 8)",
        claim="theorem8 query time ~flat as set sizes grow 16x; naive grows linearly",
        columns=[
            "set_size",
            "U_G",
            "g",
            "thm8_us",
            "naive_us",
            "naive/thm8",
            "attempts",
        ],
    )
    g = 6
    scales = [250, 1000] if quick else [250, 1000, 4000]
    for set_size in scales:
        universe = set_size * 3
        family = overlapping_sets(10, set_size, universe, rng=1)
        sampler = build("setunion", family=family, rng=2, rebuild_after=0)
        naive = build("setunion.naive", family=family, rng=3)
        group = list(range(g))

        thm8_seconds = time_per_call(lambda: sampler.sample(group), repeats=7)
        naive_seconds = time_per_call(lambda: naive.sample(group), repeats=3)
        result.add_row(
            set_size,
            sampler.exact_union_size(group),
            g,
            thm8_seconds * 1e6,
            naive_seconds * 1e6,
            naive_seconds / thm8_seconds,
            sampler.total_attempts / max(1, sampler.total_queries),
        )
    result.add_note(
        "attempts ≈ Θ(log n) per sample; naive cost tracks U_G so the ratio widens"
    )
    return result
