"""E10 — Direction 1: dynamic weighted sampling under churn."""

from __future__ import annotations

from repro.engine import build
from repro.experiments.runner import ExperimentResult, time_per_call
from repro.substrates.rng import ensure_rng


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="e10",
        title="Dynamic weighted sampling: updates + samples (§9 Direction 1)",
        claim="fenwick: O(log n) update & sample; bucket: O(1)-ish update; the static "
        "alias structure cannot update at all (full rebuild)",
        columns=[
            "n",
            "fenwick_update_us",
            "fenwick_sample_us",
            "bucket_update_us",
            "bucket_sample_us",
            "alias_rebuild_us",
        ],
    )
    sizes = [1 << 10, 1 << 13] if quick else [1 << 10, 1 << 13, 1 << 16]
    rng = ensure_rng(1)
    for n in sizes:
        weights = [1.0 + rng.random() * 100 for _ in range(n)]

        fenwick = build("dynamic.fenwick", rng=2, initial_capacity=n)
        fenwick_handles = [fenwick.insert(i, weights[i]) for i in range(n)]
        bucket = build("dynamic.bucket", rng=3)
        bucket_handles = [bucket.insert(i, weights[i]) for i in range(n)]

        def fenwick_update():
            handle = fenwick_handles[rng.randrange(n)]
            fenwick.update_weight(handle, 1.0 + rng.random() * 100)

        def bucket_update():
            handle = bucket_handles[rng.randrange(n)]
            bucket.update_weight(handle, 1.0 + rng.random() * 100)

        items = list(range(n))
        alias_rebuild = time_per_call(
            lambda: build("alias", items=items, weights=weights), repeats=3
        )
        result.add_row(
            n,
            time_per_call(fenwick_update, repeats=5, inner=200) * 1e6,
            time_per_call(fenwick.sample, repeats=5, inner=200) * 1e6,
            time_per_call(bucket_update, repeats=5, inner=200) * 1e6,
            time_per_call(bucket.sample, repeats=5, inner=200) * 1e6,
            alias_rebuild * 1e6,
        )
    result.add_note(
        "update columns grow ~log n (fenwick) / ~flat (bucket) while a static "
        "alias rebuild grows linearly — the gap motivating Direction 1"
    )
    return result
