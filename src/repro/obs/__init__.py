"""``repro.obs`` — unified metrics/tracing with per-query cost accounting.

Every sampler hot path in this package is instrumented against one
process-wide :class:`~repro.obs.registry.MetricsRegistry`: alias draws
(Theorem 1), BST node visits per TreeWalk query (§3.2), Lemma-2 urn
probes, Theorem-3 chunk touches, rejection-loop iterations (WoR, bucket
sampler, set-union, fair-NN), plan-cache hits/misses/evictions, and EM
block I/Os (§8). The point: the paper's claims are *cost-shape* theorems
— expected O(1) rejections per draw, O(log n + s) query cost, O(1 + s/B)
I/Os — and with this layer each claim is checked by **counting the
quantity the theorem bounds**, not by inferring it from wall-clock.

Enablement
----------
Metrics are **off by default**. Set ``REPRO_METRICS=1`` in the
environment (read at import time) or call :func:`enable` at runtime.
Instrumented call sites guard registry touches with ``if obs.ENABLED:``
at call granularity, so the disabled path costs one global load + branch
per public call — within 5% of a build with the instrumentation absent
(asserted in ``tests/obs/test_offpath.py``) — and seeded sample streams
are byte-identical with metrics on or off (metrics never consume
randomness).

Usage
-----
>>> from repro import obs
>>> obs.enable()
>>> # ... run queries ...
>>> snap = obs.snapshot()
>>> snap["counters"]["alias.draws"]  # doctest: +SKIP
12345

Export with :func:`export_json` / :func:`export_prometheus`, or from the
CLI: ``python -m repro obs``. See ``docs/OBSERVABILITY.md`` for the full
metric inventory and semantics.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.substrates.env import env_flag

from repro.obs.export import to_json, to_prometheus, write_sidecar
from repro.obs.recorder import DEFAULT_CAPACITY, FlightRecorder
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    DERIVED_RATIOS,
)
from repro.obs.trace import (
    NULL_SPAN,
    NullSpan,
    SpanTimer,
    current_trace,
    reset_current_trace,
    set_current_trace,
    trace_id_for,
)

#: Environment variable controlling the import-time default; parsed by
#: :func:`repro.substrates.env.env_flag` (truthy: ``1``/``true``/``yes``/
#: ``on``, case-insensitive).
ENV_ENABLED = "REPRO_METRICS"

#: Optional path for the benchmark-suite metrics sidecar JSON (consumed
#: by ``benchmarks/conftest.py``; CI uploads it as a workflow artifact).
ENV_SIDECAR = "REPRO_METRICS_SIDECAR"

#: The process-wide registry every instrumented module records into.
REGISTRY = MetricsRegistry()

#: The process-wide flight recorder the engine appends request records to.
RECORDER = FlightRecorder(DEFAULT_CAPACITY)

#: Global enablement flag. Instrumented call sites read this directly
#: (``if obs.ENABLED:``) — mutate it only through :func:`enable` /
#: :func:`disable` so future bookkeeping has one choke point.
ENABLED: bool = env_flag(ENV_ENABLED)


def enabled() -> bool:
    """Whether instrumentation is currently recording."""
    return ENABLED


def enable() -> None:
    """Turn instrumentation on for the whole process."""
    global ENABLED
    ENABLED = True


def disable() -> None:
    """Turn instrumentation off (instruments keep their current values)."""
    global ENABLED
    ENABLED = False


class scope:
    """Context manager: force metrics on (or off) within a block.

    >>> with obs.scope(True):
    ...     sampler.sample_many(100)  # doctest: +SKIP
    """

    def __init__(self, on: bool = True):
        self._on = on
        self._saved = ENABLED

    def __enter__(self) -> "scope":
        self._saved = ENABLED
        (enable if self._on else disable)()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        (enable if self._saved else disable)()
        return False


# ----------------------------------------------------------------------
# instrument factories (delegate to the global registry)
# ----------------------------------------------------------------------


def counter(name: str, help: str = "") -> Counter:
    """Get-or-create a process-wide counter."""
    return REGISTRY.counter(name, help)


def gauge(name: str, help: str = "") -> Gauge:
    """Get-or-create a process-wide gauge."""
    return REGISTRY.gauge(name, help)


def histogram(
    name: str, help: str = "", buckets: Optional[Sequence[float]] = None
) -> Histogram:
    """Get-or-create a process-wide histogram."""
    return REGISTRY.histogram(name, help, buckets)


def span(name: str, **attrs) -> Union[SpanTimer, NullSpan]:
    """A trace span context manager; the shared no-op when disabled."""
    if not ENABLED:
        return NULL_SPAN
    return SpanTimer(REGISTRY, name, attrs)


# ----------------------------------------------------------------------
# reads / lifecycle
# ----------------------------------------------------------------------


def value(name: str) -> Union[int, float]:
    """Current value of a counter or gauge (0 if never touched)."""
    return REGISTRY.value(name)


def snapshot(include_spans: bool = True) -> dict:
    """JSON-serialisable view of all instruments plus derived ratios."""
    snap = REGISTRY.snapshot(include_spans=include_spans)
    snap["enabled"] = ENABLED
    return snap


def reset() -> None:
    """Zero every instrument, drop retained spans and flight records
    (names survive).

    Call between experiments sharing one process so per-experiment
    sidecars don't accumulate stale counts (e.g. EM I/Os from an earlier
    run — the failure mode that motivated making this explicit).
    """
    REGISTRY.reset()
    RECORDER.clear()


def merge(delta: dict) -> None:
    """Fold a harvest delta (:func:`repro.obs.harvest.delta_since`) into
    the process-wide registry and flight recorder.

    Counters sum, histograms merge bucket-wise (mismatched bucket bounds
    raise), gauges last-write, unknown metrics auto-register; worker
    spans and flight records are appended to the parent's rings. The
    engine calls this once per successfully returned worker chunk.
    """
    REGISTRY.merge(delta)
    RECORDER.extend(delta.get("records", ()))


def tail(limit: Optional[int] = None) -> list:
    """The flight recorder's most recent ``limit`` records, oldest first."""
    return RECORDER.tail(limit)


def timeline(trace_id: str) -> dict:
    """Everything retained about one trace: its flight records and spans.

    Reassembles a per-request timeline across backends from the two
    bounded rings — recorder entries (parent- and worker-side; the
    ``worker`` PID tells them apart) and trace-tagged spans — each sorted
    by wall-clock timestamp. Only as complete as the rings are deep;
    this is a debugging aid, not an audit log.
    """
    records = RECORDER.for_trace(trace_id)
    spans = [
        s
        for s in REGISTRY.recent_spans()
        if s.get("attrs", {}).get("trace") == trace_id
    ]
    return {
        "trace": trace_id,
        "records": sorted(records, key=lambda r: r["ts"]),
        "spans": sorted(spans, key=lambda s: s.get("ts", 0.0)),
    }


def export_json(indent: int = 2) -> str:
    """The current snapshot as a JSON string."""
    return to_json(snapshot(), indent=indent)


def export_prometheus() -> str:
    """The current snapshot in Prometheus text exposition format."""
    return to_prometheus(snapshot())


__all__ = [
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanTimer",
    "NullSpan",
    "DERIVED_RATIOS",
    "ENV_ENABLED",
    "ENV_SIDECAR",
    "RECORDER",
    "REGISTRY",
    "ENABLED",
    "enabled",
    "enable",
    "disable",
    "scope",
    "counter",
    "current_trace",
    "gauge",
    "histogram",
    "merge",
    "reset_current_trace",
    "set_current_trace",
    "span",
    "tail",
    "timeline",
    "trace_id_for",
    "value",
    "snapshot",
    "reset",
    "export_json",
    "export_prometheus",
    "to_json",
    "to_prometheus",
    "write_sidecar",
]
