"""Snapshot export: JSON and Prometheus text format, plus sidecar files.

The JSON form is the machine-readable sidecar the experiment runner and
benchmark suite emit next to their results, so EXPERIMENTS.md rows can
cite counted costs (rejections/draw, node visits/query, I/Os/query)
alongside wall-clock numbers. The Prometheus text form is for scraping a
long-lived serving process (`python -m repro obs --format prometheus`
shows the exact output).
"""

from __future__ import annotations

import json
import os
import re
from typing import Optional

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")
#: Prefix for every exported Prometheus metric name.
PROMETHEUS_PREFIX = "repro_"


def _prom_name(name: str, suffix: str = "") -> str:
    return PROMETHEUS_PREFIX + _NAME_RE.sub("_", name) + suffix


def _prom_value(value) -> str:
    if value is None:
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    return repr(float(value)) if isinstance(value, float) else str(value)


def to_json(snapshot: dict, indent: int = 2) -> str:
    """Serialise a registry snapshot as JSON (stable key order)."""
    return json.dumps(snapshot, indent=indent, sort_keys=True, default=str)


def _escape_help(text: str) -> str:
    # Prometheus HELP values escape backslash and newline only.
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def to_prometheus(snapshot: dict) -> str:
    """Render a snapshot in the Prometheus text exposition format.

    Counters become ``repro_<name>_total``, gauges and derived ratios
    plain gauges, histograms the standard ``_bucket``/``_sum``/``_count``
    triplet plus bucket-interpolated ``_p50``/``_p90``/``_p99`` gauges
    (scrapers without ``histogram_quantile`` at hand get tail latency for
    free). Registered help strings (the snapshot's ``help`` map) are
    emitted as ``# HELP`` lines ahead of each ``# TYPE``. Span records
    are not exported individually — their latency distributions are
    already present as ``span.<name>.us`` histograms.
    """
    help_map = snapshot.get("help", {})
    lines = []

    def _describe(raw_name: str, metric: str, kind: str) -> None:
        help_text = help_map.get(raw_name)
        if help_text:
            lines.append(f"# HELP {metric} {_escape_help(help_text)}")
        lines.append(f"# TYPE {metric} {kind}")

    for name, value in snapshot.get("counters", {}).items():
        metric = _prom_name(name, "_total")
        _describe(name, metric, "counter")
        lines.append(f"{metric} {value}")
    for name, value in snapshot.get("gauges", {}).items():
        metric = _prom_name(name)
        _describe(name, metric, "gauge")
        lines.append(f"{metric} {_prom_value(value)}")
    for name, value in snapshot.get("derived", {}).items():
        metric = _prom_name("derived_" + name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_prom_value(value)}")
    for name, data in snapshot.get("histograms", {}).items():
        metric = _prom_name(name)
        _describe(name, metric, "histogram")
        for le, count in data["buckets"]:
            le_str = "+Inf" if le == "+Inf" else _prom_value(le)
            lines.append(f'{metric}_bucket{{le="{le_str}"}} {count}')
        lines.append(f"{metric}_sum {_prom_value(data['sum'])}")
        lines.append(f"{metric}_count {data['count']}")
        for q_key in ("p50", "p90", "p99"):
            if q_key in data:
                q_metric = _prom_name(name, f"_{q_key}")
                lines.append(f"# TYPE {q_metric} gauge")
                lines.append(f"{q_metric} {_prom_value(data[q_key])}")
    return "\n".join(lines) + "\n"


def write_sidecar(path: str, snapshot: dict, extra: Optional[dict] = None) -> str:
    """Write a metrics sidecar JSON next to a result artifact.

    ``extra`` (experiment id, elapsed seconds, git rev, ...) is merged at
    the top level under ``"meta"``; the snapshot goes under
    ``"metrics"``. Parent directories are created. Returns ``path``.
    """
    payload = {"meta": extra or {}, "metrics": snapshot}
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_json(payload))
        handle.write("\n")
    return path


__all__ = ["to_json", "to_prometheus", "write_sidecar", "PROMETHEUS_PREFIX"]
