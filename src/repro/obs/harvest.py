"""Worker metric harvest: baseline/delta capture for cross-process merge.

The metrics registry is process-local, so every counter a
process-backend worker increments (alias draws, BST visits, rejection
loops, shm attaches) would vanish with the worker. The harvest protocol
closes that gap without shared memory or a metrics socket:

1. The worker takes a :func:`baseline` of its registry before executing
   a chunk (cheap: one dict of ints per instrument kind).
2. After the chunk it computes :func:`delta_since` — only the
   instruments that *moved*, as picklable plain data (counter deltas,
   bucket-wise histogram deltas with their bounds, gauge last values,
   spans and flight records appended since the baseline).
3. The delta rides home inside the chunk's existing result envelope and
   the parent folds it in via :meth:`repro.obs.MetricsRegistry.merge`
   (counters sum, histograms merge bucket-wise, gauges last-write).

Crash safety is structural, not bookkept: a delta exists only inside a
successfully returned envelope. A worker that dies mid-chunk returns
nothing — its partial counts die with it — and the parent's per-request
retry produces a fresh, single-execution delta. A chunk whose future
*did* resolve is merged exactly once (the parent merges at
``future.result()`` time). So a retried request after a
``WorkerCrashedError`` is never double-counted.

The baseline/delta pair also works intra-process (any code that wants
"what did this block record" without resetting the global registry), so
the functions take the registry explicitly and default to the global
one.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.obs.recorder import FlightRecorder
from repro.obs.registry import MetricsRegistry

__all__ = ["baseline", "delta_since"]


def _global_registry() -> MetricsRegistry:
    from repro import obs

    return obs.REGISTRY


def _global_recorder() -> FlightRecorder:
    from repro import obs

    return obs.RECORDER


def baseline(
    registry: Optional[MetricsRegistry] = None,
    recorder: Optional[FlightRecorder] = None,
) -> Dict[str, Any]:
    """Snapshot the registry's current totals as a delta reference point.

    O(instruments) dict copies — no histograms are walked bucket-wise
    until :func:`delta_since` finds one whose count moved.
    """
    registry = registry if registry is not None else _global_registry()
    recorder = recorder if recorder is not None else _global_recorder()
    return {
        "counters": {n: c.value for n, c in registry._counters.items()},
        "gauges": {n: g.value for n, g in registry._gauges.items()},
        "histograms": {
            n: (h.count, h.sum) for n, h in registry._histograms.items()
        },
        "histogram_counts": {
            n: list(h._counts) for n, h in registry._histograms.items()
        },
        "span_total": registry.span_total,
        "record_total": recorder.total,
    }


def delta_since(
    base: Dict[str, Any],
    registry: Optional[MetricsRegistry] = None,
    recorder: Optional[FlightRecorder] = None,
) -> Dict[str, Any]:
    """Everything recorded since ``base``, as a picklable merge payload.

    The payload is exactly what :meth:`MetricsRegistry.merge` consumes:

    * ``counters`` — name → non-negative increment (only movers).
    * ``gauges`` — name → current value (only instruments whose value
      changed; merge semantics are last-write).
    * ``histograms`` — name → ``{"bounds", "counts", "count", "sum"}``
      with per-bucket *deltas* (only histograms whose count moved).
    * ``spans`` / ``records`` — span dicts and flight-recorder records
      appended since the baseline (bounded by the ring sizes).
    * ``help`` — help strings for the instruments present in the delta,
      so the parent can auto-register metrics it has never imported.
    """
    registry = registry if registry is not None else _global_registry()
    recorder = recorder if recorder is not None else _global_recorder()
    counters: Dict[str, int] = {}
    for name, instrument in registry._counters.items():
        moved = instrument.value - base["counters"].get(name, 0)
        if moved:
            counters[name] = moved
    gauges: Dict[str, float] = {}
    for name, instrument in registry._gauges.items():
        previous = base["gauges"].get(name)
        if previous is None or instrument.value != previous:
            gauges[name] = instrument.value
    histograms: Dict[str, Dict[str, Any]] = {}
    for name, instrument in registry._histograms.items():
        prior_count, prior_sum = base["histograms"].get(name, (0, 0.0))
        if instrument.count == prior_count:
            continue
        prior_counts = base["histogram_counts"].get(
            name, [0] * (len(instrument.buckets) + 1)
        )
        histograms[name] = {
            "bounds": list(instrument.buckets),
            "counts": [
                now - before
                for now, before in zip(instrument._counts, prior_counts)
            ],
            "count": instrument.count - prior_count,
            "sum": instrument.sum - prior_sum,
        }
    help_strings = registry.help_strings()
    touched = set(counters) | set(gauges) | set(histograms)
    return {
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
        "spans": registry.spans_since(base["span_total"]),
        "records": recorder.since(base["record_total"]),
        "help": {n: h for n, h in help_strings.items() if n in touched},
    }
