"""Flight recorder: a bounded ring buffer of recent request records.

Counters and histograms answer "how much, in aggregate"; the flight
recorder answers "what just happened". Every request the engine executes
(on any backend, metrics enabled) appends one small dict —

``{"ts", "trace", "spec", "op", "s", "backend", "worker", "us", "error"}``

— to a ring of the most recent :data:`DEFAULT_CAPACITY` records. The
ring is cheap enough to leave on under load (append to a bounded deque;
no allocation beyond the record itself) and is the diagnostic payload in
three places:

* ``python -m repro obs tail`` dumps the tail, newest last, like a
  request log.
* When the engine captures a per-request failure (``errors="capture"``),
  the records sharing the failed request's trace ID are flushed onto the
  exception as ``error.flight_records`` — a failed batch carries its own
  context instead of requiring a metrics-enabled re-run.
* Process-backend workers ship their records home inside the harvest
  delta (:mod:`repro.obs.harvest`), so the parent's recorder interleaves
  worker-side executions with its own, reconstructing the cross-process
  request timeline.

Records are plain picklable dicts; ``worker`` is the executing process's
PID, which is what distinguishes parent-side from worker-side entries.
"""

from __future__ import annotations

import os
import time
from collections import deque
from typing import Deque, Iterable, List, Optional

__all__ = ["DEFAULT_CAPACITY", "FlightRecorder"]

#: Ring capacity of the process-wide recorder (:data:`repro.obs.RECORDER`).
DEFAULT_CAPACITY = 512


class FlightRecorder:
    """Bounded ring of request records with trace-ID lookup."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError(f"recorder capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._records: Deque[dict] = deque(maxlen=capacity)
        # Monotonic count of records ever appended: harvest baselines use
        # it to identify "records since", immune to ring wraparound.
        self._total = 0

    def __len__(self) -> int:
        return len(self._records)

    @property
    def total(self) -> int:
        """Records ever appended (monotonic; survives wraparound)."""
        return self._total

    def record(
        self,
        *,
        trace: Optional[str],
        spec: str,
        op: str,
        s: int,
        backend: str,
        duration_us: float,
        error: Optional[str] = None,
        worker: Optional[int] = None,
        ts: Optional[float] = None,
    ) -> dict:
        """Append one request record; returns it (already in the ring)."""
        entry = {
            "ts": time.time() if ts is None else ts,
            "trace": trace,
            "spec": spec,
            "op": op,
            "s": s,
            "backend": backend,
            "worker": os.getpid() if worker is None else worker,
            "us": duration_us,
            "error": error,
        }
        self._records.append(entry)
        self._total += 1
        return entry

    def extend(self, records: Iterable[dict]) -> None:
        """Append already-built records (harvested from a worker)."""
        for entry in records:
            self._records.append(entry)
            self._total += 1

    def tail(self, limit: Optional[int] = None) -> List[dict]:
        """The most recent ``limit`` records (all retained when ``None``),
        oldest first."""
        records = list(self._records)
        if limit is not None and limit >= 0:
            records = records[len(records) - min(limit, len(records)):]
        return records

    def for_trace(self, trace_id: Optional[str]) -> List[dict]:
        """Retained records whose trace matches ``trace_id``, oldest first."""
        return [r for r in self._records if r["trace"] == trace_id]

    def since(self, total: int) -> List[dict]:
        """Records appended after the point where :attr:`total` was ``total``."""
        fresh = self._total - total
        if fresh <= 0:
            return []
        records = list(self._records)
        return records[-fresh:] if fresh < len(records) else records

    def clear(self) -> None:
        """Drop every retained record (the monotonic total survives)."""
        self._records.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FlightRecorder(len={len(self._records)}, "
            f"capacity={self.capacity}, total={self._total})"
        )
