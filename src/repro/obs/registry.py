"""Process-wide metrics registry: counters, gauges, histograms.

The registry is the accounting substrate behind every theorem-shaped
claim in EXPERIMENTS.md: instead of inferring "expected O(1) rejections
per draw" (Lemma 2) or "O(1 + s/B) I/Os per query" (§8) from wall-clock
curves, instrumented hot paths count the primitive operations the
theorems actually bound — alias draws, rejection-loop iterations, BST
node visits, chunk touches, block I/Os — and tests assert on the counts.

Design constraints, in priority order:

1. **The disabled path must be ~free.** Instrumented call sites guard
   every registry touch with ``if obs.ENABLED:`` (one global load and a
   branch, at *call* granularity — never inside a per-draw loop), so a
   build with ``REPRO_METRICS`` unset is within noise of one with the
   instrumentation absent (asserted in ``tests/obs/test_offpath.py``).
2. **Metrics never touch randomness.** Counters are plain integer adds;
   spans read ``time.perf_counter``. Seeded sample streams are therefore
   byte-identical whether metrics are on or off (also asserted).
3. **Names are stable.** Instruments are registered at module import, so
   a snapshot always contains the full metric inventory (zero-valued
   until exercised) and dashboards/tests can rely on the keys.

Counters are plain Python ints mutated under the GIL; concurrent
increments from threads may interleave but cannot corrupt — fine for the
cost-accounting use case (exact under the single-threaded samplers).
"""

from __future__ import annotations

from bisect import bisect_left
from collections import deque
from time import time
from typing import Any, Deque, Dict, List, Mapping, Optional, Sequence, Tuple, Union


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0

    @property
    def value(self) -> int:
        return self._value

    def inc(self) -> None:
        """Add 1."""
        self._value += 1

    def add(self, amount: int) -> None:
        """Add ``amount`` (must be >= 0; monotonicity is the contract)."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (got {amount})")
        self._value += amount

    def reset(self) -> None:
        self._value = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name}={self._value})"


class Gauge:
    """A point-in-time float metric (cache sizes, pool cursors, ...)."""

    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        self._value = float(value)

    def add(self, amount: float) -> None:
        self._value += amount

    def reset(self) -> None:
        self._value = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Gauge({self.name}={self._value})"


#: Default histogram bucket upper bounds: powers of two covering one
#: microsecond-ish granularity up to ~one second when observations are in
#: microseconds, and small structural counts equally well.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(float(1 << j) for j in range(21))


class Histogram:
    """A fixed-bucket histogram with count/sum, Prometheus-compatible.

    ``buckets`` are upper bounds (an implicit ``+Inf`` bucket is always
    appended). Observations use a binary search, O(log #buckets).
    """

    __slots__ = ("name", "help", "buckets", "_counts", "_count", "_sum")

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Sequence[float]] = None,
    ):
        self.name = name
        self.help = help
        bounds = DEFAULT_BUCKETS if buckets is None else tuple(sorted(buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.buckets: Tuple[float, ...] = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1 for the +Inf bucket
        self._count = 0
        self._sum = 0.0

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def observe(self, value: float) -> None:
        self._counts[bisect_left(self.buckets, value)] += 1
        self._count += 1
        self._sum += value

    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile estimate (Prometheus-style).

        Walks the cumulative bucket counts to the bucket containing the
        ``q``-th observation and interpolates linearly inside it (the
        first bucket's lower edge is taken as 0, matching
        ``histogram_quantile``). Observations that landed in the implicit
        ``+Inf`` bucket clamp to the largest finite bound — the estimate
        is a lower bound there, which is the standard trade-off of
        fixed-bucket quantiles. Returns 0.0 for an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self._count == 0:
            return 0.0
        target = q * self._count
        running = 0
        lower = 0.0
        for bound, in_bucket in zip(self.buckets, self._counts):
            if in_bucket and running + in_bucket >= target:
                fraction = (target - running) / in_bucket
                return lower + (bound - lower) * fraction
            running += in_bucket
            lower = bound
        return self.buckets[-1]

    def reset(self) -> None:
        self._counts = [0] * (len(self.buckets) + 1)
        self._count = 0
        self._sum = 0.0

    def merge_counts(
        self, counts: Sequence[int], count: int, total: float
    ) -> None:
        """Fold another histogram's per-bucket deltas into this one.

        ``counts`` must align with this histogram's buckets (callers —
        i.e. :meth:`MetricsRegistry.merge` — validate bucket bounds
        before resolving the target instrument).
        """
        if len(counts) != len(self._counts):
            raise ValueError(
                f"histogram {self.name}: cannot merge {len(counts)} bucket "
                f"counts into {len(self._counts)} buckets"
            )
        if count < 0 or any(c < 0 for c in counts):
            raise ValueError(
                f"histogram {self.name}: merge deltas must be non-negative"
            )
        for index, delta in enumerate(counts):
            self._counts[index] += delta
        self._count += count
        self._sum += total

    def bucket_pairs(self) -> List[Tuple[float, int]]:
        """Cumulative ``(le, count)`` pairs, Prometheus-style."""
        pairs: List[Tuple[float, int]] = []
        running = 0
        for bound, in_bucket in zip(self.buckets, self._counts):
            running += in_bucket
            pairs.append((bound, running))
        pairs.append((float("inf"), self._count))
        return pairs

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Histogram({self.name}, count={self._count}, sum={self._sum})"


#: How many finished trace spans the registry retains for snapshots.
SPAN_BUFFER = 128

_Names = Union[str, Tuple[str, ...]]

#: Derived per-query / per-draw ratios computed at snapshot time. Each
#: entry is ``(derived_name, numerator, denominator)``; numerator and
#: denominator may be a single counter name or a tuple of names (summed).
#: A zero denominator yields ``None`` — the key is still present, so the
#: snapshot schema is stable.
DERIVED_RATIOS: Tuple[Tuple[str, _Names, _Names], ...] = (
    ("wor.rejections_per_draw", "wor.rejections", "wor.draws"),
    (
        "dynamic.bucket.rejections_per_draw",
        "dynamic.bucket.rejections",
        "dynamic.bucket.draws",
    ),
    ("set_union.attempts_per_query", "set_union.attempts", "set_union.queries"),
    ("fair_nn.rejections_per_draw", "fair_nn.rejections", "fair_nn.draws"),
    (
        "range.treewalk.node_visits_per_query",
        "range.treewalk.node_visits",
        "range.treewalk.queries",
    ),
    (
        "range.lemma2.urn_probes_per_query",
        "range.lemma2.urn_probes",
        "range.lemma2.queries",
    ),
    (
        "range.chunked.chunk_touches_per_query",
        "range.chunked.chunk_touches",
        "range.chunked.queries",
    ),
    ("bst.cover_nodes_per_cover", "bst.cover_nodes", "bst.covers"),
    ("plan_cache.hit_rate", "plan_cache.hits", ("plan_cache.hits", "plan_cache.misses")),
    ("em.ios_per_query", ("em.block_reads", "em.block_writes"), "em.queries"),
)


class MetricsRegistry:
    """Name -> instrument map with snapshot/reset over the whole set."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._spans: Deque[dict] = deque(maxlen=SPAN_BUFFER)
        # Monotonic count of spans ever recorded: lets harvest baselines
        # identify "spans since" even after the bounded deque wraps.
        self._span_total = 0

    # -- instrument creation (get-or-create; names are process-global) --

    def counter(self, name: str, help: str = "") -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            self._check_free(name, self._counters)
            instrument = self._counters[name] = Counter(name, help)
        return instrument

    def gauge(self, name: str, help: str = "") -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            self._check_free(name, self._gauges)
            instrument = self._gauges[name] = Gauge(name, help)
        return instrument

    def histogram(
        self, name: str, help: str = "", buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            self._check_free(name, self._histograms)
            instrument = self._histograms[name] = Histogram(name, help, buckets)
        return instrument

    def _check_free(self, name: str, own_kind: dict) -> None:
        for kind in (self._counters, self._gauges, self._histograms):
            if kind is not own_kind and name in kind:
                raise ValueError(f"metric {name!r} already registered as another type")

    # -- spans ---------------------------------------------------------

    def record_span(self, name: str, duration_us: float, attrs: dict) -> None:
        self._spans.append(
            {"name": name, "us": duration_us, "ts": time(), "attrs": attrs}
        )
        self._span_total += 1
        self.histogram(f"span.{name}.us").observe(duration_us)

    def recent_spans(self) -> List[dict]:
        return list(self._spans)

    @property
    def span_total(self) -> int:
        """Spans ever recorded (survives deque wraparound; harvest uses it)."""
        return self._span_total

    def spans_since(self, total: int) -> List[dict]:
        """Spans recorded after the point where :attr:`span_total` was ``total``."""
        fresh = self._span_total - total
        if fresh <= 0:
            return []
        spans = list(self._spans)
        return spans[-fresh:] if fresh < len(spans) else spans

    # -- reads ---------------------------------------------------------

    def value(self, name: str) -> Union[int, float]:
        """Current value of a counter or gauge (0 if never registered)."""
        if name in self._counters:
            return self._counters[name].value
        if name in self._gauges:
            return self._gauges[name].value
        return 0

    def _summed(self, names: _Names) -> float:
        if isinstance(names, str):
            return float(self.value(names))
        return float(sum(self.value(name) for name in names))

    def derived(self) -> Dict[str, Optional[float]]:
        """The :data:`DERIVED_RATIOS`, ``None`` where the denominator is 0."""
        out: Dict[str, Optional[float]] = {}
        for name, numerator, denominator in DERIVED_RATIOS:
            denom = self._summed(denominator)
            out[name] = (self._summed(numerator) / denom) if denom else None
        return out

    def snapshot(self, include_spans: bool = True) -> dict:
        """A JSON-serialisable view of every instrument plus derived ratios."""
        snap: Dict[str, Any] = {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: {
                    "count": h.count,
                    "sum": h.sum,
                    "mean": h.mean(),
                    "p50": h.quantile(0.50),
                    "p90": h.quantile(0.90),
                    "p99": h.quantile(0.99),
                    "buckets": [
                        [le if le != float("inf") else "+Inf", c]
                        for le, c in h.bucket_pairs()
                    ],
                }
                for n, h in sorted(self._histograms.items())
            },
            "derived": self.derived(),
            "help": self.help_strings(),
        }
        if include_spans:
            snap["spans"] = self.recent_spans()
        return snap

    def help_strings(self) -> Dict[str, str]:
        """Registered help text by metric name (empty strings omitted)."""
        out: Dict[str, str] = {}
        for kind in (self._counters, self._gauges, self._histograms):
            for name, instrument in kind.items():
                if instrument.help:
                    out[name] = instrument.help
        return out

    # -- cross-process merge -------------------------------------------

    def merge(self, delta: Mapping[str, Any]) -> None:
        """Fold a harvest delta (:func:`repro.obs.harvest.delta_since`)
        into this registry.

        Semantics per instrument kind: **counters sum** (negative deltas
        are rejected by :meth:`Counter.add`), **histograms merge
        bucket-wise** (a delta whose bucket bounds disagree with the
        registered instrument raises ``ValueError`` — silently dropping
        or rebinning observations would corrupt the quantiles),
        **gauges last-write** (the delta's value overwrites). Metrics the
        delta names that this registry has never seen are auto-registered
        (help text rides along in the delta), so a worker process that
        imported an extra instrumented module still lands all its counts.
        Span records are appended verbatim to the bounded span buffer
        without re-observing the ``span.*`` histograms (the delta's
        histogram section already carries those observations).
        """
        for name, amount in delta.get("counters", {}).items():
            self.counter(name, delta.get("help", {}).get(name, "")).add(amount)
        for name, value in delta.get("gauges", {}).items():
            self.gauge(name, delta.get("help", {}).get(name, "")).set(value)
        for name, data in delta.get("histograms", {}).items():
            bounds = tuple(data["bounds"])
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self.histogram(
                    name, delta.get("help", {}).get(name, ""), buckets=bounds
                )
            if instrument.buckets != bounds:
                raise ValueError(
                    f"histogram {name}: delta bucket bounds {bounds} do not "
                    f"match registered bounds {instrument.buckets}"
                )
            instrument.merge_counts(data["counts"], data["count"], data["sum"])
        for span in delta.get("spans", ()):
            self._spans.append(span)
            self._span_total += 1

    def reset(self) -> None:
        """Zero every instrument and drop retained spans.

        Registrations survive — the metric inventory is stable across
        resets, which is what lets consecutive experiments in one process
        (E1 then E9, say) each start from clean counts without re-wiring.
        """
        for counter in self._counters.values():
            counter.reset()
        for gauge in self._gauges.values():
            gauge.reset()
        for histogram in self._histograms.values():
            histogram.reset()
        self._spans.clear()

    def names(self) -> Dict[str, List[str]]:
        """The registered inventory, by instrument kind."""
        return {
            "counters": sorted(self._counters),
            "gauges": sorted(self._gauges),
            "histograms": sorted(self._histograms),
        }


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "DERIVED_RATIOS",
    "SPAN_BUFFER",
]
