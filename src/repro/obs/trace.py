"""Lightweight per-query trace spans and deterministic trace IDs.

A span brackets one logical operation (a range query, an EM query, a
whole experiment) and records its wall-clock duration plus free-form
attributes into the registry: the duration feeds a ``span.<name>.us``
histogram and the most recent :data:`~repro.obs.registry.SPAN_BUFFER`
spans are retained verbatim for snapshots.

When metrics are disabled, :func:`repro.obs.span` hands out one shared
no-op context manager — no allocation, no clock read — so tracing a hot
query path costs a single function call on the off-path.

Spans never consume randomness, so tracing cannot perturb seeded sample
streams (the IQS outputs are a pure function of the seed either way).
The same holds for trace IDs: :func:`trace_id_for` is a *stateless* hash
of ``(seed, index)`` (SplitMix64 via
:func:`repro.substrates.rng.derive_seed`), so assigning every request in
a batch a trace ID draws nothing from any generator and sample streams
stay byte-identical with tracing on or off.

The **current trace** is a :class:`contextvars.ContextVar` scoped to the
executing request: the engine (and the process-backend worker) set it
around each request's execution, and every span opened underneath —
shard fan-outs, shared-memory attaches, worker execution spans —
auto-attaches it as a ``trace`` attribute. That is what lets
:func:`repro.obs.timeline` reassemble one request's spans and flight
records across serial/thread/process/shard backends.
"""

from __future__ import annotations

from contextvars import ContextVar
from time import perf_counter
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.registry import MetricsRegistry

#: Domain-separation salt folded into the seed before deriving a trace
#: ID, so trace IDs never collide with the per-request *seed* stream
#: (``derive_seed(seed, i)``) spawned from the same master seed.
TRACE_SALT = 0x7ACE_1D5A_17ED_0B5E

#: The trace ID of the request currently executing on this thread/task.
_CURRENT_TRACE: ContextVar[Optional[str]] = ContextVar(
    "repro_current_trace", default=None
)


def trace_id_for(seed: int, index: int) -> str:
    """The deterministic trace ID of request ``index`` under ``seed``.

    A 16-hex-digit string, a pure function of its arguments — no
    randomness is consumed, so metrics-on and metrics-off runs of the
    same batch assign identical IDs *and* identical sample streams.
    """
    from repro.substrates.rng import derive_seed

    return format(derive_seed(seed ^ TRACE_SALT, index), "016x")


def current_trace() -> Optional[str]:
    """The trace ID of the request executing in this context, if any."""
    return _CURRENT_TRACE.get()


def set_current_trace(trace_id: Optional[str]):
    """Set the current trace ID; returns the token for :func:`reset_current_trace`."""
    return _CURRENT_TRACE.set(trace_id)


def reset_current_trace(token) -> None:
    """Restore the current-trace context to the state before ``token``."""
    _CURRENT_TRACE.reset(token)


class NullSpan:
    """Shared do-nothing span for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs) -> None:
        """Ignore attributes (matching :meth:`SpanTimer.set`)."""


#: The singleton handed out whenever metrics are disabled.
NULL_SPAN = NullSpan()


class SpanTimer:
    """Context manager measuring one operation into the registry."""

    __slots__ = ("name", "attrs", "_registry", "_start")

    def __init__(self, registry: "MetricsRegistry", name: str, attrs: dict):
        self._registry = registry
        self.name = name
        self.attrs = attrs
        if "trace" not in attrs:
            trace = _CURRENT_TRACE.get()
            if trace is not None:
                attrs["trace"] = trace
        self._start = 0.0

    def set(self, **attrs) -> None:
        """Attach attributes discovered mid-operation (e.g. result size)."""
        self.attrs.update(attrs)

    def __enter__(self) -> "SpanTimer":
        self._start = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration_us = (perf_counter() - self._start) * 1e6
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self._registry.record_span(self.name, duration_us, self.attrs)
        return False


__all__ = [
    "NullSpan",
    "NULL_SPAN",
    "SpanTimer",
    "TRACE_SALT",
    "current_trace",
    "reset_current_trace",
    "set_current_trace",
    "trace_id_for",
]
