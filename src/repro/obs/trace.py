"""Lightweight per-query trace spans.

A span brackets one logical operation (a range query, an EM query, a
whole experiment) and records its wall-clock duration plus free-form
attributes into the registry: the duration feeds a ``span.<name>.us``
histogram and the most recent :data:`~repro.obs.registry.SPAN_BUFFER`
spans are retained verbatim for snapshots.

When metrics are disabled, :func:`repro.obs.span` hands out one shared
no-op context manager — no allocation, no clock read — so tracing a hot
query path costs a single function call on the off-path.

Spans never consume randomness, so tracing cannot perturb seeded sample
streams (the IQS outputs are a pure function of the seed either way).
"""

from __future__ import annotations

from time import perf_counter
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.registry import MetricsRegistry


class NullSpan:
    """Shared do-nothing span for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs) -> None:
        """Ignore attributes (matching :meth:`SpanTimer.set`)."""


#: The singleton handed out whenever metrics are disabled.
NULL_SPAN = NullSpan()


class SpanTimer:
    """Context manager measuring one operation into the registry."""

    __slots__ = ("name", "attrs", "_registry", "_start")

    def __init__(self, registry: "MetricsRegistry", name: str, attrs: dict):
        self._registry = registry
        self.name = name
        self.attrs = attrs
        self._start = 0.0

    def set(self, **attrs) -> None:
        """Attach attributes discovered mid-operation (e.g. result size)."""
        self.attrs.update(attrs)

    def __enter__(self) -> "SpanTimer":
        self._start = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration_us = (perf_counter() - self._start) * 1e6
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self._registry.record_span(self.name, duration_us, self.attrs)
        return False


__all__ = ["NullSpan", "NULL_SPAN", "SpanTimer"]
