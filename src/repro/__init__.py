"""Independent Query Sampling (IQS) — reproduction of Tao, PODS 2022.

A library of index structures that answer *sampling* versions of classic
reporting queries: instead of returning every element satisfying a
predicate, a query returns ``s`` random samples of the result — in time
far below the result size — with the outputs of **all** queries mutually
independent (the IQS guarantee, paper eq. 1).

Quickstart::

    from repro import ChunkedRangeSampler

    keys = [float(v) for v in range(100_000)]
    sampler = ChunkedRangeSampler(keys, rng=42)       # O(n) space
    samples = sampler.sample(250.0, 90_000.0, s=10)   # O(log n + s) time

See DESIGN.md for the paper-to-module map and EXPERIMENTS.md for the
reproduced guarantees.
"""

from repro import obs
from repro.core import (
    AliasSampler,
    ApproximateDynamicSampler,
    IntegerRangeSampler,
    AliasAugmentedRangeSampler,
    ApproxCoverSampler,
    ApproximateCover,
    BucketDynamicSampler,
    ChunkedRangeSampler,
    ComplementRangeIndex,
    CoverageSampler,
    DependentRangeSampler,
    DynamicRangeSampler,
    FenwickDynamicSampler,
    FlatTreeSampler,
    NaiveRangeSampler,
    NaiveSetUnionSampler,
    PlanScope,
    PlanStore,
    PrecomputedCoverSampler,
    QueryPlan,
    QueryPlanCache,
    SetUnionSampler,
    Tree,
    TreeSampler,
    TreeWalkRangeSampler,
    multinomial_split,
    sample_without_replacement,
    uniform_indices_without_replacement,
    wr_from_wor,
)
from repro.core.coverage import BSTIndex
from repro.apps.fair_nn import FairNearNeighbor
from repro.apps.table import SampledTable
from repro.em.deamortized import DeamortizedSamplePoolSetSampler
from repro.em import (
    EMMachine,
    EMRangeSampler,
    ExternalArray,
    NaiveEMSetSampler,
    SamplePoolSetSampler,
    StaticBTree,
    external_merge_sort,
    set_sampling_lower_bound,
)
from repro.errors import (
    BuildError,
    EmptyQueryError,
    ExternalMemoryError,
    IQSError,
    InvalidWeightError,
    SampleBudgetExceededError,
)
from repro.substrates.yfast import YFastTrie
from repro.substrates import (
    ConvexLayers,
    FenwickTree,
    HalfplaneIndex,
    KDTree,
    KMVSketch,
    QuadTree,
    RangeTree,
    ShiftedGrids,
    StaticBST,
)

# The engine imports last: it references the sampler classes above through
# its lazy registry, so keeping it at the tail of the package init means
# any partial-import state it could observe is already complete.
from repro.engine import (
    QueryRequest,
    QueryResult,
    REGISTRY,
    Sampler,
    SamplingEngine,
    build,
)

__version__ = "1.0.0"

__all__ = [
    # observability
    "obs",
    # engine (unified construction + batched execution)
    "QueryRequest",
    "QueryResult",
    "REGISTRY",
    "Sampler",
    "SamplingEngine",
    "build",
    # core techniques
    "AliasSampler",
    "ApproximateDynamicSampler",
    "IntegerRangeSampler",
    "DeamortizedSamplePoolSetSampler",
    "YFastTrie",
    "AliasAugmentedRangeSampler",
    "ApproxCoverSampler",
    "ApproximateCover",
    "BucketDynamicSampler",
    "ChunkedRangeSampler",
    "ComplementRangeIndex",
    "CoverageSampler",
    "DependentRangeSampler",
    "DynamicRangeSampler",
    "FenwickDynamicSampler",
    "FlatTreeSampler",
    "NaiveRangeSampler",
    "NaiveSetUnionSampler",
    "PrecomputedCoverSampler",
    "PlanScope",
    "PlanStore",
    "QueryPlan",
    "QueryPlanCache",
    "SetUnionSampler",
    "Tree",
    "TreeSampler",
    "TreeWalkRangeSampler",
    "multinomial_split",
    "sample_without_replacement",
    "uniform_indices_without_replacement",
    "wr_from_wor",
    "BSTIndex",
    # applications
    "FairNearNeighbor",
    "SampledTable",
    # external memory
    "EMMachine",
    "EMRangeSampler",
    "ExternalArray",
    "NaiveEMSetSampler",
    "SamplePoolSetSampler",
    "StaticBTree",
    "external_merge_sort",
    "set_sampling_lower_bound",
    # errors
    "BuildError",
    "EmptyQueryError",
    "ExternalMemoryError",
    "IQSError",
    "InvalidWeightError",
    "SampleBudgetExceededError",
    # substrates
    "ConvexLayers",
    "FenwickTree",
    "HalfplaneIndex",
    "KDTree",
    "KMVSketch",
    "QuadTree",
    "RangeTree",
    "ShiftedGrids",
    "StaticBST",
]
