"""Fair (r-near) nearest-neighbor search (paper §2 Benefit 2, §7).

An *r-fair nearest neighbor* query returns a uniformly random point among
those within distance ``r`` of the query point, independently of all past
queries — IQS with ``s = 1`` over the r-near predicate.

Implementation per the solutions the paper surveys: bucket the points into
``L`` shifted grids (:class:`~repro.substrates.grid.ShiftedGrids`, the LSH
stand-in), let ``G`` be the buckets intersecting the query ball, draw
uniform independent samples of ``∪G`` with the Theorem-8 set-union
sampler, and reject samples farther than ``r``. Acceptance is the fraction
of ball points among the candidate cells' points, constant for
well-spread data; a budget guards against adversarial skew.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro import obs
from repro.core import kernels
from repro.core.set_union import SetUnionSampler
from repro.engine.protocol import EngineOp, EngineSampler
from repro.errors import BuildError, EmptyQueryError, SampleBudgetExceededError
from repro.substrates.grid import Point, ShiftedGrids
from repro.substrates.rng import RNGLike, ensure_rng
from repro.validation import validate_sample_size

_FNN_DRAWS = obs.counter("fair_nn.draws", "Fair-NN accepted neighbor draws")
_FNN_REJECTIONS = obs.counter(
    "fair_nn.rejections", "Fair-NN distance rejections (constant/draw if well-spread)"
)


def euclidean(a: Point, b: Point) -> float:
    return math.sqrt(sum((x - y) ** 2 for x, y in zip(a, b)))


class FairNearNeighbor(EngineSampler):
    """Uniform independent sampling of the points within ``r`` of a query."""

    # The grid shifts and the inner set-union sampler share one generator;
    # seeded requests re-seed it through the protocol's swap path.
    engine_ops = {
        "sample": EngineOp("sample_many", takes_s=True, pass_rng=False),
        "sample_distinct": EngineOp("sample_distinct", takes_s=True, pass_rng=False),
    }

    def __init__(
        self,
        points: Sequence[Point],
        radius: float,
        num_grids: int = 2,
        cell_size: Optional[float] = None,
        rng: RNGLike = None,
        max_rejects_per_sample: int = 10_000,
    ):
        if radius <= 0:
            raise BuildError("radius must be positive")
        self._rng = ensure_rng(rng)
        self.radius = radius
        self._points = [tuple(p) for p in points]
        self._grids = ShiftedGrids(
            self._points,
            cell_size=cell_size if cell_size is not None else radius,
            num_grids=num_grids,
            rng=self._rng,
        )
        self._union_sampler = SetUnionSampler(self._grids.family, rng=self._rng)
        self._max_rejects = max_rejects_per_sample
        self.total_rejections = 0
        self._np_points = None  # numpy copy of the point set, built lazily

    def __len__(self) -> int:
        return len(self._points)

    def candidate_sets(self, query: Point) -> List[int]:
        """The group ``G``: grid cells intersecting the query ball."""
        return self._grids.cells_for_ball(query, self.radius)

    def near_points(self, query: Point) -> List[Point]:
        """Exact ``S_q`` by scanning candidates (testing baseline)."""
        return [
            point
            for point in self._points
            if euclidean(point, query) <= self.radius
        ]

    def sample(self, query: Point) -> Point:
        """One uniform independent r-near neighbor of ``query``.

        Raises :class:`EmptyQueryError` when no point lies within ``r``.
        """
        group = self.candidate_sets(query)
        if not group:
            raise EmptyQueryError(f"no points within {self.radius} of {query!r}")
        attempts = 0
        while True:
            attempts += 1
            if attempts > self._max_rejects:
                if not self.near_points(query):
                    raise EmptyQueryError(
                        f"no points within {self.radius} of {query!r}"
                    )
                raise SampleBudgetExceededError(
                    "fair-NN rejection budget exhausted — candidate cells hold "
                    "too few in-ball points for query "
                    f"{query!r}"
                )
            index = self._union_sampler.sample(group)
            point = self._points[index]
            if euclidean(point, query) <= self.radius:
                if obs.ENABLED:
                    _FNN_DRAWS.inc()
                    _FNN_REJECTIONS.add(attempts - 1)
                return point
            self.total_rejections += 1

    def sample_many(self, query: Point, s: int) -> List[Point]:
        """``s`` independent r-fair nearest neighbors (IQS, s ≥ 1).

        The batch path draws candidate blocks from the set-union sampler's
        batched kernel and filters them by distance in one vectorized
        pass, preserving the per-sample rejection semantics of
        :meth:`sample` (same acceptance predicate, same budget).
        """
        validate_sample_size(s)
        if not kernels.use_batch(s):
            return [self.sample(query) for _ in range(s)]
        group = self.candidate_sets(query)
        if not group:
            raise EmptyQueryError(f"no points within {self.radius} of {query!r}")
        np = kernels.np
        if self._np_points is None:
            self._np_points = np.asarray(self._points, dtype=np.float64)
        points = self._np_points
        query_arr = np.asarray(query, dtype=np.float64)
        budget = self._max_rejects * s
        attempts = 0
        result: List[Point] = []
        while len(result) < s:
            need = s - len(result)
            block = min(max(32, 2 * need), budget - attempts)
            if block <= 0:
                if not self.near_points(query):
                    raise EmptyQueryError(
                        f"no points within {self.radius} of {query!r}"
                    )
                raise SampleBudgetExceededError(
                    "fair-NN rejection budget exhausted — candidate cells hold "
                    "too few in-ball points for query "
                    f"{query!r}"
                )
            indices = np.asarray(
                self._union_sampler.sample_many(group, block), dtype=np.intp
            )
            distances = np.sqrt(((points[indices] - query_arr) ** 2).sum(axis=1))
            accepted = distances <= self.radius
            # Count attempts/rejections only up to the draw that yields
            # the s-th accepted sample, matching the scalar loop.
            cumulative = np.cumsum(accepted)
            if cumulative[-1] >= need:
                cutoff = int(np.searchsorted(cumulative, need))
            else:
                cutoff = block - 1
            attempts += cutoff + 1
            rejected = int((~accepted[: cutoff + 1]).sum())
            self.total_rejections += rejected
            if obs.ENABLED:
                _FNN_DRAWS.add((cutoff + 1) - rejected)
                _FNN_REJECTIONS.add(rejected)
            for index in indices[: cutoff + 1][accepted[: cutoff + 1]].tolist():
                result.append(self._points[index])
        return result

    def sample_distinct(self, query: Point, s: int) -> List[Point]:
        """``s`` *distinct* r-near neighbors (WoR scheme, §1).

        Duplicate-rejection over :meth:`sample`; expected O(s) extra draws
        while ``s`` is at most half the ball size. Raises
        :class:`EmptyQueryError` if fewer than ``s`` points lie within
        ``r``.
        """
        validate_sample_size(s)
        ball_size = len(self.near_points(query))
        if ball_size < s:
            raise EmptyQueryError(
                f"only {ball_size} points within {self.radius} of {query!r}, need {s}"
            )
        seen = set()
        ordered: List[Point] = []
        attempts = 0
        budget = 64 * s + 16 * ball_size
        while len(ordered) < s:
            attempts += 1
            if attempts > budget:
                raise SampleBudgetExceededError(
                    "distinct-neighbor rejection budget exhausted"
                )
            point = self.sample(query)
            if point not in seen:
                seen.add(point)
                ordered.append(point)
        return ordered
