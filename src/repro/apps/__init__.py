"""Applications built on the IQS core — the paper's three "benefits" (§2).

* :mod:`repro.apps.estimation` — Benefit 1: query estimation with
  (ε, δ) guarantees and long-run failure concentration.
* :mod:`repro.apps.fair_nn` — Benefit 2: fair (r-near) nearest-neighbor
  search via set-union sampling.
* :mod:`repro.apps.diversity` — Benefit 3: representative/diverse query
  answers by repeated independent sampling.
* :mod:`repro.apps.workloads` — synthetic datasets and query workloads
  shared by the examples, tests, and benchmarks.
"""

from repro.apps.diversity import coverage_over_time, min_pairwise_distance, representatives
from repro.apps.estimation import (
    EstimateResult,
    estimate_fraction,
    failure_indicators,
    required_sample_size,
)
from repro.apps.fair_nn import FairNearNeighbor
from repro.apps.table import SampledTable

__all__ = [
    "SampledTable",
    "coverage_over_time",
    "min_pairwise_distance",
    "representatives",
    "EstimateResult",
    "estimate_fraction",
    "failure_indicators",
    "required_sample_size",
    "FairNearNeighbor",
]
