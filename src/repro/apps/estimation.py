"""Query estimation from IQS samples (paper §2, Benefit 1).

The folklore bound: to estimate, within additive error ε and failure
probability δ, the fraction of a query result ``R_q`` satisfying a second
predicate, ``O((1/ε²)·log(1/δ))`` independent samples of ``R_q`` suffice
(Hoeffding). Because IQS guarantees *cross-query* independence, the number
of erroneous estimates among ``m`` performed concentrates sharply around
``mδ``; a dependent sampler only achieves the expectation, and in the
worst case (repeating one query) its failures are all-or-nothing. That
contrast is experiment E11.
"""

from __future__ import annotations

import math
from typing import Callable, List, NamedTuple, Sequence

from repro.validation import validate_sample_size


class EstimateResult(NamedTuple):
    """Outcome of one sampled estimate."""

    value: float
    samples_used: int
    epsilon: float
    delta: float


def required_sample_size(epsilon: float, delta: float) -> int:
    """Hoeffding sample size: ``⌈ln(2/δ) / (2ε²)⌉``."""
    if not 0 < epsilon < 1:
        raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
    if not 0 < delta < 1:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    return math.ceil(math.log(2.0 / delta) / (2.0 * epsilon * epsilon))


def estimate_fraction(
    draw_samples: Callable[[int], Sequence],
    predicate: Callable,
    epsilon: float,
    delta: float,
) -> EstimateResult:
    """Estimate the fraction of the query result satisfying ``predicate``.

    ``draw_samples(t)`` must return ``t`` independent uniform samples of
    the query result (e.g. a bound method of any IQS range sampler). The
    estimate errs by more than ``epsilon`` with probability at most
    ``delta``.
    """
    t = required_sample_size(epsilon, delta)
    samples = draw_samples(t)
    hits = sum(1 for sample in samples if predicate(sample))
    return EstimateResult(value=hits / t, samples_used=t, epsilon=epsilon, delta=delta)


def failure_indicators(
    draw_samples: Callable[[int], Sequence],
    predicate: Callable,
    true_fraction: float,
    epsilon: float,
    repetitions: int,
    samples_per_estimate: int,
) -> List[bool]:
    """Run ``repetitions`` estimates; report which exceeded the error bound.

    With an IQS sampler the indicators are iid Bernoulli, so their sum
    concentrates (Benefit 1); with the §2 dependent sampler the indicators
    are (nearly) perfectly correlated — the sum is (nearly) 0 or
    ``repetitions``.
    """
    validate_sample_size(repetitions)
    validate_sample_size(samples_per_estimate)
    failures: List[bool] = []
    for _ in range(repetitions):
        samples = draw_samples(samples_per_estimate)
        estimate = sum(1 for sample in samples if predicate(sample)) / samples_per_estimate
        failures.append(abs(estimate - true_fraction) > epsilon)
    return failures
