"""Synthetic datasets and query workloads for examples, tests, benchmarks.

The paper has no datasets of its own (it is a techniques paper), so every
experiment in EXPERIMENTS.md draws on these generators: uniform/clustered
value sets, Zipf weights (the skew that makes *weighted* sampling
interesting), overlapping set families for §7, and selectivity-controlled
interval workloads.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import BuildError
from repro.substrates.rng import RNGLike, ensure_rng

Point = Tuple[float, ...]


def distinct_uniform_reals(
    n: int, lo: float = 0.0, hi: float = 1.0, rng: RNGLike = None
) -> List[float]:
    """``n`` sorted distinct uniform reals in ``[lo, hi)``."""
    if n < 1:
        raise BuildError("n must be >= 1")
    generator = ensure_rng(rng)
    values = set()
    while len(values) < n:
        values.add(lo + generator.random() * (hi - lo))
    return sorted(values)


def zipf_weights(n: int, alpha: float = 1.0, rng: RNGLike = None) -> List[float]:
    """Zipf-distributed positive weights ``1/rank^alpha``, shuffled."""
    if n < 1:
        raise BuildError("n must be >= 1")
    generator = ensure_rng(rng)
    weights = [1.0 / (rank ** alpha) for rank in range(1, n + 1)]
    generator.shuffle(weights)
    return weights


def uniform_points(
    n: int, dims: int = 2, lo: float = 0.0, hi: float = 1.0, rng: RNGLike = None
) -> List[Point]:
    """``n`` uniform points in ``[lo, hi)^dims``."""
    generator = ensure_rng(rng)
    return [
        tuple(lo + generator.random() * (hi - lo) for _ in range(dims))
        for _ in range(n)
    ]


def clustered_points(
    n: int,
    dims: int = 2,
    clusters: int = 8,
    spread: float = 0.02,
    rng: RNGLike = None,
) -> List[Point]:
    """Gaussian clusters in the unit box — the skewed spatial workload."""
    if clusters < 1:
        raise BuildError("clusters must be >= 1")
    generator = ensure_rng(rng)
    centers = [
        tuple(generator.random() for _ in range(dims)) for _ in range(clusters)
    ]
    points: List[Point] = []
    for index in range(n):
        center = centers[index % clusters]
        points.append(tuple(generator.gauss(c, spread) for c in center))
    return points


def interval_with_selectivity(
    sorted_keys: Sequence[float], selectivity: float, rng: RNGLike = None
) -> Tuple[float, float]:
    """An interval covering ``≈ selectivity·n`` consecutive keys."""
    if not 0 < selectivity <= 1:
        raise BuildError("selectivity must be in (0, 1]")
    generator = ensure_rng(rng)
    n = len(sorted_keys)
    width = max(1, int(round(selectivity * n)))
    start = generator.randint(0, n - width)
    return sorted_keys[start], sorted_keys[start + width - 1]


def overlapping_sets(
    num_sets: int,
    set_size: int,
    universe_size: int,
    rng: RNGLike = None,
) -> List[List[int]]:
    """A family of ``num_sets`` random subsets of ``range(universe_size)``.

    With ``num_sets · set_size > universe_size`` the sets overlap heavily —
    the regime where naive "pick a set, pick a member" sampling is biased
    and Theorem 8 earns its keep (§7).
    """
    if set_size > universe_size:
        raise BuildError("set_size cannot exceed universe_size")
    generator = ensure_rng(rng)
    universe = list(range(universe_size))
    family: List[List[int]] = []
    for _ in range(num_sets):
        family.append(generator.sample(universe, set_size))
    return family


def skewed_set_family(
    num_sets: int,
    universe_size: int,
    alpha: float = 1.2,
    rng: RNGLike = None,
) -> List[List[int]]:
    """Sets with Zipf-skewed sizes (some huge, many tiny), overlapping.

    Exercises the §7 small-set path (on-the-fly sketches for sets smaller
    than log₂ n).
    """
    generator = ensure_rng(rng)
    universe = list(range(universe_size))
    family: List[List[int]] = []
    for rank in range(1, num_sets + 1):
        size = max(1, int(universe_size / (rank ** alpha)))
        family.append(generator.sample(universe, min(size, universe_size)))
    return family
