"""Representative / diverse query answers (paper §2, Benefit 3).

When a query's result is too large to display, returning ``s`` *random*
elements is a metric-free way to exhibit its diversity, and cross-query
independence means repeated queries keep revealing fresh parts of the
result. Helpers here quantify that: a WoR representative set per query,
a diversity metric, and the cumulative coverage achieved by repeating a
query — which plateaus immediately for a dependent sampler but keeps
growing under IQS.
"""

from __future__ import annotations

import math
from typing import Callable, List, Sequence, Set, Tuple

from repro.core.schemes import sample_without_replacement
from repro.validation import validate_sample_size


def representatives(
    draw: Callable[[], object],
    s: int,
    population_size: int,
) -> List[object]:
    """``s`` distinct representatives via WoR rejection over a WR drawer.

    ``draw`` must produce one uniform sample of the query result (e.g. a
    closure over an IQS sampler's query).
    """
    return sample_without_replacement(draw, s, population_size)


def min_pairwise_distance(points: Sequence[Tuple[float, ...]]) -> float:
    """Smallest pairwise Euclidean distance — a simple diversity score."""
    if len(points) < 2:
        return float("inf")
    best = float("inf")
    for i in range(len(points)):
        for j in range(i + 1, len(points)):
            distance = math.sqrt(
                sum((a - b) ** 2 for a, b in zip(points[i], points[j]))
            )
            best = min(best, distance)
    return best


def coverage_over_time(
    draw_batch: Callable[[int], Sequence],
    s: int,
    rounds: int,
) -> List[int]:
    """Distinct elements seen after each of ``rounds`` repeated queries.

    Under IQS the curve keeps climbing toward the full result (the
    "increasingly clear picture of the diversity" of §2); a dependent
    sampler's curve flat-lines after round one.
    """
    validate_sample_size(s)
    validate_sample_size(rounds)
    seen: Set = set()
    curve: List[int] = []
    for _ in range(rounds):
        seen.update(draw_batch(s))
        curve.append(len(seen))
    return curve
