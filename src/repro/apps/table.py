"""A SQL-flavoured facade: independent query sampling over a table.

The core samplers index *distinct* keys; real tables have duplicate
attribute values, row payloads, and ad-hoc extra predicates. This module
packages the Theorem-3 machinery the way a database user would consume
it::

    table = SampledTable(rows)                       # rows: list of dicts
    table.create_index("price")                      # O(n log n) build
    sample = table.sample_where("price", 10, 99, s=5)

Duplicates are handled by indexing row *positions* in (value, position)
order — the per-row sampling distribution is unchanged, and ties cost
nothing extra. An optional ``where`` predicate is applied by rejection
(cost multiplies by 1/selectivity-within-range, the standard trade-off);
an optional weight column drives weighted sampling (Benefit 3's
popularity weighting).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.range_sampler import ChunkedRangeSampler
from repro.engine.protocol import EngineOp, EngineSampler
from repro.errors import BuildError, EmptyQueryError, SampleBudgetExceededError
from repro.substrates.rng import RNGLike, ensure_rng
from repro.validation import validate_sample_size

Row = Mapping[str, Any]


class _ColumnIndex:
    """One indexed column: rows sorted by (value, position) + a sampler."""

    def __init__(
        self,
        rows: Sequence[Row],
        column: str,
        weight_column: Optional[str],
        rng,
    ):
        order = sorted(range(len(rows)), key=lambda i: (rows[i][column], i))
        self.sorted_values: List[Any] = [rows[i][column] for i in order]
        self.row_positions: List[int] = order
        if weight_column is None:
            weights = None
        else:
            weights = [float(rows[i][weight_column]) for i in order]
        # Keys are the sorted ranks — strictly increasing by construction;
        # all queries go through sample_span so the keys never matter.
        self.sampler = ChunkedRangeSampler(
            [float(position) for position in range(len(order))], weights, rng=rng
        )

    def span_of(self, lo_value: Any, hi_value: Any) -> Tuple[int, int]:
        return (
            bisect_left(self.sorted_values, lo_value),
            bisect_right(self.sorted_values, hi_value),
        )


class SampledTable(EngineSampler):
    """An in-memory table with IQS indexes on chosen columns."""

    # Request shape: args=(column, lo, hi); indexes must exist already
    # (create_index is a build-time step, not a query op).
    engine_ops = {
        "sample": EngineOp("sample_where", takes_s=True, pass_rng=False),
    }

    def __init__(self, rows: Sequence[Row], rng: RNGLike = None):
        if len(rows) == 0:
            raise BuildError("SampledTable requires at least one row")
        self._rows: List[Row] = list(rows)
        self._rng = ensure_rng(rng)
        self._indexes: Dict[Tuple[str, Optional[str]], _ColumnIndex] = {}

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def rows(self) -> Sequence[Row]:
        return self._rows

    # ------------------------------------------------------------------

    def create_index(self, column: str, weight_column: Optional[str] = None) -> None:
        """Build an IQS index on ``column`` (optionally weighted).

        O(n log n) once; afterwards range-sampling queries on this column
        cost O(log n + s) instead of scanning.
        """
        if column not in self._rows[0]:
            raise BuildError(f"no column named {column!r}")
        if weight_column is not None and weight_column not in self._rows[0]:
            raise BuildError(f"no column named {weight_column!r}")
        key = (column, weight_column)
        self._indexes[key] = _ColumnIndex(self._rows, column, weight_column, self._rng)

    def _index_for(self, column: str, weight_column: Optional[str]) -> _ColumnIndex:
        index = self._indexes.get((column, weight_column))
        if index is None:
            raise BuildError(
                f"no index on column {column!r}"
                + (f" weighted by {weight_column!r}" if weight_column else "")
                + " — call create_index() first"
            )
        return index

    def sample(self, column: str, lo: Any, hi: Any, s: int, **kwargs: Any) -> List[Row]:
        """Alias for :meth:`sample_where` (protocol entry)."""
        return self.sample_where(column, lo, hi, s, **kwargs)

    # ------------------------------------------------------------------

    def count_where(self, column: str, lo: Any, hi: Any) -> int:
        """Number of rows with ``lo <= row[column] <= hi`` (O(log n))."""
        index = self._index_for(column, None) if (column, None) in self._indexes else None
        if index is None:
            # Any index on the column shares the same sort order.
            for (indexed_column, _), candidate in self._indexes.items():
                if indexed_column == column:
                    index = candidate
                    break
        if index is None:
            raise BuildError(f"no index on column {column!r}")
        span_lo, span_hi = index.span_of(lo, hi)
        return span_hi - span_lo

    def sample_where(
        self,
        column: str,
        lo: Any,
        hi: Any,
        s: int,
        weight_column: Optional[str] = None,
        where: Optional[Callable[[Row], bool]] = None,
        max_rejects_per_sample: int = 10_000,
    ) -> List[Row]:
        """``s`` independent random rows with ``row[column] ∈ [lo, hi]``.

        With ``weight_column`` the rows are drawn with probability
        proportional to that column; with ``where`` the samples are
        additionally conditioned on the predicate by rejection (expected
        cost multiplies by the inverse of the predicate's selectivity
        inside the range).
        """
        validate_sample_size(s)
        index = self._index_for(column, weight_column)
        span_lo, span_hi = index.span_of(lo, hi)
        if span_lo >= span_hi:
            raise EmptyQueryError(f"no rows with {column!r} in [{lo!r}, {hi!r}]")

        rows = self._rows
        positions = index.row_positions
        if where is None:
            drawn = index.sampler.sample_span(span_lo, span_hi, s)
            return [rows[positions[i]] for i in drawn]

        result: List[Row] = []
        rejects = 0
        while len(result) < s:
            batch = index.sampler.sample_span(span_lo, span_hi, s - len(result))
            for i in batch:
                row = rows[positions[i]]
                if where(row):
                    result.append(row)
                else:
                    rejects += 1
                    if rejects > max_rejects_per_sample * s:
                        raise SampleBudgetExceededError(
                            "predicate rejection budget exhausted — the `where` "
                            "filter matches (almost) nothing inside the range"
                        )
        return result

    def estimate_fraction_where(
        self,
        column: str,
        lo: Any,
        hi: Any,
        predicate: Callable[[Row], bool],
        epsilon: float = 0.05,
        delta: float = 0.01,
        weight_column: Optional[str] = None,
    ) -> float:
        """Benefit 1 as one call: the fraction of in-range rows satisfying
        ``predicate``, to ±ε with failure probability δ."""
        from repro.apps.estimation import required_sample_size

        budget = required_sample_size(epsilon, delta)
        samples = self.sample_where(column, lo, hi, budget, weight_column=weight_column)
        return sum(1 for row in samples if predicate(row)) / budget
