"""Compiled (numba JIT) tier of the batch-sampling kernels.

:mod:`repro.core.kernels` removed the per-*draw* interpreter cost; this
module removes the per-*batch* numpy dispatch cost that remains. Each hot
inner loop — alias draws (Theorem 1), BST top-down walks (§3.2),
rejection-acceptance loops, and the segmented Vose builder finish — is
re-expressed as a fused ``@njit(cache=True)`` scalar loop, so one batched
call compiles to a single pass over the structure arrays with no
intermediate temporaries, and the draw loops additionally run
``parallel=True`` across cores.

numba is an **optional** dependency (the ``repro[jit]`` extra).
:data:`HAVE_NUMBA` reports whether the compiled tier is actually
available; when numba is missing every public kernel falls back to a
vectorized numpy twin, so this module stays importable (and testable)
everywhere the ``[fast]`` tier works. The dispatch ladder in
:mod:`repro.core.kernels` (``use_jit``) only *selects* this tier when
numba is truly present — the fallbacks here exist so the jit algorithms
themselves can be exercised without a compiler.

Determinism
-----------
The parallel draw loops cannot share one sequential RNG (the iteration
order of a ``prange`` is unspecified), so randomness is **counter-based**:
each draw index ``i`` hashes ``(seed, i)`` through the SplitMix64
finalizer — the same mixer :mod:`repro.substrates.rng` uses for seed
derivation — giving every loop iteration its own statelessly-derived
uniform. Output is therefore a pure function of ``(arrays, seed)``
regardless of thread count or schedule, and the compiled loops and the
numpy reference twins produce **byte-identical** streams (asserted in
``tests/core/test_jit_kernels.py`` when numba is installed).

Because the jit tier consumes randomness differently from the numpy
tier's ``Generator`` calls, jit-vs-numpy equivalence is distributional
(chi-square), not draw-for-draw — except for the kernels that take
pre-drawn uniforms or no randomness at all (:func:`rejection_accept`,
:func:`vose_finish`), which are byte-identical across all tiers.
"""

from __future__ import annotations

from typing import Any, Tuple

import numpy as np

try:  # pragma: no cover - exercised both ways across environments
    from numba import njit, prange

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover
    njit = None  # type: ignore[assignment]
    prange = range
    HAVE_NUMBA = False

# SplitMix64 constants — identical to repro.substrates.rng.derive_seed, so
# the compiled streams come from the same mixer family as every other
# derived stream in the package.
_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
#: 2^-53: top 53 bits of a mixed word -> uniform double in [0, 1).
_INV53 = 1.0 / 9007199254740992.0
#: Per-token counter stride for the BST walk: token i owns counters
#: (i+1) << 32 + step, collision-free for s < 2^32 tokens of depth < 2^32.
_TOKEN_SHIFT = np.uint64(32)
_U64_1 = np.uint64(1)


def _mix64(z: Any) -> Any:
    """SplitMix64 finalizer; elementwise on scalars or uint64 arrays."""
    z = (z ^ (z >> np.uint64(30))) * _MIX1
    z = (z ^ (z >> np.uint64(27))) * _MIX2
    return z ^ (z >> np.uint64(31))


# ----------------------------------------------------------------------
# reference twins (vectorized numpy, always available)
# ----------------------------------------------------------------------
#
# Each *_ref function computes exactly the stream its compiled counterpart
# computes — same counters, same mixer, same comparisons — using array
# ops under errstate (numpy warns on intended uint64 wraparound; the
# compiled loops wrap silently in C semantics).


def alias_draw_ref(prob: Any, alias: Any, seed: int, out: Any) -> None:
    """Fill ``out`` with counter-based alias draws (numpy reference)."""
    n = np.uint64(len(prob))
    s = out.shape[0]
    with np.errstate(over="ignore"):
        k = np.arange(s, dtype=np.uint64) * np.uint64(2)
        z1 = _mix64(np.uint64(seed) + (k + _U64_1) * _GAMMA)
        z2 = _mix64(np.uint64(seed) + (k + np.uint64(2)) * _GAMMA)
        urns = (z1 % n).astype(np.intp)
    coins = (z2 >> np.uint64(11)).astype(np.float64) * _INV53
    np.copyto(out, np.where(coins < prob[urns], urns, alias[urns]))


def bst_topdown_ref(
    left: Any,
    right: Any,
    node_weight: Any,
    start_nodes: Any,
    seed: int,
    no_child: int,
    out: Any,
) -> int:
    """Counter-based §3.2 walk, level-synchronous numpy reference.

    Every active token takes exactly one step per level iteration, so a
    token at iteration ``t`` uses counter ``((i+1) << 32) + t`` — the
    same counter the compiled per-token loop reaches on that token's
    ``t``-th step. Returns the total number of descent steps.
    """
    np.copyto(out, start_nodes)
    s = out.shape[0]
    base = (np.arange(s, dtype=np.uint64) + _U64_1) << _TOKEN_SHIFT
    seed64 = np.uint64(seed)
    active = left[out] != no_child
    visits = 0
    step = 0
    while active.any():
        at = np.nonzero(active)[0]
        step += 1
        visits += len(at)
        current = out[at]
        left_child = left[current]
        with np.errstate(over="ignore"):
            z = _mix64(seed64 + (base[at] + np.uint64(step)) * _GAMMA)
        coins = (z >> np.uint64(11)).astype(np.float64) * _INV53
        coins *= node_weight[current]
        stepped = np.where(
            coins < node_weight[left_child], left_child, right[current]
        )
        out[at] = stepped
        active[at] = left[stepped] != no_child
    return visits


def rejection_accept_ref(acceptance: Any, uniforms: Any, out: Any) -> None:
    """Accept/reject coins from pre-drawn uniforms (numpy reference)."""
    np.less(uniforms, acceptance, out=out)


def vose_finish_ref(
    ids: Any,
    masses: Any,
    out_idx: Any,
    out_prob: Any,
    out_alias: Any,
    alias_base: int,
) -> int:
    """Exact scalar Vose stacks over arrays; returns entries emitted.

    Replicates :func:`repro.core.kernels._vose_finish` — same LIFO small
    stack, same ``large[-1]`` donor choice, same float updates — so the
    emitted ``(index, prob, alias)`` sequence is byte-identical to the
    list-based finish (and to the compiled version).
    """
    n = len(ids)
    small = np.empty(n, dtype=np.intp)
    large = np.empty(n, dtype=np.intp)
    n_small = 0
    n_large = 0
    for k in range(n):
        if masses[k] < 1.0:
            small[n_small] = k
            n_small += 1
        else:
            large[n_large] = k
            n_large += 1
    emitted = 0
    while n_small > 0 and n_large > 0:
        n_small -= 1
        underfull = small[n_small]
        overfull = large[n_large - 1]
        out_idx[emitted] = ids[underfull]
        out_prob[emitted] = masses[underfull]
        out_alias[emitted] = ids[overfull] - alias_base
        emitted += 1
        masses[overfull] -= 1.0 - masses[underfull]
        if masses[overfull] < 1.0:
            n_large -= 1
            small[n_small] = overfull
            n_small += 1
    return emitted


def offset_merge_ref(indices: Any, offsets: Any, out: Any) -> None:
    """Shift shard-local ``indices`` by per-element ``offsets`` (reference).

    The §4.1 merge's arithmetic core: every shard-local sorted-array
    index moves up by its shard's global base offset. Deterministic and
    randomness-free, so — like :func:`rejection_accept` — the compiled
    twin is byte-identical to this reference on every tier.
    """
    np.add(indices, offsets, out=out)


def segmented_cumsum_ref(values: Any, segments: Any, out: Any) -> None:
    """Exact per-segment inclusive prefix sums (sequential reference).

    Unlike the numpy tier's global-cumsum-minus-base formulation, the
    running total resets at each segment boundary, so no rounding drift
    crosses segments; the compiled twin matches this byte-for-byte while
    the numpy tier agrees only to within cumsum rounding.
    """
    total = 0.0
    n = len(values)
    for i in range(n):
        if i > 0 and segments[i] != segments[i - 1]:
            total = 0.0
        total += values[i]
        out[i] = total


# ----------------------------------------------------------------------
# compiled kernels (when numba is importable)
# ----------------------------------------------------------------------

if HAVE_NUMBA:  # pragma: no cover - requires the [jit] extra

    _mix64_c = njit(cache=True, inline="always")(_mix64)

    @njit(cache=True, parallel=True)
    def _alias_draw_compiled(prob, alias, seed, out):
        n = np.uint64(prob.shape[0])
        s = out.shape[0]
        for i in prange(s):
            k = np.uint64(2 * i)
            z1 = _mix64_c(seed + (k + np.uint64(1)) * _GAMMA)
            z2 = _mix64_c(seed + (k + np.uint64(2)) * _GAMMA)
            urn = np.intp(z1 % n)
            coin = np.float64(z2 >> np.uint64(11)) * _INV53
            if coin < prob[urn]:
                out[i] = urn
            else:
                out[i] = alias[urn]

    @njit(cache=True, parallel=True)
    def _bst_topdown_compiled(left, right, node_weight, start_nodes, seed, no_child, out):
        s = start_nodes.shape[0]
        visits = 0
        for i in prange(s):
            node = start_nodes[i]
            base = (np.uint64(i) + np.uint64(1)) << np.uint64(32)
            step = np.uint64(0)
            taken = 0
            while left[node] != no_child:
                step += np.uint64(1)
                z = _mix64_c(seed + (base + step) * _GAMMA)
                coin = np.float64(z >> np.uint64(11)) * _INV53 * node_weight[node]
                lc = left[node]
                if coin < node_weight[lc]:
                    node = lc
                else:
                    node = right[node]
                taken += 1
            visits += taken
            out[i] = node
        return visits

    @njit(cache=True, parallel=True)
    def _rejection_accept_compiled(acceptance, uniforms, out):
        for i in prange(acceptance.shape[0]):
            out[i] = uniforms[i] < acceptance[i]

    _vose_finish_compiled = njit(cache=True)(vose_finish_ref)
    _segmented_cumsum_compiled = njit(cache=True)(segmented_cumsum_ref)

    @njit(cache=True, parallel=True)
    def _offset_merge_compiled(indices, offsets, out):
        for i in prange(indices.shape[0]):
            out[i] = indices[i] + offsets[i]

    def alias_draw(prob: Any, alias: Any, seed: int, out: Any) -> None:
        _alias_draw_compiled(prob, alias, np.uint64(seed), out)

    def bst_topdown(
        left: Any,
        right: Any,
        node_weight: Any,
        start_nodes: Any,
        seed: int,
        no_child: int,
        out: Any,
    ) -> int:
        return int(
            _bst_topdown_compiled(
                left, right, node_weight, start_nodes, np.uint64(seed), no_child, out
            )
        )

    def rejection_accept(acceptance: Any, uniforms: Any, out: Any) -> None:
        _rejection_accept_compiled(acceptance, uniforms, out)

    def vose_finish(
        ids: Any,
        masses: Any,
        out_idx: Any,
        out_prob: Any,
        out_alias: Any,
        alias_base: int = 0,
    ) -> int:
        return int(
            _vose_finish_compiled(ids, masses, out_idx, out_prob, out_alias, alias_base)
        )

    def segmented_cumsum(values: Any, segments: Any, out: Any) -> None:
        _segmented_cumsum_compiled(values, segments, out)

    def offset_merge(indices: Any, offsets: Any, out: Any) -> None:
        _offset_merge_compiled(indices, offsets, out)

    def warmup() -> None:
        """Force-compile every kernel on tiny inputs (e.g. before timing)."""
        prob = np.array([0.5, 1.0])
        alias = np.array([1, 1], dtype=np.intp)
        out = np.empty(4, dtype=np.intp)
        alias_draw(prob, alias, 1, out)
        left = np.array([1, -1, -1], dtype=np.intp)
        right = np.array([2, -1, -1], dtype=np.intp)
        w = np.array([2.0, 1.0, 1.0])
        bst_topdown(left, right, w, np.zeros(4, dtype=np.intp), 1, -1, out)
        rejection_accept(prob, prob.copy(), np.empty(2, dtype=np.bool_))
        vose_finish(
            alias.copy(),
            np.array([0.5, 1.5]),
            np.empty(2, dtype=np.intp),
            np.empty(2),
            np.empty(2, dtype=np.intp),
        )
        segmented_cumsum(prob, alias, np.empty(2))
        offset_merge(alias, alias, np.empty(2, dtype=np.intp))

else:

    def alias_draw(prob: Any, alias: Any, seed: int, out: Any) -> None:
        alias_draw_ref(prob, alias, seed, out)

    def bst_topdown(
        left: Any,
        right: Any,
        node_weight: Any,
        start_nodes: Any,
        seed: int,
        no_child: int,
        out: Any,
    ) -> int:
        return bst_topdown_ref(left, right, node_weight, start_nodes, seed, no_child, out)

    def rejection_accept(acceptance: Any, uniforms: Any, out: Any) -> None:
        rejection_accept_ref(acceptance, uniforms, out)

    def vose_finish(
        ids: Any,
        masses: Any,
        out_idx: Any,
        out_prob: Any,
        out_alias: Any,
        alias_base: int = 0,
    ) -> int:
        return vose_finish_ref(ids, masses, out_idx, out_prob, out_alias, alias_base)

    def segmented_cumsum(values: Any, segments: Any, out: Any) -> None:
        segmented_cumsum_ref(values, segments, out)

    def offset_merge(indices: Any, offsets: Any, out: Any) -> None:
        offset_merge_ref(indices, offsets, out)

    def warmup() -> None:
        """No-op without numba (nothing to compile)."""


def finish_tail(
    ids: Any, masses: Any, alias_base: int = 0
) -> Tuple[Any, Any, Any]:
    """Vose-finish one tail segment, returning compact result arrays.

    Convenience wrapper over :func:`vose_finish` for the builders in
    :mod:`repro.core.kernels`: allocates worst-case outputs (every urn
    emits at most once) and trims to the emitted count.
    """
    n = len(ids)
    out_idx = np.empty(n, dtype=np.intp)
    out_prob = np.empty(n, dtype=np.float64)
    out_alias = np.empty(n, dtype=np.intp)
    emitted = vose_finish(
        np.ascontiguousarray(ids, dtype=np.intp),
        # vose_finish mutates masses in place — always hand it a private
        # copy (ascontiguousarray would alias an already-contiguous view).
        np.array(masses, dtype=np.float64, copy=True),
        out_idx,
        out_prob,
        out_alias,
        alias_base,
    )
    return out_idx[:emitted], out_prob[:emitted], out_alias[:emitted]


__all__ = [
    "HAVE_NUMBA",
    "alias_draw",
    "alias_draw_ref",
    "bst_topdown",
    "bst_topdown_ref",
    "rejection_accept",
    "rejection_accept_ref",
    "vose_finish",
    "vose_finish_ref",
    "offset_merge",
    "offset_merge_ref",
    "segmented_cumsum",
    "segmented_cumsum_ref",
    "finish_tail",
    "warmup",
]
