"""The approximate-coverage technique (paper §6, Theorem 6, Corollary 7).

An *approximate cover* of ``q`` relaxes §5's cover: its subtrees are still
disjoint and jointly contain ``S_q``, but they may also contain extraneous
elements — at most a constant factor more (``|S_q| = Ω(|∪ S(u)|)``). A
sample drawn from the union then lands in ``S_q`` with constant
probability, so rejection sampling yields a true ``S_q`` sample after O(1)
expected repeats (Theorem 6). Corollary 7 precomputes the per-cover alias
structure for every *distinct* cover the structure can return, removing the
``O(|Ĉ_q|)`` per-query build cost.

The paper's flagship example — implemented here as
:class:`ComplementRangeIndex` — is the range-complement query
``S_q = S \\ [x, y]``: any exact cover needs ``Ω(log n)`` canonical nodes,
but a 2-node approximate cover always exists [18]: one dyadic prefix
covering everything below ``x`` and one dyadic suffix covering everything
above ``y``, each at most twice its target's size.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Dict, Hashable, List, NamedTuple, Optional, Protocol, Sequence, Tuple

from repro.core.alias import AliasTables, alias_draw, build_alias_tables
from repro.engine.protocol import EngineOp, EngineSampler
from repro.errors import BuildError, EmptyQueryError, SampleBudgetExceededError
from repro.substrates.rng import RNGLike, ensure_rng
from repro.validation import validate_sample_size, validate_weights

Span = Tuple[int, int]


class ApproximateCover(NamedTuple):
    """An approximate cover: disjoint spans plus a hashable identity.

    ``key`` identifies the cover within ``Ĉ`` (the set of all distinct
    covers, §6 eq. before Corollary 7) for precomputed-table lookup.
    """

    spans: Tuple[Span, ...]
    key: Hashable


class ApproxCoverableIndex(Protocol):
    """What Theorem 6 requires of the underlying structure."""

    @property
    def leaf_items(self) -> Sequence[Any]: ...

    @property
    def leaf_weights(self) -> Sequence[float]: ...

    def find_approximate_cover(self, query: Any) -> ApproximateCover:
        """Disjoint spans with ``S_q ⊆ ∪spans`` and ``|S_q| = Ω(|∪spans|)``."""

    def matches(self, query: Any, position: int) -> bool:
        """Does the element at leaf ``position`` satisfy ``q``?"""


class ComplementRangeIndex:
    """Range-complement queries ``S_q = S \\ [x, y]`` with 2-span covers.

    The approximate cover pairs the smallest dyadic prefix ``[0, 2^i)``
    containing all keys below ``x`` with the smallest dyadic suffix
    containing all keys above ``y``; each is at most twice its target, so a
    uniform draw from the union is accepted with probability ≥ 1/2. If the
    two dyadic spans would overlap, they merge into the full array — which
    only happens when ``|S_q| > n/2``, keeping the acceptance constant.
    """

    def __init__(self, keys: Sequence[float], weights: Optional[Sequence[float]] = None):
        if len(keys) == 0:
            raise BuildError("ComplementRangeIndex requires at least one key")
        for i in range(1, len(keys)):
            if not keys[i - 1] < keys[i]:
                raise BuildError("keys must be strictly increasing")
        if weights is None:
            weights = [1.0] * len(keys)
        if len(weights) != len(keys):
            raise BuildError(f"got {len(keys)} keys but {len(weights)} weights")
        self._keys = list(keys)
        self._weights = validate_weights(weights, context="ComplementRangeIndex")

    @property
    def leaf_items(self) -> Sequence[float]:
        return self._keys

    @property
    def leaf_weights(self) -> Sequence[float]:
        return self._weights

    def __len__(self) -> int:
        return len(self._keys)

    @staticmethod
    def _dyadic_ceiling(count: int) -> int:
        power = 1
        while power < count:
            power *= 2
        return power

    def complement_counts(self, query: Tuple[float, float]) -> Tuple[int, int]:
        """(#keys below x, #keys above y)."""
        x, y = query
        below = bisect_left(self._keys, x)
        above = len(self._keys) - bisect_right(self._keys, y)
        return below, above

    def find_approximate_cover(self, query: Tuple[float, float]) -> ApproximateCover:
        n = len(self._keys)
        below, above = self.complement_counts(query)
        if below == 0 and above == 0:
            return ApproximateCover(spans=(), key=(0, 0))
        prefix = min(self._dyadic_ceiling(below), n) if below else 0
        suffix = min(self._dyadic_ceiling(above), n) if above else 0
        if prefix + suffix > n:
            return ApproximateCover(spans=((0, n),), key=("full",))
        spans: List[Span] = []
        if prefix:
            spans.append((0, prefix))
        if suffix:
            spans.append((n - suffix, n))
        return ApproximateCover(spans=tuple(spans), key=(prefix, suffix))

    def find_exact_cover_size(self, query: Tuple[float, float]) -> int:
        """Size of the exact canonical cover a BST would need (for E7).

        Both complement pieces are contiguous index ranges; a balanced BST
        covers an arbitrary range with Θ(log n) canonical nodes. We count
        them via the standard dyadic decomposition of the two ranges.
        """
        below, above = self.complement_counts(query)
        n = len(self._keys)

        def dyadic_pieces(lo: int, hi: int) -> int:
            pieces = 0
            while lo < hi:
                alignment = lo & -lo if lo else 1 << 62
                size = 1
                while size * 2 <= hi - lo and size * 2 <= alignment:
                    size *= 2
                pieces += 1
                lo += size
            return pieces

        return dyadic_pieces(0, below) + dyadic_pieces(n - above, n)

    def matches(self, query: Tuple[float, float], position: int) -> bool:
        x, y = query
        key = self._keys[position]
        return key < x or key > y

    def iter_distinct_covers(self) -> List[ApproximateCover]:
        """Enumerate ``Ĉ``: every cover the index can ever return.

        ``O(log² n)`` covers — pairs of dyadic prefix/suffix sizes plus the
        merged full-array cover — so precomputing per-cover alias tables
        (Corollary 7) costs ``O(log² n)`` extra space here.
        """
        n = len(self._keys)
        sizes = [0]
        power = 1
        while power < n:
            sizes.append(power)
            power *= 2
        sizes.append(n)
        covers: List[ApproximateCover] = [ApproximateCover(spans=((0, n),), key=("full",))]
        for prefix in sizes:
            for suffix in sizes:
                if prefix + suffix > n or (prefix == 0 and suffix == 0):
                    continue
                spans: List[Span] = []
                if prefix:
                    spans.append((0, prefix))
                if suffix:
                    spans.append((n - suffix, n))
                covers.append(ApproximateCover(spans=tuple(spans), key=(prefix, suffix)))
        return covers


class ApproxCoverSampler(EngineSampler):
    """Theorem 6: rejection sampling over approximate covers.

    Expected query time ``O(|Ĉ_q| + s)`` plus cover-finding: the per-query
    alias structure over the cover is built once, and each accepted sample
    needs O(1) expected draws. Weighted variant note: with non-uniform
    weights the acceptance rate is the *weight* fraction of ``S_q`` inside
    the union (the [2]-style extension mentioned in the §6 remarks).
    """

    # Rejection counters make the structure stateful; seeded requests use
    # the protocol's swap path.
    engine_ops = {
        "sample": EngineOp("sample", takes_s=True, pass_rng=False),
        "sample_indices": EngineOp("sample_indices", takes_s=True, pass_rng=False),
    }

    def __init__(
        self,
        index: ApproxCoverableIndex,
        rng: RNGLike = None,
        max_rejects_per_sample: int = 10_000,
    ):
        self._index = index
        self._rng = ensure_rng(rng)
        self._max_rejects = max_rejects_per_sample
        weights = list(index.leaf_weights)
        prefix = [0.0]
        for w in weights:
            prefix.append(prefix[-1] + w)
        self._prefix = prefix
        self._weights = weights
        self._uniform = len(set(weights)) == 1
        self._span_tables: Dict[Span, AliasTables] = {}
        self.total_rejections = 0  # diagnostic counter for tests/benchmarks

    def _span_weight(self, span: Span) -> float:
        lo, hi = span
        return self._prefix[hi] - self._prefix[lo]

    def _draw_within(self, span: Span) -> int:
        lo, hi = span
        if hi - lo == 1:
            return lo
        if self._uniform:
            return min(lo + int(self._rng.random() * (hi - lo)), hi - 1)
        tables = self._span_tables.get(span)
        if tables is None:
            tables = build_alias_tables(self._weights[lo:hi])
            self._span_tables[span] = tables
        prob, alias = tables
        return lo + alias_draw(prob, alias, self._rng)

    def _cover_tables(self, cover: ApproximateCover) -> AliasTables:
        return build_alias_tables([self._span_weight(span) for span in cover.spans])

    def sample_indices(self, query: Any, s: int) -> List[int]:
        validate_sample_size(s)
        cover = self._index.find_approximate_cover(query)
        if not cover.spans:
            raise EmptyQueryError(f"no elements satisfy {query!r}")
        prob, alias = self._cover_tables(cover)
        return self._rejection_loop(query, cover, prob, alias, s)

    def _rejection_loop(
        self,
        query: Any,
        cover: ApproximateCover,
        prob: Sequence[float],
        alias: Sequence[int],
        s: int,
    ) -> List[int]:
        index = self._index
        rng = self._rng
        result: List[int] = []
        while len(result) < s:
            attempts = 0
            while True:
                attempts += 1
                if attempts > self._max_rejects:
                    raise SampleBudgetExceededError(
                        f"rejection budget exhausted for query {query!r}; the "
                        "approximate-cover acceptance assumption failed"
                    )
                span = cover.spans[alias_draw(prob, alias, rng)]
                position = self._draw_within(span)
                if index.matches(query, position):
                    result.append(position)
                    break
                self.total_rejections += 1
        return result

    def sample(self, query: Any, s: int) -> List[Any]:
        items = self._index.leaf_items
        return [items[i] for i in self.sample_indices(query, s)]


class PrecomputedCoverSampler(ApproxCoverSampler):
    """Corollary 7: alias tables prepared for every cover in ``Ĉ``.

    Eliminates the ``O(|Ĉ_q|)`` per-query alias construction at the cost of
    ``O(Σ_{C∈Ĉ} |C|)`` extra space; the index must enumerate ``Ĉ`` via
    ``iter_distinct_covers()``.
    """

    def __init__(
        self,
        index: ApproxCoverableIndex,
        rng: RNGLike = None,
        max_rejects_per_sample: int = 10_000,
    ):
        super().__init__(index, rng=rng, max_rejects_per_sample=max_rejects_per_sample)
        enumerate_covers = getattr(index, "iter_distinct_covers", None)
        if enumerate_covers is None:
            raise BuildError(
                "PrecomputedCoverSampler needs the index to expose iter_distinct_covers()"
            )
        self._cover_table_cache: Dict[Hashable, AliasTables] = {}
        self._extra_space = 0
        for cover in enumerate_covers():
            if cover.spans:
                self._cover_table_cache[cover.key] = self._cover_tables(cover)
                self._extra_space += len(cover.spans)

    @property
    def precomputed_space(self) -> int:
        """``Σ_{C∈Ĉ} |C|`` — the Corollary-7 space term."""
        return self._extra_space

    def sample_indices(self, query: Any, s: int) -> List[int]:
        validate_sample_size(s)
        cover = self._index.find_approximate_cover(query)
        if not cover.spans:
            raise EmptyQueryError(f"no elements satisfy {query!r}")
        tables = self._cover_table_cache.get(cover.key)
        if tables is None:
            raise BuildError(
                f"cover {cover.key!r} missing from the precomputed set Ĉ — "
                "iter_distinct_covers() under-enumerated"
            )
        prob, alias = tables
        return self._rejection_loop(query, cover, prob, alias, s)
