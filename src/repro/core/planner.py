"""First-class query planning: ``QueryPlan`` values and the ``PlanStore``.

Every range-sampling structure in the paper answers a query in the same
two phases: *plan* — compute a canonical decomposition of the range
(O(log n) cover nodes / urns / chunks, §3–§4) — then *execute* — draw
``s`` samples from the decomposition. Planning is a pure function of the
structure and the span and consumes **no randomness**; execution is
where every bit of randomness is spent. This module makes that split
explicit:

``QueryPlan``
    An immutable value describing one query's decomposition: the
    canonical cover spans, the per-span weights (the budget hints a
    multinomial split consumes), a sampler-kind tag, the cache key, and
    an opaque sampler-specific payload holding resolved draw state
    (alias tables, node entries). ``portable()`` strips the payload down
    to plain data that can cross a process boundary, so a parent can
    plan once and ship the plan to shard executions.

``PlanStore``
    A bounded LRU shared by *many* samplers, keyed by structure
    fingerprint × plan kind × canonical range. The fingerprint keeps
    plans from unrelated structures apart; the LRU bound and the
    ``REPRO_PLAN_CACHE_SIZE`` environment knob are unchanged from the
    per-instance cache this store replaces.

``PlanScope``
    One sampler's view of a store: the sampler-facing ``plan_cache``
    attribute. It carries the fingerprint, delegates ``get``/``put``,
    and keeps the per-instance hit/miss/eviction tallies the old
    ``QueryPlanCache.stats()`` shim exposed (now deprecated in favour of
    the obs counters; see :meth:`PlanScope.stats`).

Because a plan is deterministic, caching and shipping plans cannot
change any query's output — only its latency. Byte-identity of the
sample streams is pinned by ``tests/engine/test_golden_streams.py``.
"""

from __future__ import annotations

import itertools
import threading
import warnings
from collections import OrderedDict
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro import obs
from repro.substrates.env import env_int

# ----------------------------------------------------------------------
# Registry-backed counters (repro.obs), aggregated across every store in
# the process. Per-kind twins (``plan_cache.<kind>.hits`` / ``.misses``)
# are created lazily the first time a kind is seen, so the metric
# namespace only contains kinds the workload actually planned.
# ----------------------------------------------------------------------
_HITS = obs.counter("plan_cache.hits", "Query-plan cache hits (all stores)")
_MISSES = obs.counter("plan_cache.misses", "Query-plan cache misses (all stores)")
_EVICTIONS = obs.counter("plan_cache.evictions", "Query-plan cache LRU evictions")

_KIND_COUNTERS: Dict[Tuple[str, str], Any] = {}
_KIND_LOCK = threading.Lock()

#: Plans kept per store when neither the constructor argument nor the
#: environment variable overrides it. Sized for a hot-range working set:
#: each plan is O(log n) ids and floats, so a full store is kilobytes.
DEFAULT_CAPACITY = 256

#: Environment variable consulted when no capacity argument is given.
ENV_CAPACITY = "REPRO_PLAN_CACHE_SIZE"

_MISSING = object()

_FINGERPRINTS = itertools.count(1)


def next_fingerprint() -> int:
    """A process-unique structure fingerprint.

    Issued once per planful sampler instance; keying store entries by
    fingerprint is what lets one store serve many samplers without a
    structure ever seeing another structure's plans.
    """
    return next(_FINGERPRINTS)


def _kind_counter(kind: str, event: str):
    counter = _KIND_COUNTERS.get((kind, event))
    if counter is None:
        with _KIND_LOCK:
            counter = _KIND_COUNTERS.get((kind, event))
            if counter is None:
                counter = obs.counter(
                    f"plan_cache.{kind}.{event}",
                    f"Query-plan cache {event} ({kind} plans)",
                )
                _KIND_COUNTERS[(kind, event)] = counter
    return counter


def resolve_capacity(capacity: Optional[int] = None) -> int:
    """Resolve a store capacity from the argument or the environment."""
    if capacity is None:
        capacity = env_int(ENV_CAPACITY, DEFAULT_CAPACITY)
    if capacity < 0:
        raise ValueError(f"plan cache capacity must be >= 0, got {capacity}")
    return capacity


class QueryPlan:
    """One query's canonical decomposition, ready to execute.

    Parameters
    ----------
    kind:
        The planning sampler's kind tag (``"treewalk"``, ``"lemma2"``,
        ``"chunked"``, ``"coverage"``, ``"sharded"``, ...).
    key:
        The canonical cache key — a ``(lo, hi)`` index span for the
        range structures, the query object for coverage sampling.
    spans:
        Canonical cover spans as ``(lo, hi)`` pairs (``None`` for plans
        whose decomposition has no positional spans, e.g. the dynamic
        treap's subtree cover).
    weights:
        Per-part weights — the budget hints a multinomial split of the
        sample budget ``s`` consumes at execution time.
    payload:
        Sampler-specific resolved draw state (alias tables, node
        entries, fan-out rows). Opaque to everything but the owning
        sampler's ``execute_plan``; may hold live object references and
        is therefore **not** shipped across processes.
    hint:
        Plain-data summary of the decomposition (cover node ids, part
        ranges) sufficient for the owning sampler *class* to rebuild the
        plan without redoing the cover search. This is what
        :meth:`portable` ships to worker processes.
    """

    __slots__ = ("kind", "key", "spans", "weights", "payload", "hint")

    def __init__(
        self,
        kind: str,
        key: Hashable,
        spans: Optional[Tuple[Tuple[int, int], ...]],
        weights: Tuple[float, ...],
        payload: Any = None,
        hint: Any = None,
    ):
        self.kind = kind
        self.key = key
        self.spans = spans
        self.weights = weights
        self.payload = payload
        self.hint = hint

    @property
    def cover_size(self) -> int:
        """Number of canonical parts (cover nodes / Figure-2 parts)."""
        return len(self.weights)

    @property
    def total_weight(self) -> float:
        return float(sum(self.weights))

    def portable(self) -> Tuple[str, Hashable, Any]:
        """Plain-data form for crossing a process boundary.

        Deliberately excludes ``payload`` (live tables) and ``spans``
        (recomputable): the wire cost stays O(cover) = O(log n) ids, in
        keeping with the engine's O(log n)-bytes-per-request budget.
        """
        return (self.kind, self.key, self.hint)

    def describe(self) -> Dict[str, Any]:
        """Human-oriented summary (the ``--explain`` payload)."""
        info: Dict[str, Any] = {
            "kind": self.kind,
            "key": self.key,
            "cover_spans": self.cover_size,
            "total_weight": self.total_weight,
        }
        if self.spans is not None:
            info["spans"] = list(self.spans)
        info["weights"] = list(self.weights)
        return info

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"QueryPlan(kind={self.kind!r}, key={self.key!r}, "
            f"cover_spans={self.cover_size})"
        )


class PlanStore:
    """Bounded LRU of query plans, shared across samplers.

    Entries are keyed ``(fingerprint, kind, key)``; per-fingerprint
    hit/miss/eviction tallies are kept so each sampler's
    :class:`PlanScope` can report its own numbers even though the
    storage (and the LRU pressure) is shared.

    Capacity resolution and the capacity-0 kill switch behave exactly
    as the per-instance ``QueryPlanCache`` they replace: ``None`` defers
    to ``REPRO_PLAN_CACHE_SIZE`` then :data:`DEFAULT_CAPACITY`; ``0``
    disables the store outright (every lookup is a bypass; counters stay
    at zero).
    """

    __slots__ = ("_capacity", "_entries", "_lock", "_scope_stats")

    def __init__(self, capacity: Optional[int] = None):
        self._capacity = resolve_capacity(capacity)
        self._entries: "OrderedDict[Tuple[int, str, Hashable], Any]" = OrderedDict()
        # The engine's thread backend drives concurrent queries through
        # one sampler; move_to_end/popitem are not atomic, so reads take
        # the lock too (plan computation itself stays outside it).
        self._lock = threading.Lock()
        # fingerprint -> [hits, misses, evictions]
        self._scope_stats: Dict[int, List[int]] = {}

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def enabled(self) -> bool:
        return self._capacity > 0

    def __len__(self) -> int:
        return len(self._entries)

    def _stats_for(self, fingerprint: int) -> List[int]:
        stats = self._scope_stats.get(fingerprint)
        if stats is None:
            stats = self._scope_stats.setdefault(fingerprint, [0, 0, 0])
        return stats

    def scope_counts(self, fingerprint: int) -> Tuple[int, int, int]:
        """``(hits, misses, evictions)`` attributed to one fingerprint."""
        stats = self._scope_stats.get(fingerprint)
        return (0, 0, 0) if stats is None else tuple(stats)

    def scope_size(self, fingerprint: int) -> int:
        """Entries currently held for one fingerprint (O(store) scan —
        a diagnostics accessor, not a hot path)."""
        with self._lock:
            return sum(1 for fp, _, _ in self._entries if fp == fingerprint)

    def get(self, fingerprint: int, kind: str, key: Hashable) -> Any:
        """The cached plan, or ``None`` (recorded as a miss)."""
        if self._capacity == 0:
            return None
        full_key = (fingerprint, kind, key)
        with self._lock:
            entry = self._entries.get(full_key, _MISSING)
            if entry is _MISSING:
                self._stats_for(fingerprint)[1] += 1
                hit = False
            else:
                self._entries.move_to_end(full_key)
                self._stats_for(fingerprint)[0] += 1
                hit = True
        if obs.ENABLED:
            if hit:
                _HITS.inc()
                _kind_counter(kind, "hits").inc()
            else:
                _MISSES.inc()
                _kind_counter(kind, "misses").inc()
        return None if entry is _MISSING else entry

    def put(self, fingerprint: int, kind: str, key: Hashable, plan: Any) -> None:
        """Insert (or refresh) a plan, evicting the LRU entry if full."""
        if self._capacity == 0:
            return
        full_key = (fingerprint, kind, key)
        evicted = None
        with self._lock:
            entries = self._entries
            if full_key in entries:
                entries.move_to_end(full_key)
            entries[full_key] = plan
            if len(entries) > self._capacity:
                evicted = entries.popitem(last=False)[0]
                self._stats_for(evicted[0])[2] += 1
        if evicted is not None and obs.ENABLED:
            _EVICTIONS.inc()
            _kind_counter(evicted[1], "evictions").inc()

    def clear_scope(self, fingerprint: int) -> None:
        """Drop one fingerprint's plans; its counters are preserved."""
        with self._lock:
            stale = [k for k in self._entries if k[0] == fingerprint]
            for k in stale:
                del self._entries[k]

    def clear(self) -> None:
        """Drop all plans; counters are preserved."""
        with self._lock:
            self._entries.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PlanStore(capacity={self._capacity}, size={len(self._entries)}, "
            f"scopes={len(self._scope_stats)})"
        )


class PlanScope:
    """One sampler's view of a :class:`PlanStore`.

    This is what planful samplers expose as ``sampler.plan_cache``. It
    binds the structure fingerprint and plan kind, so the sampler-side
    call sites stay the two-liner they always were::

        plan = self.plan_cache.get((lo, hi))
        ...
        self.plan_cache.put((lo, hi), plan)

    The per-instance ``hits``/``misses``/``evictions`` tallies record
    regardless of the metrics switch (they are the deprecation-safe
    alias for the retired ``stats()`` shim); the process-wide
    aggregates live in the obs registry.
    """

    __slots__ = ("_store", "kind", "fingerprint")

    def __init__(
        self, store: PlanStore, kind: str, fingerprint: Optional[int] = None
    ):
        self._store = store
        self.kind = kind
        self.fingerprint = next_fingerprint() if fingerprint is None else fingerprint

    @property
    def store(self) -> PlanStore:
        return self._store

    def get(self, key: Hashable) -> Any:
        return self._store.get(self.fingerprint, self.kind, key)

    def put(self, key: Hashable, plan: Any) -> None:
        self._store.put(self.fingerprint, self.kind, key, plan)

    @property
    def hits(self) -> int:
        return self._store.scope_counts(self.fingerprint)[0]

    @property
    def misses(self) -> int:
        return self._store.scope_counts(self.fingerprint)[1]

    @property
    def evictions(self) -> int:
        return self._store.scope_counts(self.fingerprint)[2]

    @property
    def capacity(self) -> int:
        return self._store.capacity

    @property
    def enabled(self) -> bool:
        return self._store.enabled

    def __len__(self) -> int:
        return self._store.scope_size(self.fingerprint)

    def clear(self) -> None:
        self._store.clear_scope(self.fingerprint)

    def stats(self) -> Dict[str, int]:
        """Deprecated counter snapshot (the retired per-instance shim).

        The authoritative counters are the obs registry's
        ``plan_cache.hits`` / ``.misses`` / ``.evictions`` (with
        per-kind twins and a derived ``plan_cache.hit_rate``); the
        per-instance numbers remain readable as the ``hits`` /
        ``misses`` / ``evictions`` attributes. ``stats()`` stays one
        release as a deprecation-safe alias and is asserted to agree
        with the counters in ``tests/core/test_planner.py``.
        """
        warnings.warn(
            "PlanScope.stats() is deprecated; read the hits/misses/evictions "
            "attributes or the obs plan_cache.* counters instead",
            DeprecationWarning,
            stacklevel=2,
        )
        hits, misses, evictions = self._store.scope_counts(self.fingerprint)
        return {
            "hits": hits,
            "misses": misses,
            "evictions": evictions,
            "size": len(self),
            "capacity": self.capacity,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PlanScope(kind={self.kind!r}, fingerprint={self.fingerprint}, "
            f"capacity={self.capacity})"
        )


# ----------------------------------------------------------------------
# Engine-scoped shared stores. One store per resolved capacity: all
# samplers built without an explicit ``plan_cache_size`` share it, which
# is what makes the LRU bound a process budget instead of a per-sampler
# one. Re-resolving the environment on every call keeps the
# ``REPRO_PLAN_CACHE_SIZE`` knob live for samplers built later.
# ----------------------------------------------------------------------
_SHARED: Dict[int, PlanStore] = {}
_SHARED_LOCK = threading.Lock()


def shared_store() -> PlanStore:
    """The process-wide store for the currently resolved capacity."""
    capacity = resolve_capacity(None)
    store = _SHARED.get(capacity)
    if store is None:
        with _SHARED_LOCK:
            store = _SHARED.get(capacity)
            if store is None:
                store = PlanStore(capacity)
                _SHARED[capacity] = store
    return store


def plan_scope(kind: str, capacity: Optional[int] = None) -> PlanScope:
    """A fresh scope for one sampler instance.

    ``capacity=None`` joins the shared engine-scoped store (resolving
    the environment knob); an explicit capacity gets a private store of
    exactly that size — which keeps sizing/eviction tests exact and
    preserves the old per-instance ``plan_cache_size`` semantics.
    """
    store = shared_store() if capacity is None else PlanStore(capacity)
    return PlanScope(store, kind)


__all__ = [
    "QueryPlan",
    "PlanStore",
    "PlanScope",
    "plan_scope",
    "shared_store",
    "next_fingerprint",
    "resolve_capacity",
    "DEFAULT_CAPACITY",
    "ENV_CAPACITY",
]
