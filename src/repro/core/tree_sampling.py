"""Tree sampling (paper §3.2 and §5, Proposition 1, Lemma 4).

Problem: a rooted tree ``T`` has positively weighted leaves; ``w(u)`` of an
internal node aggregates its subtree's leaf weights. A query ``(q, s)``
returns ``s`` independent weighted samples from the leaves below node
``q``, with all query outputs mutually independent.

Two structures:

* :class:`TreeSampler` — the §3.2 top-down walk: an alias structure at
  every internal node samples a child in O(1); one sample costs
  ``O(height)``.
* :class:`FlatTreeSampler` — the §5 improvement: a depth-first traversal
  lays the leaves out in a sequence Π where every subtree is contiguous
  (Proposition 1), turning subtree sampling into *weighted range sampling*
  over ``Π[a:b]`` answered by the Theorem-3 structure in ``O(log n + s)``.
  When all leaf weights are equal the range draw degenerates to a uniform
  index draw, achieving the ``O(1 + s)`` bound of Lemma 4 exactly; for
  general weights we substitute the Theorem-3 structure for the
  Afshani–Wei rank-space structure (see DESIGN.md §4, substitution 1).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.core import kernels
from repro.core.alias import AliasTables, alias_draw, build_alias_tables
from repro.core.range_sampler import ChunkedRangeSampler
from repro.engine.protocol import EngineOp, EngineSampler
from repro.errors import BuildError, InvalidWeightError
from repro.substrates.rng import RNGLike, ensure_rng
from repro.validation import validate_sample_size

NO_NODE = -1

_TOPDOWN_DRAWS = obs.counter(
    "tree.topdown.draws", "Top-down (§3.2) tree-sampler leaf draws"
)
_FLAT_DRAWS = obs.counter(
    "tree.flat.draws", "FlatTreeSampler (§5, Proposition 1) leaf draws"
)


class Tree:
    """General rooted tree with weighted leaves (arbitrary fanout).

    Build incrementally with :meth:`add_root` / :meth:`add_child`, or from
    a nested spec with :meth:`from_nested`; then :meth:`finalize` computes
    the aggregated internal weights ``w(u)`` of §3.2.
    """

    def __init__(self) -> None:
        self._parent: List[int] = []
        self._children: List[List[int]] = []
        self._weight: List[Optional[float]] = []
        self._payload: List[Any] = []
        self._root = NO_NODE
        self._finalized = False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def add_root(self, weight: Optional[float] = None, payload: Any = None) -> int:
        if self._root != NO_NODE:
            raise BuildError("tree already has a root")
        self._root = self._add_node(NO_NODE, weight, payload)
        return self._root

    def add_child(self, parent: int, weight: Optional[float] = None, payload: Any = None) -> int:
        if self._finalized:
            raise BuildError("tree is finalized; no further nodes may be added")
        if not 0 <= parent < len(self._parent):
            raise BuildError(f"unknown parent node {parent}")
        node = self._add_node(parent, weight, payload)
        self._children[parent].append(node)
        return node

    def _add_node(self, parent: int, weight: Optional[float], payload: Any) -> int:
        node = len(self._parent)
        self._parent.append(parent)
        self._children.append([])
        self._weight.append(weight)
        self._payload.append(payload)
        return node

    @classmethod
    def from_nested(cls, spec: Any) -> "Tree":
        """Build from nested lists: a leaf is ``(payload, weight)``, an
        internal node is a list of child specs.

        >>> tree = Tree.from_nested([("a", 1.0), [("b", 2.0), ("c", 3.0)]])
        """
        tree = cls()

        def grow(node_spec: Any, parent: int) -> None:
            if isinstance(node_spec, list):
                node = tree.add_root() if parent == NO_NODE else tree.add_child(parent)
                for child_spec in node_spec:
                    grow(child_spec, node)
            else:
                payload, weight = node_spec
                if parent == NO_NODE:
                    tree.add_root(weight=weight, payload=payload)
                else:
                    tree.add_child(parent, weight=weight, payload=payload)

        grow(spec, NO_NODE)
        tree.finalize()
        return tree

    def finalize(self) -> "Tree":
        """Validate leaf weights and aggregate internal weights bottom-up."""
        if self._root == NO_NODE:
            raise BuildError("tree has no root")
        order = self.topological_order()
        for node in reversed(order):
            if self.is_leaf(node):
                weight = self._weight[node]
                if weight is None or not weight > 0 or weight != weight or weight == float("inf"):
                    raise InvalidWeightError(
                        f"leaf {node} needs a positive finite weight, got {weight!r}"
                    )
            else:
                self._weight[node] = sum(self._weight[c] for c in self._children[node])
        self._finalized = True
        return self

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._parent)

    @property
    def root(self) -> int:
        return self._root

    def is_leaf(self, node: int) -> bool:
        return not self._children[node]

    def children(self, node: int) -> Sequence[int]:
        return tuple(self._children[node])

    def parent(self, node: int) -> int:
        return self._parent[node]

    def weight(self, node: int) -> float:
        """``w(u)``: the node's own weight (leaf) or subtree total."""
        if not self._finalized:
            raise BuildError("call finalize() before reading aggregated weights")
        weight = self._weight[node]
        assert weight is not None
        return weight

    def payload(self, node: int) -> Any:
        return self._payload[node]

    def topological_order(self) -> List[int]:
        """Nodes in DFS pre-order from the root (parents before children)."""
        order: List[int] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            order.append(node)
            # Reversed so children are visited left-to-right.
            stack.extend(reversed(self._children[node]))
        return order

    def leaves_in_dfs_order(self) -> List[int]:
        """The sequence Π of §5: leaves in depth-first order."""
        return [node for node in self.topological_order() if self.is_leaf(node)]

    def subtree_height(self, node: int) -> int:
        best = 0
        stack: List[Tuple[int, int]] = [(node, 0)]
        while stack:
            current, depth = stack.pop()
            if self.is_leaf(current):
                best = max(best, depth)
            else:
                stack.extend((child, depth + 1) for child in self._children[current])
        return best


class TreeSampler(EngineSampler):
    """§3.2 top-down tree sampling: O(n) space, O(height) per sample."""

    engine_ops = {
        "sample": EngineOp("sample_many", takes_s=True, pass_rng=True),
    }
    engine_thread_safe = True

    def __init__(self, tree: Tree, rng: RNGLike = None):
        self._tree = tree
        self._rng = ensure_rng(rng)
        # Alias structure at each internal node over its children's weights
        # (fanout need not be constant, exactly as §3.2 allows).
        self._child_tables: Dict[int, AliasTables] = {}
        if not (kernels.use_batch_build(len(tree)) and self._build_child_tables_packed()):
            for node in range(len(tree)):
                if not tree.is_leaf(node):
                    child_weights = [tree.weight(c) for c in tree.children(node)]
                    self._child_tables[node] = build_alias_tables(child_weights)
        # numpy copies of (prob, alias, children) per node, built lazily.
        self._np_child_tables: Dict[int, tuple] = {}
        self._np_leaf_mask = None

    def _build_child_tables_packed(self) -> bool:
        """Build every internal node's child table in one packed call.

        Rows are internal nodes, columns their children's weights. Returns
        ``False`` (letting the scalar loop run instead) when the fanout
        spread would make the padded matrix much larger than the actual
        child count — e.g. one giant star node among binary nodes.
        """
        np = kernels.np
        tree = self._tree
        internal = [node for node in range(len(tree)) if not tree.is_leaf(node)]
        if not internal:
            return True
        kid_tuples = [tree.children(node) for node in internal]
        sizes = np.array([len(kids) for kids in kid_tuples], dtype=np.intp)
        width = int(sizes.max())
        total = int(sizes.sum())
        if width * len(internal) > 4 * total + 1024:
            return False
        node_weights = np.asarray(
            [tree.weight(node) for node in range(len(tree))], dtype=np.float64
        )
        flat_children = np.fromiter(
            (child for kids in kid_tuples for child in kids), dtype=np.intp, count=total
        )
        rows = np.repeat(np.arange(len(internal), dtype=np.intp), sizes)
        offsets = np.cumsum(sizes) - sizes
        cols = np.arange(total, dtype=np.intp) - offsets[rows]
        matrix = np.zeros((len(internal), width))
        matrix[rows, cols] = node_weights[flat_children]
        prob_mat, alias_mat = kernels.build_alias_tables_packed(matrix, sizes)
        for j, node in enumerate(internal):
            size = int(sizes[j])
            self._child_tables[node] = (prob_mat[j, :size], alias_mat[j, :size])
        return True

    @property
    def tree(self) -> Tree:
        return self._tree

    def sample(self, q: int, *, rng: RNGLike = None) -> int:
        """One weighted leaf sample from the subtree of ``q``."""
        if obs.ENABLED:
            _TOPDOWN_DRAWS.inc()
        tree = self._tree
        rng = self._rng if rng is None else rng
        node = q
        while not tree.is_leaf(node):
            prob, alias = self._child_tables[node]
            node = tree.children(node)[alias_draw(prob, alias, rng)]
        return node

    def sample_many(self, q: int, s: int, *, rng: RNGLike = None) -> List[int]:
        """``s`` independent weighted leaf samples (O(s · height)).

        The batch path descends all ``s`` tokens together, one vectorized
        alias draw per (level, distinct node) pair: tokens sharing a node
        are grouped so the per-draw cost is a numpy element-op, not a
        Python loop iteration.
        """
        validate_sample_size(s)
        if kernels.use_batch(s):
            return self._sample_many_batch(q, s, rng)
        return [self.sample(q, rng=rng) for _ in range(s)]

    def _sample_many_batch(self, q: int, s: int, rng: RNGLike = None) -> List[int]:
        if obs.ENABLED:
            _TOPDOWN_DRAWS.add(s)
        np = kernels.np
        tree = self._tree
        if self._np_leaf_mask is None:
            self._np_leaf_mask = np.fromiter(
                (tree.is_leaf(v) for v in range(len(tree))), dtype=bool, count=len(tree)
            )
        leaf = self._np_leaf_mask
        gen = kernels.batch_generator(self._rng if rng is None else rng)
        nodes = np.full(s, q, dtype=np.intp)
        while True:
            pending = np.nonzero(~leaf[nodes])[0]
            if len(pending) == 0:
                break
            for node in np.unique(nodes[pending]):
                prob, alias, children = self._np_tables_for(int(node))
                at = pending[nodes[pending] == node]
                choices = kernels.alias_draw_batch(prob, alias, len(at), gen)
                nodes[at] = children[choices]
        return nodes.tolist()

    def _np_tables_for(self, node: int):
        tables = self._np_child_tables.get(node)
        if tables is None:
            prob, alias = self._child_tables[node]
            if isinstance(prob, kernels.np.ndarray):
                np_prob, np_alias = prob, alias  # packed build: numpy views
            else:
                np_prob, np_alias = kernels.as_alias_arrays(prob, alias)
            children = kernels.np.asarray(
                self._tree.children(node), dtype=kernels.np.intp
            )
            tables = (np_prob, np_alias, children)
            self._np_child_tables[node] = tables
        return tables


class FlatTreeSampler(EngineSampler):
    """§5 tree sampling via the DFS leaf order: O(log n + s) per query.

    With uniform leaf weights the query runs in O(1 + s) (Lemma 4's bound);
    with general weights it delegates to the Theorem-3 range structure over
    Π — see the module docstring for the substitution note.
    """

    engine_ops = {
        "sample": EngineOp("sample_many", takes_s=True, pass_rng=True),
    }
    engine_thread_safe = True

    def __init__(self, tree: Tree, rng: RNGLike = None):
        self._tree = tree
        self._rng = ensure_rng(rng)
        leaves = tree.leaves_in_dfs_order()
        if not leaves:
            raise BuildError("tree has no leaves")
        self._leaves = leaves
        position_of = {leaf: position for position, leaf in enumerate(leaves)}

        # Store, at every node, the [a, b) span of its subtree's leaves in Π
        # (Proposition 1 guarantees contiguity; we assert it below).
        self._span: List[Tuple[int, int]] = [(0, 0)] * len(tree)
        for node in reversed(tree.topological_order()):
            if tree.is_leaf(node):
                pos = position_of[node]
                self._span[node] = (pos, pos + 1)
            else:
                child_spans = [self._span[c] for c in tree.children(node)]
                lo = min(span[0] for span in child_spans)
                hi = max(span[1] for span in child_spans)
                if hi - lo != sum(span[1] - span[0] for span in child_spans):
                    raise BuildError("DFS leaf spans must be contiguous (Proposition 1)")
                self._span[node] = (lo, hi)

        weights = [tree.weight(leaf) for leaf in leaves]
        self._uniform = len(set(weights)) == 1
        if self._uniform:
            self._range_sampler = None
        else:
            self._range_sampler = ChunkedRangeSampler(
                list(range(len(leaves))), weights, rng=self._rng
            )

    @property
    def is_uniform(self) -> bool:
        """True when the O(1 + s) uniform fast path (Lemma 4, WR case) is active."""
        return self._uniform

    def leaf_span(self, q: int) -> Tuple[int, int]:
        """The precomputed (a, b) of §5 for node ``q``."""
        return self._span[q]

    def sample(self, q: int, *, rng: RNGLike = None) -> int:
        return self.sample_many(q, 1, rng=rng)[0]

    def sample_many(self, q: int, s: int, *, rng: RNGLike = None) -> List[int]:
        """``s`` independent weighted leaf samples from the subtree of ``q``."""
        validate_sample_size(s)
        if obs.ENABLED:
            _FLAT_DRAWS.add(s)
        lo, hi = self._span[q]
        rng = self._rng if rng is None else rng
        if self._uniform:
            if kernels.use_batch(s):
                gen = kernels.batch_generator(rng)
                positions = kernels.uniform_index_batch(lo, hi, s, gen).tolist()
            else:
                width = hi - lo
                positions = [lo + int(rng.random() * width) for _ in range(s)]
                positions = [min(position, hi - 1) for position in positions]
        else:
            assert self._range_sampler is not None
            positions = self._range_sampler.sample_span(lo, hi, s, rng=rng)
        leaves = self._leaves
        return [leaves[position] for position in positions]
