"""Dynamic weighted range sampling (§4.3 remark + Direction 1).

Hu et al. [18] showed their range-sampling structure supports insertions
and deletions in ``O(log n)`` time (for WR sampling); the paper contrasts
this with the static Theorem-3 structure, whose alias tables resist
dynamization. This module provides the dynamic counterpart for general
weighted sampling:

* a *treap* (randomised balanced BST) over the keys, augmented with
  subtree weights — ``O(log n)`` expected insert/delete/update;
* range queries decompose into ``O(log n)`` canonical subtrees exactly as
  in §3.2, a node is drawn from the cover by cumulative weight, and a
  top-down weighted walk (§3.2 tree sampling, with internal nodes also
  carrying their own element) delivers each sample in ``O(log n)``
  expected time.

Query time is ``O((1 + s) log n)`` expected — the §3.2 bound, a log
factor off Theorem 3's static optimum, which is precisely the trade the
paper describes (fast updates vs. the un-dynamizable alias structure).
"""

from __future__ import annotations

from typing import Generic, List, Optional, Tuple, TypeVar

from repro.core.planner import QueryPlan
from repro.engine.protocol import EngineOp, RangeQueryMixin
from repro.errors import BuildError, EmptyQueryError, InvalidWeightError
from repro.substrates.rng import RNGLike, ensure_rng
from repro.validation import validate_sample_size

K = TypeVar("K")


class _Node:
    __slots__ = ("key", "weight", "priority", "left", "right", "subtree_weight", "size")

    def __init__(self, key, weight: float, priority: float):
        self.key = key
        self.weight = weight
        self.priority = priority
        self.left: Optional["_Node"] = None
        self.right: Optional["_Node"] = None
        self.subtree_weight = weight
        self.size = 1


def _pull(node: _Node) -> None:
    node.subtree_weight = node.weight
    node.size = 1
    if node.left is not None:
        node.subtree_weight += node.left.subtree_weight
        node.size += node.left.size
    if node.right is not None:
        node.subtree_weight += node.right.subtree_weight
        node.size += node.right.size


def _merge(left: Optional[_Node], right: Optional[_Node]) -> Optional[_Node]:
    if left is None:
        return right
    if right is None:
        return left
    if left.priority > right.priority:
        left.right = _merge(left.right, right)
        _pull(left)
        return left
    right.left = _merge(left, right.left)
    _pull(right)
    return right


def _split(node: Optional[_Node], key, *, include_key_left: bool) -> Tuple[Optional[_Node], Optional[_Node]]:
    """Split by key: left gets keys < key (or <= key when inclusive)."""
    if node is None:
        return None, None
    goes_left = node.key <= key if include_key_left else node.key < key
    if goes_left:
        left, right = _split(node.right, key, include_key_left=include_key_left)
        node.right = left
        _pull(node)
        return node, right
    left, right = _split(node.left, key, include_key_left=include_key_left)
    node.left = right
    _pull(node)
    return left, node


class DynamicRangeSampler(RangeQueryMixin, Generic[K]):
    """Treap-backed weighted range sampling with O(log n) updates."""

    # Updates mutate the treap, so concurrent execution is unsafe; seeded
    # requests go through the protocol's swap path.
    engine_ops = {
        "sample": EngineOp("sample", takes_s=True, pass_rng=False),
    }
    engine_thread_safe = False

    plan_kind = "dynamic"

    def __init__(self, rng: RNGLike = None):
        self._rng = ensure_rng(rng)
        self._root: Optional[_Node] = None

    def __len__(self) -> int:
        return self._root.size if self._root is not None else 0

    @property
    def total_weight(self) -> float:
        return self._root.subtree_weight if self._root is not None else 0.0

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------

    def insert(self, key: K, weight: float = 1.0) -> None:
        """Insert a key with a positive weight; O(log n) expected.

        Raises on duplicate keys (the §3.2 BST stores distinct keys; use
        :meth:`update_weight` to change an existing element).
        """
        value = float(weight)
        if not value > 0 or value != value or value == float("inf"):
            raise InvalidWeightError(f"weight must be positive and finite, got {weight!r}")
        if self._find(key) is not None:
            raise BuildError(f"key {key!r} already present; use update_weight()")
        node = _Node(key, value, self._rng.random())
        left, right = _split(self._root, key, include_key_left=False)
        self._root = _merge(_merge(left, node), right)

    def delete(self, key: K) -> None:
        """Remove a key; O(log n) expected. KeyError if absent."""
        left, rest = _split(self._root, key, include_key_left=False)
        match, right = _split(rest, key, include_key_left=True)
        if match is None:
            self._root = _merge(left, right)
            raise KeyError(f"key {key!r} not present")
        self._root = _merge(left, right)

    def update_weight(self, key: K, weight: float) -> None:
        """Change a key's weight in place; O(log n)."""
        value = float(weight)
        if not value > 0 or value != value or value == float("inf"):
            raise InvalidWeightError(f"weight must be positive and finite, got {weight!r}")
        path: List[_Node] = []
        node = self._root
        while node is not None:
            path.append(node)
            if key == node.key:
                node.weight = value
                for ancestor in reversed(path):
                    _pull(ancestor)
                return
            node = node.left if key < node.key else node.right
        raise KeyError(f"key {key!r} not present")

    def _find(self, key: K) -> Optional[_Node]:
        node = self._root
        while node is not None:
            if key == node.key:
                return node
            node = node.left if key < node.key else node.right
        return None

    def __contains__(self, key: K) -> bool:
        return self._find(key) is not None

    def weight_of(self, key: K) -> float:
        node = self._find(key)
        if node is None:
            raise KeyError(f"key {key!r} not present")
        return node.weight

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def _canonical_subtrees(self, x: K, y: K) -> List[Tuple[_Node, bool]]:
        """Cover of [x, y]: maximal subtrees + on-path single nodes.

        Returns (node, whole_subtree) pairs: ``whole_subtree`` selects the
        node's entire subtree, else only the node's own element. O(log n)
        entries, collected along the two boundary search paths.
        """
        cover: List[Tuple[_Node, bool]] = []

        def visit(node: Optional[_Node], lo_open: bool, hi_open: bool) -> None:
            # lo_open: subtree may contain keys < x; hi_open: keys > y.
            if node is None:
                return
            if not lo_open and not hi_open:
                cover.append((node, True))
                return
            key_in = (x <= node.key) and (node.key <= y)
            if node.key < x:
                visit(node.right, lo_open, hi_open)
                return
            if node.key > y:
                visit(node.left, lo_open, hi_open)
                return
            # node.key inside the range: both sides may contribute.
            if key_in:
                cover.append((node, False))
            visit(node.left, lo_open, False)
            visit(node.right, False, hi_open)

        visit(self._root, True, True)
        return cover

    def count(self, x: K, y: K) -> int:
        """|S ∩ [x, y]| in O(log n)."""
        return sum(
            node.size if whole else 1 for node, whole in self._canonical_subtrees(x, y)
        )

    def range_weight(self, x: K, y: K) -> float:
        return sum(
            node.subtree_weight if whole else node.weight
            for node, whole in self._canonical_subtrees(x, y)
        )

    def _walk(self, node: _Node) -> K:
        """Weighted top-down walk; internal nodes carry their own element."""
        rng = self._rng
        while True:
            target = rng.random() * node.subtree_weight
            if node.left is not None:
                if target < node.left.subtree_weight:
                    node = node.left
                    continue
                target -= node.left.subtree_weight
            if target < node.weight:
                return node.key
            if node.right is None:  # float rounding at the boundary
                return node.key
            node = node.right

    def plan_range(self, x: K, y: K) -> QueryPlan:
        """The query plan for ``[x, y]`` — built per call, never cached.

        The treap mutates under ``insert``/``delete``/``update_weight``
        and the plan's payload holds live node references, so a cached
        plan could dangle after any update; the dynamic path therefore
        plans fresh each query (still randomness-free — all randomness
        is spent in :meth:`execute_plan`).
        """
        cover = self._canonical_subtrees(x, y)
        cumulative: List[float] = []
        weights: List[float] = []
        running = 0.0
        for node, whole in cover:
            weight = node.subtree_weight if whole else node.weight
            weights.append(weight)
            running += weight
            cumulative.append(running)
        return QueryPlan(
            self.plan_kind,
            (x, y),
            spans=None,  # treap subtrees have no positional index spans
            weights=tuple(weights),
            payload=(cover, cumulative, running),
        )

    def plan_request(self, request) -> QueryPlan:
        """Plan an engine request without executing draws (--explain)."""
        self.validate_request(request)
        x, y = request.args
        plan = self.plan_range(x, y)
        if not plan.payload[0]:
            raise EmptyQueryError(f"no keys in [{x!r}, {y!r}]")
        return plan

    def execute_plan(self, plan: QueryPlan, s: int) -> List[K]:
        """Draw ``s`` samples from a plan (all randomness spent here)."""
        cover, cumulative, running = plan.payload
        rng = self._rng
        result: List[K] = []
        from bisect import bisect_right

        for _ in range(s):
            target = rng.random() * running
            index = bisect_right(cumulative, target)
            if index == len(cover):
                index -= 1
            node, whole = cover[index]
            result.append(self._walk(node) if whole else node.key)
        return result

    def sample(self, x: K, y: K, s: int) -> List[K]:
        """``s`` independent weighted samples from ``S ∩ [x, y]``.

        O((1 + s) log n) expected; outputs of all queries are mutually
        independent, and stay so across arbitrary interleaved updates.
        """
        validate_sample_size(s)
        plan = self.plan_range(x, y)
        if not plan.payload[0]:
            raise EmptyQueryError(f"no keys in [{x!r}, {y!r}]")
        return self.execute_plan(plan, s)

    def keys_in_order(self) -> List[K]:
        """In-order key listing (testing helper)."""
        out: List[K] = []

        def walk(node: Optional[_Node]) -> None:
            if node is None:
                return
            walk(node.left)
            out.append(node.key)
            walk(node.right)

        walk(self._root)
        return out
