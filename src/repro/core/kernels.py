"""Vectorized batch-sampling kernels (numpy-backed, optional).

Every sampler in this package exposes a ``sample_many(s)`` API whose
theoretical cost is O(1) (alias, Theorem 1) or O(log n) per draw — but the
seed implementation paid that cost *per Python function call*, burying the
paper's guarantees under interpreter overhead. This module provides the
batched counterparts: one numpy kernel call draws all ``s`` samples at
once, so a query that wants ``s`` samples pays a single vectorized pass
instead of ``s`` interpreted loop iterations. This mirrors how
Afshani–Phillips and Huang–Wang treat batched draws (``s ≫ 1``) as the
practical unit of work.

numpy is an **optional** dependency (the ``repro[fast]`` extra). When it
is missing, :data:`HAVE_NUMPY` is ``False``, every dispatch helper reports
the batch path unavailable, and all samplers silently fall back to their
original pure-Python scalar loops — the library never hard-imports numpy.

Determinism: each sampler owns a ``random.Random``. The batch path derives
a ``numpy.random.Generator`` from that generator exactly once (consuming
64 bits of its stream) and caches it on the ``Random`` instance, so two
samplers built with the same seed and driven by the same call sequence
produce identical sample streams — on the scalar *and* the batch path.

Kernels draw from the same distributions as the scalar loops they replace
(verified by the chi-square equivalence harness in
``tests/core/test_batch_kernels.py``), but consume randomness from the
derived numpy stream, so batch and scalar outputs are equal in
distribution, not draw-for-draw identical.
"""

from __future__ import annotations

import os
import random
from typing import Any, List, Sequence, Tuple

try:  # pragma: no cover - exercised both ways across environments
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

# Kill switch: force the scalar fallbacks even when numpy is importable.
# Used by CI to prove the pure-Python paths stay healthy, and available to
# operators as an emergency lever.
if os.environ.get("REPRO_DISABLE_NUMPY"):  # pragma: no cover
    HAVE_NUMPY = False

#: Minimum batch size for which the vectorized path is dispatched. Below
#: this, numpy call overhead can exceed the scalar loop's cost.
BATCH_MIN_SIZE = 16

_GEN_ATTR = "_repro_batch_generator"


def use_batch(s: int) -> bool:
    """True when a request for ``s`` draws should take the numpy path.

    Honours :data:`HAVE_NUMPY` (numpy importable *and* not disabled for
    testing) and the :data:`BATCH_MIN_SIZE` cutoff.
    """
    return HAVE_NUMPY and s >= BATCH_MIN_SIZE


def batch_generator(rng: random.Random) -> "np.random.Generator":
    """The numpy Generator paired with ``rng``, derived and cached once.

    Seeding from ``rng.getrandbits(64)`` keeps the whole sampler — scalar
    and batch streams together — a pure function of the original seed.
    """
    generator = getattr(rng, _GEN_ATTR, None)
    if generator is None:
        generator = np.random.default_rng(rng.getrandbits(64))
        setattr(rng, _GEN_ATTR, generator)
    return generator


def as_alias_arrays(prob: Sequence[float], alias: Sequence[int]) -> Tuple[Any, Any]:
    """Convert scalar alias tables to the dtype the kernels expect."""
    return (
        np.ascontiguousarray(prob, dtype=np.float64),
        np.ascontiguousarray(alias, dtype=np.intp),
    )


# ----------------------------------------------------------------------
# core draw kernels
# ----------------------------------------------------------------------


def alias_draw_batch(prob: Any, alias: Any, size: int, gen: "np.random.Generator") -> Any:
    """``size`` independent alias-table draws in one vectorized pass.

    The exact batched analogue of :func:`repro.core.alias.alias_draw`:
    pick a uniform urn, flip its biased coin, follow the alias on tails.
    """
    prob = np.asarray(prob, dtype=np.float64)
    alias = np.asarray(alias, dtype=np.intp)
    n = len(prob)
    urns = gen.integers(0, n, size=size)
    coins = gen.random(size)
    return np.where(coins < prob[urns], urns, alias[urns])


def inverse_cdf_draw_batch(cum_weights: Any, size: int, gen: "np.random.Generator") -> Any:
    """``size`` weighted draws via prefix sums + vectorized binary search.

    ``cum_weights`` holds inclusive prefix sums of the (non-negative) slot
    weights; a slot with zero weight occupies a zero-width interval and is
    never selected (up to float-boundary ties, which callers re-check).
    """
    cum_weights = np.asarray(cum_weights, dtype=np.float64)
    targets = gen.random(size) * cum_weights[-1]
    indices = np.searchsorted(cum_weights, targets, side="right")
    return np.minimum(indices, len(cum_weights) - 1)


def uniform_index_batch(lo: int, hi: int, size: int, gen: "np.random.Generator") -> Any:
    """``size`` uniform draws from ``[lo, hi)`` (Lemma 4's uniform case)."""
    return gen.integers(lo, hi, size=size)


def multinomial_split_batch(
    weights: Sequence[float], s: int, gen: "np.random.Generator"
) -> List[int]:
    """Split ``s`` draws across weighted parts (§4.1) in one kernel call.

    Equal in distribution to drawing ``s`` categorical part indices and
    counting them, which is what the scalar path does.
    """
    w = np.asarray(weights, dtype=np.float64)
    return gen.multinomial(s, w / w.sum()).tolist()


def bst_topdown_batch(
    left: Any,
    right: Any,
    node_weight: Any,
    start_nodes: Any,
    gen: "np.random.Generator",
    no_child: int = -1,
) -> Any:
    """Walk a batch of tokens down a binary tree, weighted at each node.

    ``left``/``right``/``node_weight`` are parallel arrays over node ids
    (``left[u] == no_child`` iff ``u`` is a leaf). Each token at an
    internal node ``u`` steps to the left child with probability
    ``w(left)/w(u)`` — the §3.2 fanout-2 walk — and the loop runs one
    vectorized level per iteration, so total work is O(s · height) numpy
    element-ops with only O(height) interpreter steps.
    """
    nodes = np.array(start_nodes, dtype=np.intp, copy=True)
    active = left[nodes] != no_child
    while active.any():
        at = np.nonzero(active)[0]
        current = nodes[at]
        left_child = left[current]
        coins = gen.random(len(at)) * node_weight[current]
        stepped = np.where(coins < node_weight[left_child], left_child, right[current])
        nodes[at] = stepped
        active[at] = left[stepped] != no_child
    return nodes


def rejection_accept_batch(
    acceptance: Any, gen: "np.random.Generator"
) -> Any:
    """Vector of accept/reject coins for per-attempt acceptance rates."""
    return gen.random(len(acceptance)) < acceptance


__all__ = [
    "HAVE_NUMPY",
    "BATCH_MIN_SIZE",
    "use_batch",
    "batch_generator",
    "as_alias_arrays",
    "alias_draw_batch",
    "inverse_cdf_draw_batch",
    "uniform_index_batch",
    "multinomial_split_batch",
    "bst_topdown_batch",
    "rejection_accept_batch",
]
