"""Vectorized batch-sampling kernels (numpy-backed, optional).

Every sampler in this package exposes a ``sample_many(s)`` API whose
theoretical cost is O(1) (alias, Theorem 1) or O(log n) per draw — but the
seed implementation paid that cost *per Python function call*, burying the
paper's guarantees under interpreter overhead. This module provides the
batched counterparts: one numpy kernel call draws all ``s`` samples at
once, so a query that wants ``s`` samples pays a single vectorized pass
instead of ``s`` interpreted loop iterations. This mirrors how
Afshani–Phillips and Huang–Wang treat batched draws (``s ≫ 1``) as the
practical unit of work.

numpy is an **optional** dependency (the ``repro[fast]`` extra). When it
is missing, :data:`HAVE_NUMPY` is ``False``, every dispatch helper reports
the batch path unavailable, and all samplers silently fall back to their
original pure-Python scalar loops — the library never hard-imports numpy.

Determinism: each sampler owns a ``random.Random``. The batch path derives
a ``numpy.random.Generator`` from that generator exactly once (consuming
64 bits of its stream) and caches it on the ``Random`` instance, so two
samplers built with the same seed and driven by the same call sequence
produce identical sample streams — on the scalar *and* the batch path.

Kernels draw from the same distributions as the scalar loops they replace
(verified by the chi-square equivalence harness in
``tests/core/test_batch_kernels.py``), but consume randomness from the
derived numpy stream, so batch and scalar outputs are equal in
distribution, not draw-for-draw identical.
"""

from __future__ import annotations

import random
from typing import Any, List, Sequence, Tuple

from repro.substrates.env import env_flag

try:  # pragma: no cover - exercised both ways across environments
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

# Kill switch: force the scalar fallbacks even when numpy is importable.
# Used by CI to prove the pure-Python paths stay healthy, and available to
# operators as an emergency lever.
if env_flag("REPRO_DISABLE_NUMPY"):  # pragma: no cover
    HAVE_NUMPY = False

try:  # pragma: no cover - exercised both ways across environments
    from repro.core import kernels_jit

    _HAVE_NUMBA = HAVE_NUMPY and kernels_jit.HAVE_NUMBA
except ImportError:  # pragma: no cover - kernels_jit hard-imports numpy
    kernels_jit = None  # type: ignore[assignment]
    _HAVE_NUMBA = False

#: Whether the compiled (numba) tier is selected by the dispatch ladder.
#: Requires numpy (the kernels operate on the same arrays), an importable
#: numba, and the ``REPRO_DISABLE_JIT`` kill switch unset — the same
#: pattern as :data:`HAVE_NUMPY` / ``REPRO_DISABLE_NUMPY`` one rung down.
HAVE_JIT = _HAVE_NUMBA and not env_flag("REPRO_DISABLE_JIT")

#: Minimum batch size for which the vectorized path is dispatched. Below
#: this, numpy call overhead can exceed the scalar loop's cost.
BATCH_MIN_SIZE = 16

#: Minimum batch size for which the compiled tier is dispatched. The jit
#: kernels re-derive their randomness per draw (counter-based SplitMix64),
#: which costs a few mixes per element — a win that needs a batch big
#: enough to amortise against numpy's tightly optimised small-batch RNG.
JIT_MIN_SIZE = 256

#: Minimum table size for which the vectorized *construction* path is
#: dispatched. Small tables (multinomial parts, query covers) build faster
#: through the plain stack algorithm than through a numpy round-trip.
BUILD_MIN_SIZE = 64

#: Remaining-urn count below which a vectorized construction finishes with
#: the scalar stack loop instead of another array pass.
_BUILD_SCALAR_CUTOFF = 256

#: Hard cap on array passes; each pass retires at least one urn, and in
#: practice the active set shrinks geometrically, but adversarial weight
#: sets (one giant element, thousands of near-unit ones) can stall the
#: array passes — the scalar finish then completes the remainder exactly.
_BUILD_MAX_PASSES = 64

_GEN_ATTR = "_repro_batch_generator"

#: Public name of the attribute caching the derived NumPy generator on a
#: ``random.Random`` — ``substrates.rng.temporary_seed`` must stash it so
#: a re-seeded block derives a fresh batch generator too.
GENERATOR_ATTR = _GEN_ATTR

# Dispatch-ladder counters (repro.obs). "scalar" counts batch requests
# that fell through to the pure-Python loops; "numpy"/"jit" count batched
# kernel invocations served by each tier. Importing obs here is safe:
# repro/__init__ initialises repro.obs before repro.core, and repro.obs's
# only repro import is the dependency-free substrates.env.
from repro import obs  # noqa: E402  (after the availability probes above)

_DISPATCH_SCALAR = obs.counter(
    "kernels.dispatch.scalar", "Batch requests served by the scalar loops"
)
_DISPATCH_NUMPY = obs.counter(
    "kernels.dispatch.numpy", "Batched kernel calls served by the numpy tier"
)
_DISPATCH_JIT = obs.counter(
    "kernels.dispatch.jit", "Batched kernel calls served by the compiled tier"
)


def use_batch(s: int) -> bool:
    """True when a request for ``s`` draws should take the numpy path.

    Honours :data:`HAVE_NUMPY` (numpy importable *and* not disabled for
    testing) and the :data:`BATCH_MIN_SIZE` cutoff.
    """
    if HAVE_NUMPY and s >= BATCH_MIN_SIZE:
        return True
    if obs.ENABLED:
        _DISPATCH_SCALAR.inc()
    return False


def use_jit(s: int) -> bool:
    """True when a batched kernel call of size ``s`` takes the jit tier.

    The third rung of the dispatch ladder (scalar → numpy → jit):
    :data:`HAVE_JIT` (numpy + numba importable, ``REPRO_DISABLE_JIT``
    unset) and the :data:`JIT_MIN_SIZE` cutoff.
    """
    return HAVE_JIT and s >= JIT_MIN_SIZE


def use_batch_build(n: int) -> bool:
    """True when an ``n``-urn alias table should be built vectorized."""
    return HAVE_NUMPY and n >= BUILD_MIN_SIZE


def batch_generator(rng: random.Random) -> "np.random.Generator":
    """The numpy Generator paired with ``rng``, derived and cached once.

    Seeding from ``rng.getrandbits(64)`` keeps the whole sampler — scalar
    and batch streams together — a pure function of the original seed.
    """
    generator = getattr(rng, _GEN_ATTR, None)
    if generator is None:
        generator = np.random.default_rng(rng.getrandbits(64))
        setattr(rng, _GEN_ATTR, generator)
    return generator


def as_alias_arrays(prob: Sequence[float], alias: Sequence[int]) -> Tuple[Any, Any]:
    """Convert scalar alias tables to the dtype the kernels expect."""
    return (
        np.ascontiguousarray(prob, dtype=np.float64),
        np.ascontiguousarray(alias, dtype=np.intp),
    )


# ----------------------------------------------------------------------
# core draw kernels
# ----------------------------------------------------------------------


def alias_draw_batch(prob: Any, alias: Any, size: int, gen: "np.random.Generator") -> Any:
    """``size`` independent alias-table draws in one vectorized pass.

    The exact batched analogue of :func:`repro.core.alias.alias_draw`:
    pick a uniform urn, flip its biased coin, follow the alias on tails.

    When the compiled tier is available and ``size`` clears
    :data:`JIT_MIN_SIZE`, the call is served by the fused
    :func:`repro.core.kernels_jit.alias_draw` loop instead; the jit
    stream is seeded from ``gen`` (one 64-bit draw), so output remains a
    pure function of the sampler seed, but the tiers' streams differ —
    equivalence across tiers is distributional (chi-square), not
    draw-for-draw.
    """
    prob = np.asarray(prob, dtype=np.float64)
    alias = np.asarray(alias, dtype=np.intp)
    if use_jit(size):
        if obs.ENABLED:
            _DISPATCH_JIT.inc()
        seed = int(gen.integers(0, 2**64, dtype=np.uint64))
        out = np.empty(size, dtype=np.intp)
        kernels_jit.alias_draw(prob, alias, seed, out)
        return out
    if obs.ENABLED:
        _DISPATCH_NUMPY.inc()
    n = len(prob)
    urns = gen.integers(0, n, size=size)
    coins = gen.random(size)
    return np.where(coins < prob[urns], urns, alias[urns])


def inverse_cdf_draw_batch(cum_weights: Any, size: int, gen: "np.random.Generator") -> Any:
    """``size`` weighted draws via prefix sums + vectorized binary search.

    ``cum_weights`` holds inclusive prefix sums of the (non-negative) slot
    weights; a slot with zero weight occupies a zero-width interval and is
    never selected (up to float-boundary ties, which callers re-check).
    """
    cum_weights = np.asarray(cum_weights, dtype=np.float64)
    targets = gen.random(size) * cum_weights[-1]
    indices = np.searchsorted(cum_weights, targets, side="right")
    return np.minimum(indices, len(cum_weights) - 1)


def uniform_index_batch(lo: int, hi: int, size: int, gen: "np.random.Generator") -> Any:
    """``size`` uniform draws from ``[lo, hi)`` (Lemma 4's uniform case)."""
    return gen.integers(lo, hi, size=size)


def multinomial_split_batch(
    weights: Sequence[float], s: int, gen: "np.random.Generator"
) -> List[int]:
    """Split ``s`` draws across weighted parts (§4.1) in one kernel call.

    Equal in distribution to drawing ``s`` categorical part indices and
    counting them, which is what the scalar path does.
    """
    w = np.asarray(weights, dtype=np.float64)
    return gen.multinomial(s, w / w.sum()).tolist()


def bst_topdown_batch(
    left: Any,
    right: Any,
    node_weight: Any,
    start_nodes: Any,
    gen: "np.random.Generator",
    no_child: int = -1,
    visit_out: Any = None,
) -> Any:
    """Walk a batch of tokens down a binary tree, weighted at each node.

    ``left``/``right``/``node_weight`` are parallel arrays over node ids
    (``left[u] == no_child`` iff ``u`` is a leaf). Each token at an
    internal node ``u`` steps to the left child with probability
    ``w(left)/w(u)`` — the §3.2 fanout-2 walk — and the loop runs one
    vectorized level per iteration, so total work is O(s · height) numpy
    element-ops with only O(height) interpreter steps.

    ``visit_out``, when given, is a one-element list accumulating the
    number of node-descent steps taken (``repro.obs`` cost accounting:
    one step == one node visit below the start node). The count is
    maintained per level — O(height) adds — so passing it does not
    change the kernel's asymptotics; ``None`` skips it entirely.

    Batches clearing :data:`JIT_MIN_SIZE` are served by the compiled
    per-token walk (:func:`repro.core.kernels_jit.bst_topdown`) when the
    jit tier is on — same visit accounting, counter-based stream seeded
    from ``gen``.
    """
    nodes = np.array(start_nodes, dtype=np.intp, copy=True)
    if use_jit(len(nodes)):
        if obs.ENABLED:
            _DISPATCH_JIT.inc()
        seed = int(gen.integers(0, 2**64, dtype=np.uint64))
        visits = kernels_jit.bst_topdown(
            np.asarray(left, dtype=np.intp),
            np.asarray(right, dtype=np.intp),
            np.asarray(node_weight, dtype=np.float64),
            nodes.copy(),
            seed,
            no_child,
            nodes,
        )
        if visit_out is not None:
            visit_out[0] += visits
        return nodes
    if obs.ENABLED:
        _DISPATCH_NUMPY.inc()
    active = left[nodes] != no_child
    while active.any():
        at = np.nonzero(active)[0]
        if visit_out is not None:
            visit_out[0] += len(at)
        current = nodes[at]
        left_child = left[current]
        coins = gen.random(len(at)) * node_weight[current]
        stepped = np.where(coins < node_weight[left_child], left_child, right[current])
        nodes[at] = stepped
        active[at] = left[stepped] != no_child
    return nodes


def rejection_accept_batch(
    acceptance: Any, gen: "np.random.Generator"
) -> Any:
    """Vector of accept/reject coins for per-attempt acceptance rates.

    The uniforms always come from ``gen`` — on the jit tier only the
    compare loop is compiled — so this kernel is **byte-identical**
    across the numpy and jit tiers (asserted in
    ``tests/core/test_jit_kernels.py``).
    """
    size = len(acceptance)
    if use_jit(size):
        if obs.ENABLED:
            _DISPATCH_JIT.inc()
        out = np.empty(size, dtype=np.bool_)
        kernels_jit.rejection_accept(
            np.asarray(acceptance, dtype=np.float64), gen.random(size), out
        )
        return out
    if obs.ENABLED:
        _DISPATCH_NUMPY.inc()
    return gen.random(size) < acceptance


def offset_concat_batch(
    parts: Sequence[Sequence[int]], offsets: Sequence[int]
) -> List[int]:
    """Concatenate per-shard local index lists, shifted to global indices.

    The §4.1 merge kernel: part ``r`` (a shard's local draw indices) is
    shifted by ``offsets[r]`` (that shard's global base) and the shifted
    parts are concatenated in the order given. One flat add replaces the
    per-element Python loop; merges clearing :data:`JIT_MIN_SIZE` run the
    compiled (parallel) add instead. Both tiers are byte-identical —
    the merge is pure arithmetic, no randomness is consumed.
    """
    lengths = np.fromiter((len(part) for part in parts), dtype=np.intp, count=len(parts))
    total = int(lengths.sum())
    if total == 0:
        return []
    flat = np.concatenate([np.asarray(part, dtype=np.intp) for part in parts])
    offs = np.repeat(np.asarray(offsets, dtype=np.intp), lengths)
    if use_jit(total):
        if obs.ENABLED:
            _DISPATCH_JIT.inc()
        out = np.empty(total, dtype=np.intp)
        kernels_jit.offset_merge(flat, offs, out)
        return out.tolist()
    if obs.ENABLED:
        _DISPATCH_NUMPY.inc()
    return (flat + offs).tolist()


# ----------------------------------------------------------------------
# construction kernels (vectorized Vose)
# ----------------------------------------------------------------------
#
# The scalar Vose construction pairs one underfull urn with one overfull
# urn per interpreted loop iteration — O(n) Python steps. The vectorized
# construction below retires *all* current underfull urns in one array
# pass: lay the overfull urns' spare capacity out on a prefix-sum tape and
# assign each underfull urn's deficit interval to the overfull urn whose
# capacity segment contains the interval's start (a single searchsorted).
# A donor stays positive because the deficits whose intervals start inside
# its segment total at most (excess + 1) < its scaled mass. Donors that
# fall below 1 become the next pass's underfull urns, so each pass runs on
# the previous pass's overfull set only; the leftover tail (or a stalled
# adversarial instance) is finished by the exact scalar stack loop.


def _vose_finish(
    ids: List[int],
    masses: List[float],
    out_idx: List[int],
    out_prob: List[float],
    out_alias: List[int],
    alias_base: int = 0,
) -> None:
    """Scalar Vose stacks over urns ``ids`` with current scaled ``masses``.

    Appends ``(index, prob, alias)`` results to the ``out_*`` lists so the
    caller can scatter them into numpy arrays in one shot — per-element
    numpy ``__setitem__`` calls are ~100x a list append. Alias entries are
    stored relative to ``alias_base`` (0 for a standalone table, the row's
    flat offset for a packed row). Urns left at mass >= 1 keep the
    initialized ``prob = 1`` / self-alias state, so nothing is emitted for
    them.
    """
    small = [k for k, m in enumerate(masses) if m < 1.0]
    large = [k for k, m in enumerate(masses) if m >= 1.0]
    while small and large:
        underfull = small.pop()
        overfull = large[-1]
        out_idx.append(ids[underfull])
        out_prob.append(masses[underfull])
        out_alias.append(ids[overfull] - alias_base)
        masses[overfull] -= 1.0 - masses[underfull]
        if masses[overfull] < 1.0:
            large.pop()
            small.append(overfull)


def _segmented_cumsum(values: Any, segments: Any) -> Any:
    """Per-segment inclusive prefix sums (``segments`` sorted ascending).

    Requires non-negative ``values`` (true of deficits/excesses), which
    makes the global cumsum non-decreasing so segment bases propagate with
    a single ``maximum.accumulate``. On the jit tier the compiled
    sequential loop (:func:`repro.core.kernels_jit.segmented_cumsum`)
    resets exactly at each boundary — same sums up to cumsum rounding
    drift, one pass, no temporaries.
    """
    if HAVE_JIT:
        vals = np.ascontiguousarray(values, dtype=np.float64)
        out = np.empty(len(vals))
        kernels_jit.segmented_cumsum(vals, np.ascontiguousarray(segments), out)
        return out
    running = np.cumsum(values)
    base = np.zeros(len(values))
    starts = np.nonzero(segments[1:] != segments[:-1])[0] + 1
    base[starts] = running[starts - 1]
    return running - np.maximum.accumulate(base)


def build_alias_tables_batch(weights: Sequence[float]) -> Tuple[Any, Any]:
    """Vectorized Vose construction: ``(prob, alias)`` as numpy arrays.

    Builds the same family of urn tables as
    :func:`repro.core.alias.build_alias_tables` (any pairing order yields a
    valid table; the implied per-element masses agree up to float
    rounding) in O(n) numpy element-ops across O(log n) expected passes.
    """
    w = np.ascontiguousarray(weights, dtype=np.float64)
    n = w.size
    if n == 0:
        raise ValueError("cannot build alias tables over an empty set")
    scaled = w * (n / float(w.sum()))
    prob = np.ones(n)
    alias = np.arange(n, dtype=np.intp)
    active = np.arange(n, dtype=np.intp)
    act = scaled
    passes = 0
    while active.size > _BUILD_SCALAR_CUTOFF and passes < _BUILD_MAX_PASSES:
        small_mask = act < 1.0
        retired = int(small_mask.sum())
        if retired == 0 or retired == active.size:
            # All remaining urns sit on one side of 1 while averaging
            # exactly 1, so every one of them is a full urn: the
            # initialized prob = 1 / self-alias state is the answer.
            active = active[:0]
            break
        if retired * 8 < active.size:
            break  # stalling — the scalar finish is cheaper than more passes
        large_mask = ~small_mask
        small = active[small_mask]
        large = active[large_mask]
        deficits = 1.0 - act[small_mask]
        excesses = act[large_mask] - 1.0
        starts = np.cumsum(deficits) - deficits
        donors = np.searchsorted(np.cumsum(excesses), starts, side="right")
        np.minimum(donors, large.size - 1, out=donors)
        prob[small] = act[small_mask]
        alias[small] = large[donors]
        donated = np.bincount(donors, weights=deficits, minlength=large.size)
        act = np.maximum(act[large_mask] - donated, 0.0)
        active = large
        passes += 1
    if active.size:
        if HAVE_JIT:
            # Compiled finish: byte-identical stack discipline, no
            # array->list->array round-trip for the tail.
            idx, fprob, falias = kernels_jit.finish_tail(active, act)
            prob[idx] = fprob
            alias[idx] = falias
        else:
            fin_idx: List[int] = []
            fin_prob: List[float] = []
            fin_alias: List[int] = []
            _vose_finish(active.tolist(), act.tolist(), fin_idx, fin_prob, fin_alias)
            if fin_idx:
                idx = np.asarray(fin_idx, dtype=np.intp)
                prob[idx] = fin_prob
                alias[idx] = fin_alias
    return prob, alias


def build_alias_tables_flat(values: Any, lengths: Any) -> Tuple[Any, Any]:
    """Build alias tables for many *ragged* weight vectors in shared passes.

    ``values`` is the concatenation of every segment's weights; segment
    ``r`` occupies ``lengths[r]`` consecutive entries. Returns flat
    ``(prob, alias)`` arrays of the same length with **segment-local**
    alias indices, so segment ``r``'s table is the slice
    ``[start_r : start_r + lengths[r]]`` of both arrays.

    This is the workhorse behind :func:`build_alias_tables_packed` and the
    Lemma-2 builder: because segments may have different lengths, *every*
    alias table of an entire structure (all BST levels at once, not one
    level at a time) collapses into a single pass loop. That matters for
    throughput — per-pass numpy dispatch overhead is paid once per pass
    over the whole structure instead of once per level.

    Segments are kept independent by aligning every segment's deficit
    tape against the shared global excess tape (one searchsorted for all
    segments) and clamping donor assignments back into the segment's own
    donor range, so float rounding at segment boundaries can never leak
    mass across segments. A segment with non-positive total mass
    degenerates to full urns (``prob = 1``, self-alias).
    """
    vals = np.ascontiguousarray(values, dtype=np.float64)
    sizes = np.ascontiguousarray(lengths, dtype=np.intp)
    total = vals.size
    segs = sizes.size
    if int(sizes.sum()) != total:
        raise ValueError("lengths must sum to the length of values")
    if total == 0:
        return np.ones(0), np.zeros(0, dtype=np.intp)
    # 32-bit index arrays throughout: the builder is memory-bandwidth
    # bound, and every per-pass index array (active set, segment ids,
    # donors' positions) is touched several times per pass.
    idx_t = np.int32 if total < 2**31 else np.intp
    seg_starts = np.cumsum(sizes) - sizes
    seg_ids = np.repeat(np.arange(segs, dtype=idx_t), sizes)
    if segs and sizes.min() > 0:
        # One sequential pass; reduceat needs every segment non-empty
        # (repeated offsets would yield vals[offset], not 0).
        totals = np.add.reduceat(vals, seg_starts)
    else:
        totals = np.bincount(seg_ids, weights=vals, minlength=segs)
    ok = totals > 0.0
    scale = np.where(ok, sizes / np.where(ok, totals, 1.0), 0.0)
    scaled = vals * scale[seg_ids]

    prob = np.ones(total)
    # Alias entries hold *global* flat positions while the builder runs
    # (self-alias initially); one vectorized subtraction at the end
    # rebases them to segment-local indices.
    alias = np.arange(total, dtype=idx_t)
    active = np.arange(total, dtype=idx_t)
    act = scaled
    act_seg = seg_ids
    passes = 0
    while active.size > _BUILD_SCALAR_CUTOFF and passes < _BUILD_MAX_PASSES:
        small_mask = act < 1.0
        small = active[small_mask]
        retired = small.size
        if retired == 0 or retired == active.size:
            # Remaining urns all on one side of 1 with per-segment mean 1:
            # they are full urns, already encoded by the initialization.
            active = active[:0]
            break
        if retired * 8 < active.size and passes >= 4:
            # Stalling (adversarial skew) — scalar-finish the remainder.
            # The pass floor keeps narrow-segment instances, whose cascades
            # retire a small fraction per pass by construction, on the
            # cheap vectorized path instead of a huge Python finish.
            break
        # Urns inside [1, 1 + eps] are *full*: the initialized prob = 1 /
        # self-alias state is their final answer, so they leave the donor
        # set now. Without this, narrow segments' donors — which land at
        # mass exactly 1 after their single donation — would linger
        # through every remaining pass and eventually trip the stall bail
        # with an enormous (but trivial) scalar finish. Mass stranded in
        # a dropped urn is at most eps, repaired by the donor-range clip.
        large_mask = act > 1.0 + 1e-12
        large = active[large_mask]
        if large.size == 0:
            # No urn holds more than rounding noise above 1, so every
            # remaining deviation below 1 is noise too: all full urns,
            # already encoded by the initialization.
            active = active[:0]
            break
        small_segs = act_seg[small_mask]
        large_segs = act_seg[large_mask]
        act_small = act[small_mask]
        act_large = act[large_mask]
        prob[small] = act_small
        # act_small's last read was the scatter above: reuse its buffer.
        deficits = np.subtract(1.0, act_small, out=act_small)
        excesses = act_large - 1.0
        # Shared prefix-sum tapes: every segment's deficits balance its
        # excesses, so the two global tapes stay aligned segment by
        # segment on their own (up to cumsum rounding drift), and one
        # searchsorted positions every deficit interval at once. Donor
        # misassignments *within* a segment are harmless — each underfull
        # urn retires with its exact mass, so mass is conserved under any
        # in-segment pairing and over/under-donated donors re-enter the
        # next pass. Only cross-segment spill (rare: tape drift at a
        # segment boundary) needs the explicit repair below.
        capacity = np.cumsum(excesses, out=excesses)
        starts = np.cumsum(deficits)
        starts -= deficits
        donors = np.searchsorted(capacity, starts, side="right")
        np.minimum(donors, large.size - 1, out=donors)
        bad = large_segs[donors] != small_segs
        no_donor = None
        b = np.nonzero(bad)[0]
        if b.size:
            want = small_segs[b]
            first = np.searchsorted(large_segs, want, side="left")
            last = np.searchsorted(large_segs, want, side="right") - 1
            has = last >= first
            donors[b] = np.minimum(
                np.minimum(np.maximum(donors[b], first), np.maximum(last, first)),
                large.size - 1,
            )
            if not has.all():
                no_donor = b[~has]
        alias[small] = large[donors]
        if no_donor is not None:
            # A segment with underfull urns but no overfull urn: every
            # deviation from 1 in it is rounding noise — finish whole.
            sel = small[no_donor]
            prob[sel] = 1.0
            alias[sel] = sel
            deficits[no_donor] = 0.0
        donated = np.bincount(donors, weights=deficits, minlength=large.size)
        act_large -= donated
        act = np.maximum(act_large, 0.0, out=act_large)
        active = large
        act_seg = large_segs
        passes += 1
    if active.size:
        cuts = np.nonzero(act_seg[1:] != act_seg[:-1])[0] + 1
        bounds = [0, *cuts.tolist(), int(active.size)]
        if HAVE_JIT:
            for lo, hi in zip(bounds, bounds[1:]):
                idx, fprob, falias = kernels_jit.finish_tail(active[lo:hi], act[lo:hi])
                prob[idx] = fprob
                alias[idx] = falias
        else:
            remaining = active.tolist()
            masses = act.tolist()
            fin_idx: List[int] = []
            fin_prob: List[float] = []
            fin_alias: List[int] = []
            for lo, hi in zip(bounds, bounds[1:]):
                _vose_finish(
                    remaining[lo:hi],
                    masses[lo:hi],
                    fin_idx,
                    fin_prob,
                    fin_alias,
                )
            if fin_idx:
                idx = np.asarray(fin_idx, dtype=np.intp)
                prob[idx] = fin_prob
                alias[idx] = fin_alias
    alias -= seg_starts.astype(idx_t)[seg_ids]
    return prob, alias


def build_alias_tables_packed(
    weights_matrix: Any, lengths: Any
) -> Tuple[Any, Any]:
    """Build *all rows'* alias tables in shared array passes.

    ``weights_matrix`` is a ``rows × width`` float matrix; row ``r`` is an
    independent weight vector occupying its first ``lengths[r]`` columns
    (the rest is padding and is ignored). Returns ``(prob, alias)``
    matrices of the same shape with **row-local** alias indices; padded
    columns get ``prob = 1`` and alias themselves, so a draw kernel that
    bounds its urn pick by ``lengths[r]`` never observes them.

    One call builds every alias table of one BST level, or every chunk
    table of the Theorem-3 structure. The actual construction delegates to
    :func:`build_alias_tables_flat` on the valid (non-padding) entries;
    this wrapper only handles the rectangular packing.
    """
    W = np.ascontiguousarray(weights_matrix, dtype=np.float64)
    rows, width = W.shape
    sizes = np.ascontiguousarray(lengths, dtype=np.intp)
    if rows == 1:
        # One row (e.g. a BST's root level): the single-table builder has
        # no row bookkeeping and is strictly cheaper.
        size = int(sizes[0])
        prob = np.ones((1, width))
        alias = np.arange(width, dtype=np.intp).reshape(1, width)
        if size > 0:
            prob[0, :size], alias[0, :size] = build_alias_tables_batch(W[0, :size])
        return prob, alias
    columns = np.arange(width, dtype=np.intp)
    valid = (columns < sizes[:, None]).ravel()
    flat_pos = np.nonzero(valid)[0]
    flat_prob, flat_alias = build_alias_tables_flat(W.ravel()[flat_pos], sizes)
    prob = np.ones(rows * width)
    alias = np.tile(columns, rows)
    prob[flat_pos] = flat_prob
    alias[flat_pos] = flat_alias
    return prob.reshape(rows, width), alias.reshape(rows, width)


__all__ = [
    "HAVE_NUMPY",
    "HAVE_JIT",
    "BATCH_MIN_SIZE",
    "BUILD_MIN_SIZE",
    "JIT_MIN_SIZE",
    "use_batch",
    "use_jit",
    "use_batch_build",
    "batch_generator",
    "as_alias_arrays",
    "alias_draw_batch",
    "inverse_cdf_draw_batch",
    "uniform_index_batch",
    "multinomial_split_batch",
    "bst_topdown_batch",
    "offset_concat_batch",
    "rejection_accept_batch",
    "build_alias_tables_batch",
    "build_alias_tables_flat",
    "build_alias_tables_packed",
]
