"""Integer-domain weighted range sampling (§4.3 remark, Afshani–Wei).

When ``S ⊂ [1, U]`` for an integer ``U``, the ``Θ(log n)`` endpoint-search
term of Theorem 3 can be replaced by an ``O(log log U)`` predecessor
query, giving a static structure with ``O(n)`` space and
``O(log log U + s)`` query time. The sampling machinery is unchanged —
the chunked two-level design of §4.2 — only the key search differs, so
this class composes :class:`~repro.substrates.yfast.YFastTrie` with
:class:`~repro.core.range_sampler.ChunkedRangeSampler`'s span sampler.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.range_sampler import ChunkedRangeSampler
from repro.engine.protocol import EngineOp, RangeQueryMixin
from repro.errors import BuildError, EmptyQueryError
from repro.substrates.rng import RNGLike, ensure_rng
from repro.substrates.yfast import YFastTrie
from repro.validation import validate_sample_size


class IntegerRangeSampler(RangeQueryMixin):
    """O(n) space, O(log log U + s) weighted range sampling over integers."""

    engine_ops = {
        "sample": EngineOp("sample", takes_s=True, pass_rng=True),
        "sample_indices": EngineOp("sample_indices", takes_s=True, pass_rng=True),
    }
    engine_thread_safe = True

    def __init__(
        self,
        keys: Sequence[int],
        weights: Optional[Sequence[float]] = None,
        rng: RNGLike = None,
        universe_bits: int = 0,
    ):
        if any(not isinstance(key, int) or isinstance(key, bool) for key in keys):
            raise BuildError("IntegerRangeSampler keys must be ints")
        self._rng = ensure_rng(rng)
        self._trie = YFastTrie(keys, universe_bits=universe_bits)
        # Reuse the Theorem-3 sampler for the span machinery; its own
        # key-bisect path is bypassed (we always call sample_span).
        self._chunked = ChunkedRangeSampler(
            [float(key) for key in keys], weights, rng=self._rng
        )
        self._keys: List[int] = list(keys)

    def __len__(self) -> int:
        return len(self._keys)

    @property
    def universe_bits(self) -> int:
        return self._trie.universe_bits

    def span_of(self, x: int, y: int) -> Tuple[int, int]:
        """Index span via two O(log log U) predecessor searches."""
        return self._trie.span_of(x, y)

    def sample(self, x: int, y: int, s: int, *, rng: RNGLike = None) -> List[int]:
        """``s`` independent weighted samples from ``S ∩ [x, y]``."""
        validate_sample_size(s)
        lo, hi = self._trie.span_of(x, y)
        if lo >= hi:
            raise EmptyQueryError(f"no keys in [{x}, {y}]")
        return [self._keys[i] for i in self._chunked.sample_span(lo, hi, s, rng=rng)]

    def sample_indices(self, x: int, y: int, s: int, *, rng: RNGLike = None) -> List[int]:
        validate_sample_size(s)
        lo, hi = self._trie.span_of(x, y)
        if lo >= hi:
            raise EmptyQueryError(f"no keys in [{x}, {y}]")
        return self._chunked.sample_span(lo, hi, s, rng=rng)

    def space_words(self) -> int:
        # The trie's hash levels hold O(n) prefixes total (bucketing by
        # Θ(log U) keeps representatives at n/log U).
        trie_words = sum(len(level) for level in self._trie._levels) * 2
        return trie_words + self._chunked.space_words()
