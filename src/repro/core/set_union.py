"""Set union sampling via random permutation (paper §7, Theorem 8).

Problem: ``F`` is a collection of (possibly overlapping) sets over one
domain. Given ``G ⊆ F``, return a uniformly random element of
``∪G``, independently of all previous queries' outputs.

Structure (following Aumüller et al. as refined in the paper):

* randomly permute the distinct elements of ``∪F`` and call an element's
  permutation position its *rank*;
* for each set, index its members by rank (a sorted array standing in for
  the paper's BST — same O(log n + k) rank-range reporting);
* pre-build a KMV sketch for every set of size ≥ log₂ n, so that any
  group's distinct-union size ``U_G`` can be 1.5-approximated by merging
  ``g`` sketches (small sets get on-the-fly sketches).

Query: estimate ``Û_G``, conceptually cut the rank space into ``Û_G``
equal intervals, pick one uniformly, collect the ≤ m = Θ(log n) group
members inside it, then accept the interval with probability
``|∪I|/m`` and output a uniform member. Each accepted output is uniform
over ``∪G`` (the interval length cancels), and Θ(m) repeats are needed in
expectation, for an expected query cost of ``O(g log² n)``.

Per the paper's closing remark, the structure rebuilds itself (fresh
permutation) every ``n`` queries so the failure probability stays bounded
over an unbounded query stream; the amortised rebuild cost is
``O(log n)`` per query.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from typing import Dict, Hashable, List, Optional, Sequence, TypeVar

from repro import obs
from repro.core import kernels
from repro.engine.protocol import EngineOp, EngineSampler
from repro.errors import BuildError, EmptyQueryError, SampleBudgetExceededError
from repro.substrates.rng import RNGLike, ensure_rng
from repro.substrates.sketch import KMVSketch
from repro.validation import validate_sample_size

T = TypeVar("T", bound=Hashable)

# Registry mirrors of the per-instance diagnostics below: the §7 query
# cost is Θ(m)-expected interval attempts per accepted sample, and the
# counters make attempts/query directly assertable.
_SU_QUERIES = obs.counter("set_union.queries", "Set-union samples delivered (§7)")
_SU_ATTEMPTS = obs.counter(
    "set_union.attempts", "Interval-rejection attempts across set-union queries"
)
_SU_CLAMPS = obs.counter(
    "set_union.clamp_events", "Acceptance-cap clamp events (§7 event (4) failures)"
)


class SetUnionSampler(EngineSampler):
    """Theorem 8: O(n) space, O(g log² n) expected query time.

    Parameters
    ----------
    family:
        The collection ``F``; each member is an iterable of hashable
        elements (duplicates within a set are collapsed).
    rng:
        Seed or generator.
    sketch_k:
        Bottom-k size for the distinct-count sketches (k = 64 gives the
        ±50 % accuracy the algorithm needs with large margin).
    cap_constant:
        The ``c`` in ``m = c·log₂ n`` bounding the per-interval member
        count; the acceptance coin uses this ``m``.
    rebuild_after:
        Queries between automatic rebuilds; defaults to ``n`` (the paper's
        standard rebuilding schedule). ``0`` disables rebuilding.
    """

    # Stateful (rebuild epochs, attempt counters): seeded requests execute
    # under the protocol's swap lock rather than a per-call rng.
    engine_ops = {
        "sample": EngineOp("sample_many", takes_s=True, pass_rng=False),
    }

    def __init__(
        self,
        family: Sequence[Sequence[T]],
        rng: RNGLike = None,
        sketch_k: int = 64,
        cap_constant: float = 4.0,
        rebuild_after: Optional[int] = None,
    ):
        if len(family) == 0:
            raise BuildError("set family must be non-empty")
        self._family: List[List[T]] = [list(dict.fromkeys(s)) for s in family]
        if all(len(s) == 0 for s in self._family):
            raise BuildError("set family contains only empty sets")
        self._rng = ensure_rng(rng)
        self._sketch_k = sketch_k
        self._cap_constant = cap_constant

        self._total_size = sum(len(s) for s in self._family)  # n in the paper
        if rebuild_after is None:
            rebuild_after = self._total_size
        self._rebuild_after = rebuild_after
        self._queries_since_rebuild = 0

        # Diagnostics exposed for tests and experiment E8.
        self.last_attempts = 0
        self.total_attempts = 0
        self.total_queries = 0
        self.cap_clamp_events = 0
        self.rebuild_count = 0

        self._build()

    # ------------------------------------------------------------------
    # construction / rebuilding
    # ------------------------------------------------------------------

    def _build(self) -> None:
        universe: List[T] = list(dict.fromkeys(
            element for subset in self._family for element in subset
        ))
        self._universe_size = len(universe)  # U in the paper
        self._rng.shuffle(universe)
        rank_of: Dict[T, int] = {
            element: position + 1 for position, element in enumerate(universe)
        }
        self._rank_of = rank_of

        # Per set: member ranks sorted ascending, with aligned elements.
        self._set_ranks: List[List[int]] = []
        self._set_items: List[List[T]] = []
        for subset in self._family:
            paired = sorted((rank_of[element], element) for element in subset)
            self._set_ranks.append([rank for rank, _ in paired])
            self._set_items.append([element for _, element in paired])

        n = max(self._total_size, 2)
        self._m_cap = max(1, math.ceil(self._cap_constant * math.log2(n)))
        self._sketch_threshold = max(1.0, math.log2(n))
        self._salt = self._rng.getrandbits(63)
        self._sketches: List[Optional[KMVSketch]] = []
        for subset in self._family:
            if len(subset) >= self._sketch_threshold:
                self._sketches.append(
                    KMVSketch.from_items(subset, k=self._sketch_k, salt=self._salt)
                )
            else:
                self._sketches.append(None)
        self._queries_since_rebuild = 0

    def rebuild(self) -> None:
        """Draw a fresh permutation and re-index (the §7 remark)."""
        self.rebuild_count += 1
        self._build()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._family)

    @property
    def total_size(self) -> int:
        """``n``: total size of all the sets."""
        return self._total_size

    @property
    def universe_size(self) -> int:
        """``U``: number of distinct elements in ``∪F``."""
        return self._universe_size

    @property
    def interval_cap(self) -> int:
        """``m = c log₂ n``: per-interval member bound used by the coin."""
        return self._m_cap

    def union_size_estimate(self, group: Sequence[int]) -> float:
        """``Û_G`` from merged sketches, without reading the large sets."""
        merged: Optional[KMVSketch] = None
        for set_index in group:
            sketch = self._sketches[set_index]
            if sketch is None:
                # Small set (size < log₂ n): sketch built on the fly (§7).
                sketch = KMVSketch.from_items(
                    self._family[set_index], k=self._sketch_k, salt=self._salt
                )
            merged = sketch if merged is None else merged.merge(sketch)
        if merged is None:
            raise EmptyQueryError("empty group G")
        return merged.estimate()

    def exact_union_size(self, group: Sequence[int]) -> int:
        """Exact ``U_G`` (reads the sets; for tests and baselines only)."""
        distinct = set()
        for set_index in group:
            distinct.update(self._family[set_index])
        return len(distinct)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def _members_in_rank_interval(
        self, group: Sequence[int], rank_lo: int, rank_hi: int
    ) -> Dict[int, T]:
        """``∪I``: group members with rank in [rank_lo, rank_hi], deduped.

        The same element appearing in several sets of G carries the same
        rank, so deduplication keys on rank.
        """
        members: Dict[int, T] = {}
        for set_index in group:
            ranks = self._set_ranks[set_index]
            items = self._set_items[set_index]
            lo = bisect_left(ranks, rank_lo)
            hi = bisect_right(ranks, rank_hi)
            for position in range(lo, hi):
                members[ranks[position]] = items[position]
        return members

    def sample(self, group: Sequence[int], max_attempts: Optional[int] = None) -> T:
        """One uniform, independent sample from ``∪G``.

        Raises :class:`EmptyQueryError` if the union is empty and
        :class:`SampleBudgetExceededError` if the Θ(m)-expected-repeats
        loop exceeds its budget (a probability-o(1) event).
        """
        group = list(group)
        if not group:
            raise EmptyQueryError("empty group G")
        for set_index in group:
            if not 0 <= set_index < len(self._family):
                raise IndexError(f"set index {set_index} out of range")
        if all(len(self._family[i]) == 0 for i in group):
            raise EmptyQueryError("union of the queried sets is empty")

        if self._rebuild_after and self._queries_since_rebuild >= self._rebuild_after:
            self.rebuild()

        estimate = max(1.0, self.union_size_estimate(group))
        num_intervals = max(1, int(round(estimate)))
        interval_length = self._universe_size / num_intervals
        m = self._m_cap
        rng = self._rng

        budget = max_attempts if max_attempts is not None else 500 * m + 1000
        attempts = 0
        while True:
            attempts += 1
            if attempts > budget:
                self.last_attempts = attempts
                self.total_attempts += attempts
                raise SampleBudgetExceededError(
                    f"set-union sampling exceeded {budget} attempts for G={group!r}"
                )
            j = int(rng.random() * num_intervals)
            if j == num_intervals:
                j -= 1
            rank_lo = int(j * interval_length) + 1
            rank_hi = int((j + 1) * interval_length)
            if rank_hi < rank_lo:
                continue
            members = self._members_in_rank_interval(group, rank_lo, rank_hi)
            if not members:
                continue
            acceptance = len(members) / m
            if acceptance > 1.0:
                # Event (4) of §7 failed for this interval; clamping keeps
                # the output valid with a (bounded, counted) bias.
                self.cap_clamp_events += 1
                if obs.ENABLED:
                    _SU_CLAMPS.inc()
                acceptance = 1.0
            if rng.random() < acceptance:
                ranks = list(members.keys())
                chosen = ranks[int(rng.random() * len(ranks))]
                self.last_attempts = attempts
                self.total_attempts += attempts
                self.total_queries += 1
                self._queries_since_rebuild += 1
                if obs.ENABLED:
                    _SU_QUERIES.inc()
                    _SU_ATTEMPTS.add(attempts)
                return members[chosen]

    def sample_many(self, group: Sequence[int], s: int) -> List[T]:
        """``s`` independent uniform samples from ``∪G``.

        The batch path runs the same interval-rejection procedure as
        :meth:`sample`, but proposes whole blocks of intervals per numpy
        call: interval choice, rank-range counting (one vectorized binary
        search over the group's merged rank array) and the acceptance
        coins are all batched, and only accepted intervals ever touch
        Python-level code. Rebuild scheduling is preserved by chunking the
        batch at rebuild boundaries.
        """
        validate_sample_size(s)
        if not kernels.use_batch(s):
            return [self.sample(group) for _ in range(s)]
        group = list(group)
        if not group:
            raise EmptyQueryError("empty group G")
        for set_index in group:
            if not 0 <= set_index < len(self._family):
                raise IndexError(f"set index {set_index} out of range")
        if all(len(self._family[i]) == 0 for i in group):
            raise EmptyQueryError("union of the queried sets is empty")

        result: List[T] = []
        while len(result) < s:
            if self._rebuild_after and self._queries_since_rebuild >= self._rebuild_after:
                self.rebuild()
            chunk = s - len(result)
            if self._rebuild_after:
                chunk = min(chunk, self._rebuild_after - self._queries_since_rebuild)
            result.extend(self._sample_batch(group, chunk))
        return result

    def _sample_batch(self, group: Sequence[int], count: int) -> List[T]:
        """``count`` batched draws under the current permutation epoch."""
        np = kernels.np
        gen = kernels.batch_generator(self._rng)

        # Distinct ranks of the group's members under the current
        # permutation (the batched analogue of the per-interval dedup in
        # ``_members_in_rank_interval``), plus one representative element
        # per rank for output materialisation.
        rank_blocks = [
            np.asarray(self._set_ranks[set_index], dtype=np.int64)
            for set_index in group
        ]
        merged, first_seen = np.unique(np.concatenate(rank_blocks), return_index=True)
        all_items: List[T] = []
        for set_index in group:
            all_items.extend(self._set_items[set_index])
        item_by_position = [all_items[j] for j in first_seen.tolist()]

        estimate = max(1.0, self.union_size_estimate(group))
        num_intervals = max(1, int(round(estimate)))
        interval_length = self._universe_size / num_intervals
        m = self._m_cap

        result: List[T] = []
        budget = (500 * m + 1000) * count
        attempts_used = 0
        while len(result) < count:
            if attempts_used >= budget:
                raise SampleBudgetExceededError(
                    f"set-union sampling exceeded {budget} attempts for G={list(group)!r}"
                )
            need = count - len(result)
            block = min(max(64, 2 * need * m), budget - attempts_used, 1 << 17)
            j = np.minimum(
                (gen.random(block) * num_intervals).astype(np.int64), num_intervals - 1
            )
            rank_lo = (j * interval_length).astype(np.int64) + 1
            rank_hi = ((j + 1) * interval_length).astype(np.int64)
            lo_pos = np.searchsorted(merged, rank_lo, side="left")
            hi_pos = np.searchsorted(merged, rank_hi, side="right")
            counts = hi_pos - lo_pos
            occupied = (rank_hi >= rank_lo) & (counts > 0)
            acceptance = counts / m
            clamped = occupied & (acceptance > 1.0)
            coins = gen.random(block)
            accepted = occupied & (coins < np.minimum(acceptance, 1.0))

            # Only attempts up to (and including) the one producing the
            # last needed sample count as "examined" — matching the scalar
            # loop, which stops at the s-th acceptance.
            cumulative = np.cumsum(accepted)
            if cumulative[-1] >= need:
                cutoff = int(np.searchsorted(cumulative, need))
                examined = cutoff + 1
            else:
                cutoff = block - 1
                examined = block
            attempts_used += examined
            self.total_attempts += examined
            clamp_count = int(clamped[: cutoff + 1].sum())
            self.cap_clamp_events += clamp_count
            if obs.ENABLED:
                _SU_ATTEMPTS.add(examined)
                _SU_CLAMPS.add(clamp_count)

            hit = np.nonzero(accepted[: cutoff + 1])[0]
            if len(hit) == 0:
                continue
            picks = gen.random(len(hit))
            positions = lo_pos[hit] + np.minimum(
                (picks * counts[hit]).astype(np.int64), counts[hit] - 1
            )
            result.extend(item_by_position[p] for p in positions.tolist())
            # Batch-path diagnostic: mean attempts per produced sample.
            self.last_attempts = max(1, examined // len(hit))
            self.total_queries += len(hit)
            self._queries_since_rebuild += len(hit)
            if obs.ENABLED:
                _SU_QUERIES.add(len(hit))
        return result
