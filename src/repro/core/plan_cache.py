"""Bounded LRU cache for deterministic query plans.

The range samplers split every query ``[x, y]`` into a *plan* — the
canonical cover and its cover-level alias tables
(:class:`~repro.core.range_sampler.TreeWalkRangeSampler`), or the
Figure-2 ``query_split`` plus the partial-chunk alias tables
(:class:`~repro.core.range_sampler.ChunkedRangeSampler`). A plan is a
pure function of the *structure* and the query span: computing it
consumes no randomness. Memoizing plans therefore cannot compromise the
IQS guarantee — repeated queries still draw fresh randomness through the
sampler's RNG stream, and a warm-cache run produces byte-identical
samples to a cold-cache run under the same seed (asserted in
``tests/core/test_plan_cache.py``).

What caching buys is the serving regime Afshani–Phillips and Huang–Wang
highlight: many queries skewed toward hot ranges, each wanting a batch of
draws. There the per-query O(log n) cover walk and table build dominate
the O(1)-per-draw sampling; a cache hit removes them entirely.

Capacity is resolved, in order, from the constructor argument and the
``REPRO_PLAN_CACHE_SIZE`` environment variable, falling back to
:data:`DEFAULT_CAPACITY`. Capacity 0 disables caching outright (every
lookup is a bypass; counters stay at zero). Hit/miss/eviction counters
are exposed for observability and asserted in tests.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Hashable, Optional

from repro import obs
from repro.substrates.env import env_int

# Registry-backed counters (repro.obs), aggregated across every cache in
# the process; the per-instance ints remain for the ``stats()`` shim.
_HITS = obs.counter("plan_cache.hits", "Query-plan cache hits (all caches)")
_MISSES = obs.counter("plan_cache.misses", "Query-plan cache misses (all caches)")
_EVICTIONS = obs.counter("plan_cache.evictions", "Query-plan cache LRU evictions")

#: Plans kept per sampler when neither the constructor argument nor the
#: environment variable overrides it. Sized for a hot-range working set:
#: each plan is O(log n) ids and floats, so the cache is a few kilobytes.
DEFAULT_CAPACITY = 256

#: Environment variable consulted when no capacity argument is given.
ENV_CAPACITY = "REPRO_PLAN_CACHE_SIZE"

_MISSING = object()


def resolve_capacity(capacity: Optional[int] = None) -> int:
    """Resolve a cache capacity from the argument or the environment."""
    if capacity is None:
        capacity = env_int(ENV_CAPACITY, DEFAULT_CAPACITY)
    if capacity < 0:
        raise ValueError(f"plan cache capacity must be >= 0, got {capacity}")
    return capacity


class QueryPlanCache:
    """LRU map from a query key (e.g. a ``(lo, hi)`` span) to its plan.

    Parameters
    ----------
    capacity:
        Maximum number of plans retained; least-recently-used plans are
        evicted first. ``None`` defers to ``REPRO_PLAN_CACHE_SIZE`` and
        then :data:`DEFAULT_CAPACITY`; ``0`` disables the cache.

    Attributes
    ----------
    hits, misses, evictions:
        Monotone counters. A disabled cache (capacity 0) records nothing.
    """

    __slots__ = ("_capacity", "_entries", "_lock", "hits", "misses", "evictions")

    def __init__(self, capacity: Optional[int] = None):
        self._capacity = resolve_capacity(capacity)
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        # The engine's thread backend drives concurrent queries through
        # one sampler; move_to_end/popitem are not atomic, so reads take
        # the lock too (plan computation itself stays outside it).
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def enabled(self) -> bool:
        return self._capacity > 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable) -> Any:
        """The cached plan for ``key``, or ``None`` (recorded as a miss)."""
        if self._capacity == 0:
            return None
        with self._lock:
            entry = self._entries.get(key, _MISSING)
            if entry is _MISSING:
                self.misses += 1
                if obs.ENABLED:
                    _MISSES.inc()
                return None
            self._entries.move_to_end(key)
            self.hits += 1
        if obs.ENABLED:
            _HITS.inc()
        return entry

    def put(self, key: Hashable, plan: Any) -> None:
        """Insert (or refresh) a plan, evicting the LRU entry if full."""
        if self._capacity == 0:
            return
        evicted = False
        with self._lock:
            entries = self._entries
            if key in entries:
                entries.move_to_end(key)
            entries[key] = plan
            if len(entries) > self._capacity:
                entries.popitem(last=False)
                self.evictions += 1
                evicted = True
        if evicted and obs.ENABLED:
            _EVICTIONS.inc()

    def clear(self) -> None:
        """Drop all plans; counters are preserved."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> Dict[str, int]:
        """Counter snapshot: hits, misses, evictions, size, capacity.

        Thin shim kept for backward compatibility: the authoritative,
        process-wide counters now live in the ``repro.obs`` registry
        (``plan_cache.hits`` / ``.misses`` / ``.evictions``, populated
        when ``REPRO_METRICS`` is enabled, with a derived
        ``plan_cache.hit_rate``). This method reports the bespoke
        *per-instance* tallies, which record regardless of the metrics
        switch.
        """
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": len(self._entries),
            "capacity": self._capacity,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"QueryPlanCache(capacity={self._capacity}, size={len(self._entries)}, "
            f"hits={self.hits}, misses={self.misses}, evictions={self.evictions})"
        )


__all__ = [
    "QueryPlanCache",
    "DEFAULT_CAPACITY",
    "ENV_CAPACITY",
    "resolve_capacity",
]
