"""Backward-compatible facade over the query-planning layer.

The bounded per-instance LRU that lived here (``QueryPlanCache``) has
been rebuilt around :mod:`repro.core.planner`: plans are now
:class:`~repro.core.planner.QueryPlan` values held in a shared
:class:`~repro.core.planner.PlanStore` (keyed by structure fingerprint ×
plan kind × canonical range), and each sampler's ``plan_cache``
attribute is a :class:`~repro.core.planner.PlanScope` view of it.

``QueryPlanCache`` remains importable for existing callers and tests:
it is a :class:`PlanScope` bound to a *private* single-owner store, so
its LRU mechanics, counters, capacity resolution
(``REPRO_PLAN_CACHE_SIZE`` / :data:`DEFAULT_CAPACITY`) and the
capacity-0 kill switch behave exactly as before. New code should use
:func:`repro.core.planner.plan_scope` (joins the shared engine-scoped
store) and read cache stats from the obs ``plan_cache.*`` counters; the
``stats()`` method is deprecated.
"""

from __future__ import annotations

from typing import Optional

from repro.core.planner import (  # noqa: F401  (re-exported compatibility names)
    DEFAULT_CAPACITY,
    ENV_CAPACITY,
    PlanScope,
    PlanStore,
    resolve_capacity,
)


class QueryPlanCache(PlanScope):
    """A single-owner plan cache: one private LRU store, one scope.

    Kept as the compatibility shape for code (and shared-memory
    manifests) that sized caches per sampler; the mechanics all live in
    :class:`~repro.core.planner.PlanStore` now.
    """

    __slots__ = ()

    def __init__(self, capacity: Optional[int] = None):
        super().__init__(PlanStore(capacity), "legacy")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"QueryPlanCache(capacity={self.capacity}, size={len(self)}, "
            f"hits={self.hits}, misses={self.misses}, evictions={self.evictions})"
        )


__all__ = [
    "QueryPlanCache",
    "DEFAULT_CAPACITY",
    "ENV_CAPACITY",
    "resolve_capacity",
]
