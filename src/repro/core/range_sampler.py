"""Weighted range sampling structures (paper §3.2 and §4).

Problem (§3.2): ``S`` holds ``n`` weighted reals; a query ``([x, y], s)``
returns ``s`` independent weighted samples from ``S_q = S ∩ [x, y]``, with
all queries' outputs mutually independent.

Three structures, in increasing sophistication:

===========================  ==============  ======================
structure                    space           query time
===========================  ==============  ======================
:class:`TreeWalkRangeSampler`        O(n)            O((1 + s) log n)   (§3.2)
:class:`AliasAugmentedRangeSampler`  O(n log n)      O(log n + s)       (Lemma 2)
:class:`ChunkedRangeSampler`         O(n)            O(log n + s)       (Theorem 3)
===========================  ==============  ======================

All three share the same query API; every query's output is independent of
all previous outputs because each draw consumes fresh randomness.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from typing import Any, ClassVar, List, Optional, Sequence, Tuple

from repro import obs
from repro.core import kernels
from repro.core.alias import AliasTables, alias_draw, build_alias_tables
from repro.core.planner import QueryPlan, plan_scope
from repro.core.schemes import multinomial_split
from repro.engine.protocol import RangeQueryMixin
from repro.errors import BuildError, EmptyQueryError
from repro.substrates.bst import NO_CHILD, StaticBST
from repro.substrates.fenwick import FenwickTree
from repro.substrates.rng import RNGLike, ensure_rng
from repro.validation import validate_sample_size, validate_weights

# ----------------------------------------------------------------------
# repro.obs cost accounting: the quantities the §3.2/§4 theorems bound.
# All increments are guarded by ``obs.ENABLED`` at call (or per-cover-
# part) granularity so the disabled path stays uninstrumented-fast.
# ----------------------------------------------------------------------
_TW_QUERIES = obs.counter("range.treewalk.queries", "TreeWalk (§3.2) queries")
_TW_DRAWS = obs.counter("range.treewalk.draws", "TreeWalk samples drawn")
_TW_VISITS = obs.counter(
    "range.treewalk.node_visits",
    "BST nodes touched by TreeWalk descents (O(s log n) per query, §3.2)",
)
_L2_QUERIES = obs.counter("range.lemma2.queries", "Alias-augmented (Lemma 2) queries")
_L2_DRAWS = obs.counter("range.lemma2.draws", "Lemma-2 samples drawn")
_L2_PROBES = obs.counter(
    "range.lemma2.urn_probes",
    "Per-node alias-urn probes (<= s per query: O(log n + s), Lemma 2)",
)
_CH_QUERIES = obs.counter("range.chunked.queries", "Chunked (Theorem 3) queries")
_CH_DRAWS = obs.counter("range.chunked.draws", "Theorem-3 samples drawn")
_CH_TOUCHES = obs.counter(
    "range.chunked.chunk_touches",
    "Distinct chunks touched per Theorem-3 query (partial + aligned)",
)
_WOR_DRAWS = obs.counter("wor.draws", "Without-replacement samples delivered")
_WOR_REJECTIONS = obs.counter(
    "wor.rejections",
    "Duplicate rejections in the WoR loop (expected O(1)/draw for s <= |S_q|/2)",
)


class RangeSamplerBase(RangeQueryMixin):
    """Shared plumbing for samplers over a sorted weighted point set.

    Implements the engine protocol (:mod:`repro.engine`): requests with
    op ``"sample"`` / ``"sample_indices"`` / ``"sample_wor"`` and
    ``args=(x, y)`` dispatch to the methods below, and every query method
    accepts a keyword-only ``rng`` override so a batch executor can run
    each request on its own independent stream (``None`` keeps the
    instance stream — the byte-identical legacy behaviour).

    Planful subclasses (``plan_kind`` set) additionally implement the
    plan → execute split: :meth:`plan_span` returns a deterministic
    :class:`~repro.core.planner.QueryPlan` (cached through the shared
    plan store; consumes **no** randomness), :meth:`execute_plan` spends
    the randomness, and :meth:`sample_span` is the thin compose of the
    two. The split is what lets the engine plan once per request and
    ship the plan to shard executions.
    """

    #: Plan-kind tag for planful subclasses; ``None`` marks a sampler
    #: whose queries have no reusable plan (naive scans, etc.).
    plan_kind: ClassVar[Optional[str]] = None

    def __init__(self, keys: Sequence[float], weights: Optional[Sequence[float]] = None):
        if len(keys) == 0:
            raise BuildError("range sampler requires at least one key")
        increasing = None
        if kernels.use_batch_build(len(keys)):
            np = kernels.np
            try:
                key_arr = np.asarray(keys, dtype=np.float64)
            except (TypeError, ValueError):
                key_arr = None
            if key_arr is not None and key_arr.ndim == 1 and key_arr.size == len(keys):
                increasing = bool((key_arr[1:] > key_arr[:-1]).all())
        if increasing is None:
            increasing = all(keys[i - 1] < keys[i] for i in range(1, len(keys)))
        if not increasing:
            raise BuildError("range sampler keys must be strictly increasing")
        if weights is None:
            weights = [1.0] * len(keys)
        if len(weights) != len(keys):
            raise BuildError(f"got {len(keys)} keys but {len(weights)} weights")
        self.keys: List[float] = list(keys)
        self.weights: List[float] = validate_weights(weights, context=type(self).__name__)
        # Precomputed once so WoR queries need not scan their span to
        # detect the uniform case (previously an O(span) probe per query).
        self._all_weights_equal = self._weights_all_equal()

    def _weights_all_equal(self) -> bool:
        w = self.weights
        if kernels.HAVE_NUMPY and len(w) >= kernels.BUILD_MIN_SIZE:
            arr = kernels.np.asarray(w, dtype=kernels.np.float64)
            return bool((arr == arr[0]).all())
        first = w[0]
        return all(value == first for value in w)

    def __len__(self) -> int:
        return len(self.keys)

    def span_of(self, x: float, y: float) -> Tuple[int, int]:
        """Half-open sorted-index range of keys in ``[x, y]``."""
        if x > y:
            return 0, 0
        return bisect_left(self.keys, x), bisect_right(self.keys, y)

    def sample(
        self, x: float, y: float, s: int, *, rng: RNGLike = None
    ) -> List[float]:
        """Draw ``s`` independent weighted samples (as key values) from
        ``S ∩ [x, y]``.

        ``rng`` overrides the instance stream for this call (used by the
        engine to give each batched request its own independent stream);
        ``None`` consumes the instance stream as always.

        Raises :class:`EmptyQueryError` when the interval holds no keys.
        """
        return [self.keys[i] for i in self.sample_indices(x, y, s, rng=rng)]

    def sample_indices(
        self, x: float, y: float, s: int, *, rng: RNGLike = None
    ) -> List[int]:
        """Like :meth:`sample` but returns sorted-order element indices."""
        validate_sample_size(s)
        lo, hi = self.span_of(x, y)
        if lo >= hi:
            raise EmptyQueryError(f"no keys in [{x}, {y}]")
        if obs.ENABLED:
            with obs.span(
                "range.query", structure=type(self).__name__, s=s, span=hi - lo
            ):
                return self.sample_span(lo, hi, s, rng=rng)
        return self.sample_span(lo, hi, s, rng=rng)

    def sample_span(
        self, lo: int, hi: int, s: int, rng: RNGLike = None
    ) -> List[int]:
        """Draw ``s`` weighted samples from the index range ``[lo, hi)``.

        Exposed separately because tree sampling (§5) reduces subtree
        queries to *index-range* queries over the DFS leaf order
        (Proposition 1), where the range is known without key search.
        """
        raise NotImplementedError

    # -- plan → execute split (planful subclasses) ---------------------

    def plan_span(self, lo: int, hi: int, *, portable: Any = None) -> QueryPlan:
        """The (memoized) :class:`QueryPlan` for the index range
        ``[lo, hi)``.

        Planning is a pure function of the structure and the span — it
        consumes no randomness, which is the property that makes both
        caching and cross-process shipping of plans safe. ``portable``
        optionally carries a :meth:`QueryPlan.portable` hint from a plan
        built elsewhere (the parent process, under sharded placement),
        letting this sampler materialize the plan without redoing the
        cover search.
        """
        if self.plan_kind is None:
            raise NotImplementedError(
                f"{type(self).__name__} has no query-plan layer"
            )
        plan = self.plan_cache.get((lo, hi))
        if plan is None:
            hint = None
            if portable is not None:
                kind, key, hint = portable
                if kind != self.plan_kind or key != (lo, hi):
                    hint = None  # foreign hint: fall back to a local build
            if obs.ENABLED:
                with obs.span("plan.build", kind=self.plan_kind, span=hi - lo):
                    plan = self._build_plan(lo, hi, hint=hint)
            else:
                plan = self._build_plan(lo, hi, hint=hint)
            self.plan_cache.put((lo, hi), plan)
        return plan

    def _build_plan(self, lo: int, hi: int, hint: Any = None) -> QueryPlan:
        """Build the plan for ``[lo, hi)`` (subclass hook).

        ``hint`` is this sampler kind's plain-data decomposition summary
        (from :meth:`QueryPlan.portable`); when present the cover search
        is skipped and only the local draw state is resolved.
        """
        raise NotImplementedError

    def execute_plan(
        self, plan: QueryPlan, s: int, rng: RNGLike = None
    ) -> List[int]:
        """Draw ``s`` samples from a plan (all randomness spent here).

        Assumes a plan built by this sampler (or rebuilt from its
        portable form) and ``s >= 1``; :meth:`sample_span` is the
        validating compose.
        """
        raise NotImplementedError

    def plan_request(self, request) -> QueryPlan:
        """Plan an engine request without executing any draws.

        Backs ``python -m repro engine run --explain``: validates the
        request, resolves the key span, and returns the plan that
        executing the request would consume.
        """
        self.validate_request(request)
        x, y = request.args
        lo, hi = self.span_of(x, y)
        if lo >= hi:
            raise EmptyQueryError(f"no keys in [{x}, {y}]")
        return self.plan_span(lo, hi)

    def sample_without_replacement(
        self, x: float, y: float, s: int, *, rng: RNGLike = None
    ) -> List[float]:
        """A WoR sample of ``s`` distinct elements of ``S ∩ [x, y]`` (§1).

        Uniform weights: duplicate-rejection over the WR sampler —
        expected ``O(log n + s)`` when ``s ≤ |S_q|/2``, falling back to a
        Floyd draw over the index span when ``s`` is a large fraction of
        the result. Non-uniform weights: successive weighted sampling
        (weighted draws conditioned on distinctness), the standard
        weighted-WoR design.
        """
        validate_sample_size(s)
        lo, hi = self.span_of(x, y)
        population = hi - lo
        if population == 0:
            raise EmptyQueryError(f"no keys in [{x}, {y}]")
        if s > population:
            raise EmptyQueryError(
                f"range holds {population} < s={s} keys (WoR needs s <= |S_q|)"
            )
        # Build-time flag instead of the former O(span) per-query probe;
        # a locally-uniform span of a globally non-uniform set now takes
        # the successive-weighted path, which draws from the identical
        # distribution (weighted WoR over equal weights is uniform WoR).
        uniform = self._all_weights_equal
        if rng is None:
            rng = getattr(self, "_rng", None)
        else:
            # Normalise a seed once, before the rejection loop: re-seeding
            # per attempt would redraw the same element forever.
            rng = ensure_rng(rng)
        if uniform and s > population // 2:
            from repro.core.schemes import uniform_indices_without_replacement

            indices = uniform_indices_without_replacement(lo, hi, s, rng=rng)
            if obs.ENABLED:
                _WOR_DRAWS.add(s)  # Floyd path: no rejections by design
            return [self.keys[i] for i in indices]
        seen = set()
        ordered: List[float] = []
        budget = 64 * s + 16 * population
        attempts = 0
        while len(ordered) < s:
            attempts += 1
            if attempts > budget:
                raise EmptyQueryError(
                    "WoR rejection budget exhausted (extremely skewed weights); "
                    "reduce s or use uniform weights"
                )
            (index,) = self.sample_span(lo, hi, 1, rng=rng)
            if index not in seen:
                seen.add(index)
                ordered.append(self.keys[index])
        if obs.ENABLED:
            # Lemma-2-shaped accounting: attempts - s duplicate rejections
            # over s delivered draws; expected O(1)/draw while s <= |S_q|/2
            # (asserted across n in tests/obs/test_instrumentation.py).
            _WOR_DRAWS.add(s)
            _WOR_REJECTIONS.add(attempts - s)
        return ordered

    def space_words(self) -> int:
        """Approximate structure size in machine words (for experiment E4)."""
        raise NotImplementedError


class TreeWalkRangeSampler(RangeSamplerBase):
    """§3.2 structure: BST + per-node child-sampling; O(s log n) query.

    For each sample: pick a canonical node weighted by ``w(u)``, then walk
    the tree downward choosing children with probability proportional to
    subtree weight. With binary fanout the child choice is a single biased
    coin, which is exactly the fanout-2 alias structure of §3.2.

    Repeated spans reuse their canonical cover and cover-level alias
    tables as a :class:`~repro.core.planner.QueryPlan` through the
    shared plan store (``plan_cache_size`` constructor knob /
    ``REPRO_PLAN_CACHE_SIZE`` env var; 0 disables) — the plan is
    deterministic, so caching leaves every query's output distribution
    and independence untouched.
    """

    plan_kind = "treewalk"

    def __init__(
        self,
        keys: Sequence[float],
        weights: Optional[Sequence[float]] = None,
        rng: RNGLike = None,
        plan_cache_size: Optional[int] = None,
    ):
        super().__init__(keys, weights)
        self._tree = StaticBST(self.keys, self.weights)
        self._rng = ensure_rng(rng)
        self._np_tree = None  # numpy copy of the BST arrays, built lazily
        self.plan_cache = plan_scope(self.plan_kind, plan_cache_size)

    def _build_plan(self, lo: int, hi: int, hint: Any = None) -> QueryPlan:
        """Cover + cover-level alias tables for ``[lo, hi)``.

        The payload is ``(cover, prob, alias, np_slot)`` where
        ``np_slot`` lazily holds the numpy views used by the batch path;
        the hint is the cover node ids, from which a worker process can
        rebuild the plan without redoing the O(log n) cover search.
        """
        tree = self._tree
        cover = list(hint) if hint is not None else tree.canonical_nodes_for_span(lo, hi)
        cover_weights = [tree.node_weight(u) for u in cover]
        prob, alias = build_alias_tables(cover_weights)
        return QueryPlan(
            self.plan_kind,
            (lo, hi),
            spans=tuple(tree.leaf_span(u) for u in cover),
            weights=tuple(cover_weights),
            payload=(cover, prob, alias, [None]),
            hint=tuple(cover),
        )

    def sample_span(
        self, lo: int, hi: int, s: int, rng: RNGLike = None
    ) -> List[int]:
        validate_sample_size(s)
        if lo >= hi:
            raise EmptyQueryError("empty index range")
        return self.execute_plan(self.plan_span(lo, hi), s, rng=rng)

    def execute_plan(
        self, plan: QueryPlan, s: int, rng: RNGLike = None
    ) -> List[int]:
        tree = self._tree
        rng = self._rng if rng is None else rng
        enabled = obs.ENABLED
        if enabled:
            _TW_QUERIES.inc()
            _TW_DRAWS.add(s)
        cover, prob, alias, np_slot = plan.payload
        if kernels.use_batch(s):
            return self._sample_span_batch(cover, prob, alias, np_slot, s, rng)
        # Local bindings for the packed node lists: the walk is the hot
        # loop of the O((1 + s) log n) query, and attribute/method dispatch
        # per level would double its cost.
        lefts, _, node_weights, span_lo = tree.packed_arrays()
        random = rng.random
        result: List[int] = []
        if enabled:
            # Instrumented twin of the walk below: identical draws (same
            # RNG call sequence), plus a node-visit count for the §3.2
            # cost accounting. Kept separate so the disabled path carries
            # no per-level bookkeeping at all.
            visits = 0
            for _ in range(s):
                node = cover[alias_draw(prob, alias, rng)]
                visits += 1
                child = lefts[node]
                while child != NO_CHILD:
                    visits += 1
                    if random() * node_weights[node] < node_weights[child]:
                        node = child
                    else:
                        node = child + 1
                    child = lefts[node]
                result.append(span_lo[node])
            _TW_VISITS.add(visits)
            return result
        for _ in range(s):
            node = cover[alias_draw(prob, alias, rng)]
            child = lefts[node]
            while child != NO_CHILD:
                # BFS construction assigns sibling ids consecutively, so
                # the right child is always left + 1.
                if random() * node_weights[node] < node_weights[child]:
                    node = child
                else:
                    node = child + 1
                child = lefts[node]
            result.append(span_lo[node])
        return result

    def _sample_span_batch(
        self, cover, prob, alias, np_slot, s: int, rng: RNGLike = None
    ) -> List[int]:
        """Batched §3.2 walk: draw all cover nodes, then descend all
        ``s`` tokens level-by-level in vectorized steps."""
        np = kernels.np
        if self._np_tree is None:
            left, right, node_weight, span_lo = self._tree.packed_arrays()
            self._np_tree = (
                np.asarray(left, dtype=np.intp),
                np.asarray(right, dtype=np.intp),
                np.asarray(node_weight, dtype=np.float64),
                np.asarray(span_lo, dtype=np.intp),
            )
        left, right, node_weight, span_lo = self._np_tree
        gen = kernels.batch_generator(self._rng if rng is None else rng)
        if np_slot[0] is None:
            np_prob, np_alias = kernels.as_alias_arrays(prob, alias)
            np_slot[0] = (np.asarray(cover, dtype=np.intp), np_prob, np_alias)
        cover_ids, np_prob, np_alias = np_slot[0]
        starts = cover_ids[kernels.alias_draw_batch(np_prob, np_alias, s, gen)]
        visit_out = [0] if obs.ENABLED else None
        leaves = kernels.bst_topdown_batch(
            left, right, node_weight, starts, gen, visit_out=visit_out
        )
        if visit_out is not None:
            # Same convention as the scalar walk: one visit for each
            # token's cover node plus one per descent step.
            _TW_VISITS.add(s + visit_out[0])
        return span_lo[leaves].tolist()

    def space_words(self) -> int:
        # 6 words per node (children, span, key, weight), 2n-1 nodes.
        return 6 * self._tree.node_count


class AliasAugmentedRangeSampler(RangeSamplerBase):
    """Lemma 2 structure: alias tables at every BST node.

    Space ``O(n log n)`` (each of the ``O(log n)`` levels stores ``O(n)``
    urns); query time ``O(log n + s)``: find the canonical cover, split the
    ``s`` draws multinomially across it (§4.1), then answer each part from
    that node's pre-built alias structure in O(1) per sample.
    """

    plan_kind = "lemma2"

    def __init__(
        self,
        keys: Sequence[float],
        weights: Optional[Sequence[float]] = None,
        rng: RNGLike = None,
        plan_cache_size: Optional[int] = None,
    ):
        super().__init__(keys, weights)
        self._tree = StaticBST(self.keys, self.weights)
        self._rng = ensure_rng(rng)
        # Per-node alias tables over the node's leaf span. Leaves are
        # trivial (single element), so store tables for internal nodes only.
        self._node_tables: List[Optional[AliasTables]] = [None] * self._tree.node_count
        self._flat_tables: Optional[tuple] = None
        self._table_entry_count = 0
        if kernels.use_batch_build(len(self.keys)):
            self._build_node_tables_packed()
        else:
            for node in self._tree.iter_nodes():
                if not self._tree.is_leaf(node):
                    node_lo, node_hi = self._tree.leaf_span(node)
                    self._node_tables[node] = build_alias_tables(
                        self.weights[node_lo:node_hi]
                    )
                    self._table_entry_count += node_hi - node_lo
        # numpy copies of per-node tables, converted on first batched use
        # (already present when the packed builder ran).
        self._np_node_tables: dict = {}
        self.plan_cache = plan_scope(self.plan_kind, plan_cache_size)

    def _build_node_tables_packed(self) -> None:
        """Build *every* internal node's urn table in one flat kernel call.

        Each internal node's table is over a contiguous weight slice
        ``weights[lo:hi]``, so the whole structure — all ``O(n)`` tables
        across all ``O(log n)`` BST levels, ``O(n log n)`` urns total —
        concatenates into one ragged instance for
        :func:`kernels.build_alias_tables_flat`. One pass loop replaces
        per-level (let alone per-node) construction, which is where the
        measured build speedup comes from: numpy dispatch overhead is paid
        per pass over the full structure, not per level.

        Only the flat arrays are stored here; per-node slice views
        materialize on first touch via :meth:`_node_table` — creating
        ``Θ(n)`` view objects eagerly costs more than the build itself,
        and a query workload only ever touches the ``O(log n)`` nodes of
        its covers.
        """
        np = kernels.np
        tree = self._tree
        arrays = tree.numpy_arrays()
        if arrays is not None:
            w = arrays["leaf_weight"]
            left_arr = arrays["left"]
            lo_arr = arrays["lo"]
            hi_arr = arrays["hi"]
        else:
            w = np.asarray(self.weights, dtype=np.float64)
            left, _, _, _ = tree.packed_arrays()
            span_lo, span_hi = tree.span_arrays()
            left_arr = np.asarray(left, dtype=np.intp)
            lo_arr = np.asarray(span_lo, dtype=np.intp)
            hi_arr = np.asarray(span_hi, dtype=np.intp)
        internal = np.nonzero(left_arr != NO_CHILD)[0]
        if internal.size == 0:
            return
        sizes = hi_arr[internal] - lo_arr[internal]
        out_starts = np.cumsum(sizes) - sizes
        total = int(sizes.sum())
        idx_t = np.int32 if total < 2**31 else np.intp
        flat_idx = np.repeat(
            (lo_arr[internal] - out_starts).astype(idx_t), sizes
        ) + np.arange(total, dtype=idx_t)
        prob_flat, alias_flat = kernels.build_alias_tables_flat(w[flat_idx], sizes)
        self._flat_tables = (internal, out_starts, sizes, prob_flat, alias_flat)
        self._table_entry_count = total

    def _node_table(self, node: int) -> AliasTables:
        """Alias tables for internal ``node``, resolving flat slices lazily."""
        tables = self._node_tables[node]
        if tables is None:
            internal, out_starts, sizes, prob_flat, alias_flat = self._flat_tables
            j = int(kernels.np.searchsorted(internal, node))
            a = int(out_starts[j])
            b = a + int(sizes[j])
            tables = (prob_flat[a:b], alias_flat[a:b])
            self._node_tables[node] = tables
        return tables

    def _build_plan(self, lo: int, hi: int, hint: Any = None) -> QueryPlan:
        """The Lemma-2 plan for ``[lo, hi)``.

        The payload is ``(cover_weights, entries)`` where each entry is
        ``(node, node_lo, tables_or_None)`` — ``None`` marks a leaf.
        Resolving spans and tables at plan time keeps the warm-cache query
        path free of per-node tree lookups. The hint is the cover node
        ids (tables are re-resolved locally — they are views into this
        instance's structure, not shippable data).
        """
        tree = self._tree
        cover = list(hint) if hint is not None else tree.canonical_nodes_for_span(lo, hi)
        entries = []
        spans = []
        for node in cover:
            node_lo, node_hi = tree.leaf_span(node)
            spans.append((node_lo, node_hi))
            tables = None if tree.is_leaf(node) else self._node_table(node)
            entries.append((node, node_lo, tables))
        cover_weights = [tree.node_weight(u) for u in cover]
        return QueryPlan(
            self.plan_kind,
            (lo, hi),
            spans=tuple(spans),
            weights=tuple(cover_weights),
            payload=(cover_weights, entries),
            hint=tuple(cover),
        )

    def sample_span(
        self, lo: int, hi: int, s: int, rng: RNGLike = None
    ) -> List[int]:
        validate_sample_size(s)
        if lo >= hi:
            raise EmptyQueryError("empty index range")
        return self.execute_plan(self.plan_span(lo, hi), s, rng=rng)

    def execute_plan(
        self, plan: QueryPlan, s: int, rng: RNGLike = None
    ) -> List[int]:
        rng = self._rng if rng is None else rng
        enabled = obs.ENABLED
        if enabled:
            _L2_QUERIES.inc()
            _L2_DRAWS.add(s)
        cover_weights, entries = plan.payload
        counts = multinomial_split(cover_weights, s, rng)
        batched = kernels.use_batch(s)
        gen = kernels.batch_generator(rng) if batched else None
        result: List[int] = []
        probes = 0
        for (node, node_lo, tables), count in zip(entries, counts):
            if count == 0:
                continue
            if tables is None:  # leaf
                result.extend([node_lo] * count)
                continue
            if enabled:
                # Urn probes: each non-leaf draw touches exactly one urn
                # of the node's pre-built alias table (Lemma 2's O(1)
                # per-sample step). Accumulated per cover part, ≤ 2 log n
                # parts, so the bookkeeping is O(log n) per query.
                probes += count
            if batched and count >= kernels.BATCH_MIN_SIZE:
                prob, alias = self._np_tables_for(node)
                draws = kernels.alias_draw_batch(prob, alias, count, gen)
                result.extend((node_lo + draws).tolist())
            else:
                prob, alias = tables
                result.extend(
                    int(node_lo + alias_draw(prob, alias, rng)) for _ in range(count)
                )
        if enabled and probes:
            _L2_PROBES.add(probes)
        return result

    def _np_tables_for(self, node: int):
        tables = self._np_node_tables.get(node)
        if tables is None:
            prob, alias = self._node_table(node)
            if isinstance(prob, kernels.np.ndarray):
                tables = (prob, alias)  # packed build: already numpy views
            else:
                tables = kernels.as_alias_arrays(prob, alias)
            self._np_node_tables[node] = tables
        return tables

    def space_words(self) -> int:
        tree_words = 6 * self._tree.node_count
        return tree_words + 2 * self._table_entry_count


class ChunkedRangeSampler(RangeSamplerBase):
    """Theorem 3 structure: linear space, ``O(log n + s)`` query.

    The sorted keys are cut into ``g = Θ(n / log n)`` *chunks* of
    ``Θ(log n)`` consecutive keys each (§4.2). Machinery:

    * ``T_chunk`` — a Lemma-2 structure over the ``g`` chunk weights
      (``O(g log g) = O(n)`` space) answering chunk-aligned queries;
    * a Fenwick range-sum structure over chunk weights;
    * one alias structure per chunk for intra-chunk sampling.

    A general query ``[x, y]`` splits into the partial head chunk ``q1``,
    the chunk-aligned middle ``q2`` and the partial tail chunk ``q3``
    (Figure 2); the ``s`` draws are split 3 ways by exact weights, the
    partial parts are answered by on-the-fly alias structures over at most
    one chunk (``O(log n)`` work), and the middle by two-level sampling
    through ``T_chunk``.
    """

    plan_kind = "chunked"

    def __init__(
        self,
        keys: Sequence[float],
        weights: Optional[Sequence[float]] = None,
        rng: RNGLike = None,
        chunk_size: Optional[int] = None,
        plan_cache_size: Optional[int] = None,
    ):
        super().__init__(keys, weights)
        n = len(self.keys)
        if chunk_size is None:
            chunk_size = max(1, int(math.log2(n))) if n > 1 else 1
        if chunk_size < 1:
            raise BuildError(f"chunk_size must be >= 1, got {chunk_size}")
        self._chunk_size = chunk_size
        self._rng = ensure_rng(rng)

        g = (n + chunk_size - 1) // chunk_size
        self._num_chunks = g
        if kernels.use_batch_build(n):
            # All g chunk tables in one packed kernel call, with the numpy
            # draw matrix built eagerly instead of lazily re-packed from
            # scalar tables; per-chunk (prob, alias) views materialize on
            # demand through _chunk_table for the scalar draw path.
            np = kernels.np
            w = np.asarray(self.weights, dtype=np.float64)
            padded = np.zeros(g * chunk_size)
            padded[:n] = w
            matrix = padded.reshape(g, chunk_size)
            lengths = np.full(g, chunk_size, dtype=np.intp)
            lengths[-1] = n - (g - 1) * chunk_size
            chunk_weights = matrix.sum(axis=1).tolist()
            prob_mat, alias_mat = kernels.build_alias_tables_packed(matrix, lengths)
            starts = np.arange(g, dtype=np.intp) * chunk_size
            self._np_chunk_matrix = (prob_mat, alias_mat, lengths, starts)
            self._chunk_tables: List[Optional[AliasTables]] = [None] * g
        else:
            chunk_weights = []
            self._chunk_tables = []
            for c in range(g):
                c_lo, c_hi = self._chunk_bounds(c)
                block = self.weights[c_lo:c_hi]
                chunk_weights.append(sum(block))
                self._chunk_tables.append(build_alias_tables(block))
            # Packed numpy copy of the tables, built on first batched use.
            self._np_chunk_matrix = None
        self._chunk_weights = chunk_weights
        # Range-sum structure of §4.2 over chunk weights.
        self._chunk_sums = FenwickTree(chunk_weights)
        # T_chunk: Lemma-2 structure over the chunk-level weighted set,
        # keyed by chunk index.
        self._t_chunk = AliasAugmentedRangeSampler(
            list(range(g)), chunk_weights, rng=self._rng
        )
        self.plan_cache = plan_scope(self.plan_kind, plan_cache_size)

    # ------------------------------------------------------------------

    def _chunk_bounds(self, chunk: int) -> Tuple[int, int]:
        lo = chunk * self._chunk_size
        return lo, min(lo + self._chunk_size, len(self.keys))

    @property
    def chunk_size(self) -> int:
        return self._chunk_size

    @property
    def num_chunks(self) -> int:
        return self._num_chunks

    def query_split(self, lo: int, hi: int) -> Tuple[Tuple[int, int], Tuple[int, int], Tuple[int, int]]:
        """The Figure-2 decomposition of ``[lo, hi)`` into (q1, q2, q3).

        ``q1``/``q3`` are half-open element-index ranges inside the partial
        head/tail chunks; ``q2`` is a half-open *chunk*-index range. Parts
        may be empty. Exposed for the Figure-2 reproduction test.
        """
        c = self._chunk_size
        first_chunk = lo // c
        last_chunk = (hi - 1) // c
        head_fully = lo == first_chunk * c and self._chunk_bounds(first_chunk)[1] <= hi
        tail_fully = hi == self._chunk_bounds(last_chunk)[1] and lo <= last_chunk * c

        if first_chunk == last_chunk:
            if head_fully and tail_fully:
                return (lo, lo), (first_chunk, first_chunk + 1), (hi, hi)
            return (lo, hi), (0, 0), (hi, hi)

        mid_lo = first_chunk if head_fully else first_chunk + 1
        mid_hi = last_chunk + 1 if tail_fully else last_chunk
        q1 = (lo, lo) if head_fully else (lo, self._chunk_bounds(first_chunk)[1])
        q3 = (hi, hi) if tail_fully else (self._chunk_bounds(last_chunk)[0], hi)
        return q1, (mid_lo, mid_hi), q3

    def _ensure_chunk_matrix(self):
        """The packed ``(prob_mat, alias_mat, lengths, starts)`` draw
        matrices, re-packing the scalar per-chunk tables on first need.

        The vectorized builder fills the matrices eagerly; a scalar build
        defers them until either a batched draw or a shared-memory export
        asks (both consume the same packed form, so the values are
        bit-identical either way).
        """
        if self._np_chunk_matrix is None:
            np = kernels.np
            g = self._num_chunks
            width = self._chunk_size
            prob_mat = np.ones((g, width), dtype=np.float64)
            alias_mat = np.zeros((g, width), dtype=np.intp)
            lengths = np.empty(g, dtype=np.intp)
            for chunk, (prob, alias) in enumerate(self._chunk_tables):
                size = len(prob)
                prob_mat[chunk, :size] = prob
                alias_mat[chunk, :size] = alias
                lengths[chunk] = size
            starts = np.arange(g, dtype=np.intp) * width
            self._np_chunk_matrix = (prob_mat, alias_mat, lengths, starts)
        return self._np_chunk_matrix

    def _chunk_table(self, chunk: int) -> AliasTables:
        """Per-chunk ``(prob, alias)``, as views into the packed matrix
        when the vectorized builder ran (materialized on demand)."""
        tables = self._chunk_tables[chunk]
        if tables is None:
            prob_mat, alias_mat, lengths, _ = self._np_chunk_matrix
            size = int(lengths[chunk])
            tables = (prob_mat[chunk, :size], alias_mat[chunk, :size])
            self._chunk_tables[chunk] = tables
        return tables

    def _partial_plan(self, lo: int, hi: int):
        """On-the-fly alias tables for a partial chunk, as a mutable
        ``[prob, alias, np_slot]`` plan entry (numpy views filled lazily)."""
        return [*build_alias_tables(self.weights[lo:hi]), [None]]

    def _sample_partial(
        self, lo: int, hi: int, count: int, tables=None, rng: RNGLike = None
    ) -> List[int]:
        """Draw from a partial chunk via an on-the-fly alias structure."""
        if tables is None:
            tables = self._partial_plan(lo, hi)
        if obs.ENABLED:
            _CH_TOUCHES.inc()  # a partial part touches exactly one chunk
        prob, alias, np_slot = tables
        rng = self._rng if rng is None else rng
        if kernels.use_batch(count):
            gen = kernels.batch_generator(rng)
            if np_slot[0] is None:
                np_slot[0] = kernels.as_alias_arrays(prob, alias)
            np_prob, np_alias = np_slot[0]
            draws = kernels.alias_draw_batch(np_prob, np_alias, count, gen)
            return (lo + draws).tolist()
        return [int(lo + alias_draw(prob, alias, rng)) for _ in range(count)]

    def _sample_chunk_aligned(
        self, chunk_lo: int, chunk_hi: int, count: int, rng: RNGLike = None
    ) -> List[int]:
        """Two-level sampling over fully covered chunks (§4.2)."""
        rng = self._rng if rng is None else rng
        chunk_draws = self._t_chunk.sample_span(chunk_lo, chunk_hi, count, rng=rng)
        if kernels.use_batch(count):
            return self._chunk_level_batch(chunk_draws, rng=rng)
        per_chunk: dict = {}
        for chunk in chunk_draws:
            per_chunk[chunk] = per_chunk.get(chunk, 0) + 1
        if obs.ENABLED:
            _CH_TOUCHES.add(len(per_chunk))
        result: List[int] = []
        for chunk, chunk_count in per_chunk.items():
            c_lo, _ = self._chunk_bounds(chunk)
            prob, alias = self._chunk_table(chunk)
            result.extend(
                int(c_lo + alias_draw(prob, alias, rng)) for _ in range(chunk_count)
            )
        return result

    def _chunk_level_batch(
        self, chunk_draws: List[int], rng: RNGLike = None
    ) -> List[int]:
        """Resolve a batch of chunk draws to element indices in one pass.

        All per-chunk alias tables are packed into ``g × chunk_size``
        matrices (built lazily, O(n) space — the structure is already
        O(n)), so the intra-chunk draw for every token is a single
        vectorized urn-pick + biased-coin step regardless of how the
        tokens scatter across chunks.
        """
        np = kernels.np
        prob_mat, alias_mat, lengths, starts = self._ensure_chunk_matrix()
        gen = kernels.batch_generator(self._rng if rng is None else rng)
        chunks = np.asarray(chunk_draws, dtype=np.intp)
        if obs.ENABLED:
            # np.unique is an enabled-only cost: the distinct-chunk count
            # is exactly the "chunk touches" quantity §4.2's two-level
            # bound charges for.
            _CH_TOUCHES.add(int(np.unique(chunks).size))
        count = len(chunks)
        urns = np.minimum(
            (gen.random(count) * lengths[chunks]).astype(np.intp), lengths[chunks] - 1
        )
        keep = gen.random(count) < prob_mat[chunks, urns]
        picks = np.where(keep, urns, alias_mat[chunks, urns])
        return (starts[chunks] + picks).tolist()

    def _build_plan(self, lo: int, hi: int, hint: Any = None) -> QueryPlan:
        """The Figure-2 plan for ``[lo, hi)``: the payload is a list of
        ``(kind, p_lo, p_hi, weight, partial_tables)`` parts.

        Plan construction (split, part weights, partial-chunk alias
        tables) consumes no randomness, so a cache hit changes nothing
        about the query's output distribution — it only skips the
        O(log n) setup work on repeated spans. The hint carries the
        non-empty part ranges; part weights and the partial-chunk alias
        tables are resolved locally from them (the tables are views into
        this instance, not shippable data).
        """
        if hint is not None:
            ranges = list(hint)
        else:
            (h_lo, h_hi), (m_lo, m_hi), (t_lo, t_hi) = self.query_split(lo, hi)
            ranges = []
            if h_hi > h_lo:
                ranges.append(("head", h_lo, h_hi))
            if m_hi > m_lo:
                ranges.append(("mid", m_lo, m_hi))
            if t_hi > t_lo:
                ranges.append(("tail", t_lo, t_hi))
        parts = []
        for kind, p_lo, p_hi in ranges:
            if kind == "mid":
                weight = self._chunk_sums.range_sum(p_lo, p_hi)
                parts.append(("mid", p_lo, p_hi, weight, None))
            else:
                weight = sum(self.weights[p_lo:p_hi])
                parts.append((kind, p_lo, p_hi, weight, self._partial_plan(p_lo, p_hi)))
        return QueryPlan(
            self.plan_kind,
            (lo, hi),
            spans=tuple((p_lo, p_hi) for _, p_lo, p_hi, _, _ in parts),
            weights=tuple(weight for _, _, _, weight, _ in parts),
            payload=parts,
            hint=tuple((kind, p_lo, p_hi) for kind, p_lo, p_hi, _, _ in parts),
        )

    def sample_span(
        self, lo: int, hi: int, s: int, rng: RNGLike = None
    ) -> List[int]:
        validate_sample_size(s)
        if lo >= hi:
            raise EmptyQueryError("empty index range")
        return self.execute_plan(self.plan_span(lo, hi), s, rng=rng)

    def execute_plan(
        self, plan: QueryPlan, s: int, rng: RNGLike = None
    ) -> List[int]:
        if obs.ENABLED:
            _CH_QUERIES.inc()
            _CH_DRAWS.add(s)
        rng = self._rng if rng is None else rng
        parts = plan.payload

        if len(parts) == 1:
            kind, p_lo, p_hi, _, tables = parts[0]
            if kind == "mid":
                return self._sample_chunk_aligned(p_lo, p_hi, s, rng=rng)
            return self._sample_partial(p_lo, p_hi, s, tables, rng=rng)

        counts = multinomial_split([part[3] for part in parts], s, rng)
        result: List[int] = []
        for (kind, p_lo, p_hi, _, tables), count in zip(parts, counts):
            if count == 0:
                continue
            if kind == "mid":
                result.extend(self._sample_chunk_aligned(p_lo, p_hi, count, rng=rng))
            else:
                result.extend(self._sample_partial(p_lo, p_hi, count, tables, rng=rng))
        return result

    def space_words(self) -> int:
        # One prob + one alias word per element across all chunk tables
        # (computed from n so lazily-materialized table views need not be
        # forced), plus the Fenwick array and T_chunk.
        chunk_table_words = 2 * len(self.keys)
        fenwick_words = self._num_chunks + 1
        return chunk_table_words + fenwick_words + self._t_chunk.space_words()
