"""Dynamic weighted set sampling (paper §9, Direction 1).

The paper flags dynamization as the first open direction: support
insertions and deletions in the input set while still drawing independent
weighted samples fast. Two classic designs are implemented:

* :class:`FenwickDynamicSampler` — a Fenwick tree over slot weights;
  ``O(log n)`` insert/delete/update and ``O(log n)`` per sample via
  inverse-CDF search. Simple, exact, and the update bound matches what Hu
  et al. [18] achieve for their dynamic WR structure.
* :class:`BucketDynamicSampler` — elements grouped by weight scale
  (``2^j ≤ w < 2^{j+1}``), following the rejection idea behind the optimal
  integer-weight structures the paper cites [16]: pick a group
  proportionally to its total (O(#groups), with #groups =
  O(log(w_max/w_min))), then rejection-sample inside the group with
  acceptance ≥ 1/2. Updates are O(1) amortised.

Every sample consumes fresh randomness, so outputs stay mutually
independent across queries *and* across updates.
"""

from __future__ import annotations

import math
from typing import Dict, Generic, List, Tuple, TypeVar

from repro import obs
from repro.core import kernels
from repro.engine.protocol import EngineOp, EngineSampler
from repro.errors import EmptyQueryError, InvalidWeightError
from repro.substrates.fenwick import FenwickTree
from repro.substrates.rng import RNGLike, ensure_rng
from repro.validation import validate_sample_size

T = TypeVar("T")

_FENWICK_DRAWS = obs.counter(
    "dynamic.fenwick.draws", "Fenwick dynamic-sampler draws (O(log n) each)"
)
_BUCKET_DRAWS = obs.counter(
    "dynamic.bucket.draws", "Bucket dynamic-sampler accepted draws"
)
_BUCKET_REJECTIONS = obs.counter(
    "dynamic.bucket.rejections",
    "Bucket-sampler rejected proposals (acceptance >= 1/2, so expected <= 1/draw)",
)

_TOMBSTONE = object()


def _check_weight(weight: float) -> float:
    value = float(weight)
    if math.isnan(value) or math.isinf(value) or value <= 0:
        raise InvalidWeightError(f"weight must be positive and finite, got {weight!r}")
    return value


class FenwickDynamicSampler(EngineSampler, Generic[T]):
    """O(log n) updates and samples via a Fenwick tree over slot weights."""

    engine_ops = {
        "sample": EngineOp("sample_many", takes_s=True, pass_rng=False),
    }

    def __init__(self, rng: RNGLike = None, initial_capacity: int = 16):
        self._rng = ensure_rng(rng)
        capacity = max(4, initial_capacity)
        self._tree = FenwickTree(size=capacity)
        self._items: List[object] = [_TOMBSTONE] * capacity
        self._weights: List[float] = [0.0] * capacity
        self._free: List[int] = list(range(capacity - 1, -1, -1))
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def total_weight(self) -> float:
        return self._tree.total

    def insert(self, item: T, weight: float) -> int:
        """Insert an element; returns a handle for later delete/update."""
        value = _check_weight(weight)
        if not self._free:
            self._grow()
        slot = self._free.pop()
        self._items[slot] = item
        self._weights[slot] = value
        self._tree.add(slot, value)
        self._size += 1
        return slot

    def delete(self, handle: int) -> T:
        """Remove the element behind ``handle``; O(log n)."""
        item = self._item_at(handle)
        self._tree.add(handle, -self._weights[handle])
        self._items[handle] = _TOMBSTONE
        self._weights[handle] = 0.0
        self._free.append(handle)
        self._size -= 1
        return item  # type: ignore[return-value]

    def update_weight(self, handle: int, weight: float) -> None:
        """Change an element's weight in place; O(log n)."""
        value = _check_weight(weight)
        self._item_at(handle)
        self._tree.add(handle, value - self._weights[handle])
        self._weights[handle] = value

    def sample(self) -> T:
        """One independent weighted sample in O(log n)."""
        if self._size == 0:
            raise EmptyQueryError("sampler is empty")
        if obs.ENABLED:
            _FENWICK_DRAWS.inc()
        rng = self._rng
        for _ in range(4):
            target = rng.random() * self._tree.total
            slot = self._tree.find_prefix(target)
            if self._items[slot] is not _TOMBSTONE:
                return self._items[slot]  # type: ignore[return-value]
        # Float residue on a freed slot steered the search astray (mass
        # ~1e-16); rebuild the tree exactly and retry.
        self._rebuild_tree()
        target = rng.random() * self._tree.total
        return self._items[self._tree.find_prefix(target)]  # type: ignore[return-value]

    def sample_many(self, s: int) -> List[T]:
        """``s`` independent weighted samples.

        The batch path replaces ``s`` Fenwick descents with one prefix-sum
        pass plus a vectorized binary search over all targets: O(n + s
        log n) numpy work instead of O(s log n) interpreted work.
        """
        validate_sample_size(s)
        if self._size > 0 and kernels.use_batch(s):
            return self._sample_many_batch(s)
        return [self.sample() for _ in range(s)]

    def _sample_many_batch(self, s: int) -> List[T]:
        if obs.ENABLED:
            _FENWICK_DRAWS.add(s)
        np = kernels.np
        gen = kernels.batch_generator(self._rng)
        cum = np.cumsum(np.asarray(self._weights, dtype=np.float64))
        slots = kernels.inverse_cdf_draw_batch(cum, s, gen)
        items = self._items
        result: List[T] = []
        for slot in slots.tolist():
            value = items[slot]
            if value is _TOMBSTONE:
                # Float-boundary stray onto a zero-weight slot; redraw.
                value = self.sample()
            result.append(value)  # type: ignore[arg-type]
        return result

    def _item_at(self, handle: int) -> T:
        if not 0 <= handle < len(self._items) or self._items[handle] is _TOMBSTONE:
            raise KeyError(f"no live element behind handle {handle}")
        return self._items[handle]  # type: ignore[return-value]

    def _grow(self) -> None:
        old_capacity = len(self._items)
        new_capacity = old_capacity * 2
        self._items.extend([_TOMBSTONE] * old_capacity)
        self._weights.extend([0.0] * old_capacity)
        self._free.extend(range(new_capacity - 1, old_capacity - 1, -1))
        self._rebuild_tree()

    def _rebuild_tree(self) -> None:
        self._tree = FenwickTree(self._weights)


class BucketDynamicSampler(EngineSampler, Generic[T]):
    """Power-of-two weight buckets with in-bucket rejection ([16]-style).

    Expected O(#buckets) per sample, O(1) amortised per update. With
    weights spanning a polynomial range the bucket count is O(log n),
    and the in-bucket rejection accepts with probability ≥ 1/2.
    """

    engine_ops = {
        "sample": EngineOp("sample_many", takes_s=True, pass_rng=False),
    }

    def __init__(self, rng: RNGLike = None):
        self._rng = ensure_rng(rng)
        # bucket exponent j -> parallel (items, weights) lists
        self._bucket_items: Dict[int, List[object]] = {}
        self._bucket_weights: Dict[int, List[float]] = {}
        self._bucket_total: Dict[int, float] = {}
        # handle -> (bucket, index); handles are stable across swap-removals
        self._locator: Dict[int, Tuple[int, int]] = {}
        self._handle_at: Dict[Tuple[int, int], int] = {}
        self._next_handle = 0
        self._size = 0
        self._total = 0.0

    def __len__(self) -> int:
        return self._size

    @property
    def total_weight(self) -> float:
        return self._total

    @property
    def bucket_count(self) -> int:
        return len(self._bucket_items)

    @staticmethod
    def _bucket_of(weight: float) -> int:
        return math.frexp(weight)[1] - 1  # floor(log2 w)

    def insert(self, item: T, weight: float) -> int:
        value = _check_weight(weight)
        bucket = self._bucket_of(value)
        items = self._bucket_items.setdefault(bucket, [])
        weights = self._bucket_weights.setdefault(bucket, [])
        index = len(items)
        items.append(item)
        weights.append(value)
        self._bucket_total[bucket] = self._bucket_total.get(bucket, 0.0) + value
        handle = self._next_handle
        self._next_handle += 1
        self._locator[handle] = (bucket, index)
        self._handle_at[(bucket, index)] = handle
        self._size += 1
        self._total += value
        return handle

    def delete(self, handle: int) -> T:
        if handle not in self._locator:
            raise KeyError(f"no live element behind handle {handle}")
        bucket, index = self._locator.pop(handle)
        items = self._bucket_items[bucket]
        weights = self._bucket_weights[bucket]
        item = items[index]
        weight = weights[index]
        del self._handle_at[(bucket, index)]

        last = len(items) - 1
        if index != last:
            # Swap-remove; re-point the moved element's handle.
            moved_handle = self._handle_at.pop((bucket, last))
            items[index] = items[last]
            weights[index] = weights[last]
            self._locator[moved_handle] = (bucket, index)
            self._handle_at[(bucket, index)] = moved_handle
        items.pop()
        weights.pop()

        if items:
            self._bucket_total[bucket] -= weight
            if self._bucket_total[bucket] < 0:
                self._bucket_total[bucket] = math.fsum(weights)
        else:
            del self._bucket_items[bucket]
            del self._bucket_weights[bucket]
            del self._bucket_total[bucket]
        self._size -= 1
        self._total -= weight
        if self._total < 0:
            self._total = sum(self._bucket_total.values())
        return item  # type: ignore[return-value]

    def update_weight(self, handle: int, weight: float) -> None:
        item = self.delete(handle)
        new_handle = self.insert(item, weight)
        # Keep the caller's handle valid by re-binding it.
        location = self._locator.pop(new_handle)
        self._locator[handle] = location
        self._handle_at[location] = handle
        self._next_handle -= 1

    def sample(self) -> T:
        """One independent weighted sample; expected O(#buckets) time.

        Buckets are selected proportionally to their *bound mass*
        ``n_j · 2^{j+1}`` (not the exact total): combined with the
        in-bucket acceptance ``w_i / 2^{j+1}`` this makes each element's
        overall probability exactly ``w_i / Σw``, and since every weight
        exceeds half its bucket ceiling the loop accepts with probability
        ≥ 1/2 overall.
        """
        if self._size == 0:
            raise EmptyQueryError("sampler is empty")
        enabled = obs.ENABLED
        proposals = 0
        rng = self._rng
        bucket_items = self._bucket_items
        total_bound = 0.0
        for bucket, items in bucket_items.items():
            total_bound += len(items) * math.ldexp(1.0, bucket + 1)
        while True:
            if enabled:
                proposals += 1
            # Pick a bucket proportional to its bound mass (linear scan
            # over the O(log W) active buckets).
            target = rng.random() * total_bound
            chosen_bucket = next(iter(bucket_items))
            for bucket, bucket_members in bucket_items.items():
                mass = len(bucket_members) * math.ldexp(1.0, bucket + 1)
                chosen_bucket = bucket
                if target < mass:
                    break
                target -= mass
            items = self._bucket_items[chosen_bucket]
            weights = self._bucket_weights[chosen_bucket]
            index = int(rng.random() * len(items))
            if index == len(items):
                index -= 1
            # Rejection: accept with probability w / 2^{j+1} ≥ 1/2.
            ceiling = math.ldexp(1.0, chosen_bucket + 1)
            if rng.random() * ceiling < weights[index]:
                if enabled:
                    _BUCKET_DRAWS.inc()
                    _BUCKET_REJECTIONS.add(proposals - 1)
                return items[index]  # type: ignore[return-value]

    def sample_many(self, s: int) -> List[T]:
        """``s`` independent weighted samples.

        The batch path snapshots the buckets into flat arrays once, then
        runs the bucket-choice / in-bucket-pick / rejection-coin pipeline
        for whole blocks of proposals per numpy call (acceptance ≥ 1/2, so
        a block of ``2·need`` proposals usually finishes the request).
        """
        validate_sample_size(s)
        if self._size > 0 and kernels.use_batch(s):
            return self._sample_many_batch(s)
        return [self.sample() for _ in range(s)]

    def _sample_many_batch(self, s: int) -> List[T]:
        np = kernels.np
        gen = kernels.batch_generator(self._rng)
        flat_items: List[object] = []
        flat_weights: List[float] = []
        offsets: List[int] = []
        lengths: List[int] = []
        ceilings: List[float] = []
        for bucket, members in self._bucket_items.items():
            offsets.append(len(flat_items))
            lengths.append(len(members))
            ceilings.append(math.ldexp(1.0, bucket + 1))
            flat_items.extend(members)
            flat_weights.extend(self._bucket_weights[bucket])
        offsets_arr = np.asarray(offsets, dtype=np.intp)
        lengths_arr = np.asarray(lengths, dtype=np.intp)
        ceilings_arr = np.asarray(ceilings, dtype=np.float64)
        flat_w = np.asarray(flat_weights, dtype=np.float64)
        cum_bound = np.cumsum(lengths_arr * ceilings_arr)
        total_bound = cum_bound[-1]

        result: List[T] = []
        while len(result) < s:
            need = s - len(result)
            block = max(32, 2 * need)
            targets = gen.random(block) * total_bound
            buckets = np.minimum(
                np.searchsorted(cum_bound, targets, side="right"), len(cum_bound) - 1
            )
            picks = np.minimum(
                (gen.random(block) * lengths_arr[buckets]).astype(np.intp),
                lengths_arr[buckets] - 1,
            )
            flat_index = offsets_arr[buckets] + picks
            accepted = gen.random(block) * ceilings_arr[buckets] < flat_w[flat_index]
            if obs.ENABLED:
                # Count proposals only up to the one yielding the last
                # needed sample, matching the scalar rejection loop.
                taken = min(need, int(accepted.sum()))
                if taken:
                    examined = int(np.searchsorted(np.cumsum(accepted), taken)) + 1
                else:
                    examined = block
                _BUCKET_DRAWS.add(taken)
                _BUCKET_REJECTIONS.add(examined - taken)
            for index in flat_index[accepted][:need].tolist():
                result.append(flat_items[index])  # type: ignore[arg-type]
        return result
