"""Sampling-scheme conversions: WR, WoR, and sample-count splitting (§1–§2).

The paper treats three schemes — sampling with replacement (WR), without
replacement (WoR), and weighted sampling — and uses two folklore
conversions:

* a WoR sample of size ``s`` converts to a WR sample of size ``s`` in
  ``O(s)`` time (§2, citing [19]): :func:`wr_from_wor`;
* ``s`` draws split across ``t`` disjoint parts by drawing ``s`` weighted
  part indices (the "determine how many samples to take from each S(u_i)"
  step of §4.1): :func:`multinomial_split`.

Also provided: Floyd's algorithm for uniform WoR index sampling and a
collision-rejection WoR wrapper usable with any WR sampler.
"""

from __future__ import annotations

from typing import Callable, Hashable, List, Optional, Sequence, Set, TypeVar

from repro.core import kernels
from repro.core.alias import AliasSampler
from repro.errors import EmptyQueryError, SampleBudgetExceededError
from repro.substrates.rng import RNGLike, ensure_rng
from repro.validation import validate_sample_size, validate_weights

T = TypeVar("T", bound=Hashable)


def multinomial_split(weights: Sequence[float], s: int, rng: RNGLike = None) -> List[int]:
    """Split ``s`` draws across parts with the given weights.

    Returns counts ``s_1..s_t`` with ``sum(s_i) == s`` where each of the
    ``s`` draws independently lands in part ``i`` with probability
    ``w_i / sum(w)``. This is the §4.1 step implemented exactly as the
    paper describes: build an alias structure on the parts in ``O(t)`` and
    draw ``s`` part samples in ``O(s)``.
    """
    validate_sample_size(s)
    generator = ensure_rng(rng)
    if kernels.use_batch(s) and len(weights) > 0:
        cleaned = validate_weights(weights, context="multinomial_split")
        return kernels.multinomial_split_batch(
            cleaned, s, kernels.batch_generator(generator)
        )
    alias = AliasSampler(list(range(len(weights))), weights, rng=generator)
    counts = [0] * len(weights)
    for part in alias.sample_indices(s):
        counts[part] += 1
    return counts


def uniform_indices_without_replacement(
    lo: int, hi: int, s: int, rng: RNGLike = None
) -> List[int]:
    """Draw ``s`` distinct uniform indices from ``[lo, hi)`` in O(s).

    Implements Robert Floyd's algorithm; the output order is randomised so
    the result is a uniformly random *sequence* of distinct indices.
    """
    validate_sample_size(s)
    population = hi - lo
    if s > population:
        raise EmptyQueryError(
            f"cannot draw {s} distinct indices from a range of size {population}"
        )
    generator = ensure_rng(rng)
    chosen: Set[int] = set()
    for j in range(population - s, population):
        candidate = lo + generator.randint(0, j)
        if candidate in chosen:
            chosen.add(lo + j)
        else:
            chosen.add(candidate)
    result = list(chosen)
    generator.shuffle(result)
    return result


def sample_without_replacement(
    draw: Callable[[], T],
    s: int,
    population_size: int,
    rng: RNGLike = None,
    max_attempts_factor: int = 64,
) -> List[T]:
    """Convert any uniform WR draw function into a WoR sample of size ``s``.

    Repeatedly invokes ``draw`` and discards duplicates. For
    ``s <= population_size / 2`` the expected number of draws is ``O(s)``;
    the attempt budget guards against a broken ``draw`` that cannot produce
    ``s`` distinct values.

    Note: this is distribution-correct only when ``draw`` is *uniform* over
    the population (the WR scheme of §1); for weighted WoR the rejected
    distribution would be the weighted one conditioned on distinctness,
    which is a different (but commonly used, "successive sampling") design.
    """
    validate_sample_size(s)
    if s > population_size:
        raise EmptyQueryError(
            f"cannot draw {s} distinct elements from a population of {population_size}"
        )
    ensure_rng(rng)  # kept for signature symmetry; `draw` owns the randomness
    seen: Set[T] = set()
    ordered: List[T] = []
    budget = max_attempts_factor * max(s, 1) + 16 * population_size
    attempts = 0
    while len(ordered) < s:
        attempts += 1
        if attempts > budget:
            raise SampleBudgetExceededError(
                f"WoR rejection loop exceeded {budget} attempts "
                f"(s={s}, population={population_size})"
            )
        value = draw()
        if value not in seen:
            seen.add(value)
            ordered.append(value)
    return ordered


def wr_from_wor(
    wor_sample: Sequence[T],
    population_size: int,
    rng: RNGLike = None,
    size: Optional[int] = None,
) -> List[T]:
    """Convert a WoR sample into a WR sample of size ``size`` in O(s) (§2).

    ``size`` defaults to ``len(wor_sample)``; it may exceed the WoR sample
    length only when the WoR sample exhausts the population (then extra WR
    slots simply repeat population elements).

    A WR sample of size ``s`` from a population of ``N`` elements is
    distributed as: first draw the *pattern* of coincidences among the
    ``s`` slots (by drawing ``s`` iid slots-to-distinct-value labels), then
    bind the distinct labels to distinct population elements — which is
    exactly what a WoR sample provides. Requires
    ``len(wor_sample) >= number of distinct labels``, which holds since a
    WR sample of size ``s`` has at most ``s`` distinct values.

    Correctness requires ``wor_sample`` to be in *uniformly random order*
    (true of any genuine WoR sample, including rank-ordered ones drawn
    from a random permutation); a deterministically ordered input would
    bias the element-to-label binding.
    """
    generator = ensure_rng(rng)
    s = len(wor_sample) if size is None else size
    if s == 0:
        return []
    if population_size < len(wor_sample):
        raise ValueError("population_size must be at least the WoR sample size")
    if len(wor_sample) < min(s, population_size):
        raise ValueError(
            "WoR sample too small: a WR sample of size "
            f"{s} may contain up to {min(s, population_size)} distinct values"
        )
    # Simulate which of the s iid draws coincide, using a uniform birthday
    # process over `population_size` abstract slots.
    label_of_slot: dict = {}
    labels: List[int] = []
    for _ in range(s):
        slot = generator.randint(0, population_size - 1)
        if slot not in label_of_slot:
            label_of_slot[slot] = len(label_of_slot)
        labels.append(label_of_slot[slot])
    # Bind distinct labels to the first `len(label_of_slot)` WoR elements —
    # a uniformly random distinct assignment because the WoR sample is one.
    return [wor_sample[label] for label in labels]


__all__ = [
    "multinomial_split",
    "uniform_indices_without_replacement",
    "sample_without_replacement",
    "wr_from_wor",
]
