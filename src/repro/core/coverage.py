"""The coverage technique (paper §5, Theorem 5).

Given any tree-based reporting structure that can produce, for a predicate
``q``, a *cover* ``C_q`` — disjoint subtrees whose leaves exactly make up
``S_q`` — Theorem 5 converts it into an IQS structure with ``O(m)``
additional space and ``O(|C_q| + s)`` query time (plus the cover-finding
time): build an alias structure over the cover's node weights on the fly,
split the ``s`` draws across the cover, and answer each part from the
node's subtree sampler.

Here a cover is a list of disjoint half-open *spans* of the index's
leaf-order array (every supported index — :class:`~repro.substrates.bst.StaticBST`
via :class:`BSTIndex`, :class:`~repro.substrates.kdtree.KDTree`,
:class:`~repro.substrates.quadtree.QuadTree`,
:class:`~repro.substrates.rangetree.RangeTree` — stores each subtree
contiguously). Subtree (= span) sampling backends:

* ``"uniform"`` — all leaf weights equal: a uniform index draw, O(1) per
  sample (the Lemma-4 bound for WR sampling, exactly);
* ``"chunked"`` — general weights: a single Theorem-3 structure over the
  whole leaf array, O(n) extra space, O(log n) per cover span plus O(1)
  per sample (the Lemma-4 substitution discussed in DESIGN.md);
* ``"alias"`` — Lemma-2 style: a pre-built alias structure per subtree
  span, O(1) per sample at the price of O(Σ|S(u)|) space.
* ``"auto"`` (default) — ``"uniform"`` when weights allow, else
  ``"chunked"``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Protocol, Sequence, Tuple, runtime_checkable

from repro import obs
from repro.core.alias import AliasTables, alias_draw, build_alias_tables
from repro.core.planner import QueryPlan, plan_scope
from repro.core.range_sampler import ChunkedRangeSampler
from repro.core.schemes import multinomial_split
from repro.engine.protocol import EngineOp, EngineSampler
from repro.errors import BuildError, EmptyQueryError
from repro.substrates.bst import StaticBST
from repro.substrates.rng import RNGLike, ensure_rng
from repro.validation import validate_sample_size

Span = Tuple[int, int]


@runtime_checkable
class CoverableIndex(Protocol):
    """What Theorem 5 requires of the underlying reporting structure."""

    @property
    def leaf_items(self) -> Sequence[Any]:
        """Stored elements in leaf order (subtrees are contiguous spans)."""

    @property
    def leaf_weights(self) -> Sequence[float]:
        """Positive sampling weight of each leaf-order element."""

    def find_cover(self, query: Any) -> List[Span]:
        """Disjoint spans whose union is exactly ``S_q``."""


class BSTIndex:
    """Adapter presenting :class:`StaticBST` as a coverable index.

    Queries are ``(x, y)`` intervals; the cover is the canonical-node set
    of Figure 1, of size ``O(log n)``.
    """

    def __init__(self, keys: Sequence[float], weights: Optional[Sequence[float]] = None):
        self._tree = StaticBST(keys, weights)

    @property
    def leaf_items(self) -> Sequence[float]:
        return self._tree.keys

    @property
    def leaf_weights(self) -> Sequence[float]:
        return self._tree.weights

    def find_cover(self, query: Tuple[float, float]) -> List[Span]:
        x, y = query
        return [self._tree.leaf_span(u) for u in self._tree.canonical_nodes(x, y)]

    def iter_node_spans(self) -> List[Span]:
        return [self._tree.leaf_span(u) for u in self._tree.iter_nodes()]

    def __len__(self) -> int:
        return len(self._tree)


class CoverageSampler(EngineSampler):
    """Theorem 5: IQS over any coverable index.

    Parameters
    ----------
    index:
        The reporting structure (must satisfy :class:`CoverableIndex`).
    backend:
        ``"auto"``, ``"uniform"``, ``"chunked"`` or ``"alias"`` — see the
        module docstring.
    rng:
        Seed or generator for all sampling randomness.
    plan_cache_size:
        Plan-cache capacity (``None`` joins the shared engine-scoped
        store sized by ``REPRO_PLAN_CACHE_SIZE``; 0 disables). Covers
        are deterministic, so memoizing them per query cannot change
        any output — only skip the cover-finding work on hot queries.
    """

    engine_ops = {
        "sample": EngineOp("sample", takes_s=True, pass_rng=True),
        "sample_indices": EngineOp("sample_indices", takes_s=True, pass_rng=True),
    }
    engine_thread_safe = True

    plan_kind = "coverage"

    def __init__(
        self,
        index: CoverableIndex,
        backend: str = "auto",
        rng: RNGLike = None,
        plan_cache_size: Optional[int] = None,
    ):
        self._index = index
        self._rng = ensure_rng(rng)
        weights = list(index.leaf_weights)
        if len(weights) == 0:
            raise BuildError("index holds no elements")
        self._weights = weights
        # Prefix sums give any span's total weight in O(1).
        prefix = [0.0]
        for w in weights:
            prefix.append(prefix[-1] + w)
        self._prefix = prefix

        uniform = len(set(weights)) == 1
        if backend == "auto":
            backend = "uniform" if uniform else "chunked"
        if backend == "uniform" and not uniform:
            raise BuildError('backend="uniform" requires equal weights')
        if backend not in ("uniform", "chunked", "alias"):
            raise BuildError(f"unknown backend {backend!r}")
        self._backend = backend

        self._chunked: ChunkedRangeSampler = None
        self._span_tables: Dict[Span, AliasTables] = {}
        if backend == "chunked":
            self._chunked = ChunkedRangeSampler(
                list(range(len(weights))), weights, rng=self._rng
            )
        elif backend == "alias":
            spans = getattr(index, "iter_node_spans", None)
            if spans is None:
                raise BuildError(
                    'backend="alias" needs the index to expose iter_node_spans()'
                )
            for lo, hi in spans():
                if hi - lo > 1:
                    self._span_tables[(lo, hi)] = build_alias_tables(weights[lo:hi])
        self.plan_cache = plan_scope(self.plan_kind, plan_cache_size)

    @property
    def backend(self) -> str:
        return self._backend

    def span_weight(self, span: Span) -> float:
        lo, hi = span
        return self._prefix[hi] - self._prefix[lo]

    def _draw_from_span(self, span: Span, count: int, rng) -> List[int]:
        lo, hi = span
        if hi - lo == 1:
            return [lo] * count
        if self._backend == "uniform":
            width = hi - lo
            return [min(lo + int(rng.random() * width), hi - 1) for _ in range(count)]
        if self._backend == "chunked":
            return self._chunked.sample_span(lo, hi, count, rng=rng)
        tables = self._span_tables.get(span)
        if tables is None:
            # Cover span not a precomputed subtree span (e.g. a singleton
            # produced by a boundary leaf): build on the fly and memoise.
            tables = build_alias_tables(self._weights[lo:hi])
            self._span_tables[span] = tables
        prob, alias = tables
        return [lo + alias_draw(prob, alias, rng) for _ in range(count)]

    def _build_plan(self, query: Any, hint: Any = None) -> QueryPlan:
        """Theorem-5 plan: the cover ``C_q`` and its span weights."""
        if hint is not None:
            cover = [tuple(span) for span in hint]
        else:
            cover = self._index.find_cover(query)
        weights = [self.span_weight(span) for span in cover]
        return QueryPlan(
            self.plan_kind,
            query,
            spans=tuple(cover),
            weights=tuple(weights),
            payload=(cover, weights),
            hint=tuple(cover),
        )

    def plan_query(self, query: Any, *, portable: Any = None) -> QueryPlan:
        """The (memoized) plan for ``query``.

        Unhashable queries (an index type with, say, list-shaped
        predicates) are planned per call and bypass the store.
        """
        hint = None
        if portable is not None:
            kind, key, hint = portable
            if kind != self.plan_kind or key != query:
                hint = None
        try:
            plan = self.plan_cache.get(query)
        except TypeError:  # unhashable query: plan without caching
            return self._build_plan(query, hint=hint)
        if plan is None:
            if obs.ENABLED:
                with obs.span("plan.build", kind=self.plan_kind):
                    plan = self._build_plan(query, hint=hint)
            else:
                plan = self._build_plan(query, hint=hint)
            self.plan_cache.put(query, plan)
        return plan

    def plan_request(self, request) -> QueryPlan:
        """Plan an engine request without executing draws (--explain)."""
        self.validate_request(request)
        return self.plan_query(request.args[0])

    def execute_plan(self, plan: QueryPlan, s: int, *, rng: RNGLike = None) -> List[int]:
        """Spend the randomness: split ``s`` across the cover and draw."""
        rng = self._rng if rng is None else rng
        cover, weights = plan.payload
        if not cover:
            raise EmptyQueryError(f"no elements satisfy {plan.key!r}")
        if len(cover) == 1:
            return self._draw_from_span(cover[0], s, rng)
        counts = multinomial_split(weights, s, rng)
        result: List[int] = []
        for span, count in zip(cover, counts):
            if count:
                result.extend(self._draw_from_span(span, count, rng))
        return result

    def sample_indices(self, query: Any, s: int, *, rng: RNGLike = None) -> List[int]:
        """``s`` independent weighted sample positions from ``S_q``.

        Runs the Theorem-5 algorithm as the plan → execute compose:
        find ``C_q`` and its span weights (:meth:`plan_query`, cached),
        then split the draws and sample each part from its subtree
        (:meth:`execute_plan`).
        """
        validate_sample_size(s)
        return self.execute_plan(self.plan_query(query), s, rng=rng)

    def sample(self, query: Any, s: int, *, rng: RNGLike = None) -> List[Any]:
        """``s`` independent weighted samples (as stored items) from ``S_q``."""
        items = self._index.leaf_items
        return [items[i] for i in self.sample_indices(query, s, rng=rng)]

    def cover_size(self, query: Any) -> int:
        """``|C_q|`` — the quantity Theorem 5's query bound is stated in."""
        return len(self._index.find_cover(query))

    def result_size(self, query: Any) -> int:
        """``|S_q|`` (by summing cover span lengths)."""
        return sum(hi - lo for lo, hi in self._index.find_cover(query))
