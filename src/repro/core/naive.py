"""Naive report-then-sample baselines (paper §1).

The "naive solution" the paper opens with: answer the reporting query in
full — cost ``Θ(|S_q|)`` — and only then sample from the result. The output
*is* correctly distributed and cross-query independent, so these baselines
double as ground truth in distribution tests; they exist to be beaten by
the sub-linear structures, which is what experiments E3/E5/E8 show.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Sequence, TypeVar

from repro.core.alias import alias_draw, build_alias_tables
from repro.core.range_sampler import RangeSamplerBase
from repro.engine.protocol import EngineOp, EngineSampler
from repro.errors import BuildError, EmptyQueryError
from repro.substrates.rng import RNGLike, ensure_rng
from repro.validation import validate_sample_size

T = TypeVar("T", bound=Hashable)


class NaiveRangeSampler(RangeSamplerBase):
    """Report ``S_q`` in full, then draw weighted samples from it.

    Query cost ``O(log n + |S_q| + s)``: the ``|S_q|`` term is the point —
    it grows with selectivity while the IQS structures stay flat.
    """

    def __init__(
        self,
        keys: Sequence[float],
        weights: Optional[Sequence[float]] = None,
        rng: RNGLike = None,
    ):
        super().__init__(keys, weights)
        self._rng = ensure_rng(rng)

    def sample_span(
        self, lo: int, hi: int, s: int, rng: RNGLike = None
    ) -> List[int]:
        validate_sample_size(s)
        if lo >= hi:
            raise EmptyQueryError("empty index range")
        # "Report" step: materialise the full query result.
        reported_weights = list(self.weights[lo:hi])
        # "Sample" step: weighted draws from the reported set.
        prob, alias = build_alias_tables(reported_weights)
        rng = self._rng if rng is None else rng
        return [lo + alias_draw(prob, alias, rng) for _ in range(s)]

    def report(self, x: float, y: float) -> List[float]:
        lo, hi = self.span_of(x, y)
        return self.keys[lo:hi]

    def space_words(self) -> int:
        return 2 * len(self.keys)


class NaiveSetUnionSampler(EngineSampler):
    """Materialise ``∪G`` per query, then sample uniformly (§7 baseline).

    Query cost ``Θ(Σ|S_i|)`` — linear in the total size of the queried
    sets, versus Theorem 8's ``O(g log² n)``.
    """

    engine_ops = {
        "sample": EngineOp("sample_many", takes_s=True, pass_rng=False),
    }

    def __init__(self, family: Sequence[Sequence[T]], rng: RNGLike = None):
        if len(family) == 0:
            raise BuildError("set family must be non-empty")
        self._family: List[List[T]] = [list(s) for s in family]
        self._rng = ensure_rng(rng)

    def __len__(self) -> int:
        return len(self._family)

    def sample(self, group: Sequence[int]) -> T:
        """One uniform sample from the union of the indexed sets."""
        union: List[T] = []
        seen = set()
        for set_index in group:
            for element in self._family[set_index]:
                if element not in seen:
                    seen.add(element)
                    union.append(element)
        if not union:
            raise EmptyQueryError("union of the queried sets is empty")
        return union[int(self._rng.random() * len(union))]

    def sample_many(self, group: Sequence[int], s: int) -> List[T]:
        validate_sample_size(s)
        return [self.sample(group) for _ in range(s)]
