"""The alias method for weighted set sampling (paper §3.1, Theorem 1).

Walker's alias structure stores ``n`` *urns*, each holding one or two
elements, such that (i) every urn carries total probability mass ``1/n``
and (ii) each element's mass summed over the urns it appears in equals its
normalised weight. A sample is drawn by picking a uniformly random urn and
then flipping one biased coin — constant time, and every draw is
independent of all previous draws, which is exactly the IQS guarantee for
the *weighted set sampling* problem.

The construction below is Vose's numerically robust variant of the urn
preparation described in the paper: it runs in ``O(n)`` time by repeatedly
pairing an underfull element (weight ≤ 1/n) with an overfull one.

The module exposes the raw urn tables (:func:`build_alias_tables`,
:func:`alias_draw`) so that structures storing *many* alias structures —
e.g. one per tree node in the alias-augmentation technique of §4 — can keep
plain arrays instead of objects.
"""

from __future__ import annotations

import math
import random
from typing import Generic, List, Optional, Sequence, Tuple, TypeVar

from repro import obs
from repro.core import kernels
from repro.engine.protocol import EngineOp, EngineSampler
from repro.errors import BuildError
from repro.substrates.rng import RNGLike, ensure_rng
from repro.validation import validate_sample_size, validate_weights

T = TypeVar("T")

#: Theorem-1 cost accounting: every alias-table draw is one O(1) unit.
#: Recorded at call granularity (never inside the per-draw loop), so the
#: disabled path stays within noise of uninstrumented code.
_DRAWS = obs.counter("alias.draws", "Alias-structure draws (Theorem 1, O(1) each)")

AliasTables = Tuple[List[float], List[int]]


def build_alias_tables(weights: Sequence[float]) -> AliasTables:
    """Vose's O(n) urn preparation over ``range(len(weights))``.

    Returns ``(prob, alias)``: urn ``i`` keeps element ``i`` with
    probability ``prob[i]`` and otherwise yields ``alias[i]``. Weights must
    be positive and finite (checked by the caller for speed; this function
    is on the hot path of on-the-fly cover sampling, §5).

    The total is accumulated with :func:`math.fsum` (Shewchuk's exact
    summation), so the scale factor — and hence the urn masses — cannot
    drift under catastrophic cancellation even for millions of weights
    spanning many orders of magnitude. The numpy fast path lives in
    :func:`repro.core.kernels.build_alias_tables_batch`; this function is
    the authoritative scalar fallback.
    """
    n = len(weights)
    if n == 0:
        raise BuildError("cannot build alias tables over an empty set")
    scale = n / math.fsum(weights)
    scaled = [w * scale for w in weights]  # mean is exactly 1

    prob = [0.0] * n
    alias = list(range(n))

    small = [i for i, w in enumerate(scaled) if w < 1.0]
    large = [i for i, w in enumerate(scaled) if w >= 1.0]

    while small and large:
        underfull = small.pop()
        overfull = large.pop()
        prob[underfull] = scaled[underfull]
        alias[underfull] = overfull
        # The overfull element donates mass (1 - scaled[underfull]).
        scaled[overfull] -= 1.0 - scaled[underfull]
        if scaled[overfull] < 1.0:
            small.append(overfull)
        else:
            large.append(overfull)

    # Residual urns hold a single element with full mass. Entries left in
    # `small` at this point exist only because of floating-point rounding.
    for queue in (large, small):
        while queue:
            prob[queue.pop()] = 1.0

    return prob, alias


def alias_draw(prob: Sequence[float], alias: Sequence[int], rng: random.Random) -> int:
    """One O(1) draw from pre-built urn tables."""
    n = len(prob)
    urn = int(rng.random() * n)
    if urn == n:  # guard against random() rounding to 1.0
        urn = n - 1
    if rng.random() < prob[urn]:
        return urn
    return alias[urn]


class AliasSampler(EngineSampler, Generic[T]):
    """O(n)-space structure drawing independent weighted samples in O(1).

    Parameters
    ----------
    items:
        The elements of the set ``S``. May be any Python objects.
    weights:
        Positive weights, one per item. ``None`` means uniform weights.
    rng:
        Integer seed or ``random.Random``; defaults to a fixed seed.

    Examples
    --------
    >>> sampler = AliasSampler(["a", "b", "c"], [1.0, 2.0, 7.0], rng=42)
    >>> sampler.sample() in {"a", "b", "c"}
    True
    """

    __slots__ = (
        "_items",
        "_items_view",
        "_prob",
        "_alias",
        "_total_weight",
        "_weights",
        "_rng",
        "_np_tables",
    )

    engine_ops = {
        "sample": EngineOp("sample_many", takes_s=True, pass_rng=True),
        "sample_indices": EngineOp("sample_indices", takes_s=True, pass_rng=True),
    }
    engine_thread_safe = True

    def __init__(
        self,
        items: Sequence[T],
        weights: Optional[Sequence[float]] = None,
        rng: RNGLike = None,
    ):
        if len(items) == 0:
            raise BuildError("AliasSampler requires a non-empty item set")
        if weights is None:
            weights = [1.0] * len(items)
        if len(weights) != len(items):
            raise BuildError(f"got {len(items)} items but {len(weights)} weights")
        cleaned = validate_weights(weights, context="AliasSampler")
        self._items: List[T] = list(items)
        self._items_view: Tuple[T, ...] = tuple(self._items)
        self._weights = cleaned
        self._total_weight = float(sum(cleaned))
        self._rng = ensure_rng(rng)
        if kernels.use_batch_build(len(cleaned)):
            np_prob, np_alias = kernels.build_alias_tables_batch(cleaned)
            # Keep the list views for the scalar draw path and the numpy
            # views for the batch path — built once, no lazy re-packing.
            self._prob = np_prob.tolist()
            self._alias = np_alias.tolist()
            self._np_tables = (np_prob, np_alias)
        else:
            self._prob, self._alias = build_alias_tables(cleaned)
            self._np_tables = None  # numpy copy of the urn tables, built lazily

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------

    def sample_index(self) -> int:
        """Draw the index of one weighted sample in O(1)."""
        if obs.ENABLED:
            _DRAWS.inc()
        return alias_draw(self._prob, self._alias, self._rng)

    def sample(self) -> T:
        """Draw one independent weighted sample in O(1) (Theorem 1)."""
        return self._items[self.sample_index()]

    def sample_many(self, s: int, *, rng: RNGLike = None) -> List[T]:
        """Draw ``s`` independent weighted samples in O(s).

        Dispatches to the vectorized alias kernel when numpy is available
        and ``s`` is large enough to amortise the kernel call. ``rng``
        overrides the instance stream for this call (engine batching).
        """
        validate_sample_size(s)
        items = self._items
        if kernels.use_batch(s):
            return [items[i] for i in self._batch_indices(s, rng)]
        if obs.ENABLED:
            _DRAWS.add(s)
        prob, alias = self._prob, self._alias
        rng = self._rng if rng is None else rng
        return [items[alias_draw(prob, alias, rng)] for _ in range(s)]

    def sample_indices(self, s: int, *, rng: RNGLike = None) -> List[int]:
        """Draw ``s`` independent sample indices in O(s)."""
        validate_sample_size(s)
        if kernels.use_batch(s):
            return self._batch_indices(s, rng)
        if obs.ENABLED:
            _DRAWS.add(s)
        prob, alias = self._prob, self._alias
        rng = self._rng if rng is None else rng
        return [alias_draw(prob, alias, rng) for _ in range(s)]

    def _batch_indices(self, s: int, rng: RNGLike = None) -> List[int]:
        if obs.ENABLED:
            _DRAWS.add(s)
        if self._np_tables is None:
            self._np_tables = kernels.as_alias_arrays(self._prob, self._alias)
        prob, alias = self._np_tables
        gen = kernels.batch_generator(self._rng if rng is None else rng)
        return kernels.alias_draw_batch(prob, alias, s, gen).tolist()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> Sequence[T]:
        """The underlying item set (read-only view, cached at build time)."""
        return self._items_view

    @property
    def total_weight(self) -> float:
        """Sum of all weights, ``W`` in the paper's notation."""
        return self._total_weight

    def probability(self, index: int) -> float:
        """Exact probability that :meth:`sample_index` returns ``index``.

        Recovered from the urn table; used by tests to check condition (2)
        of §3.1 — the per-element urn masses must sum to ``w(e)/W``.
        """
        n = len(self._items)
        mass = self._prob[index] / n
        for urn, partner in enumerate(self._alias):
            if partner == index and self._prob[urn] < 1.0:
                mass += (1.0 - self._prob[urn]) / n
        return mass

    def expected_probability(self, index: int) -> float:
        """Target probability ``w(e)/W`` for the element at ``index``."""
        return self._weights[index] / self._total_weight
