"""The paper's primary contribution: generic IQS techniques (§3–§7).

Each module implements one technique with the guarantees stated in the
paper:

* :mod:`repro.core.alias` — Theorem 1 (the alias method, §3.1)
* :mod:`repro.core.tree_sampling` — tree sampling (§3.2, Lemma 4)
* :mod:`repro.core.range_sampler` — alias augmentation (§4, Lemma 2,
  Theorem 3)
* :mod:`repro.core.coverage` — the coverage technique (§5, Theorem 5)
* :mod:`repro.core.approx_coverage` — approximate coverage (§6, Theorem 6,
  Corollary 7)
* :mod:`repro.core.set_union` — random permutation / set-union sampling
  (§7, Theorem 8)
* :mod:`repro.core.dynamic` — dynamised weighted set sampling (§9,
  Direction 1)
* :mod:`repro.core.dependent`, :mod:`repro.core.naive` — the non-IQS
  baselines the paper contrasts against (§1, §2)
* :mod:`repro.core.schemes` — WR / WoR / weighted scheme conversions (§1)
"""

from repro.core.alias import AliasSampler
from repro.core.approximate import ApproximateDynamicSampler
from repro.core.integer_range import IntegerRangeSampler
from repro.core.approx_coverage import (
    ApproximateCover,
    ApproxCoverSampler,
    ComplementRangeIndex,
    PrecomputedCoverSampler,
)
from repro.core.coverage import CoverageSampler
from repro.core.dependent import DependentRangeSampler
from repro.core.dynamic import BucketDynamicSampler, FenwickDynamicSampler
from repro.core.dynamic_range import DynamicRangeSampler
from repro.core.naive import NaiveRangeSampler, NaiveSetUnionSampler
from repro.core.plan_cache import QueryPlanCache
from repro.core.planner import PlanScope, PlanStore, QueryPlan, plan_scope
from repro.core.range_sampler import (
    AliasAugmentedRangeSampler,
    ChunkedRangeSampler,
    TreeWalkRangeSampler,
)
from repro.core.schemes import (
    multinomial_split,
    sample_without_replacement,
    uniform_indices_without_replacement,
    wr_from_wor,
)
from repro.core.set_union import SetUnionSampler
from repro.core.tree_sampling import FlatTreeSampler, Tree, TreeSampler

__all__ = [
    "AliasSampler",
    "ApproximateDynamicSampler",
    "IntegerRangeSampler",
    "ApproximateCover",
    "ApproxCoverSampler",
    "ComplementRangeIndex",
    "PrecomputedCoverSampler",
    "CoverageSampler",
    "DependentRangeSampler",
    "BucketDynamicSampler",
    "FenwickDynamicSampler",
    "DynamicRangeSampler",
    "NaiveRangeSampler",
    "NaiveSetUnionSampler",
    "QueryPlanCache",
    "QueryPlan",
    "PlanScope",
    "PlanStore",
    "plan_scope",
    "AliasAugmentedRangeSampler",
    "ChunkedRangeSampler",
    "TreeWalkRangeSampler",
    "multinomial_split",
    "sample_without_replacement",
    "uniform_indices_without_replacement",
    "wr_from_wor",
    "SetUnionSampler",
    "FlatTreeSampler",
    "Tree",
    "TreeSampler",
]
