"""The conventional *dependent* query-sampling baseline (paper §2).

Preprocessing fixes one random permutation of ``S`` and defines each
element's *rank* as its permutation position. A WoR query ``([x, y], s)``
returns the ``s`` elements of ``S_q`` with the lowest ranks — a perfectly
valid random WoR sample of ``S_q`` in isolation, retrievable in
``O(log n + s)``-flavoured time.

What it deliberately lacks is *cross-query* independence: repeating the
same query always returns the same set, and overlapping queries return
correlated samples. The independence diagnostics in
:mod:`repro.stats.independence` flag exactly this structure, and experiment
E11 shows how it breaks the long-run failure-concentration guarantee of
Benefit 1.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import List, Sequence

from repro.core.schemes import wr_from_wor
from repro.engine.protocol import EngineOp, RangeQueryMixin
from repro.errors import BuildError, EmptyQueryError
from repro.substrates.minrank_tree import MinRankTree
from repro.substrates.rng import RNGLike, ensure_rng
from repro.validation import validate_sample_size


class DependentRangeSampler(RangeQueryMixin):
    """Range sampling without cross-query independence (§2)."""

    # The fixed preprocessing permutation is the whole point of this
    # baseline, so there is no per-request stream to thread through —
    # seeded requests swap the conversion randomness only.
    engine_ops = {
        "sample": EngineOp("sample_with_replacement", takes_s=True, pass_rng=False),
        "sample_wor": EngineOp(
            "sample_without_replacement", takes_s=True, pass_rng=False
        ),
    }
    engine_thread_safe = False

    def sample(self, x: float, y: float, s: int) -> List[float]:
        """Alias for :meth:`sample_with_replacement` (protocol entry)."""
        return self.sample_with_replacement(x, y, s)

    def __init__(self, keys: Sequence[float], rng: RNGLike = None):
        if len(keys) == 0:
            raise BuildError("DependentRangeSampler requires at least one key")
        self._rng = ensure_rng(rng)
        ordered = sorted(keys)
        for i in range(1, len(ordered)):
            if not ordered[i - 1] < ordered[i]:
                raise BuildError("keys must be distinct")
        # The one random permutation fixed at preprocessing time.
        ranks = list(range(len(ordered)))
        self._rng.shuffle(ranks)
        self._tree = MinRankTree(ordered, ranks)

    def __len__(self) -> int:
        return len(self._tree)

    @property
    def keys(self) -> List[float]:
        return self._tree.keys

    def sample_without_replacement(self, x: float, y: float, s: int) -> List[float]:
        """A WoR sample of size ``s`` from ``S ∩ [x, y]``.

        Correctly uniform over size-``s`` subsets *per query*, but repeating
        the query reproduces the identical output — the dependence the
        paper's IQS definition (eq. 1) forbids.
        """
        validate_sample_size(s)
        hits = self._tree.lowest_ranked_in_range(x, y, s)
        if not hits:
            raise EmptyQueryError(f"no keys in [{x}, {y}]")
        if len(hits) < s:
            raise EmptyQueryError(
                f"range [{x}, {y}] holds {len(hits)} < s={s} keys (WoR needs s <= |S_q|)"
            )
        keys = self._tree.keys
        return [keys[index] for _, index in hits]

    def sample_with_replacement(self, x: float, y: float, s: int) -> List[float]:
        """A WR sample of size ``s`` via the O(s) WoR→WR conversion (§2).

        The conversion consumes fresh randomness, so two calls differ in
        *pattern*, but they keep drawing from the same low-rank elements —
        still dependent across queries.
        """
        validate_sample_size(s)
        population = self._count(x, y)
        if population == 0:
            raise EmptyQueryError(f"no keys in [{x}, {y}]")
        wor = self._tree.lowest_ranked_in_range(x, y, min(s, population))
        keys = self._tree.keys
        wor_keys = [keys[index] for _, index in wor]
        return wr_from_wor(wor_keys, population, rng=self._rng, size=s)

    def _count(self, x: float, y: float) -> int:
        keys = self._tree.keys
        return bisect_right(keys, y) - bisect_left(keys, x)
