"""ε-approximate IQS (paper §9, Direction 4).

Direction 4 asks how relaxing the sampling distribution — each outcome's
probability may deviate from its target by a ``(1 ± ε)`` factor — changes
the space/query/update complexity. This module implements the canonical
positive answer for *weighted set sampling*: quantize every weight to the
nearest power of ``(1 + ε)`` and sample exactly from the quantized
distribution. Consequences:

* every element's probability is within ``(1 ± ε)`` of its true value;
* all elements in a class are interchangeable, so a class is just an
  (unordered) array — insert/delete become O(1) swap operations, solving
  the Direction-1 dynamization problem *for free* in the approximate
  setting;
* the number of classes is ``O(log_{1+ε}(w_max/w_min)) = O((1/ε)·log W)``,
  so class selection is a small linear scan (kept exact, so outputs stay
  mutually independent across queries).
"""

from __future__ import annotations

import math
from typing import Dict, Generic, List, Tuple, TypeVar

from repro.engine.protocol import EngineOp, EngineSampler
from repro.errors import BuildError, EmptyQueryError, InvalidWeightError
from repro.substrates.rng import RNGLike, ensure_rng
from repro.validation import validate_sample_size

T = TypeVar("T")


class ApproximateDynamicSampler(EngineSampler, Generic[T]):
    """ε-approximate weighted set sampling with O(1) updates (Direction 4)."""

    engine_ops = {
        "sample": EngineOp("sample_many", takes_s=True, pass_rng=False),
    }

    def __init__(self, epsilon: float = 0.1, rng: RNGLike = None):
        if not 0 < epsilon < 1:
            raise BuildError(f"epsilon must be in (0, 1), got {epsilon}")
        self.epsilon = epsilon
        self._log_base = math.log1p(epsilon)
        self._rng = ensure_rng(rng)
        # class exponent k -> list of items; class weight = (1+ε)^k
        self._class_items: Dict[int, List[object]] = {}
        self._class_unit: Dict[int, float] = {}  # k -> (1+ε)^k, cached
        self._locator: Dict[int, Tuple[int, int]] = {}  # handle -> (class, index)
        self._handle_at: Dict[Tuple[int, int], int] = {}
        self._true_weight: Dict[int, float] = {}
        self._total_mass = 0.0  # Σ |class|·(1+ε)^k, maintained incrementally
        self._next_handle = 0
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def class_count(self) -> int:
        return len(self._class_items)

    def _class_of(self, weight: float) -> int:
        return round(math.log(weight) / self._log_base)

    def quantized_weight(self, handle: int) -> float:
        """The (1+ε)^k weight actually used for the element's class."""
        klass, _ = self._locator[handle]
        return math.exp(klass * self._log_base)

    def true_weight(self, handle: int) -> float:
        return self._true_weight[handle]

    def insert(self, item: T, weight: float) -> int:
        """O(1): append to the weight class."""
        value = float(weight)
        if not value > 0 or math.isinf(value) or value != value:
            raise InvalidWeightError(f"weight must be positive and finite, got {weight!r}")
        klass = self._class_of(value)
        items = self._class_items.setdefault(klass, [])
        if klass not in self._class_unit:
            self._class_unit[klass] = math.exp(klass * self._log_base)
        self._total_mass += self._class_unit[klass]
        index = len(items)
        items.append(item)
        handle = self._next_handle
        self._next_handle += 1
        self._locator[handle] = (klass, index)
        self._handle_at[(klass, index)] = handle
        self._true_weight[handle] = value
        self._size += 1
        return handle

    def delete(self, handle: int) -> T:
        """O(1): swap-remove from the weight class."""
        if handle not in self._locator:
            raise KeyError(f"no live element behind handle {handle}")
        klass, index = self._locator.pop(handle)
        del self._true_weight[handle]
        items = self._class_items[klass]
        item = items[index]
        del self._handle_at[(klass, index)]
        last = len(items) - 1
        if index != last:
            moved = self._handle_at.pop((klass, last))
            items[index] = items[last]
            self._locator[moved] = (klass, index)
            self._handle_at[(klass, index)] = moved
        items.pop()
        self._total_mass -= self._class_unit[klass]
        if not items:
            del self._class_items[klass]
            del self._class_unit[klass]
        self._size -= 1
        if self._total_mass < 0:
            self._total_mass = sum(
                len(members) * self._class_unit[k]
                for k, members in self._class_items.items()
            )
        return item  # type: ignore[return-value]

    def sample(self) -> T:
        """One independent ε-approximate weighted sample.

        Exact two-stage draw over the quantized distribution: pick a class
        proportional to ``|class|·(1+ε)^k`` (linear scan over the
        O((1/ε) log W) classes), then a uniform member.
        """
        if self._size == 0:
            raise EmptyQueryError("sampler is empty")
        rng = self._rng
        class_items = self._class_items
        class_unit = self._class_unit
        target = rng.random() * self._total_mass
        chosen = next(iter(class_items))
        for klass, members in class_items.items():
            mass = len(members) * class_unit[klass]
            chosen = klass
            if target < mass:
                break
            target -= mass
        items = class_items[chosen]
        index = int(rng.random() * len(items))
        if index == len(items):
            index -= 1
        return items[index]  # type: ignore[return-value]

    def sample_many(self, s: int) -> List[T]:
        validate_sample_size(s)
        return [self.sample() for _ in range(s)]

    def probability_bounds(self, handle: int, total_true_weight: float) -> Tuple[float, float]:
        """(lower, upper) bounds on this element's sampling probability
        relative to its exact target ``w/Σw`` — both within (1 ± ε)."""
        target = self._true_weight[handle] / total_true_weight
        half = math.sqrt(1 + self.epsilon)  # rounding is to the *nearest* class
        return target / half ** 2, target * half ** 2
