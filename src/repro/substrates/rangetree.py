"""Multi-dimensional range tree with cover finding (paper §3.2, §5).

The range tree on ``n`` points in ``R^d`` uses ``O(n log^{d-1} n)`` space:
a balanced primary tree on the first coordinate whose every node stores a
secondary range tree over the remaining coordinates; at the final
coordinate the structure is a sorted array. Combined with Theorem 5 it
yields an IQS structure with ``O(log^d n + s)`` query time for
multi-dimensional weighted range sampling (improving Martinez [20]).

The paper's footnote 4 notes that a range tree stores each element at
multiple leaves, which is harmless here: a query's cover consists of
last-level sorted-array fragments drawn from *disjoint* primary canonical
subtrees, so every point of ``S_q`` appears in exactly one cover span.

Cover representation: each last-level sorted array is written into one
global leaf array (so points appear ``O(log^{d-1} n)`` times globally);
``find_cover`` returns disjoint half-open spans of that global array —
``O(log^{d-1} n)`` spans per query, since at the last coordinate a range
collapses to a single contiguous run.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import List, Optional, Sequence, Tuple

from repro.errors import BuildError
from repro.substrates.kdtree import Rect, Span
from repro.validation import validate_weights

Point = Tuple[float, ...]


class _LastLevel:
    """Sorted-by-last-coordinate array materialised in the global arrays."""

    __slots__ = ("coords", "offset")

    def __init__(self, coords: List[float], offset: int):
        self.coords = coords
        self.offset = offset

    def query(self, rect: Rect, dim: int, out: List[Span]) -> None:
        lo_value, hi_value = rect[dim]
        lo = bisect_left(self.coords, lo_value)
        hi = bisect_right(self.coords, hi_value)
        if lo < hi:
            out.append((self.offset + lo, self.offset + hi))


class _PrimaryNode:
    """Node of a primary tree over one coordinate; stores a secondary."""

    __slots__ = ("lo", "hi", "left", "right", "secondary")

    def __init__(self, lo: int, hi: int):
        self.lo = lo
        self.hi = hi
        self.left: Optional["_PrimaryNode"] = None
        self.right: Optional["_PrimaryNode"] = None
        self.secondary = None  # _PrimaryTree or _LastLevel


class _PrimaryTree:
    """Balanced tree over points sorted by coordinate ``dim``."""

    __slots__ = ("coords", "root", "dim")

    def __init__(self, coords: List[float], root: _PrimaryNode, dim: int):
        self.coords = coords
        self.root = root
        self.dim = dim

    def query(self, rect: Rect, dim: int, out: List[Span]) -> None:
        lo_value, hi_value = rect[dim]
        lo = bisect_left(self.coords, lo_value)
        hi = bisect_right(self.coords, hi_value)
        if lo >= hi:
            return
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.hi <= lo or hi <= node.lo:
                continue
            if lo <= node.lo and node.hi <= hi:
                node.secondary.query(rect, dim + 1, out)
                continue
            if node.left is not None:
                stack.append(node.right)
                stack.append(node.left)
            else:
                # Leaf straddling the boundary cannot happen: a leaf span
                # of size 1 is either inside or disjoint. Defensive only.
                continue


class RangeTree:
    """``O(n log^{d-1} n)``-space range tree over weighted points."""

    def __init__(self, points: Sequence[Point], weights: Optional[Sequence[float]] = None):
        if len(points) == 0:
            raise BuildError("RangeTree requires at least one point")
        dims = len(points[0])
        if dims < 1:
            raise BuildError("points must have at least one dimension")
        if any(len(p) != dims for p in points):
            raise BuildError("all points must share the same dimensionality")
        if weights is None:
            weights = [1.0] * len(points)
        if len(weights) != len(points):
            raise BuildError(f"got {len(points)} points but {len(weights)} weights")
        cleaned = validate_weights(weights, context="RangeTree")

        self.dims = dims
        self._points = [tuple(p) for p in points]
        self._weights = cleaned
        self._leaf_points: List[Point] = []
        self._leaf_weights: List[float] = []
        self._original_index: List[int] = []

        indices = sorted(range(len(points)), key=lambda i: (self._points[i][0], i))
        self._root_structure = self._build(indices, 0)

    def _build(self, indices: List[int], dim: int):
        """Build the structure over ``indices`` sorted by coordinate ``dim``."""
        if dim == self.dims - 1:
            offset = len(self._leaf_points)
            coords: List[float] = []
            for index in indices:
                point = self._points[index]
                coords.append(point[dim])
                self._leaf_points.append(point)
                self._leaf_weights.append(self._weights[index])
                self._original_index.append(index)
            return _LastLevel(coords, offset)

        coords = [self._points[index][dim] for index in indices]
        next_dim = dim + 1

        def build_node(lo: int, hi: int, sorted_next: List[int]) -> _PrimaryNode:
            # `sorted_next` holds indices[lo:hi] sorted by coordinate dim+1.
            node = _PrimaryNode(lo, hi)
            node.secondary = self._build(sorted_next, next_dim)
            if hi - lo > 1:
                mid = (lo + hi) // 2
                left_set = set(indices[lo:mid])
                left_sorted = [i for i in sorted_next if i in left_set]
                right_sorted = [i for i in sorted_next if i not in left_set]
                node.left = build_node(lo, mid, left_sorted)
                node.right = build_node(mid, hi, right_sorted)
            return node

        all_sorted_next = sorted(indices, key=lambda i: (self._points[i][next_dim], i))
        root = build_node(0, len(indices), all_sorted_next)
        return _PrimaryTree(coords, root, dim)

    # ------------------------------------------------------------------
    # CoverableIndex protocol
    # ------------------------------------------------------------------

    @property
    def leaf_items(self) -> Sequence[Point]:
        """Global concatenation of all last-level arrays (with duplication)."""
        return self._leaf_points

    @property
    def leaf_weights(self) -> Sequence[float]:
        return self._leaf_weights

    def original_index(self, leaf_position: int) -> int:
        return self._original_index[leaf_position]

    def find_cover(self, rect: Rect) -> List[Span]:
        """Disjoint spans of the global leaf array partitioning ``S ∩ rect``."""
        if len(rect) != self.dims:
            raise ValueError(f"query has {len(rect)} dims, tree has {self.dims}")
        out: List[Span] = []
        self._root_structure.query(rect, 0, out)
        return out

    def report(self, rect: Rect) -> List[Point]:
        return [
            self._leaf_points[position]
            for lo, hi in self.find_cover(rect)
            for position in range(lo, hi)
        ]

    def count(self, rect: Rect) -> int:
        return sum(hi - lo for lo, hi in self.find_cover(rect))

    def __len__(self) -> int:
        return len(self._points)

    def storage_size(self) -> int:
        """Number of (point, weight) slots stored — Θ(n log^{d-1} n)."""
        return len(self._leaf_points)
