"""Random permutations and rank assignment (paper §2 and §7).

Two IQS techniques rest on a random permutation of the input:

* the *dependent* query-sampling baseline of §2 fixes one permutation and
  always returns the lowest-rank elements in the query range;
* the set-union sampler of §7 (Theorem 8) permutes the universe and indexes
  every set by the resulting ranks.

Ranks here are 1-based, matching the paper's convention that the rank of an
element is its position in the permuted sequence Π.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Sequence, TypeVar

from repro.substrates.rng import RNGLike, ensure_rng

T = TypeVar("T", bound=Hashable)


def random_permutation(items: Sequence[T], rng: RNGLike = None) -> List[T]:
    """Return a uniformly random permutation of ``items`` (Fisher–Yates)."""
    generator = ensure_rng(rng)
    permuted = list(items)
    generator.shuffle(permuted)
    return permuted


def assign_ranks(items: Iterable[T], rng: RNGLike = None) -> Dict[T, int]:
    """Map each distinct item to its 1-based position in a random permutation.

    Raises ``ValueError`` if ``items`` contains duplicates, since a rank
    function must be injective for the §7 analysis to hold.
    """
    generator = ensure_rng(rng)
    distinct = list(items)
    if len(set(distinct)) != len(distinct):
        raise ValueError("assign_ranks requires distinct items")
    generator.shuffle(distinct)
    return {item: position + 1 for position, item in enumerate(distinct)}


def inverse_permutation(permutation: Sequence[int]) -> List[int]:
    """Invert a permutation of ``0..len-1`` (helper for EM shuffling)."""
    inverse = [0] * len(permutation)
    for index, value in enumerate(permutation):
        inverse[value] = index
    return inverse
