"""Randomly shifted grids over R^d — the LSH stand-in for fair NN (§2, §7).

The fair near-neighbor solutions the paper cites [6–8, 17] hash points
into LSH buckets and apply set-union sampling to the buckets matching a
query. We substitute ``L`` uniformly shifted grids with cell side equal to
the query radius: every point lands in one cell per grid, so each point
appears in ``L`` (overlapping) sets — exactly the structural challenge
Theorem 8 addresses (DESIGN.md §4, substitution 3).
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, List, Sequence, Tuple

from repro.errors import BuildError
from repro.substrates.rng import RNGLike, ensure_rng

Point = Tuple[float, ...]
Cell = Tuple[int, ...]


class ShiftedGrids:
    """``L`` shifted uniform grids bucketing weighted points."""

    def __init__(
        self,
        points: Sequence[Point],
        cell_size: float,
        num_grids: int = 2,
        rng: RNGLike = None,
    ):
        if len(points) == 0:
            raise BuildError("ShiftedGrids requires at least one point")
        if cell_size <= 0:
            raise BuildError("cell_size must be positive")
        if num_grids < 1:
            raise BuildError("need at least one grid")
        dims = len(points[0])
        if any(len(p) != dims for p in points):
            raise BuildError("all points must share the same dimensionality")
        self.dims = dims
        self.cell_size = cell_size
        self.num_grids = num_grids
        self._points = [tuple(p) for p in points]
        generator = ensure_rng(rng)
        self._shifts: List[Tuple[float, ...]] = [
            tuple(generator.random() * cell_size for _ in range(dims))
            for _ in range(num_grids)
        ]
        # Per grid: cell coordinates -> list of point indices.
        self._buckets: List[Dict[Cell, List[int]]] = []
        for shift in self._shifts:
            buckets: Dict[Cell, List[int]] = {}
            for index, point in enumerate(self._points):
                cell = self._cell_of(point, shift)
                buckets.setdefault(cell, []).append(index)
            self._buckets.append(buckets)

        # Flatten every non-empty cell of every grid into one set family F
        # (elements are point indices, shared across grids so the union
        # sampler deduplicates them naturally).
        self._family: List[List[int]] = []
        self._family_key: List[Tuple[int, Cell]] = []
        self._family_index: Dict[Tuple[int, Cell], int] = {}
        for grid_index, buckets in enumerate(self._buckets):
            for cell, members in buckets.items():
                key = (grid_index, cell)
                self._family_index[key] = len(self._family)
                self._family_key.append(key)
                self._family.append(members)

    def _cell_of(self, point: Point, shift: Tuple[float, ...]) -> Cell:
        size = self.cell_size
        return tuple(
            math.floor((coordinate + offset) / size)
            for coordinate, offset in zip(point, shift)
        )

    @property
    def points(self) -> Sequence[Point]:
        return self._points

    @property
    def family(self) -> List[List[int]]:
        """The set family F (point-index lists) for the union sampler."""
        return self._family

    def total_family_size(self) -> int:
        """``n = Σ|S|``: each point appears once per grid."""
        return sum(len(s) for s in self._family)

    def cells_for_ball(self, center: Point, radius: float) -> List[int]:
        """Family indices of every cell (any grid) intersecting the ball.

        The union of these cells contains every point within ``radius`` of
        ``center``; cells are pruned by exact box-ball distance.
        """
        if len(center) != self.dims:
            raise ValueError(f"query has {len(center)} dims, grids have {self.dims}")
        size = self.cell_size
        selected: List[int] = []
        for grid_index, (shift, buckets) in enumerate(zip(self._shifts, self._buckets)):
            ranges = []
            for axis in range(self.dims):
                lo = math.floor((center[axis] - radius + shift[axis]) / size)
                hi = math.floor((center[axis] + radius + shift[axis]) / size)
                ranges.append(range(lo, hi + 1))
            for cell in itertools.product(*ranges):
                if cell not in buckets:
                    continue
                if self._box_ball_distance(cell, shift, center) <= radius:
                    selected.append(self._family_index[(grid_index, cell)])
        return selected

    def _box_ball_distance(self, cell: Cell, shift: Tuple[float, ...], center: Point) -> float:
        """Distance from ``center`` to the cell's axis-aligned box."""
        size = self.cell_size
        squared = 0.0
        for axis in range(self.dims):
            box_lo = cell[axis] * size - shift[axis]
            box_hi = box_lo + size
            coordinate = center[axis]
            if coordinate < box_lo:
                squared += (box_lo - coordinate) ** 2
            elif coordinate > box_hi:
                squared += (coordinate - box_hi) ** 2
        return math.sqrt(squared)
