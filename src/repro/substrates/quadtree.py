"""Point quadtree with cover finding (paper §3.2 remark, Looz–Meyerhenke).

Looz and Meyerhenke applied tree sampling to the quadtree to obtain an
``O(n)``-space structure with ``O((√n + s) log n)`` query time under data
assumptions. Here the quadtree implements the same span-cover protocol as
the kd-tree, so it plugs into :class:`repro.core.coverage.CoverageSampler`
directly; experiment E5 compares its cover sizes against the kd-tree's.

2D only (the classical quadtree setting).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import BuildError
from repro.substrates.kdtree import Rect, Span, rect_contains_point
from repro.validation import validate_weights

Point2 = Tuple[float, float]

NO_CHILD = -1


class QuadTree:
    """Region quadtree over weighted 2D points, bucket leaves, span covers."""

    def __init__(
        self,
        points: Sequence[Point2],
        weights: Optional[Sequence[float]] = None,
        leaf_size: int = 8,
        max_depth: int = 32,
    ):
        if len(points) == 0:
            raise BuildError("QuadTree requires at least one point")
        if any(len(p) != 2 for p in points):
            raise BuildError("QuadTree points must be 2-dimensional")
        if weights is None:
            weights = [1.0] * len(points)
        if len(weights) != len(points):
            raise BuildError(f"got {len(points)} points but {len(weights)} weights")
        if leaf_size < 1:
            raise BuildError("leaf_size must be >= 1")
        cleaned = validate_weights(weights, context="QuadTree")
        self.dims = 2
        self._leaf_size = leaf_size

        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        side = max(max(xs) - min(xs), max(ys) - min(ys))
        side = side if side > 0 else 1.0
        root_lo = (min(xs), min(ys))
        root_hi = (root_lo[0] + side, root_lo[1] + side)

        order = list(range(len(points)))
        self._children: List[List[int]] = []
        self._lo: List[int] = []
        self._hi: List[int] = []
        self._cell_lo: List[Point2] = []
        self._cell_hi: List[Point2] = []

        def build(indices: List[int], cell_lo: Point2, cell_hi: Point2, offset: int, depth: int) -> int:
            node = len(self._children)
            self._children.append([])
            self._lo.append(offset)
            self._hi.append(offset + len(indices))
            self._cell_lo.append(cell_lo)
            self._cell_hi.append(cell_hi)
            if len(indices) <= leaf_size or depth >= max_depth:
                order[offset : offset + len(indices)] = indices
                return node
            mid_x = (cell_lo[0] + cell_hi[0]) / 2
            mid_y = (cell_lo[1] + cell_hi[1]) / 2
            quadrants: List[List[int]] = [[], [], [], []]
            for index in indices:
                x, y = points[index]
                quadrant = (1 if x > mid_x else 0) | (2 if y > mid_y else 0)
                quadrants[quadrant].append(index)
            child_cells = [
                ((cell_lo[0], cell_lo[1]), (mid_x, mid_y)),
                ((mid_x, cell_lo[1]), (cell_hi[0], mid_y)),
                ((cell_lo[0], mid_y), (mid_x, cell_hi[1])),
                ((mid_x, mid_y), (cell_hi[0], cell_hi[1])),
            ]
            child_offset = offset
            for quadrant, bucket in enumerate(quadrants):
                if not bucket:
                    continue
                q_lo, q_hi = child_cells[quadrant]
                child = build(bucket, q_lo, q_hi, child_offset, depth + 1)
                self._children[node].append(child)
                child_offset += len(bucket)
            return node

        self.root = build(order[:], root_lo, root_hi, 0, 0)
        self._order = order
        self._leaf_points: List[Point2] = [tuple(points[i]) for i in order]
        self._leaf_weights: List[float] = [cleaned[i] for i in order]
        self._original_index: List[int] = list(order)

    # ------------------------------------------------------------------
    # CoverableIndex protocol
    # ------------------------------------------------------------------

    @property
    def leaf_items(self) -> Sequence[Point2]:
        return self._leaf_points

    @property
    def leaf_weights(self) -> Sequence[float]:
        return self._leaf_weights

    def original_index(self, leaf_position: int) -> int:
        return self._original_index[leaf_position]

    def find_cover(self, rect: Rect) -> List[Span]:
        """Disjoint leaf-order spans partitioning ``S ∩ rect``."""
        if len(rect) != 2:
            raise ValueError("QuadTree queries must be 2-dimensional rectangles")
        (qx_lo, qx_hi), (qy_lo, qy_hi) = rect
        spans: List[Span] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            cx_lo, cy_lo = self._cell_lo[node]
            cx_hi, cy_hi = self._cell_hi[node]
            if cx_lo > qx_hi or qx_lo > cx_hi or cy_lo > qy_hi or qy_lo > cy_hi:
                continue
            lo, hi = self._lo[node], self._hi[node]
            if qx_lo <= cx_lo and cx_hi <= qx_hi and qy_lo <= cy_lo and cy_hi <= qy_hi:
                spans.append((lo, hi))
                continue
            if not self._children[node]:
                for position in range(lo, hi):
                    if rect_contains_point(rect, self._leaf_points[position]):
                        spans.append((position, position + 1))
                continue
            stack.extend(self._children[node])
        return spans

    def iter_node_spans(self) -> List[Span]:
        return [(self._lo[node], self._hi[node]) for node in range(len(self._children))]

    def report(self, rect: Rect) -> List[Point2]:
        return [
            self._leaf_points[position]
            for lo, hi in self.find_cover(rect)
            for position in range(lo, hi)
        ]

    def count(self, rect: Rect) -> int:
        return sum(hi - lo for lo, hi in self.find_cover(rect))

    @property
    def node_count(self) -> int:
        return len(self._children)

    def __len__(self) -> int:
        return len(self._leaf_points)
