"""Fenwick (binary indexed) tree — the range-sum structure of §4.2.

The chunked range sampler (Theorem 3) needs ``sum(w(I_a..I_b))`` in
``O(log n)`` time; the paper suggests "a slightly augmented BST". A Fenwick
tree is the standard compact realisation: ``O(n)`` space, ``O(log n)``
point update and prefix sum. The same structure doubles as the backbone of
the ``O(log n)``-update dynamic sampler (Direction 1) via
:meth:`find_prefix`, which locates the slot owning a given cumulative-weight
offset.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


class FenwickTree:
    """Prefix sums over a fixed-size array of non-negative reals."""

    __slots__ = ("_tree", "_size")

    def __init__(self, values: Optional[Sequence[float]] = None, size: Optional[int] = None):
        if values is None and size is None:
            raise ValueError("provide initial values or a size")
        if values is not None:
            self._size = len(values)
            # O(n) bulk build: copy then push partial sums upward.
            self._tree: List[float] = [0.0] * (self._size + 1)
            for index, value in enumerate(values):
                self._tree[index + 1] += value
            for index in range(1, self._size):
                parent = index + (index & -index)
                if parent <= self._size:
                    self._tree[parent] += self._tree[index]
        else:
            assert size is not None
            self._size = size
            self._tree = [0.0] * (size + 1)

    def __len__(self) -> int:
        return self._size

    def add(self, index: int, delta: float) -> None:
        """Add ``delta`` to the value at ``index`` (0-based)."""
        if not 0 <= index < self._size:
            raise IndexError(f"index {index} out of range [0, {self._size})")
        position = index + 1
        while position <= self._size:
            self._tree[position] += delta
            position += position & -position

    def prefix_sum(self, count: int) -> float:
        """Sum of the first ``count`` values (``count`` may be 0..size)."""
        if not 0 <= count <= self._size:
            raise IndexError(f"count {count} out of range [0, {self._size}]")
        total = 0.0
        position = count
        while position > 0:
            total += self._tree[position]
            position -= position & -position
        return total

    def range_sum(self, lo: int, hi: int) -> float:
        """Sum of values at indices ``lo..hi-1`` (half-open)."""
        if lo > hi:
            raise IndexError(f"empty-range bounds reversed: [{lo}, {hi})")
        return self.prefix_sum(hi) - self.prefix_sum(lo)

    @property
    def total(self) -> float:
        """Sum of all values."""
        return self.prefix_sum(self._size)

    def find_prefix(self, target: float) -> int:
        """Smallest index ``i`` with ``prefix_sum(i + 1) > target``.

        Runs in ``O(log n)`` via binary lifting over the implicit tree.
        ``target`` must lie in ``[0, total)``; this is the inverse-CDF step
        used by :class:`repro.core.dynamic.FenwickDynamicSampler`.
        """
        if target < 0:
            raise ValueError("target must be non-negative")
        position = 0
        remaining = target
        step = 1
        while step * 2 <= self._size:
            step *= 2
        while step > 0:
            candidate = position + step
            if candidate <= self._size and self._tree[candidate] <= remaining:
                position = candidate
                remaining -= self._tree[candidate]
            step //= 2
        if position >= self._size:
            raise ValueError(f"target {target} is not below the total weight {self.total}")
        return position

    def values(self) -> List[float]:
        """Reconstruct the underlying array (O(n log n); for tests/debug)."""
        return [self.range_sum(index, index + 1) for index in range(self._size)]


def fenwick_from(values: Iterable[float]) -> FenwickTree:
    """Convenience constructor accepting any iterable."""
    return FenwickTree(list(values))
