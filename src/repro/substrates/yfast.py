"""Y-fast-trie predecessor structure over an integer universe (§4.3).

Afshani and Wei showed that when the elements of ``S`` come from an
integer domain ``[1, U]``, weighted range sampling is solvable with
``O(n)`` space and ``O(log log U + s)`` query time — the only part of the
Theorem-3 pipeline that costs ``Θ(log n)`` is locating the query
endpoints, and over an integer universe that becomes a *predecessor*
query, solvable in ``O(log log U)``.

This module provides that predecessor substrate: a y-fast trie — an
x-fast-trie top level over ``Θ(n / log U)`` representatives (hash tables
of prefixes, binary search over ``log U`` levels) with balanced buckets of
``Θ(log U)`` consecutive keys at the bottom. Static version (built once),
which is all the sampling structures need.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Dict, List, Optional, Sequence

from repro.errors import BuildError


class YFastTrie:
    """Static predecessor/successor queries in O(log log U)."""

    def __init__(self, keys: Sequence[int], universe_bits: int = 0):
        if len(keys) == 0:
            raise BuildError("YFastTrie requires at least one key")
        ordered = list(keys)
        for i in range(1, len(ordered)):
            if not ordered[i - 1] < ordered[i]:
                raise BuildError("YFastTrie keys must be strictly increasing")
        if ordered[0] < 0:
            raise BuildError("YFastTrie keys must be non-negative integers")
        self._keys: List[int] = ordered

        max_key = ordered[-1]
        bits = universe_bits if universe_bits > 0 else max(1, max_key.bit_length())
        if max_key >= (1 << bits):
            raise BuildError(f"keys exceed the {bits}-bit universe")
        self._bits = bits

        # Buckets of Θ(bits) consecutive keys; representative = first key.
        bucket_size = max(1, bits)
        self._bucket_starts: List[int] = []  # index into _keys
        self._representatives: List[int] = []
        for start in range(0, len(ordered), bucket_size):
            self._bucket_starts.append(start)
            self._representatives.append(ordered[start])

        # X-fast levels: for level L (0 = full key), a hash table of the
        # representatives' prefixes with L low bits stripped, mapping each
        # prefix to the (min, max) representative positions beneath it —
        # enough to resolve a predecessor after the binary search over
        # levels without walking.
        self._levels: List[Dict[int, tuple]] = []
        for level in range(bits + 1):
            table: Dict[int, tuple] = {}
            for position, representative in enumerate(self._representatives):
                prefix = representative >> level
                bounds = table.get(prefix)
                if bounds is None:
                    table[prefix] = (position, position)
                else:
                    table[prefix] = (min(bounds[0], position), max(bounds[1], position))
            self._levels.append(table)

    def __len__(self) -> int:
        return len(self._keys)

    @property
    def universe_bits(self) -> int:
        return self._bits

    def _bucket_of_predecessor(self, query: int) -> Optional[int]:
        """Index of the bucket whose representative is the predecessor of
        ``query`` among representatives, via O(log log U) binary search
        over prefix levels."""
        if query < self._representatives[0]:
            return None
        if query >= self._representatives[-1]:
            return len(self._representatives) - 1
        # Binary search over levels for the longest prefix of `query`
        # shared with some representative. Level `bits` (prefix 0) always
        # matches, so the search is well defined.
        low, high = 0, self._bits
        while low < high:
            mid = (low + high) // 2
            if (query >> mid) in self._levels[mid]:
                high = mid
            else:
                low = mid + 1
        level = high
        min_pos, max_pos = self._levels[level][query >> level]
        if level == 0:
            # Exact hit: `query` is itself a representative.
            return max_pos
        # The representatives under this prefix agree with `query` above
        # bit (level-1) and none matches it at bit (level-1):
        if (query >> (level - 1)) & 1:
            # query branches right where only smaller representatives live.
            return max_pos
        # query branches left; everything under the prefix is larger, so
        # the predecessor is the representative just before the subtree.
        return min_pos - 1 if min_pos > 0 else None

    def predecessor_index(self, query: int) -> Optional[int]:
        """Index (into the sorted key list) of the largest key ≤ query."""
        bucket = self._bucket_of_predecessor(query)
        if bucket is None:
            return None
        start = self._bucket_starts[bucket]
        stop = (
            self._bucket_starts[bucket + 1]
            if bucket + 1 < len(self._bucket_starts)
            else len(self._keys)
        )
        # Binary search within the Θ(log U)-sized bucket: O(log log U).
        position = bisect_right(self._keys, query, start, stop) - 1
        if position < start:
            return None
        return position

    def predecessor(self, query: int) -> Optional[int]:
        """Largest key ≤ query, or None."""
        index = self.predecessor_index(query)
        return None if index is None else self._keys[index]

    def successor_index(self, query: int) -> Optional[int]:
        """Index of the smallest key ≥ query, or None."""
        index = self.predecessor_index(query)
        if index is not None and self._keys[index] == query:
            return index
        position = 0 if index is None else index + 1
        return position if position < len(self._keys) else None

    def successor(self, query: int) -> Optional[int]:
        index = self.successor_index(query)
        return None if index is None else self._keys[index]

    def span_of(self, x: int, y: int) -> tuple:
        """Half-open sorted-index range of keys in ``[x, y]``.

        Two predecessor searches: O(log log U), vs the Θ(log n) bisect the
        real-domain structures pay — the point of the §4.3 remark.
        """
        if x > y:
            return 0, 0
        lo = self.successor_index(x)
        if lo is None:
            return 0, 0
        hi_index = self.predecessor_index(y)
        if hi_index is None or hi_index < lo:
            return 0, 0
        return lo, hi_index + 1

    def verify_against_bisect(self, query: int) -> bool:
        """Cross-check helper used by tests."""
        expected = bisect_left(self._keys, query + 1) - 1
        actual = self.predecessor_index(query)
        return (expected < 0 and actual is None) or expected == actual
