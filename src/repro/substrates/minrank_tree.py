"""Value-ordered BST augmented with subtree minimum rank.

Substrate for the §2 *dependent* query-sampling baseline: after fixing a
random permutation of ``S`` (each element's *rank* is its permutation
position), a query returns the ``s`` elements of ``S_q`` with the lowest
ranks. This is an instance of top-k range reporting; we support it with a
min-rank-augmented BST and a heap-of-subtrees extraction that emits the
``s`` smallest ranks in a value range in ``O((log n + s) log n)`` time.
"""

from __future__ import annotations

import heapq
from typing import List, Sequence, Tuple

from repro.errors import BuildError
from repro.substrates.bst import StaticBST


class MinRankTree:
    """Balanced BST over sorted keys, augmented with subtree min rank."""

    __slots__ = ("_tree", "_ranks", "_min_rank")

    def __init__(self, keys: Sequence[float], ranks: Sequence[int]):
        if len(keys) != len(ranks):
            raise BuildError(f"got {len(keys)} keys but {len(ranks)} ranks")
        if len(set(ranks)) != len(ranks):
            raise BuildError("ranks must be distinct (they index a permutation)")
        self._tree = StaticBST(keys)
        self._ranks: List[int] = list(ranks)
        # min_rank[u]: smallest rank among leaves below node u.
        self._min_rank: List[int] = [0] * self._tree.node_count
        # Node ids are assigned in pre-order, so children have larger ids
        # than their parent; iterate in reverse for a bottom-up pass.
        for node in range(self._tree.node_count - 1, -1, -1):
            if self._tree.is_leaf(node):
                self._min_rank[node] = self._ranks[self._tree.leaf_span(node)[0]]
            else:
                left, right = self._tree.children(node)
                self._min_rank[node] = min(self._min_rank[left], self._min_rank[right])

    def __len__(self) -> int:
        return len(self._tree)

    @property
    def keys(self) -> List[float]:
        return self._tree.keys

    def rank_of_index(self, index: int) -> int:
        return self._ranks[index]

    def lowest_ranked_in_range(self, x: float, y: float, s: int) -> List[Tuple[int, int]]:
        """The ``min(s, |S_q|)`` elements of ``S ∩ [x, y]`` with lowest ranks.

        Returns ``(rank, sorted_index)`` pairs in increasing rank order.
        Uses a heap over canonical subtrees: pop the subtree with the
        smallest min-rank; if it is a leaf, emit it, otherwise push its two
        children. Each emission costs ``O(log n)`` heap operations.
        """
        tree = self._tree
        cover = tree.canonical_nodes(x, y)
        heap: List[Tuple[int, int]] = [(self._min_rank[u], u) for u in cover]
        heapq.heapify(heap)
        result: List[Tuple[int, int]] = []
        while heap and len(result) < s:
            rank, node = heapq.heappop(heap)
            if tree.is_leaf(node):
                result.append((rank, tree.leaf_span(node)[0]))
            else:
                left, right = tree.children(node)
                heapq.heappush(heap, (self._min_rank[left], left))
                heapq.heappush(heap, (self._min_rank[right], right))
        return result
