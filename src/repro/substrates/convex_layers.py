"""Convex layers with logarithmic halfplane arc search (paper §6 remark).

The §6 remark singles out halfspace reporting as the flagship use of
approximate coverage (Afshani–Wei solved 3D halfspace IQS with shallow
cuttings). The classical 2D counterpart is halfplane reporting on the
*convex layers* (onion peeling) of the point set: the points below a
query line ``y ≤ a·x + b`` form, on every convex layer, one contiguous
cyclic arc of hull vertices, and once a layer contributes nothing, no
deeper layer can (everything deeper lies inside that layer's hull).
Walking layers outside-in therefore yields an **exact cover** — at most
two index spans per touched layer — that plugs straight into Theorem 5's
:class:`~repro.core.coverage.CoverageSampler`, giving halfplane IQS in
``O((1 + t)·log n + s)`` time, where ``t`` is the number of touched
layers. (DESIGN.md §4 records this 2D structure as the substitution for
the 3D shallow-cutting machinery.)

Per-layer arc location runs in ``O(log m)``: a linear function over the
vertices of a strictly convex polygon in ccw order is cyclically
unimodal, so the minimising vertex is found by a convex-polygon extreme
search and the two sign boundaries by binary searches along the monotone
stretches toward the maximising vertex.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import BuildError
from repro.validation import validate_weights

Point2 = Tuple[float, float]
Span = Tuple[int, int]


def _cross(o: Point2, a: Point2, b: Point2) -> float:
    return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])


def convex_hull(points: Sequence[Point2]) -> List[Point2]:
    """Strictly convex hull in ccw order (collinear boundary points
    excluded — they stay for deeper layers), via Andrew's monotone chain.
    """
    distinct = sorted(set(points))
    if len(distinct) <= 2:
        return distinct
    lower: List[Point2] = []
    for point in distinct:
        while len(lower) >= 2 and _cross(lower[-2], lower[-1], point) <= 0:
            lower.pop()
        lower.append(point)
    upper: List[Point2] = []
    for point in reversed(distinct):
        while len(upper) >= 2 and _cross(upper[-2], upper[-1], point) <= 0:
            upper.pop()
        upper.append(point)
    return lower[:-1] + upper[:-1]


class PolygonExtremes:
    """O(log m) extreme-vertex queries on a strictly convex ccw polygon.

    Precomputes the (unwrapped, strictly increasing) direction angles of
    the polygon's edges; the vertex maximising ``dot(v, d)`` is the head
    of the first edge whose angle passes ``angle(d) + π/2`` in cyclic
    order, found by one bisect.
    """

    __slots__ = ("hull", "_angles", "_base")

    def __init__(self, hull: Sequence[Point2]):
        self.hull = list(hull)
        m = len(self.hull)
        angles: List[float] = []
        if m >= 2:
            import math

            previous = None
            unwrap = 0.0
            for index in range(m):
                a = self.hull[index]
                b = self.hull[(index + 1) % m]
                angle = math.atan2(b[1] - a[1], b[0] - a[0])
                if previous is not None and angle + unwrap <= previous:
                    unwrap += 2 * math.pi
                angle += unwrap
                angles.append(angle)
                previous = angle
        self._angles = angles
        self._base = angles[0] if angles else 0.0

    def argmax(self, direction: Point2) -> int:
        """Index of the vertex maximising ``dot(v, direction)``."""
        import math
        from bisect import bisect_left

        m = len(self.hull)
        if m == 1:
            return 0
        if m == 2:
            d0 = self.hull[0][0] * direction[0] + self.hull[0][1] * direction[1]
            d1 = self.hull[1][0] * direction[0] + self.hull[1][1] * direction[1]
            return 0 if d0 >= d1 else 1
        # dot(e, direction) changes sign from + to − when angle(e) passes
        # angle(direction) + π/2.
        threshold = math.atan2(direction[1], direction[0]) + math.pi / 2
        two_pi = 2 * math.pi
        while threshold < self._base:
            threshold += two_pi
        while threshold >= self._base + two_pi:
            threshold -= two_pi
        index = bisect_left(self._angles, threshold)
        return index % m

    def argmin(self, direction: Point2) -> int:
        return self.argmax((-direction[0], -direction[1]))


def extreme_vertex_index(hull: Sequence[Point2], direction: Point2) -> int:
    """One-shot extreme vertex (builds the angle table; prefer
    :class:`PolygonExtremes` for repeated queries on the same hull)."""
    return PolygonExtremes(hull).argmax(direction)


class ConvexLayers:
    """Onion peeling of a 2D point set, with duplicate-aware layers.

    ``layers[i]`` lists *positions into the flat leaf arrays*; the flat
    arrays hold every input point exactly once, grouped layer by layer in
    ccw hull order (duplicated coordinates sit consecutively at their
    hull vertex's slot).
    """

    def __init__(self, points: Sequence[Point2], weights: Optional[Sequence[float]] = None):
        if len(points) == 0:
            raise BuildError("ConvexLayers requires at least one point")
        if any(len(p) != 2 for p in points):
            raise BuildError("ConvexLayers points must be 2-dimensional")
        if weights is None:
            weights = [1.0] * len(points)
        if len(weights) != len(points):
            raise BuildError(f"got {len(points)} points but {len(weights)} weights")
        cleaned = validate_weights(weights, context="ConvexLayers")

        # Group duplicates: coordinate -> list of original indices.
        by_coordinate: dict = {}
        for index, point in enumerate(points):
            by_coordinate.setdefault(tuple(point), []).append(index)

        self._leaf_points: List[Point2] = []
        self._leaf_weights: List[float] = []
        self._original_index: List[int] = []
        # Per layer: hull vertex coordinates (ccw) and, parallel to it,
        # the (start, stop) slice of the flat arrays for each vertex group.
        self.layer_vertices: List[List[Point2]] = []
        self.layer_vertex_spans: List[List[Span]] = []
        self.layer_bounds: List[Span] = []  # flat-array span of each layer

        remaining = set(by_coordinate)
        while remaining:
            hull = convex_hull(list(remaining))
            layer_start = len(self._leaf_points)
            vertex_spans: List[Span] = []
            for vertex in hull:
                group_start = len(self._leaf_points)
                for original in by_coordinate[vertex]:
                    self._leaf_points.append(vertex)
                    self._leaf_weights.append(cleaned[original])
                    self._original_index.append(original)
                vertex_spans.append((group_start, len(self._leaf_points)))
                remaining.discard(vertex)
            self.layer_vertices.append(list(hull))
            self.layer_vertex_spans.append(vertex_spans)
            self.layer_bounds.append((layer_start, len(self._leaf_points)))

    def __len__(self) -> int:
        return len(self._leaf_points)

    @property
    def num_layers(self) -> int:
        return len(self.layer_vertices)

    @property
    def leaf_items(self) -> Sequence[Point2]:
        return self._leaf_points

    @property
    def leaf_weights(self) -> Sequence[float]:
        return self._leaf_weights

    def original_index(self, leaf_position: int) -> int:
        return self._original_index[leaf_position]
