"""Seeded random-number-generator plumbing shared by every sampler.

All structures in this package accept either an integer seed or an existing
:class:`random.Random` instance. Centralising the coercion here keeps each
sampler deterministic under a fixed seed (required for reproducible tests
and benchmarks) while allowing several structures to share one generator —
the setting in which the paper's cross-query independence guarantee (§1,
eq. 1) is actually interesting.
"""

from __future__ import annotations

import random
from typing import Optional, Union

RNGLike = Union[int, random.Random, None]

_DEFAULT_SEED = 0x51_AB_5E_ED  # arbitrary fixed default for reproducibility


def ensure_rng(rng: RNGLike = None) -> random.Random:
    """Coerce ``rng`` into a :class:`random.Random`.

    ``None`` yields a generator seeded with a fixed default so that library
    behaviour is reproducible out of the box; pass ``random.Random()``
    explicitly for OS-entropy seeding.
    """
    if rng is None:
        return random.Random(_DEFAULT_SEED)
    if isinstance(rng, random.Random):
        return rng
    if isinstance(rng, int):
        return random.Random(rng)
    raise TypeError(f"expected int seed or random.Random, got {type(rng)!r}")


def spawn_rng(rng: random.Random, salt: Optional[int] = None) -> random.Random:
    """Derive an independent child generator from ``rng``.

    Used when a composite structure (e.g. the chunked sampler of Theorem 3)
    wants sub-structures with their own streams while remaining fully
    determined by the parent seed.
    """
    seed = rng.getrandbits(64)
    if salt is not None:
        seed ^= salt
    return random.Random(seed)
