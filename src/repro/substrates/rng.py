"""Seeded random-number-generator plumbing shared by every sampler.

All structures in this package accept either an integer seed or an existing
:class:`random.Random` instance. Centralising the coercion here keeps each
sampler deterministic under a fixed seed (required for reproducible tests
and benchmarks) while allowing several structures to share one generator —
the setting in which the paper's cross-query independence guarantee (§1,
eq. 1) is actually interesting.

Default-seed policy (the single place it is documented):

* ``rng=None`` (the default everywhere) seeds a fresh generator with
  :data:`DEFAULT_SEED`, so out-of-the-box library behaviour is
  reproducible — two identically-built samplers produce identical
  streams. Pass ``random.Random()`` explicitly for OS-entropy seeding.
* ``rng=<int>`` seeds a fresh generator with that integer.
* ``rng=<random.Random>`` is used as-is (shared, stateful). Composite
  structures hand the *same* object to their sub-structures so the whole
  index is a pure function of one seed.
* Batch kernels derive a NumPy generator from the ``random.Random``
  stream exactly once (``repro.core.kernels.batch_generator``), so the
  scalar and vectorized paths stay jointly determined by the same seed.
* The engine layer (:mod:`repro.engine`) gives every request in a batch
  its own independent stream by *seed-spawning*: request ``i`` of an
  engine seeded with ``seed`` uses :func:`derive_seed`\\ ``(seed, i)``
  unless the request carries an explicit per-request seed.

No sampler may fall back to the global :mod:`random` module or construct
``random.Random()`` locally; everything funnels through
:func:`ensure_rng`.
"""

from __future__ import annotations

from contextlib import contextmanager
import random
from typing import Iterator, List, Optional, Union

RNGLike = Union[int, random.Random, None]

#: Fixed default seed used when ``rng=None`` — see the module docstring
#: for the full policy.
DEFAULT_SEED = 0x51_AB_5E_ED

# Backwards-compatible alias (pre-engine code imported the underscored name).
_DEFAULT_SEED = DEFAULT_SEED

_MASK64 = (1 << 64) - 1


def ensure_rng(rng: RNGLike = None) -> random.Random:
    """Coerce ``rng`` into a :class:`random.Random`.

    ``None`` yields a generator seeded with :data:`DEFAULT_SEED` so that
    library behaviour is reproducible out of the box; pass
    ``random.Random()`` explicitly for OS-entropy seeding.
    """
    if rng is None:
        return random.Random(DEFAULT_SEED)
    if isinstance(rng, random.Random):
        return rng
    if isinstance(rng, int):
        return random.Random(rng)
    raise TypeError(f"expected int seed or random.Random, got {type(rng)!r}")


def spawn_rng(rng: random.Random, salt: Optional[int] = None) -> random.Random:
    """Derive an independent child generator from ``rng``.

    Used when a composite structure (e.g. the chunked sampler of Theorem 3)
    wants sub-structures with their own streams while remaining fully
    determined by the parent seed.
    """
    seed = rng.getrandbits(64)
    if salt is not None:
        seed ^= salt
    return random.Random(seed)


def derive_seed(master_seed: int, index: int) -> int:
    """Statelessly derive the seed for stream ``index`` of ``master_seed``.

    A SplitMix64-style avalanche over ``master_seed + index`` — cheap,
    stateless (unlike :func:`spawn_rng` it consumes no generator state, so
    request ``i``'s seed does not depend on requests ``0..i-1``), and
    well-spread even for consecutive indexes. This is how the
    :class:`~repro.engine.SamplingEngine` gives every request in a batch
    an independent stream while the whole batch remains a pure function
    of the engine seed.
    """
    z = (master_seed + 0x9E3779B97F4A7C15 * (index + 1)) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


def spawn_seeds(master_seed: int, count: int) -> List[int]:
    """``count`` independent per-stream seeds derived from ``master_seed``."""
    return [derive_seed(master_seed, index) for index in range(count)]


@contextmanager
def temporary_seed(rng: random.Random, seed: int) -> Iterator[random.Random]:
    """Run a block with ``rng`` re-seeded to ``seed``, then restore it.

    Swaps the generator's *internal state* (not the attribute holding it),
    so every structure sharing the object — e.g. a fair-NN index and its
    embedded set-union sampler — sees the temporary stream. The cached
    NumPy batch generator that :func:`repro.core.kernels.batch_generator`
    hangs off the object is stashed and re-derived for the same reason.
    Used by the engine protocol for samplers whose hot paths do not accept
    a per-call ``rng`` override.
    """
    from repro.core import kernels  # deferred: kernels imports repro.obs only

    saved_state = rng.getstate()
    saved_generator = getattr(rng, kernels.GENERATOR_ATTR, None)
    if saved_generator is not None:
        delattr(rng, kernels.GENERATOR_ATTR)
    rng.seed(seed)
    try:
        yield rng
    finally:
        rng.setstate(saved_state)
        if saved_generator is not None:
            setattr(rng, kernels.GENERATOR_ATTR, saved_generator)
        elif hasattr(rng, kernels.GENERATOR_ATTR):
            delattr(rng, kernels.GENERATOR_ATTR)
