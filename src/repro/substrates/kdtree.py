"""kd-tree with cover finding (paper §5, first Theorem-5 example).

A kd-tree over ``n`` points in ``R^d`` uses ``O(n)`` space and, for any
axis-parallel rectangle ``q``, yields a cover ``C_q`` of
``O(n^{1-1/d} + output-boundary)`` disjoint nodes whose subtrees partition
``S ∩ q``. Feeding that cover to :class:`repro.core.coverage.CoverageSampler`
gives the paper's ``O(n)``-space, ``O(n^{1-1/d} + s)``-query IQS structure
for multi-dimensional weighted range sampling.

The tree stores points in *leaf order*: every node's subtree occupies a
contiguous span of the reordered point array, so a cover is reported as a
list of disjoint half-open spans (singleton spans for boundary-leaf points
that individually satisfy ``q``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import BuildError
from repro.validation import validate_weights

Point = Tuple[float, ...]
Rect = Sequence[Tuple[float, float]]
Span = Tuple[int, int]

NO_CHILD = -1


def rect_contains_point(rect: Rect, point: Point) -> bool:
    """Closed-rectangle membership test."""
    return all(lo <= coordinate <= hi for (lo, hi), coordinate in zip(rect, point))


def _rect_contains_box(rect: Rect, box_lo: Point, box_hi: Point) -> bool:
    return all(
        r_lo <= b_lo and b_hi <= r_hi
        for (r_lo, r_hi), b_lo, b_hi in zip(rect, box_lo, box_hi)
    )


def _rect_intersects_box(rect: Rect, box_lo: Point, box_hi: Point) -> bool:
    return all(
        r_lo <= b_hi and b_lo <= r_hi
        for (r_lo, r_hi), b_lo, b_hi in zip(rect, box_lo, box_hi)
    )


class KDTree:
    """Median-split kd-tree over weighted points with span covers."""

    def __init__(
        self,
        points: Sequence[Point],
        weights: Optional[Sequence[float]] = None,
        leaf_size: int = 8,
    ):
        if len(points) == 0:
            raise BuildError("KDTree requires at least one point")
        dims = len(points[0])
        if dims == 0:
            raise BuildError("points must have at least one dimension")
        if any(len(p) != dims for p in points):
            raise BuildError("all points must share the same dimensionality")
        if weights is None:
            weights = [1.0] * len(points)
        if len(weights) != len(points):
            raise BuildError(f"got {len(points)} points but {len(weights)} weights")
        if leaf_size < 1:
            raise BuildError("leaf_size must be >= 1")
        cleaned = validate_weights(weights, context="KDTree")

        self.dims = dims
        self._leaf_size = leaf_size

        order = list(range(len(points)))
        # Node arrays (structure-of-arrays, ids assigned in pre-order).
        self._left: List[int] = []
        self._right: List[int] = []
        self._lo: List[int] = []
        self._hi: List[int] = []
        self._box_lo: List[Point] = []
        self._box_hi: List[Point] = []

        source_points = points

        def tight_box(lo: int, hi: int) -> Tuple[Point, Point]:
            subset = [source_points[order[i]] for i in range(lo, hi)]
            box_lo = tuple(min(p[axis] for p in subset) for axis in range(dims))
            box_hi = tuple(max(p[axis] for p in subset) for axis in range(dims))
            return box_lo, box_hi

        def build(lo: int, hi: int, depth: int) -> int:
            node = len(self._left)
            self._left.append(NO_CHILD)
            self._right.append(NO_CHILD)
            self._lo.append(lo)
            self._hi.append(hi)
            box_lo, box_hi = tight_box(lo, hi)
            self._box_lo.append(box_lo)
            self._box_hi.append(box_hi)
            if hi - lo > leaf_size:
                axis = depth % dims
                segment = order[lo:hi]
                segment.sort(key=lambda index: source_points[index][axis])
                order[lo:hi] = segment
                mid = (lo + hi) // 2
                left = build(lo, mid, depth + 1)
                right = build(mid, hi, depth + 1)
                self._left[node] = left
                self._right[node] = right
            return node

        self.root = build(0, len(points), 0)
        self._order = order
        self._leaf_points: List[Point] = [tuple(points[i]) for i in order]
        self._leaf_weights: List[float] = [cleaned[i] for i in order]
        self._original_index: List[int] = list(order)

    # ------------------------------------------------------------------
    # CoverableIndex protocol
    # ------------------------------------------------------------------

    @property
    def leaf_items(self) -> Sequence[Point]:
        """Points in leaf order (each node's subtree is a contiguous span)."""
        return self._leaf_points

    @property
    def leaf_weights(self) -> Sequence[float]:
        return self._leaf_weights

    def original_index(self, leaf_position: int) -> int:
        """Input position of the point stored at ``leaf_position``."""
        return self._original_index[leaf_position]

    def find_cover(self, rect: Rect) -> List[Span]:
        """Disjoint leaf-order spans whose union is exactly ``S ∩ rect``.

        ``O(n^{1-1/d})`` spans for any rectangle (plus spans for boundary
        points), by the standard kd-tree crossing argument.
        """
        if len(rect) != self.dims:
            raise ValueError(f"query has {len(rect)} dims, tree has {self.dims}")
        spans: List[Span] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            box_lo, box_hi = self._box_lo[node], self._box_hi[node]
            if not _rect_intersects_box(rect, box_lo, box_hi):
                continue
            lo, hi = self._lo[node], self._hi[node]
            if _rect_contains_box(rect, box_lo, box_hi):
                spans.append((lo, hi))
                continue
            if self._left[node] == NO_CHILD:
                # Boundary leaf bucket: emit singleton spans for the
                # individual points inside the rectangle.
                for position in range(lo, hi):
                    if rect_contains_point(rect, self._leaf_points[position]):
                        spans.append((position, position + 1))
                continue
            stack.append(self._right[node])
            stack.append(self._left[node])
        return spans

    def iter_node_spans(self) -> List[Span]:
        """All subtree spans (used by alias-backend precomputation)."""
        return [(self._lo[node], self._hi[node]) for node in range(len(self._left))]

    # ------------------------------------------------------------------
    # reporting baseline
    # ------------------------------------------------------------------

    def report(self, rect: Rect) -> List[Point]:
        """Classic orthogonal range reporting (the structure's day job)."""
        return [
            self._leaf_points[position]
            for lo, hi in self.find_cover(rect)
            for position in range(lo, hi)
        ]

    def count(self, rect: Rect) -> int:
        return sum(hi - lo for lo, hi in self.find_cover(rect))

    @property
    def node_count(self) -> int:
        return len(self._left)

    def __len__(self) -> int:
        return len(self._leaf_points)
