"""Static balanced binary search tree with canonical-node decomposition.

This is the tree of paper §3.2, obeying the four stated conventions:

* height ``O(log n)``;
* ``n`` leaves, each storing one distinct key of ``S``;
* every internal node has exactly two children, with all leaf keys in the
  left subtree smaller than those in the right subtree;
* the key of an internal node equals the smallest leaf key in its right
  subtree.

For any query interval ``q = [x, y]`` the tree yields a set ``C`` of
``O(log n)`` *canonical nodes* whose subtrees are disjoint and whose leaf
keys partition ``S ∩ q`` (Figure 1). Every IQS technique in §4–§6 starts
from this decomposition.

The implementation is array-based (structure-of-arrays): a node is an
integer id indexing parallel arrays. This keeps Python overhead low enough
for the benchmark sweeps while remaining a faithful pointer-style BST.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterator, List, Optional, Sequence, Tuple

from repro import obs
from repro.core import kernels
from repro.errors import BuildError
from repro.validation import validate_weights

NO_CHILD = -1

_BST_COVERS = obs.counter("bst.covers", "Canonical-node decompositions computed")
_BST_COVER_NODES = obs.counter(
    "bst.cover_nodes", "Canonical nodes returned across all covers (O(log n) each)"
)


class StaticBST:
    """Balanced BST over sorted distinct keys, per the §3.2 conventions.

    Parameters
    ----------
    keys:
        Strictly increasing sequence of key values.
    weights:
        Optional positive weight per key (defaults to 1.0 each). Node
        weights ``w(u)`` aggregate leaf weights bottom-up as in §3.2.
    """

    __slots__ = (
        "keys",
        "weights",
        "_left",
        "_right",
        "_lo",
        "_hi",
        "_node_key",
        "_node_weight",
        "_leaf_node_of",
        "_level_bounds",
        "_np_arrays",
        "root",
    )

    def __init__(self, keys: Sequence[float], weights: Optional[Sequence[float]] = None):
        if len(keys) == 0:
            raise BuildError("StaticBST requires at least one key")
        increasing = None
        key_arr = None
        if kernels.use_batch_build(len(keys)):
            np = kernels.np
            try:
                key_arr = np.asarray(keys, dtype=np.float64)
            except (TypeError, ValueError):
                key_arr = None
            if key_arr is not None and (key_arr.ndim != 1 or key_arr.size != len(keys)):
                key_arr = None
            if key_arr is not None:
                increasing = bool((key_arr[1:] > key_arr[:-1]).all())
        if increasing is None:
            increasing = all(keys[i - 1] < keys[i] for i in range(1, len(keys)))
        if not increasing:
            raise BuildError("StaticBST keys must be strictly increasing")
        if weights is None:
            weights = [1.0] * len(keys)
        if len(weights) != len(keys):
            raise BuildError(f"got {len(keys)} keys but {len(weights)} weights")

        self.keys: List[float] = list(keys)
        self.weights: List[float] = validate_weights(weights, context="StaticBST")

        # Iterative level-order (BFS) construction: node ids are assigned
        # breadth-first, so every level occupies one contiguous id range
        # (recorded in `_level_bounds`) and children always have larger ids
        # than their parent. That layout is what makes the bottom-up weight
        # aggregation a reversed linear pass — and lets the alias-augmented
        # sampler build all of one level's urn tables in a single packed
        # kernel call. The root is node 0, as before.
        n = len(keys)
        self._np_arrays: Optional[dict] = None
        if kernels.use_batch_build(n):
            self._build_level_order_vectorized(n, key_arr)
        else:
            self._build_level_order(n)
        self.root = 0

    def _build_level_order(self, n: int) -> None:
        """Pure-Python BFS build (also the numpy-free fallback)."""
        capacity = 2 * n - 1
        left = [NO_CHILD] * capacity
        right = [NO_CHILD] * capacity
        node_key = [0.0] * capacity
        node_weight = [0.0] * capacity
        leaf_node_of = [0] * n
        keys = self.keys
        weights = self.weights

        # `spans[u]` is node u's half-open leaf range; appending children in
        # (left, right) order while scanning nodes in id order IS the BFS.
        spans: List[Tuple[int, int]] = [(0, n)]
        level_bounds: List[Tuple[int, int]] = []
        lvl_start = 0
        while lvl_start < len(spans):
            lvl_end = len(spans)
            level_bounds.append((lvl_start, lvl_end))
            for node in range(lvl_start, lvl_end):
                lo, hi = spans[node]
                if hi - lo == 1:
                    node_key[node] = keys[lo]
                    node_weight[node] = weights[lo]
                    leaf_node_of[lo] = node
                else:
                    mid = (lo + hi) // 2
                    left[node] = len(spans)
                    spans.append((lo, mid))
                    right[node] = len(spans)
                    spans.append((mid, hi))
                    node_key[node] = keys[mid]  # smallest key in right subtree
            lvl_start = lvl_end

        # Children carry larger ids, so one reversed pass aggregates w(u).
        for node in range(capacity - 1, -1, -1):
            lchild = left[node]
            if lchild != NO_CHILD:
                node_weight[node] = node_weight[lchild] + node_weight[right[node]]

        self._left = left
        self._right = right
        self._lo = [s[0] for s in spans]
        self._hi = [s[1] for s in spans]
        self._node_key = node_key
        self._node_weight = node_weight
        self._leaf_node_of = leaf_node_of
        self._level_bounds = level_bounds

    def _build_level_order_vectorized(self, n: int, key_arr=None) -> None:
        """Numpy BFS build: whole levels of spans/ids/weights per array op.

        Produces arrays identical to :meth:`_build_level_order` — the same
        BFS id assignment, span midpoints, and pairwise weight sums — just
        computed one level at a time instead of one node at a time.
        """
        np = kernels.np
        level_lo = np.array([0], dtype=np.intp)
        level_hi = np.array([n], dtype=np.intp)
        los, his, lefts, rights = [], [], [], []
        level_bounds: List[Tuple[int, int]] = []
        start = 0
        while True:
            k = level_lo.size
            level_bounds.append((start, start + k))
            los.append(level_lo)
            his.append(level_hi)
            internal = np.nonzero(level_hi - level_lo > 1)[0]
            left_ids = np.full(k, NO_CHILD, dtype=np.intp)
            right_ids = np.full(k, NO_CHILD, dtype=np.intp)
            if internal.size == 0:
                lefts.append(left_ids)
                rights.append(right_ids)
                break
            # The j-th internal node of this level owns the next level's
            # nodes 2j and 2j+1 — BFS id assignment, vectorized.
            child_base = start + k + 2 * np.arange(internal.size, dtype=np.intp)
            left_ids[internal] = child_base
            right_ids[internal] = child_base + 1
            lefts.append(left_ids)
            rights.append(right_ids)
            parent_lo = level_lo[internal]
            parent_hi = level_hi[internal]
            mid = (parent_lo + parent_hi) // 2
            next_lo = np.empty(2 * internal.size, dtype=np.intp)
            next_hi = np.empty(2 * internal.size, dtype=np.intp)
            next_lo[0::2] = parent_lo
            next_lo[1::2] = mid
            next_hi[0::2] = mid
            next_hi[1::2] = parent_hi
            level_lo, level_hi = next_lo, next_hi
            start += k

        lo_all = np.concatenate(los)
        hi_all = np.concatenate(his)
        left_all = np.concatenate(lefts)
        right_all = np.concatenate(rights)
        leaf_mask = left_all == NO_CHILD

        w = np.asarray(self.weights, dtype=np.float64)
        node_weight = np.zeros(lo_all.size)
        node_weight[leaf_mask] = w[lo_all[leaf_mask]]
        # Bottom-up aggregation: one gather-add per level, leaves upward.
        for lvl_start, lvl_end in reversed(level_bounds):
            lchild = left_all[lvl_start:lvl_end]
            has_children = lchild != NO_CHILD
            if has_children.any():
                rchild = right_all[lvl_start:lvl_end]
                level_w = node_weight[lvl_start:lvl_end]
                level_w[has_children] = (
                    node_weight[lchild[has_children]]
                    + node_weight[rchild[has_children]]
                )

        # Routing keys: own key for a leaf, right subtree's smallest key
        # (the span midpoint) for an internal node. Numeric keys gather
        # through the float64 array built during validation; arbitrary
        # orderable key types fall back to a Python gather.
        key_index = np.where(leaf_mask, lo_all, (lo_all + hi_all) // 2)
        if key_arr is not None:
            # Kept as an array: np.float64 is a float subclass, so the
            # node_key() accessor behaves identically without paying an
            # O(m) tolist at build time.
            node_key = key_arr[key_index]
        else:
            keys = self.keys
            node_key = [keys[i] for i in key_index.tolist()]
        leaf_ids = np.nonzero(leaf_mask)[0]
        leaf_node_of = np.empty(n, dtype=np.intp)
        leaf_node_of[lo_all[leaf_mask]] = leaf_ids

        # Retained for vectorized consumers (the packed alias-table
        # builder), sparing them list -> array round-trips of the same
        # data; the list mirrors below stay authoritative for scalar use.
        self._np_arrays = {
            "lo": lo_all,
            "hi": hi_all,
            "left": left_all,
            "right": right_all,
            "node_weight": node_weight,
            "leaf_weight": w,
        }

        self._left = left_all.tolist()
        self._right = right_all.tolist()
        self._lo = lo_all.tolist()
        self._hi = hi_all.tolist()
        self._node_key = node_key
        self._node_weight = node_weight.tolist()
        self._leaf_node_of = leaf_node_of.tolist()
        self._level_bounds = level_bounds

    # ------------------------------------------------------------------
    # basic node accessors
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.keys)

    @property
    def node_count(self) -> int:
        """Total number of nodes, ``m = 2n - 1``."""
        return 2 * len(self.keys) - 1

    def is_leaf(self, node: int) -> bool:
        return self._left[node] == NO_CHILD

    def children(self, node: int) -> Tuple[int, int]:
        """(left, right) child ids of an internal node."""
        if self.is_leaf(node):
            raise ValueError(f"node {node} is a leaf")
        return self._left[node], self._right[node]

    def node_key(self, node: int) -> float:
        """Routing key: smallest leaf key in the right subtree (§3.2)."""
        return self._node_key[node]

    def packed_arrays(self) -> Tuple[List[int], List[int], List[float], List[int]]:
        """Raw ``(left, right, node_weight, span_lo)`` parallel lists.

        ``left[u] == NO_CHILD`` iff ``u`` is a leaf, and ``span_lo[u]`` is
        the first sorted-key index below ``u``. Exposed for the vectorized
        tree-walk kernel, which needs flat arrays rather than per-node
        method calls; callers must not mutate the lists.
        """
        return self._left, self._right, self._node_weight, self._lo

    def span_arrays(self) -> Tuple[List[int], List[int]]:
        """Raw ``(span_lo, span_hi)`` parallel lists over node ids.

        The half-open leaf range of every node, exposed for vectorized
        level-at-a-time consumers; callers must not mutate the lists.
        """
        return self._lo, self._hi

    def numpy_arrays(self) -> Optional[dict]:
        """Numpy mirrors of the packed node arrays, or ``None``.

        Populated only by the vectorized build: keys ``lo``, ``hi``,
        ``left``, ``right``, ``node_weight`` (per node id) and
        ``leaf_weight`` (per sorted-key index). Vectorized consumers use
        these to skip re-coercing the equivalent lists; callers must not
        mutate the arrays.
        """
        return self._np_arrays

    def level_bounds(self) -> List[Tuple[int, int]]:
        """Per-level ``(start, end)`` node-id ranges, root level first.

        Node ids are assigned breadth-first, so each tree level is one
        contiguous id interval — the property the packed alias-table
        builder exploits to construct a whole level in one kernel call.
        Callers must not mutate the list.
        """
        return self._level_bounds

    def node_weight(self, node: int) -> float:
        """``w(u)``: total weight of leaf keys in the subtree of ``node``."""
        return self._node_weight[node]

    def leaf_span(self, node: int) -> Tuple[int, int]:
        """Half-open range of sorted-key indices stored below ``node``."""
        return self._lo[node], self._hi[node]

    def subtree_size(self, node: int) -> int:
        return self._hi[node] - self._lo[node]

    def leaf_node(self, key_index: int) -> int:
        """Node id of the leaf storing the ``key_index``-th smallest key."""
        return self._leaf_node_of[key_index]

    def height(self) -> int:
        """Tree height (edges on the longest root-leaf path)."""
        best = 0
        stack = [(self.root, 0)]
        while stack:
            node, depth = stack.pop()
            if self.is_leaf(node):
                best = max(best, depth)
            else:
                stack.append((self._left[node], depth + 1))
                stack.append((self._right[node], depth + 1))
        return best

    def iter_nodes(self) -> Iterator[int]:
        return iter(range(self.node_count))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def range_leaf_indices(self, x: float, y: float) -> Tuple[int, int]:
        """Half-open index range of keys falling in ``[x, y]``."""
        if x > y:
            return 0, 0
        return bisect_left(self.keys, x), bisect_right(self.keys, y)

    def canonical_nodes(self, x: float, y: float) -> List[int]:
        """The cover ``C_q`` of ``q = [x, y]``: ``O(log n)`` disjoint nodes.

        The subtrees of the returned nodes partition ``S ∩ [x, y]``
        (Figure 1 of the paper). Returns ``[]`` for an empty range.
        """
        lo, hi = self.range_leaf_indices(x, y)
        return self.canonical_nodes_for_span(lo, hi)

    def canonical_nodes_for_span(self, lo: int, hi: int) -> List[int]:
        """Canonical nodes covering the sorted-key index range ``[lo, hi)``."""
        if lo >= hi:
            return []
        result: List[int] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            node_lo, node_hi = self._lo[node], self._hi[node]
            if node_hi <= lo or hi <= node_lo:
                continue
            if lo <= node_lo and node_hi <= hi:
                result.append(node)
                continue
            stack.append(self._right[node])
            stack.append(self._left[node])
        if obs.ENABLED:
            _BST_COVERS.inc()
            _BST_COVER_NODES.add(len(result))
        return result

    def report(self, x: float, y: float) -> List[float]:
        """Classic range reporting: all keys in ``[x, y]``, sorted."""
        lo, hi = self.range_leaf_indices(x, y)
        return self.keys[lo:hi]

    def count(self, x: float, y: float) -> int:
        """Number of keys in ``[x, y]`` in O(log n)."""
        lo, hi = self.range_leaf_indices(x, y)
        return hi - lo

    def range_weight(self, x: float, y: float) -> float:
        """Total weight of keys in ``[x, y]`` via the canonical nodes."""
        return sum(self._node_weight[u] for u in self.canonical_nodes(x, y))
