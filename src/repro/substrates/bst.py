"""Static balanced binary search tree with canonical-node decomposition.

This is the tree of paper §3.2, obeying the four stated conventions:

* height ``O(log n)``;
* ``n`` leaves, each storing one distinct key of ``S``;
* every internal node has exactly two children, with all leaf keys in the
  left subtree smaller than those in the right subtree;
* the key of an internal node equals the smallest leaf key in its right
  subtree.

For any query interval ``q = [x, y]`` the tree yields a set ``C`` of
``O(log n)`` *canonical nodes* whose subtrees are disjoint and whose leaf
keys partition ``S ∩ q`` (Figure 1). Every IQS technique in §4–§6 starts
from this decomposition.

The implementation is array-based (structure-of-arrays): a node is an
integer id indexing parallel arrays. This keeps Python overhead low enough
for the benchmark sweeps while remaining a faithful pointer-style BST.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.errors import BuildError
from repro.validation import validate_weights

NO_CHILD = -1


class StaticBST:
    """Balanced BST over sorted distinct keys, per the §3.2 conventions.

    Parameters
    ----------
    keys:
        Strictly increasing sequence of key values.
    weights:
        Optional positive weight per key (defaults to 1.0 each). Node
        weights ``w(u)`` aggregate leaf weights bottom-up as in §3.2.
    """

    __slots__ = (
        "keys",
        "weights",
        "_left",
        "_right",
        "_lo",
        "_hi",
        "_node_key",
        "_node_weight",
        "_leaf_node_of",
        "root",
    )

    def __init__(self, keys: Sequence[float], weights: Optional[Sequence[float]] = None):
        if len(keys) == 0:
            raise BuildError("StaticBST requires at least one key")
        for i in range(1, len(keys)):
            if not keys[i - 1] < keys[i]:
                raise BuildError("StaticBST keys must be strictly increasing")
        if weights is None:
            weights = [1.0] * len(keys)
        if len(weights) != len(keys):
            raise BuildError(f"got {len(keys)} keys but {len(weights)} weights")

        self.keys: List[float] = list(keys)
        self.weights: List[float] = validate_weights(weights, context="StaticBST")

        n = len(keys)
        capacity = 2 * n - 1
        self._left = [NO_CHILD] * capacity
        self._right = [NO_CHILD] * capacity
        self._lo = [0] * capacity
        self._hi = [0] * capacity
        self._node_key = [0.0] * capacity
        self._node_weight = [0.0] * capacity
        self._leaf_node_of = [0] * n

        next_id = [0]

        def build(lo: int, hi: int) -> int:
            node = next_id[0]
            next_id[0] += 1
            self._lo[node] = lo
            self._hi[node] = hi
            if hi - lo == 1:
                self._node_key[node] = self.keys[lo]
                self._node_weight[node] = self.weights[lo]
                self._leaf_node_of[lo] = node
                return node
            mid = (lo + hi) // 2
            left = build(lo, mid)
            right = build(mid, hi)
            self._left[node] = left
            self._right[node] = right
            self._node_key[node] = self.keys[mid]  # smallest key in right subtree
            self._node_weight[node] = self._node_weight[left] + self._node_weight[right]
            return node

        self.root = build(0, n)

    # ------------------------------------------------------------------
    # basic node accessors
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.keys)

    @property
    def node_count(self) -> int:
        """Total number of nodes, ``m = 2n - 1``."""
        return 2 * len(self.keys) - 1

    def is_leaf(self, node: int) -> bool:
        return self._left[node] == NO_CHILD

    def children(self, node: int) -> Tuple[int, int]:
        """(left, right) child ids of an internal node."""
        if self.is_leaf(node):
            raise ValueError(f"node {node} is a leaf")
        return self._left[node], self._right[node]

    def node_key(self, node: int) -> float:
        """Routing key: smallest leaf key in the right subtree (§3.2)."""
        return self._node_key[node]

    def packed_arrays(self) -> Tuple[List[int], List[int], List[float], List[int]]:
        """Raw ``(left, right, node_weight, span_lo)`` parallel lists.

        ``left[u] == NO_CHILD`` iff ``u`` is a leaf, and ``span_lo[u]`` is
        the first sorted-key index below ``u``. Exposed for the vectorized
        tree-walk kernel, which needs flat arrays rather than per-node
        method calls; callers must not mutate the lists.
        """
        return self._left, self._right, self._node_weight, self._lo

    def node_weight(self, node: int) -> float:
        """``w(u)``: total weight of leaf keys in the subtree of ``node``."""
        return self._node_weight[node]

    def leaf_span(self, node: int) -> Tuple[int, int]:
        """Half-open range of sorted-key indices stored below ``node``."""
        return self._lo[node], self._hi[node]

    def subtree_size(self, node: int) -> int:
        return self._hi[node] - self._lo[node]

    def leaf_node(self, key_index: int) -> int:
        """Node id of the leaf storing the ``key_index``-th smallest key."""
        return self._leaf_node_of[key_index]

    def height(self) -> int:
        """Tree height (edges on the longest root-leaf path)."""
        best = 0
        stack = [(self.root, 0)]
        while stack:
            node, depth = stack.pop()
            if self.is_leaf(node):
                best = max(best, depth)
            else:
                stack.append((self._left[node], depth + 1))
                stack.append((self._right[node], depth + 1))
        return best

    def iter_nodes(self) -> Iterator[int]:
        return iter(range(self.node_count))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def range_leaf_indices(self, x: float, y: float) -> Tuple[int, int]:
        """Half-open index range of keys falling in ``[x, y]``."""
        if x > y:
            return 0, 0
        return bisect_left(self.keys, x), bisect_right(self.keys, y)

    def canonical_nodes(self, x: float, y: float) -> List[int]:
        """The cover ``C_q`` of ``q = [x, y]``: ``O(log n)`` disjoint nodes.

        The subtrees of the returned nodes partition ``S ∩ [x, y]``
        (Figure 1 of the paper). Returns ``[]`` for an empty range.
        """
        lo, hi = self.range_leaf_indices(x, y)
        return self.canonical_nodes_for_span(lo, hi)

    def canonical_nodes_for_span(self, lo: int, hi: int) -> List[int]:
        """Canonical nodes covering the sorted-key index range ``[lo, hi)``."""
        if lo >= hi:
            return []
        result: List[int] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            node_lo, node_hi = self._lo[node], self._hi[node]
            if node_hi <= lo or hi <= node_lo:
                continue
            if lo <= node_lo and node_hi <= hi:
                result.append(node)
                continue
            stack.append(self._right[node])
            stack.append(self._left[node])
        return result

    def report(self, x: float, y: float) -> List[float]:
        """Classic range reporting: all keys in ``[x, y]``, sorted."""
        lo, hi = self.range_leaf_indices(x, y)
        return self.keys[lo:hi]

    def count(self, x: float, y: float) -> int:
        """Number of keys in ``[x, y]`` in O(log n)."""
        lo, hi = self.range_leaf_indices(x, y)
        return hi - lo

    def range_weight(self, x: float, y: float) -> float:
        """Total weight of keys in ``[x, y]`` via the canonical nodes."""
        return sum(self._node_weight[u] for u in self.canonical_nodes(x, y))
