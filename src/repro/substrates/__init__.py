"""Substrate data structures the IQS samplers are built on.

These are classic reporting/aggregation structures — balanced BSTs with
canonical-node decomposition, Fenwick trees, kd-trees, range trees,
quadtrees, distinct-count sketches, and permutation utilities. None of them
performs independent query sampling by itself; the :mod:`repro.core`
techniques are layered on top (paper §3–§7).
"""

from repro.substrates.bst import StaticBST
from repro.substrates.convex_layers import ConvexLayers, PolygonExtremes, convex_hull
from repro.substrates.fenwick import FenwickTree
from repro.substrates.halfplane import HalfplaneIndex
from repro.substrates.grid import ShiftedGrids
from repro.substrates.kdtree import KDTree
from repro.substrates.minrank_tree import MinRankTree
from repro.substrates.permutation import assign_ranks, random_permutation
from repro.substrates.quadtree import QuadTree
from repro.substrates.rangetree import RangeTree
from repro.substrates.rng import ensure_rng, spawn_rng
from repro.substrates.sketch import KMVSketch

__all__ = [
    "StaticBST",
    "ConvexLayers",
    "PolygonExtremes",
    "convex_hull",
    "HalfplaneIndex",
    "FenwickTree",
    "ShiftedGrids",
    "KDTree",
    "MinRankTree",
    "assign_ranks",
    "random_permutation",
    "QuadTree",
    "RangeTree",
    "ensure_rng",
    "spawn_rng",
    "KMVSketch",
]
