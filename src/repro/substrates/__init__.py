"""Substrate data structures the IQS samplers are built on.

These are classic reporting/aggregation structures — balanced BSTs with
canonical-node decomposition, Fenwick trees, kd-trees, range trees,
quadtrees, distinct-count sketches, and permutation utilities. None of them
performs independent query sampling by itself; the :mod:`repro.core`
techniques are layered on top (paper §3–§7).

Re-exports are **lazy** (PEP 562): this package also hosts the
dependency-free :mod:`repro.substrates.env` helper, which
:mod:`repro.obs` and :mod:`repro.core.kernels` import during *their own*
initialization — an eager ``from .bst import StaticBST`` here would drag
``repro.core`` (and its module-level ``obs.counter`` calls) into that
window and deadlock the import graph. ``from repro.substrates import
StaticBST`` still works exactly as before; the submodule just loads on
first attribute access.
"""

from importlib import import_module

_EXPORTS = {
    "StaticBST": "repro.substrates.bst",
    "ConvexLayers": "repro.substrates.convex_layers",
    "PolygonExtremes": "repro.substrates.convex_layers",
    "convex_hull": "repro.substrates.convex_layers",
    "FenwickTree": "repro.substrates.fenwick",
    "HalfplaneIndex": "repro.substrates.halfplane",
    "ShiftedGrids": "repro.substrates.grid",
    "KDTree": "repro.substrates.kdtree",
    "MinRankTree": "repro.substrates.minrank_tree",
    "assign_ranks": "repro.substrates.permutation",
    "random_permutation": "repro.substrates.permutation",
    "QuadTree": "repro.substrates.quadtree",
    "RangeTree": "repro.substrates.rangetree",
    "ensure_rng": "repro.substrates.rng",
    "spawn_rng": "repro.substrates.rng",
    "KMVSketch": "repro.substrates.sketch",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    try:
        module = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    value = getattr(import_module(module), name)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
