"""KMV (bottom-k) distinct-count sketches (paper §7, "Deriving U_G").

Theorem 8 needs, for any queried group ``G`` of sets, an estimate
``Û_G ∈ [U_G/2, 1.5·U_G]`` of the number of distinct elements in ``∪G``,
obtainable *without* reading the sets. The paper cites the sketch of [9];
we implement the classic KMV/bottom-k sketch, which offers the two
properties the algorithm actually uses:

* mergeable: the sketch of ``S₁ ∪ S₂`` is computed from the two sketches
  alone (keep the ``k`` smallest hashes of their union);
* an unbiased-ish estimator ``(k-1)/h_(k)`` with relative standard error
  ``≈ 1/√(k-2)``, so ``k = 64`` comfortably achieves ±50 %.

All sketches that are to be merged must share the same ``salt`` so they
hash identically.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Hashable, Iterable, List

from repro.errors import BuildError

_MAX_HASH = float(1 << 64)


def _hash_to_unit(item: Hashable, salt: int) -> float:
    """Deterministic salted hash of ``item`` into [0, 1)."""
    payload = repr(item).encode("utf-8")
    digest = hashlib.blake2b(
        payload, digest_size=8, key=salt.to_bytes(8, "little", signed=False)
    ).digest()
    (value,) = struct.unpack("<Q", digest)
    return value / _MAX_HASH


class KMVSketch:
    """Keep the k minimum hash values of a set; estimate its cardinality."""

    __slots__ = ("k", "salt", "_values", "_members")

    def __init__(self, k: int = 64, salt: int = 0):
        if k < 2:
            raise BuildError("KMV sketch needs k >= 2")
        self.k = k
        self.salt = salt
        self._values: List[float] = []  # sorted ascending, at most k entries
        self._members: set = set()  # the hashes currently retained

    @classmethod
    def from_items(cls, items: Iterable[Hashable], k: int = 64, salt: int = 0) -> "KMVSketch":
        sketch = cls(k=k, salt=salt)
        for item in items:
            sketch.add(item)
        return sketch

    def __len__(self) -> int:
        return len(self._values)

    def add(self, item: Hashable) -> None:
        """Insert one element (duplicates are absorbed)."""
        self._add_hash(_hash_to_unit(item, self.salt))

    def _add_hash(self, value: float) -> None:
        if value in self._members:
            return
        if len(self._values) < self.k:
            self._members.add(value)
            self._insort(value)
            return
        if value >= self._values[-1]:
            return
        self._members.discard(self._values[-1])
        self._values.pop()
        self._members.add(value)
        self._insort(value)

    def _insort(self, value: float) -> None:
        from bisect import insort

        insort(self._values, value)

    def merge(self, other: "KMVSketch") -> "KMVSketch":
        """Sketch of the union of the two underlying sets (§7)."""
        if other.salt != self.salt:
            raise BuildError("cannot merge sketches with different salts")
        merged = KMVSketch(k=min(self.k, other.k), salt=self.salt)
        for value in self._values:
            merged._add_hash(value)
        for value in other._values:
            merged._add_hash(value)
        return merged

    def estimate(self) -> float:
        """Distinct-count estimate.

        Exact when fewer than ``k`` distinct hashes were seen, else the
        classic ``(k-1)/h_(k)`` bottom-k estimator.
        """
        if len(self._values) < self.k:
            return float(len(self._values))
        return (self.k - 1) / self._values[-1]

    def relative_standard_error(self) -> float:
        """Approximate RSE of :meth:`estimate` (``1/√(k-2)``)."""
        return 1.0 / (self.k - 2) ** 0.5
