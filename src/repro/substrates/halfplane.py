"""Halfplane reporting with exact covers over convex layers (§6 remark).

Queries are lower halfplanes ``y ≤ a·x + b``. On every convex layer the
qualifying points form one contiguous cyclic arc of hull vertices; the
arc is located in ``O(log m)`` (extreme vertex + two monotone binary
searches), layers are walked outside-in, and peeling stops at the first
empty layer (everything deeper lies inside that layer's hull, hence above
the line). The resulting spans are an **exact cover** in the sense of
Theorem 5, so :class:`~repro.core.coverage.CoverageSampler` turns this
into halfplane IQS — the 2D stand-in for Afshani–Wei's 3D halfspace
structure (DESIGN.md §4).

Cost: ``O((1 + t) log n)`` cover-finding where ``t`` = touched layers
(every touched layer but the last contributes output, so ``t ≤ |S_q| + 1``
— output-sensitive like the classical Chazelle–Guibas–Lee method, minus
their fractional cascading log shaving).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.substrates.convex_layers import ConvexLayers, Point2, PolygonExtremes

Span = Tuple[int, int]
Halfplane = Tuple[float, float]  # (a, b): y <= a*x + b


class HalfplaneIndex:
    """Convex-layer structure with span covers for lower-halfplane queries."""

    def __init__(self, points: Sequence[Point2], weights: Optional[Sequence[float]] = None):
        self._layers = ConvexLayers(points, weights)
        self._extremes = [
            PolygonExtremes(hull) for hull in self._layers.layer_vertices
        ]
        self.predicate_evaluations = 0  # diagnostic for the O(log) claim

    def __len__(self) -> int:
        return len(self._layers)

    @property
    def num_layers(self) -> int:
        return self._layers.num_layers

    @property
    def leaf_items(self) -> Sequence[Point2]:
        return self._layers.leaf_items

    @property
    def leaf_weights(self) -> Sequence[float]:
        return self._layers.leaf_weights

    def original_index(self, leaf_position: int) -> int:
        return self._layers.original_index(leaf_position)

    # ------------------------------------------------------------------

    def _below(self, point: Point2, a: float, b: float) -> bool:
        self.predicate_evaluations += 1
        return point[1] - a * point[0] - b <= 0.0

    _LINEAR_THRESHOLD = 8

    def _scan_runs(self, hull, a: float, b: float) -> Optional[List[Tuple[int, int]]]:
        """Exact fallback: maximal cyclic runs of below-vertices by scan.

        In exact arithmetic the below-set is one cyclic arc; floating-point
        degeneracies can fragment it, and emitting every maximal run keeps
        the cover *exact* regardless.
        """
        m = len(hull)
        flags = [self._below(v, a, b) for v in hull]
        if not any(flags):
            return None
        if all(flags):
            return [(0, m - 1)]
        runs: List[Tuple[int, int]] = []
        # Start scanning just after an above-vertex so runs never split
        # across the seam.
        start = next(i for i, flag in enumerate(flags) if not flag)
        run_start: Optional[int] = None
        for offset in range(1, m + 1):
            index = (start + offset) % m
            if flags[index]:
                if run_start is None:
                    run_start = index
            elif run_start is not None:
                runs.append((run_start, (index - 1) % m))
                run_start = None
        if run_start is not None:
            runs.append((run_start, start - 1 if start else m - 1))
        return runs

    def _vertex_arc(self, layer: int, a: float, b: float) -> Optional[List[Tuple[int, int]]]:
        """Inclusive cyclic vertex ranges of the layer's below-arc, or
        None when the layer is entirely above the line."""
        hull = self._layers.layer_vertices[layer]
        m = len(hull)
        if m <= self._LINEAR_THRESHOLD:
            return self._scan_runs(hull, a, b)

        direction = (-a, 1.0)  # f(p) = dot(p, direction) - b
        extremes = self._extremes[layer]
        lowest = extremes.argmin(direction)
        if not self._below(hull[lowest], a, b):
            # The angle search can be defeated by near-degenerate float
            # geometry; confirm emptiness exactly before pruning deeper
            # layers (a scan here is rare and preserves correctness).
            return self._scan_runs(hull, a, b)
        highest = extremes.argmax(direction)
        if self._below(hull[highest], a, b):
            return [(0, m - 1)]  # the entire layer is below

        # dot(v, direction) increases monotonically along both boundary
        # paths from `lowest` to `highest`; binary search the last below
        # vertex on each path.
        ccw_length = (highest - lowest) % m
        cw_length = (lowest - highest) % m

        def last_below(step_sign: int, length: int) -> int:
            lo, hi = 0, length - 1  # offsets from `lowest`; offset 0 is below
            while lo < hi:
                mid = (lo + hi + 1) // 2
                if self._below(hull[(lowest + step_sign * mid) % m], a, b):
                    lo = mid
                else:
                    hi = mid - 1
            return lo

        forward = last_below(+1, ccw_length)
        backward = last_below(-1, cw_length)
        arc_start = (lowest - backward) % m
        arc_stop = (lowest + forward) % m
        # Float-noise guard: the vertices just outside the arc must be
        # above; otherwise unimodality was violated — recompute exactly.
        before = (arc_start - 1) % m
        after = (arc_stop + 1) % m
        if self._below(hull[before], a, b) or self._below(hull[after], a, b):
            return self._scan_runs(hull, a, b)
        return [(arc_start, arc_stop)]

    def find_cover(self, query: Halfplane) -> List[Span]:
        """Disjoint flat-array spans exactly covering the points below."""
        a, b = query
        spans: List[Span] = []
        for layer in range(self._layers.num_layers):
            runs = self._vertex_arc(layer, a, b)
            if runs is None:
                break  # deeper layers are inside this hull → also above
            vertex_spans = self._layers.layer_vertex_spans[layer]
            layer_lo, layer_hi = self._layers.layer_bounds[layer]
            for start_vertex, stop_vertex in runs:
                if start_vertex <= stop_vertex:
                    spans.append(
                        (vertex_spans[start_vertex][0], vertex_spans[stop_vertex][1])
                    )
                else:  # run wraps around the array seam
                    spans.append((vertex_spans[start_vertex][0], layer_hi))
                    spans.append((layer_lo, vertex_spans[stop_vertex][1]))
        return spans

    def report(self, query: Halfplane) -> List[Point2]:
        items = self._layers.leaf_items
        return [
            items[i] for lo, hi in self.find_cover(query) for i in range(lo, hi)
        ]

    def count(self, query: Halfplane) -> int:
        return sum(hi - lo for lo, hi in self.find_cover(query))

    def touched_layers(self, query: Halfplane) -> int:
        """``t``: layers inspected by the cover walk (for complexity tests)."""
        a, b = query
        touched = 0
        for layer in range(self._layers.num_layers):
            touched += 1
            if self._vertex_arc(layer, a, b) is None:
                break
        return touched
