"""Normalized parsing for the ``REPRO_*`` environment knobs.

Every boolean environment switch in this package funnels through
:func:`env_flag`, so they all share one truth table. Before this module
existed, ``REPRO_DISABLE_NUMPY=0`` *disabled* numpy (any non-empty string
was truthy) while ``REPRO_METRICS=0`` left metrics off — two different
parsers for the same kind of knob. The normalized rules:

* unset or ``""`` → the default; ``"0"``, ``"false"``, ``"no"``,
  ``"off"`` → ``False`` (an explicit falsy value overrides even a
  ``True`` default);
* ``"1"``, ``"true"``, ``"yes"``, ``"on"`` → ``True``;
* any other non-empty value → ``True`` (conservative: a typo in a
  kill-switch should still kill the switch, not silently no-op).

All comparisons are case-insensitive and whitespace-stripped.

Integer knobs (``REPRO_PLAN_CACHE_SIZE``) go through :func:`env_int`,
which raises a uniform ``ValueError`` naming the variable on garbage
input instead of propagating a bare ``int()`` failure.

This module must stay dependency-free (stdlib only): it is imported by
:mod:`repro.core.kernels` before numpy availability is even probed.
"""

from __future__ import annotations

import os
from typing import Optional

__all__ = ["env_flag", "env_int"]

_FALSY = frozenset({"", "0", "false", "no", "off"})
_TRUTHY = frozenset({"1", "true", "yes", "on"})


def env_flag(name: str, default: bool = False) -> bool:
    """The boolean value of environment variable ``name``.

    ``default`` is returned when the variable is unset or holds one of
    the falsy spellings; truthy spellings — and, conservatively, any
    unrecognized non-empty value — return ``True``.
    """
    raw = os.environ.get(name)
    if raw is None:
        return default
    value = raw.strip().lower()
    if value in _FALSY:
        # An explicitly falsy value turns the flag off even when the
        # caller's default is True (it is an override, not a fallback).
        return False if value else default
    return True


def env_int(name: str, default: Optional[int] = None) -> Optional[int]:
    """The integer value of environment variable ``name``.

    Unset or blank returns ``default``; a non-integer value raises
    ``ValueError`` naming the variable (so a typo in a tuning knob fails
    loudly at startup instead of silently taking the default).
    """
    raw = os.environ.get(name)
    if raw is None or raw.strip() == "":
        return default
    try:
        return int(raw)
    except ValueError:
        raise ValueError(f"{name} must be an integer, got {raw!r}") from None
